#!/usr/bin/env python
"""NPB scheduling comparison: manual device mappings vs MultiCL AUTO_FIT.

Reproduces a slice of the paper's Fig. 4 for one benchmark: runs the five
showcased manual schedules plus AUTO_FIT with four command queues and
prints the resulting times, the queue→device mapping the scheduler chose,
and the kernel distribution (the Fig. 5 view).

Run:  python examples/npb_scheduling.py [BT|CG|EP|FT|MG|SP] [class]
"""

import sys

from repro.workloads.base import ProblemClass
from repro.workloads.npb import get_benchmark
from repro.workloads.npb.common import run_npb

SCHEDULES = {
    "CPU only": ["cpu", "cpu", "cpu", "cpu"],
    "GPU only": ["gpu0", "gpu0", "gpu0", "gpu0"],
    "RR (GPUs)": ["gpu0", "gpu1", "gpu0", "gpu1"],
    "RR #1": ["gpu0", "gpu0", "gpu1", "cpu"],
    "RR #2": ["cpu", "cpu", "gpu0", "gpu1"],
}


def main() -> None:
    name = sys.argv[1].upper() if len(sys.argv) > 1 else "CG"
    pc = sys.argv[2].upper() if len(sys.argv) > 2 else "A"
    cls = get_benchmark(name)
    iters = 30  # shortened for a quick demo; pass the class's natural count

    print(f"{name}.{pc}, 4 command queues, node: 1 CPU + 2 GPUs")
    print(f"{'schedule':12s}  {'simulated s':>12s}")
    best = None
    for label, devices in SCHEDULES.items():
        app = cls(ProblemClass(pc), 4, iterations_override=iters)
        run = run_npb(app, mode="manual", devices=devices)
        best = min(best, run.seconds) if best is not None else run.seconds
        print(f"{label:12s}  {run.seconds:12.4f}")

    app = cls(ProblemClass(pc), 4, iterations_override=iters)
    auto = run_npb(app, mode="auto")
    print(f"{'Auto Fit':12s}  {auto.seconds:12.4f}")
    print()
    print(f"AUTO_FIT mapping: {auto.bindings}")
    print(f"kernel distribution: "
          f"{ {d: f'{100 * f:.0f}%' for d, f in auto.stats.kernel_distribution().items()} }")
    print(f"overhead vs best showcased manual schedule: "
          f"{100 * (auto.seconds - best) / best:+.1f}%")


if __name__ == "__main__":
    main()
