#!/usr/bin/env python
"""Double buffering with out-of-order queues.

A chunked upload→compute pipeline on one GPU, twice: first on a stock
in-order queue (every command waits for its predecessor), then on an
out-of-order queue (``CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE``) where
chunk *i+1*'s PCIe upload overlaps chunk *i*'s kernel — the classic HPC
latency-hiding idiom, visible directly in the simulated timeline.

Run:  python examples/double_buffering.py
"""

from repro import MultiCL
from repro.sim.export import utilization_report

PROGRAM = """
// @multicl flops_per_item=1200 bytes_per_item=4 writes=1
__kernel void process(__global float* chunk, __global float* out, int n) {
  float v = chunk[get_global_id(0)];
  for (int i = 0; i < 200; ++i) v = v * 1.00001f + 1e-6f;
  out[get_global_id(0)] = v;
}
"""

N = 1 << 23
CHUNKS = 6
CHUNK_BYTES = 96 << 20


def pipeline(mcl: MultiCL, out_of_order: bool) -> float:
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()
    q = ctx.create_queue("gpu0", out_of_order=out_of_order)
    t0 = mcl.now
    prev = None
    for i in range(CHUNKS):
        chunk = ctx.create_buffer(CHUNK_BYTES, name=f"chunk{i}")
        out = ctx.create_buffer(4 * N, name=f"out{i}")
        k = program.create_kernel("process")
        k.set_arg(0, chunk)
        k.set_arg(1, out)
        k.set_arg(2, N)
        upload = q.enqueue_write_buffer(chunk)
        waits = [upload] + ([prev] if prev is not None else [])
        prev = q.enqueue_nd_range_kernel(k, (N,), (256,), wait_events=waits)
    q.finish()
    return mcl.now - t0


def main() -> None:
    mcl = MultiCL()
    t_in_order = pipeline(mcl, out_of_order=False)
    t_start = mcl.now
    t_ooo = pipeline(mcl, out_of_order=True)

    print(f"{CHUNKS} chunks of {CHUNK_BYTES >> 20} MB, upload + compute each:")
    print(f"  in-order queue:      {t_in_order * 1e3:7.1f} ms")
    print(f"  out-of-order queue:  {t_ooo * 1e3:7.1f} ms "
          f"({100 * (1 - t_ooo / t_in_order):.0f}% faster)")

    report = utilization_report(mcl.engine.trace, t_start, mcl.now)
    # Under MULTICL_OVERLAP the link splits into :h2d/:d2h engine resources;
    # aggregate by prefix so the report works either way.
    link_util = max(
        (
            v.get("utilization", 0.0)
            for k, v in report.items()
            if k.startswith("link:pcie-gpu0")
        ),
        default=0.0,
    )
    dev = report.get("dev:gpu0", {})
    print("\nduring the out-of-order run:")
    print(f"  PCIe link busy {100 * link_util:.0f}% "
          f"of the pipeline span")
    print(f"  GPU busy       {100 * dev.get('utilization', 0):.0f}% "
          f"of the pipeline span")
    print("uploads and kernels overlap; only the first upload and the last "
          "kernel are exposed.")


if __name__ == "__main__":
    main()
