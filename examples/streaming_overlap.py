#!/usr/bin/env python
"""Transfer/compute overlap on a scheduled streaming workload.

A double-buffered streaming pipeline — upload a chunk, process it, read the
result back, eight times over two rotating buffer pairs — enqueued on a
*single automatically scheduled in-order queue*.  Stock FIFO issue
serialises the whole pipeline: upload *i+1* cannot even be submitted until
read-back *i* has issued, so the PCIe link and the device take turns
sitting idle.

With ``SCHED_OVERLAP`` (here via ``MultiCL(overlap=True)``, equivalently
``MULTICL_OVERLAP=1``) the runtime issues the same pool from a
dependency-driven ready queue instead: uploads prefetch ahead, read-backs
drain behind, and the per-link duplex DMA engines let both directions run
concurrently with the kernels.  The reordering is validated against the
pool's happens-before graph — commands that touch the same buffer keep
their original order, so results are bit-identical to FIFO issue.

Run:  python examples/streaming_overlap.py
      MULTICL_SANITIZE=1 python examples/streaming_overlap.py
"""

import numpy as np

from repro import MultiCL
from repro.ocl.enums import ContextScheduler, SchedFlag
from repro.sim.export import utilization_report

PROGRAM = """
// @multicl flops_per_item=200 bytes_per_item=8 writes=1
__kernel void stream(__global float* in, __global float* out, int n) {
  out[get_global_id(0)] = in[get_global_id(0)] * 2.0f;
}
"""

N = 1 << 20
ITERS = 8
DEPTH = 2  # rotating buffer pairs (double buffering)


def pipeline(overlap: bool):
    mcl = MultiCL(policy=ContextScheduler.AUTO_FIT, overlap=overlap)
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()
    kernel = program.create_kernel("stream")
    kernel.set_host_function(lambda a: a["out"].__setitem__(..., a["in"] * 2.0))
    queue = ctx.create_queue(
        sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
    )
    nbytes = 4 * N
    chunks = [
        ctx.create_buffer(nbytes, host_array=np.zeros(N, np.float32), name=f"chunk{i}")
        for i in range(DEPTH)
    ]
    outs = [
        ctx.create_buffer(nbytes, host_array=np.zeros(N, np.float32), name=f"out{i}")
        for i in range(DEPTH)
    ]
    data = [np.full(N, float(i), np.float32) for i in range(ITERS)]
    results = [np.empty(N, np.float32) for _ in range(ITERS)]
    t0 = mcl.now
    for i in range(ITERS):
        chunk, out = chunks[i % DEPTH], outs[i % DEPTH]
        queue.enqueue_write_buffer(chunk, data[i])
        kernel.set_arg(0, chunk)
        kernel.set_arg(1, out)
        kernel.set_arg(2, N)
        queue.enqueue_nd_range_kernel(kernel, (N,), (64,))
        queue.enqueue_read_buffer(out, results[i])
    queue.finish()
    makespan = mcl.now - t0
    ok = all(np.array_equal(r, d * 2.0) for r, d in zip(results, data))
    report = utilization_report(mcl.engine.trace, t0, mcl.now)
    return makespan, ok, report


def main() -> None:
    t_fifo, ok_fifo, _ = pipeline(overlap=False)
    t_overlap, ok_overlap, report = pipeline(overlap=True)
    assert ok_fifo and ok_overlap, "functional results diverged"

    print(f"{ITERS} chunks of {4 * N >> 20} MB, upload + kernel + read-back each:")
    print(f"  FIFO issue (overlap off):   {t_fifo * 1e3:7.3f} ms")
    print(
        f"  SCHED_OVERLAP issue:        {t_overlap * 1e3:7.3f} ms "
        f"({100 * (1 - t_overlap / t_fifo):.0f}% faster)"
    )
    busy = {
        k: v.get("utilization", 0.0)
        for k, v in sorted(report.items())
        if k.startswith(("dev:", "link:")) and v.get("utilization", 0.0) > 0
    }
    print("\nresource utilization during the overlapped run:")
    for k, u in busy.items():
        print(f"  {k:24s} {100 * u:5.1f}%")
    print(
        "\nuploads prefetch ahead of compute and read-backs drain behind it; "
        "results are bit-identical to FIFO issue."
    )


if __name__ == "__main__":
    main()
