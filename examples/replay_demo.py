#!/usr/bin/env python
"""Open-loop traffic replay: production-shaped load against the scheduler.

The paper evaluates MultiCL closed-loop: a fixed task graph, makespan as
the figure of merit.  Production schedulers face an *open* system —
requests arrive on their own clock whether or not the fleet has kept up —
so :mod:`repro.replay` drives seeded arrival processes (Poisson, bursty
on/off, diurnal) over a mixed-kernel-family traffic model and reports
arrival→completion latency percentiles, sustained throughput, and
per-tenant fairness.

Three things are demonstrated here:

* a bursty two-tenant replay, sharded across two worker processes and
  verified bit-identical to the serial reference (the determinism the
  CI smoke job pins);
* streaming-trace accounting: hundreds of thousands of intervals flow
  through a sink while resident memory stays flat at the spill threshold;
* a small service-mode replay through the fair-share arbiter, where
  heavier-weighted tenants finish the same open workload sooner.

Run:  python examples/replay_demo.py
"""

from repro.replay import (
    ReplayConfig,
    run_service_replay,
    run_sharded,
    verify_against_serial,
)

COMMANDS = 25_000  # per tenant; ~50k commands replayed end-to-end


def engine_mode() -> None:
    config = ReplayConfig(
        commands=COMMANDS,
        tenants=2,
        process="bursty",
        rate=300.0,  # ~2/3 of a tenant fleet's capacity: a stable queue
        seed=7,
        spill_every=4096,
    )
    report = run_sharded(config, shards=2)
    print(report.render())
    worst_resident = max(t.resident for t in report.tenants)
    print(
        f"streamed {sum(t.spilled for t in report.tenants)} trace intervals; "
        f"resident tail never above {worst_resident} (< spill threshold 4096)"
    )
    identical = verify_against_serial(report, config)
    print(f"sharded replay bit-identical to serial: {identical}")


def service_mode() -> None:
    config = ReplayConfig(
        commands=120,
        tenants=3,
        rate=400.0,  # 3 x 400/s >> fleet capacity: sustained contention
        seed=1,
        weights=(4.0, 2.0, 1.0),
        chunk=64,
    )
    report = run_service_replay(config)
    print()
    print("service mode (shared fleet, weighted fair share 4:2:1):")
    for t in report.tenants:
        share = report.shares.get(t.tenant, 0.0)
        print(
            f"  {t.tenant}: weight {t.weight:g}, finished at "
            f"{t.end_time:.2f}s simulated, device share {share:.3f}"
        )
    ordered = sorted(report.tenants, key=lambda t: t.weight, reverse=True)
    print(
        "heavier tenants finish the same workload sooner: "
        f"{all(a.end_time <= b.end_time for a, b in zip(ordered, ordered[1:]))}"
    )


def main() -> None:
    engine_mode()
    service_mode()


if __name__ == "__main__":
    main()
