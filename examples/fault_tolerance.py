#!/usr/bin/env python
"""Fault tolerance: surviving a mid-run GPU failure.

Two auto-scheduled queues iterate a doubling kernel on a symmetric 2×GPU
node.  After two warm-up epochs a :class:`~repro.sim.faults.FaultPlan`
permanently kills one GPU *mid-kernel*.  The runtime aborts the partial
execution, requeues the lost command, invalidates the dead device's
profile-cache entries, and re-triggers AUTO_FIT over the degraded pool —
the run completes on the survivor with every command executed exactly once.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import ContextScheduler, FaultPlan, MultiCL, SchedFlag
from repro.hardware.presets import symmetric_dual_gpu_node

PROGRAM = """
// @multicl flops_per_item=220 bytes_per_item=8 writes=1
__kernel void scale_a(__global float* a, int n) {
  int i = get_global_id(0);
  a[i] = a[i] * 2.0f;
}

// @multicl flops_per_item=220 bytes_per_item=8 writes=1
__kernel void scale_b(__global float* b, int n) {
  int i = get_global_id(0);
  b[i] = b[i] * 2.0f;
}
"""

N = 1 << 20
EPOCHS = 6


def main() -> None:
    mcl = MultiCL(
        node_spec=symmetric_dual_gpu_node(), policy=ContextScheduler.AUTO_FIT
    )
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()

    buf_a = ctx.create_buffer(4 * N, host_array=np.ones(N, np.float32), name="a")
    buf_b = ctx.create_buffer(4 * N, host_array=np.ones(N, np.float32), name="b")
    kernels = []
    for name, buf in (("scale_a", buf_a), ("scale_b", buf_b)):
        k = program.create_kernel(name)
        k.set_arg(0, buf)
        k.set_arg(1, N)
        k.set_host_function(lambda args, key=name[-1]: args[key].__imul__(2.0))
        kernels.append(k)

    flags = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
    queues = [mcl.queue(flags=flags, name=f"q{i}") for i in (1, 2)]

    def epoch() -> None:
        for q, k in zip(queues, kernels):
            q.enqueue_nd_range_kernel(k, (N,), (128,))
        for q in queues:
            q.finish()

    t0 = mcl.now
    for _ in range(2):  # warm up: profile, map, and settle the queues
        epoch()
    victim = queues[1].device
    print(f"mapping before fault: q1 -> {queues[0].device}, q2 -> {victim}")

    # Kill q2's GPU ~0.2 ms from now — mid-way through its next kernel.
    injector = mcl.inject_faults(FaultPlan().fail_device(victim, at=mcl.now + 2e-4))
    for _ in range(EPOCHS - 2):
        epoch()

    stats = mcl.stats_between(t0, mcl.now)
    expected = float(2**EPOCHS)
    correct = bool(
        np.all(buf_a.array == expected) and np.all(buf_b.array == expected)
    )
    print(f"injected failure: {victim} died at t={mcl.now * 1e3:.2f} ms (virtual)")
    print(f"mapping after fault:  q1 -> {queues[0].device}, q2 -> {queues[1].device}")
    print(
        f"recovery: {injector.replayed_commands} command(s) replayed, "
        f"{injector.remapped_queues} queue(s) remapped, "
        f"downtime {stats.downtime_seconds * 1e3:.2f} ms"
    )
    print(f"kernels per device: {stats.kernel_count_by_device}")
    print(f"run completed on degraded pool, numerics exactly-once: {correct}")


if __name__ == "__main__":
    main()
