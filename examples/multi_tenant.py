#!/usr/bin/env python
"""Multi-tenant scheduling service: four tenants, one shared fleet.

A :class:`~repro.service.SchedulingService` fronts one simulated node.
Four tenant sessions with fair-share weights 4:2:1:1 submit identical
kernel epochs through their own auto-scheduled queues; the service's
weighted deficit-round-robin arbiter decides, at every scheduler trigger,
whose ready pool reaches the fleet.  Under sustained backlog each tenant's
trace-measured device-seconds converge to its configured weight share.

Admission control is demonstrated on the way: a fifth session bounces off
the service's session cap, an over-quota buffer allocation is rejected,
and a waitlisted session is admitted the moment a slot frees up.

Run:  python examples/multi_tenant.py
"""

import numpy as np

from repro import ContextScheduler, SchedFlag
from repro.service import AdmissionError, SchedulingService, TenantQuota

PROGRAM = """
// @multicl flops_per_item=200 bytes_per_item=8 writes=0
__kernel void scale(__global float* x, const float a) {
  int i = get_global_id(0);
  x[i] = x[i] * a;
}
"""

N = 1 << 18
ROUNDS = 120
WEIGHTS = {"alpha": 4.0, "beta": 2.0, "gamma": 1.0, "delta": 1.0}


class Tenant:
    """One tenant's client-side state: session, kernel, queue, buffer."""

    def __init__(self, service: SchedulingService, name: str, weight: float):
        self.session = service.create_session(
            name, weight=weight, policy=ContextScheduler.ROUND_ROBIN
        )
        program = self.session.create_program(PROGRAM).build()
        self.kernel = program.create_kernel("scale")
        self.buffer = self.session.create_buffer(
            4 * N, host_array=np.ones(N, np.float32), name=f"{name}-data"
        )
        self.queue = self.session.create_queue(
            sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC, name=f"{name}-q"
        )

    def enqueue_epoch(self) -> None:
        self.kernel.set_arg(0, self.buffer)
        self.kernel.set_arg(1, 2.0)
        self.queue.enqueue_nd_range_kernel(self.kernel, (N,), (128,))


def main() -> None:
    service = SchedulingService(max_sessions=4)
    tenants = [Tenant(service, name, w) for name, w in WEIGHTS.items()]

    # ---- admission control ------------------------------------------------
    try:
        service.create_session("epsilon")
    except AdmissionError as exc:
        print(f"admission: rejected 5th session ({exc})")
    waiting = service.create_session("epsilon", on_overload="queue")
    print(f"admission: 'epsilon' waitlisted (state={waiting.state})")

    alpha = service.sessions["alpha"]  # already holds 4*N buffer bytes
    alpha.quota = TenantQuota(max_resident_bytes=8 * N, max_queues=1)
    try:
        alpha.create_buffer(8 * N)  # 4*N held + 8*N requested > 8*N quota
    except AdmissionError as exc:
        print(f"admission: over-quota buffer rejected ({exc})")
    try:
        alpha.create_queue()  # second queue > max_queues=1
    except AdmissionError as exc:
        print(f"admission: over-quota queue rejected ({exc})")

    # ---- weighted fair share under backlog --------------------------------
    # Closed loop: every tenant always has exactly one epoch deferred, so
    # dispatch *rate* is limited only by fair-share credit.
    for _ in range(ROUNDS):
        for t in tenants:
            if not t.session.pending_queues():
                t.enqueue_epoch()
        service.trigger()        # one voluntary arbitration round
        service.run_until_idle()  # let dispatched work complete

    # Snapshot *before* draining the leftover deferred epochs: the horizon
    # ends mid-backlog by design (that is where fairness is observable).
    shares = service.telemetry.shares(list(WEIGHTS))
    total_weight = sum(WEIGHTS.values())
    print(f"\nper-tenant device time after {ROUNDS} arbitration rounds:")
    within = True
    for name, weight in WEIGHTS.items():
        target = weight / total_weight
        usage = service.telemetry.usage(name)
        err = abs(shares[name] - target) / target
        within &= err <= 0.10
        print(
            f"  {name:<6} weight={weight:>3.0f}  "
            f"device={usage.device_seconds * 1e3:7.3f} ms  "
            f"share={shares[name]:6.1%}  target={target:6.1%}  "
            f"(err {err:5.1%})"
        )
    print(f"fair share within 10% of weights: {within}")

    # ---- teardown: closing a session admits the waitlisted tenant ---------
    service.drain()
    tenants[-1].session.close()
    print(f"after closing 'delta': 'epsilon' is {waiting.state}")


if __name__ == "__main__":
    main()
