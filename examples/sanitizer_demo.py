#!/usr/bin/env python
"""Command-graph sanitizer: catching cross-queue hazards before they run.

Automatically scheduled queues defer commands until a synchronization
trigger, and the runtime may re-map queues across devices — so the only
ordering that survives is the one expressed through events, program order,
and barriers.  This demo builds the same two-queue pipeline twice:

1. *racy* — the kernel consumes a buffer another queue is still uploading,
   and the result is read back with no ordering either.  The static
   validator (`repro.validate_pool`) reports both races without issuing
   anything.
2. *fixed* — the same pipeline with event wait lists, run to completion
   under the runtime sanitizer (`MultiCL(sanitize=True)`, equivalent to
   `MULTICL_SANITIZE=1`), then the recorded timeline is linted.

The racy pool is built in its own MultiCL instance and never synchronised,
so this script also runs cleanly with `MULTICL_SANITIZE=1` set.

Run:  python examples/sanitizer_demo.py
"""

import numpy as np

from repro import ContextScheduler, MultiCL, SchedFlag, lint_trace, validate_pool

PROGRAM = """
// @multicl flops_per_item=40 bytes_per_item=12 writes=1
__kernel void scale(__global float* src, __global float* dst, int n) {
  dst[get_global_id(0)] = 2.0f * src[get_global_id(0)];
}
"""

N = 1 << 16
FLAGS = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH


def build_pipeline(mcl, ordered: bool):
    """Upload on one queue, compute on another, read back. ``ordered``
    controls whether the cross-queue event wait lists are present."""
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()
    kernel = program.create_kernel("scale")
    src = ctx.create_buffer(4 * N, name="src")
    dst = ctx.create_buffer(4 * N, name="dst")
    kernel.set_arg(0, src)
    kernel.set_arg(1, dst)
    kernel.set_arg(2, N)

    q_io = mcl.queue(flags=FLAGS, name="io-queue")
    q_compute = mcl.queue(flags=FLAGS, name="compute-queue")

    ev_up = q_io.enqueue_write_buffer(src, np.linspace(0, 1, N, dtype=np.float32))
    ev_k = q_compute.enqueue_nd_range_kernel(
        kernel, (N,), (128,), wait_events=[ev_up] if ordered else []
    )
    q_io.enqueue_read_buffer(dst, wait_events=[ev_k] if ordered else [])
    return q_io, q_compute


def main() -> None:
    # --- 1. static validation of a racy pool (nothing is issued) --------
    racy = MultiCL(policy=ContextScheduler.AUTO_FIT)
    pool = build_pipeline(racy, ordered=False)
    findings = validate_pool(pool)
    print(f"static findings in the racy pipeline: {len(findings)}")
    for f in findings:
        print(f"  {f}")

    # --- 2. the fixed pipeline under the runtime sanitizer --------------
    fixed = MultiCL(policy=ContextScheduler.AUTO_FIT, sanitize=True)
    q_io, q_compute = build_pipeline(fixed, ordered=True)
    print(f"fixed pipeline findings: {len(validate_pool([q_io, q_compute]))}")
    q_io.finish()
    q_compute.finish()
    print(
        f"runtime sanitizer: clean run finished "
        f"(compute-queue -> {q_compute.device}, {fixed.now * 1e3:.2f} ms)"
    )

    # --- 3. post-hoc lint over the recorded timeline ---------------------
    print(f"trace lint findings: {len(lint_trace(fixed.engine.trace))}")


if __name__ == "__main__":
    main()
