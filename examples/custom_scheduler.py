#!/usr/bin/env python
"""Plugging a custom scheduling policy into the runtime.

The paper (Section I): "By providing simple modular extensions to the
familiar OpenCL API, we enable different schedulers to be composed and
built into an OpenCL runtime.  We do not aim to design the hypothetical
one-size-fits-all ideal scheduling algorithm."

This example registers a third policy next to ROUND_ROBIN and AUTO_FIT: a
*locality-first* scheduler that always places a queue on whichever device
already holds the most bytes of its working set (zero profiling, pure data
gravity), and compares all three on a workload with pre-placed data.

Run:  python examples/custom_scheduler.py
"""

from repro import ContextScheduler, MultiCL, SchedFlag
from repro.ocl.context import Context
from repro.ocl.memory import Buffer
from repro.ocl.platform import Platform
from repro.ocl.scheduling import SchedulerBase, register_scheduler

PROGRAM = """
// @multicl flops_per_item=40 bytes_per_item=32 irregularity=0.3 gpu_eff=0.4 writes=1
__kernel void update(__global float* state, __global float* out, int n) { }
"""

N = 1 << 21
FLAGS = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH


class LocalityFirstScheduler(SchedulerBase):
    """Place each queue where most of its data already lives.

    No device profiler, no kernel profiler: the policy reads residency
    bookkeeping only.  Fast and often good — and occasionally wrong, which
    is exactly the tradeoff space the extension API leaves open.
    """

    def on_sync(self, pool, trigger_queue=None):
        for q in sorted(pool, key=lambda q: q.id):
            weight = {d: 0 for d in self.context.device_names}
            for cmd in q.pending:
                for v in cmd.args_snapshot.values():
                    if isinstance(v, Buffer):
                        for dev in v.valid_on:
                            if dev in weight:
                                weight[dev] += v.nbytes
            best = max(weight, key=lambda d: (weight[d], -len(d)))
            q.rebind(best)
        self.context.issue_pool(pool)


register_scheduler("locality-first", LocalityFirstScheduler)


def run(policy) -> tuple:
    platform = Platform()
    from repro.ocl.enums import ContextProperty

    ctx: Context = platform.create_context(
        properties={ContextProperty.CL_CONTEXT_SCHEDULER: policy}
    )
    program = ctx.create_program(PROGRAM).build()
    queues = []
    # Pre-place each queue's state on a specific device (e.g. left over
    # from a previous phase of the application).
    homes = ["gpu1", "cpu", "gpu0", "gpu1"]
    for i, home in enumerate(homes):
        k = program.create_kernel("update")
        state = ctx.create_buffer(8 * N, name=f"state{i}")
        out = ctx.create_buffer(4 * N, name=f"out{i}")
        state.mark_exclusive(home)
        k.set_arg(0, state)
        k.set_arg(1, out)
        k.set_arg(2, N)
        q = ctx.create_queue(sched_flags=FLAGS, name=f"q{i}")
        for _ in range(3):
            q.enqueue_nd_range_kernel(k, (N,), (128,))
        queues.append(q)
    t0 = platform.engine.now
    for q in queues:
        q.finish()
    return {q.name: q.device for q in queues}, platform.engine.now - t0


def main() -> None:
    print("queues with data pre-placed on gpu1, cpu, gpu0, gpu1:\n")
    for label, policy in (
        ("ROUND_ROBIN", ContextScheduler.ROUND_ROBIN),
        ("AUTO_FIT", ContextScheduler.AUTO_FIT),
        ("locality-first (custom)", "locality-first"),
    ):
        mapping, secs = run(policy)
        print(f"{label:24s} {secs * 1e3:8.2f} ms   {mapping}")
    print(
        "\nthe custom policy follows the data with zero profiling cost; "
        "AUTO_FIT weighs data movement against compute and may rebalance; "
        "round-robin ignores both."
    )


if __name__ == "__main__":
    main()
