#!/usr/bin/env python
"""FDM-Seismology end-to-end: real physics + automatic scheduling.

Runs the two-queue seismic wave simulation in *functional* mode, so the
kernels carry the real staggered-grid solver as payloads while the
simulated devices charge modelled time.  Compares column-major vs
row-major layouts under AUTO_FIT and shows the per-iteration amortisation
of the profiling cost (the paper's Figs. 9 and 10).

Run:  python examples/seismology_simulation.py
"""

from repro.workloads.seismology import run_seismology
from repro.workloads.seismology.fdm import FDMParameters, FDMSimulation


def main() -> None:
    steps = 30

    print("=== real physics sanity (monolithic solver) ===")
    sim = FDMSimulation(FDMParameters(nx=96, nz=96))
    sim.run(steps)
    print(f"after {steps} steps: energy={sim.energy():.4e}, "
          f"peak |vx|={abs(sim.vx).max():.3e}")

    print("\n=== scheduling: column-major vs row-major ===")
    for layout in ("column", "row"):
        run = run_seismology(layout, mode="auto", steps=steps, functional=True)
        it = run.iteration_seconds
        steady = sum(it[1:]) / len(it[1:])
        print(f"{layout:6s}-major: mapping={run.bindings}  "
              f"iter0={it[0] * 1e3:7.1f} ms  steady={steady * 1e3:7.1f} ms  "
              f"stable={run.checks.get('stable')}")
    print("\ncolumn-major data favours the CPU pair; row-major favours the "
          "two GPUs — AUTO_FIT finds both without code changes.")


if __name__ == "__main__":
    main()
