#!/usr/bin/env python
"""Profiling-free scheduling: the static-feature predictor vs the profiler.

Runs one NPB benchmark twice under AUTO_FIT — once with the paper's
dynamic profiler (every kernel measured on every device before the first
mapping) and once with ``repro.predict`` (per-device costs regressed from
static source features; zero profiling launches) — and prints the
makespan delta, the mappings, and the profiler counters proving no
measurement ever ran.

Run:  python examples/predicted_scheduling.py [BT|CG|EP|FT|MG|SP] [class]
"""

import sys

from repro.core.flags import SchedulerConfig
from repro.workloads.base import ProblemClass
from repro.workloads.npb import get_benchmark
from repro.workloads.npb.common import run_npb


def main() -> None:
    name = sys.argv[1].upper() if len(sys.argv) > 1 else "CG"
    pc = sys.argv[2].upper() if len(sys.argv) > 2 else "S"
    cls = get_benchmark(name)

    print(f"{name}.{pc}, 4 command queues, node: 1 CPU + 2 GPUs")

    profiled = run_npb(cls(ProblemClass(pc), 4), mode="auto")
    predicted = run_npb(
        cls(ProblemClass(pc), 4),
        mode="auto",
        config=SchedulerConfig(predict=True),
    )

    pstats = profiled.profiler_stats
    qstats = predicted.profiler_stats
    print(f"{'variant':20s} {'simulated s':>12s} {'measured':>9s} "
          f"{'predicted':>9s}")
    print(f"{'dynamic profiler':20s} {profiled.seconds:12.5f} "
          f"{pstats['kernels_measured']:9d} {pstats['kernels_predicted']:9d}")
    print(f"{'static predictor':20s} {predicted.seconds:12.5f} "
          f"{qstats['kernels_measured']:9d} {qstats['kernels_predicted']:9d}")
    print()
    delta = 100.0 * (predicted.seconds - profiled.seconds) / profiled.seconds
    print(f"makespan delta: {delta:+.1f}% "
          f"(negative = predicted run is faster: no profiling epoch)")
    print(f"profiled mapping:  {profiled.bindings}")
    print(f"predicted mapping: {predicted.bindings}")
    print(f"profiling measurements eliminated: "
          f"{qstats['kernels_measured'] == 0}")


if __name__ == "__main__":
    main()
