#!/usr/bin/env python
"""Device fission + timeline export.

Splits the CPU device into two sub-devices via the OpenCL 1.2
``clCreateSubDevices`` (the paper's Section IV.D notes MultiCL schedules
sub-devices uniformly), runs four auto-scheduled queues across the
resulting {cpu.0, cpu.1, gpu0, gpu1} pool, prints a per-resource
utilisation report, and exports the whole simulated timeline as a Chrome
trace (open ``chrome://tracing`` or https://ui.perfetto.dev and load
``multicl_trace.json``).

Run:  python examples/trace_and_fission.py
"""

from repro.ocl.api import clCreateSubDevices, clGetPlatformIDs
from repro.ocl.enums import ContextProperty, ContextScheduler, SchedFlag
from repro.sim.export import utilization_report, write_chrome_trace

PROGRAM = """
// @multicl flops_per_item=40 bytes_per_item=72 divergence=0.6 irregularity=0.8 gpu_eff=0.12 writes=1
__kernel void irregular(__global float* a, __global float* b, int n) {
  b[get_global_id(0)] = a[(get_global_id(0) * 16807) % n];
}
// @multicl flops_per_item=350 bytes_per_item=8 writes=1
__kernel void dense(__global float* a, __global float* b, int n) {
  float v = a[get_global_id(0)];
  for (int i = 0; i < 48; ++i) v = v * 1.0002f + 0.25f;
  b[get_global_id(0)] = v;
}
"""

N = 1 << 19


def main() -> None:
    platform = clGetPlatformIDs()[0]
    cpu = platform.device("cpu")
    clCreateSubDevices(platform, cpu, 2)
    print("device pool after fission:", platform.device_names)

    ctx = platform.create_context(
        properties={ContextProperty.CL_CONTEXT_SCHEDULER: ContextScheduler.AUTO_FIT}
    )
    program = ctx.create_program(PROGRAM).build()

    flags = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
    queues = []
    # Two CPU-leaning queues and two GPU-leaning queues.
    for i, kname in enumerate(("irregular", "irregular", "dense", "dense")):
        k = program.create_kernel(kname)
        a = ctx.create_buffer(4 * N, name=f"a{i}")
        b = ctx.create_buffer(4 * N, name=f"b{i}")
        k.set_arg(0, a)
        k.set_arg(1, b)
        k.set_arg(2, N)
        q = ctx.create_queue(sched_flags=flags, name=f"q{i}-{kname}")
        for _ in range(3):
            q.enqueue_nd_range_kernel(k, (N,), (128,))
        queues.append(q)
    for q in queues:
        q.finish()

    print("\nqueue -> device mapping:")
    for q in queues:
        print(f"  {q.name:14s} -> {q.device}")

    print("\nutilisation (whole run):")
    report = utilization_report(platform.engine.trace)
    for resource in sorted(report):
        entry = report[resource]
        cats = ", ".join(
            f"{c}={s * 1e3:.1f}ms" for c, s in sorted(entry["by_category"].items())
        )
        print(f"  {resource:16s} {100 * entry['utilization']:5.1f}%  ({cats})")

    path = write_chrome_trace(platform.engine.trace, "multicl_trace.json")
    print(f"\ntimeline written to {path} — load it in chrome://tracing")


if __name__ == "__main__":
    main()
