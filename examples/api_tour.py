#!/usr/bin/env python
"""Tour of the proposed OpenCL extensions, C-style (the paper's Table I).

Walks through every extension in the flat ``clXxx`` API, written the way
the paper's "about four source lines" of changes look in real host code:

1. ``clCreateContext`` with ``CL_CONTEXT_SCHEDULER``          (new property)
2. ``clCreateCommandQueue`` with ``SCHED_*`` flags             (new params)
3. ``clSetCommandQueueSchedProperty`` start/stop regions       (new API)
4. ``clSetKernelWorkGroupInfo`` per-device launch configs      (new API)

Run:  python examples/api_tour.py
"""

import numpy as np

from repro.ocl.api import (
    clBuildProgram,
    clCreateBuffer,
    clCreateContext,
    clCreateCommandQueue,
    clCreateKernel,
    clCreateProgramWithSource,
    clEnqueueNDRangeKernel,
    clEnqueueReadBuffer,
    clEnqueueWriteBuffer,
    clFinish,
    clGetDeviceIDs,
    clGetPlatformIDs,
    clSetCommandQueueSchedProperty,
    clSetKernelArg,
    clSetKernelWorkGroupInfo,
)
from repro.ocl.enums import ContextProperty, ContextScheduler, DeviceType, SchedFlag

SOURCE = """
// @multicl flops_per_item=150 bytes_per_item=24 divergence=0.1 irregularity=0.1 writes=1
__kernel void scale_add(__global float* in, __global float* out, float alpha, int n) {
  int i = get_global_id(0);
  if (i < n) out[i] = alpha * in[i] + 1.0f;
}
"""

N = 1 << 18


def main() -> None:
    platforms = clGetPlatformIDs()                       # triggers device profiling
    platform = platforms[0]
    devices = clGetDeviceIDs(platform, DeviceType.ALL)
    print("devices:", [d.name for d in devices])

    # --- change #1: the context property selects the global policy -------
    context = clCreateContext(
        platform,
        devices,
        properties={ContextProperty.CL_CONTEXT_SCHEDULER: ContextScheduler.AUTO_FIT},
    )

    # --- change #2: the queue opts into scheduling with local flags ------
    queue = clCreateCommandQueue(
        context,
        devices[0],  # an initial device is still named, SnuCL-style
        properties=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_EXPLICIT_REGION,
    )

    program = clBuildProgram(clCreateProgramWithSource(context, SOURCE))
    kernel = clCreateKernel(program, "scale_add")

    # --- change #4 (optional): per-device launch configurations ----------
    for dev in devices:
        local = 16 if dev.spec.kind.value == "cpu" else 256
        clSetKernelWorkGroupInfo(kernel, dev, (N,), (local,))

    data = np.arange(N, dtype=np.float32)
    buf_in = clCreateBuffer(context, size=4 * N, host_ptr=data.copy())
    buf_out = clCreateBuffer(context, size=4 * N,
                             host_ptr=np.zeros(N, np.float32))
    clSetKernelArg(kernel, 0, buf_in)
    clSetKernelArg(kernel, 1, buf_out)
    clSetKernelArg(kernel, 2, 2.0)
    clSetKernelArg(kernel, 3, N)
    kernel.set_host_function(lambda a: a["out"].__setitem__(slice(None), 2.0 * a["in"] + 1.0))

    # --- change #3: an explicit scheduling region around the hot loop ----
    clSetCommandQueueSchedProperty(queue, SchedFlag.SCHED_AUTO_DYNAMIC)   # start
    clEnqueueWriteBuffer(queue, buf_in, data)
    clEnqueueNDRangeKernel(queue, kernel, (N,), (64,))  # launch config ignored:
    clFinish(queue)                                     # per-device config wins
    clSetCommandQueueSchedProperty(queue, SchedFlag.SCHED_OFF)            # stop

    out = np.empty(N, np.float32)
    clEnqueueReadBuffer(queue, buf_out, out)
    clFinish(queue)

    print(f"queue scheduled to: {queue.device}")
    print(f"numerics correct: {np.allclose(out, 2.0 * data + 1.0)}")
    print(f"binding history: {queue.binding_history}")


if __name__ == "__main__":
    main()
