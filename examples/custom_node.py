#!/usr/bin/env python
"""Scheduling on a custom node: build your own hardware description.

The paper's testbed is one CPU + two identical GPUs, but nothing in
MultiCL assumes that.  This example models a *heterogeneous GPU* node —
one big GPU, one small GPU, and a slow host link to the small one — and
shows the AUTO_FIT mapper balancing four unequal queues across them,
including the effect of link distance on the decision.

Run:  python examples/custom_node.py
"""

from repro import ContextScheduler, MultiCL, SchedFlag
from repro.hardware.specs import DeviceKind, DeviceSpec, LinkSpec, NodeSpec

GB = 10 ** 9

BIG_GPU = DeviceSpec(
    name="biggpu",
    kind=DeviceKind.GPU,
    compute_units=80,
    clock_ghz=1.4,
    peak_gflops=14000.0,
    mem_bandwidth_gbs=900.0,
    mem_size_bytes=32 * GB,
    launch_overhead_s=12e-6,
    base_compute_efficiency=0.6,
    base_memory_efficiency=0.7,
    divergence_penalty=0.8,
    irregularity_penalty=0.8,
    saturation_work_items=80 * 2048,
)

SMALL_GPU = DeviceSpec(
    name="smallgpu",
    kind=DeviceKind.GPU,
    compute_units=20,
    clock_ghz=1.2,
    peak_gflops=3000.0,
    mem_bandwidth_gbs=300.0,
    mem_size_bytes=8 * GB,
    launch_overhead_s=12e-6,
    base_compute_efficiency=0.6,
    base_memory_efficiency=0.7,
    divergence_penalty=0.8,
    irregularity_penalty=0.8,
    saturation_work_items=20 * 2048,
)

NODE = NodeSpec(
    name="asymmetric-duo",
    devices=(BIG_GPU, SMALL_GPU),
    host_links={
        "biggpu": LinkSpec("pcie4-big", latency_s=8e-6, bandwidth_gbs=24.0),
        # The small GPU hangs off a chipset switch: slower, farther.
        "smallgpu": LinkSpec("pcie3-small", latency_s=25e-6, bandwidth_gbs=10.0),
    },
)

PROGRAM = """
// @multicl flops_per_item=400 bytes_per_item=16 divergence=0.0 irregularity=0.0 writes=1
__kernel void stencil(__global float* a, __global float* b, int n) {
  int i = get_global_id(0);
  b[i] = 0.25f * (a[i] + a[(i+1)%n] + a[(i+n-1)%n] + a[i]*a[i]);
}
"""


def main() -> None:
    mcl = MultiCL(node_spec=NODE, policy=ContextScheduler.AUTO_FIT)
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()

    flags = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
    queues = []
    # Four queues with *unequal* work: 8M, 4M, 2M, 1M items.
    for i, size in enumerate((8 << 20, 4 << 20, 2 << 20, 1 << 20)):
        q = mcl.queue(flags=flags, name=f"q{i}")
        a = ctx.create_buffer(4 * size, name=f"a{i}")
        b = ctx.create_buffer(4 * size, name=f"b{i}")
        k = program.create_kernel("stencil")
        k.set_arg(0, a)
        k.set_arg(1, b)
        k.set_arg(2, size)
        q.enqueue_write_buffer(a)
        for _ in range(4):
            q.enqueue_nd_range_kernel(k, (size,), (256,))
        queues.append(q)

    for q in queues:
        q.finish()

    print(f"node: {NODE.name} -> devices {list(mcl.device_names)}")
    print("measured device profile (scheduler's view):")
    prof = mcl.platform.device_profile
    for dev in prof.devices:
        print(f"  {dev:9s} {prof.gflops[dev]:8.0f} GFLOP/s, "
              f"H2D(64MB) = {prof.h2d_seconds(dev, 64 << 20) * 1e3:.2f} ms")
    print("queue -> device mapping chosen by AUTO_FIT:")
    for q in queues:
        print(f"  {q.name} -> {q.device}")
    print("(the big GPU absorbs the heavy queues; the small one takes the "
          "tail — makespan balanced, link distance included in the costs)")


if __name__ == "__main__":
    main()
