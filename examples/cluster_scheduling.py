#!/usr/bin/env python
"""Scheduling across a cluster: the SnuCL cluster-mode extension.

The paper's SnuCL base can expose *remote* accelerators in one OpenCL
platform (Section II.B), and notes MultiCL's optimisations "can be applied
directly to the cluster mode as well".  This example exercises exactly
that: the paper's node (CPU + 2 GPUs) borrows two more GPUs from a
neighbour over InfiniBand, and the *unmodified* AUTO_FIT scheduler —
driven purely by what the device profiler measured — decides per workload
whether crossing the network pays off.

Run:  python examples/cluster_scheduling.py
"""

from repro.cluster import two_node_cluster
from repro.core.runtime import MultiCL
from repro.ocl.enums import ContextScheduler, SchedFlag

COMPUTE = """
// @multicl flops_per_item=2500 bytes_per_item=4 writes=1
__kernel void crunch(__global float* a, __global float* b, int n) {
  float v = a[get_global_id(0)];
  for (int i = 0; i < 400; ++i) v = v * 1.000001f + 1e-7f;
  b[get_global_id(0)] = v;
}
"""
STREAM = """
// @multicl flops_per_item=2 bytes_per_item=24 writes=1
__kernel void stream3(__global float* a, __global float* b, int n) {
  b[get_global_id(0)] = 0.5f * a[get_global_id(0)];
}
"""

N = 1 << 21
FLAGS = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH


def run_pool(mcl: MultiCL, source: str, kernel_name: str, n_queues: int,
             nbytes: int = 4 * N):
    ctx = mcl.context
    program = ctx.create_program(source).build()
    queues = []
    for i in range(n_queues):
        k = program.create_kernel(kernel_name)
        a = ctx.create_buffer(nbytes)
        b = ctx.create_buffer(nbytes)
        a.mark_valid("host")  # input data lives on the root host
        k.set_arg(0, a)
        k.set_arg(1, b)
        k.set_arg(2, N)
        q = mcl.queue(flags=FLAGS, name=f"q{i}")
        for _ in range(4):
            q.enqueue_nd_range_kernel(k, (N,), (128,))
        queues.append(q)
    t0 = mcl.now
    for q in queues:
        q.finish()
    return {q.name: q.device for q in queues}, mcl.now - t0


def main() -> None:
    cluster = two_node_cluster()
    mcl = MultiCL(node_spec=cluster, policy=ContextScheduler.AUTO_FIT)
    print("cluster devices:", list(mcl.device_names))
    prof = mcl.platform.device_profile
    print("\nmeasured H2D time for 64 MB (what the scheduler sees):")
    for dev in prof.devices:
        print(f"  {dev:12s} {prof.h2d_seconds(dev, 64 << 20) * 1e3:7.2f} ms")

    print("\n--- compute-heavy pool (6 queues): remote GPUs are worth it ---")
    mapping, secs = run_pool(mcl, COMPUTE, "crunch", 6)
    for q, d in mapping.items():
        where = "REMOTE" if d.startswith("node1.") else "local"
        print(f"  {q} -> {d:12s} ({where})")
    print(f"  pool completed in {secs * 1e3:.1f} ms simulated")

    # Three queues with heavy host-resident data: one per local device is
    # optimal, and shipping 64 MB over InfiniBand would dominate the tiny
    # kernels — the mapper must keep everything on the root node.
    print("\n--- bandwidth-bound pool (3 queues, 64 MB each): stay local ---")
    mcl2 = MultiCL(node_spec=two_node_cluster(), policy=ContextScheduler.AUTO_FIT)
    mapping, secs = run_pool(mcl2, STREAM, "stream3", 3, nbytes=64 << 20)
    for q, d in mapping.items():
        where = "REMOTE" if d.startswith("node1.") else "local"
        print(f"  {q} -> {d:12s} ({where})")
    print(f"  pool completed in {secs * 1e3:.1f} ms simulated")
    remote_used = any(d.startswith("node1.") for d in mapping.values())
    print(
        "\nno queue crossed the network for streaming work" if not remote_used
        else "\n(remote devices used — data was cheap to move)"
    )


if __name__ == "__main__":
    main()
