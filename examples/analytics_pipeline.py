#!/usr/bin/env python
"""A data-analytics pipeline on MultiCL (the intro's third motivation).

The paper motivates task parallelism with "computational fluid dynamics,
cosmology, and data analytics".  This example builds a three-stage
analytics pipeline over two independent data shards:

  parse  (branchy tokenisation  — CPU-friendly)
      └─> aggregate (scattered histogram — CPU-friendly)
              └─> score (dense model evaluation — GPU-friendly)

Each shard gets one command queue per stage, chained with events across
stages — six queues total, with *different* best devices per stage.  A
static assignment has to choose per stage by hand; AUTO_FIT profiles each
queue's epoch and places parse/aggregate on the CPU and score on the GPUs,
with real numpy payloads verifying the pipeline end to end.

Run:  python examples/analytics_pipeline.py
"""

import numpy as np

from repro import ContextScheduler, MultiCL, SchedFlag

PROGRAM = """
// @multicl flops_per_item=60 bytes_per_item=48 divergence=0.8 irregularity=0.6 gpu_eff=0.08 writes=1
__kernel void parse(__global float* raw, __global float* tokens, int n) {
  /* branchy field tokenisation */
}
// @multicl flops_per_item=12 bytes_per_item=56 divergence=0.4 irregularity=0.9 gpu_eff=0.1 writes=1
__kernel void aggregate(__global float* tokens, __global float* hist, int n) {
  /* scattered histogram accumulation */
}
// @multicl flops_per_item=400 bytes_per_item=8 writes=1
__kernel void score(__global float* hist, __global float* scores, int n) {
  /* dense model evaluation */
}
"""

N = 1 << 18
FLAGS = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
BINS = 64


def main() -> None:
    mcl = MultiCL(policy=ContextScheduler.AUTO_FIT)
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()
    rng = np.random.default_rng(7)

    final_events = []
    shard_outputs = []
    stage_queues = []
    for shard in range(2):
        raw_arr = rng.integers(0, BINS, N).astype(np.float64)
        raw = ctx.create_buffer(raw_arr.nbytes, host_array=raw_arr.copy(),
                                name=f"raw{shard}")
        tokens = ctx.create_buffer(raw_arr.nbytes,
                                   host_array=np.zeros(N), name=f"tok{shard}")
        hist = ctx.create_buffer(8 * BINS, host_array=np.zeros(BINS),
                                 name=f"hist{shard}")
        scores = ctx.create_buffer(8 * BINS, host_array=np.zeros(BINS),
                                   name=f"score{shard}")

        parse = program.create_kernel("parse")
        parse.set_arg(0, raw)
        parse.set_arg(1, tokens)
        parse.set_arg(2, N)
        parse.set_host_function(
            lambda a: a["tokens"].__setitem__(slice(None), a["raw"] % BINS)
        )
        agg = program.create_kernel("aggregate")
        agg.set_arg(0, tokens)
        agg.set_arg(1, hist)
        agg.set_arg(2, N)
        agg.set_host_function(
            lambda a: a["hist"].__setitem__(
                slice(None),
                np.bincount(a["tokens"].astype(int), minlength=BINS)[:BINS],
            )
        )
        score = program.create_kernel("score")
        score.set_arg(0, hist)
        score.set_arg(1, scores)
        score.set_arg(2, BINS)
        score.set_host_function(
            lambda a: a["scores"].__setitem__(
                slice(None), np.log1p(a["hist"]) * 0.5
            )
        )

        q_parse = mcl.queue(flags=FLAGS, name=f"s{shard}-parse")
        q_agg = mcl.queue(flags=FLAGS, name=f"s{shard}-aggregate")
        q_score = mcl.queue(flags=FLAGS, name=f"s{shard}-score")
        stage_queues += [q_parse, q_agg, q_score]

        q_parse.enqueue_write_buffer(raw, raw_arr)
        e1 = q_parse.enqueue_nd_range_kernel(parse, (N,), (128,))
        e2 = q_agg.enqueue_nd_range_kernel(agg, (N,), (128,), wait_events=[e1])
        e3 = q_score.enqueue_nd_range_kernel(
            score, (BINS,), (64,), wait_events=[e2]
        )
        out = np.zeros(BINS)
        ev = q_score.enqueue_read_buffer(scores, out)
        final_events.append(ev)
        shard_outputs.append((raw_arr, out))

    for q in stage_queues:
        q.finish()

    print("stage queue placement chosen by AUTO_FIT:")
    for q in stage_queues:
        print(f"  {q.name:14s} -> {q.device}")

    ok = True
    for raw_arr, out in shard_outputs:
        expect = np.log1p(np.bincount(raw_arr.astype(int), minlength=BINS)[:BINS]) * 0.5
        ok &= np.allclose(out, expect)
    print(f"\npipeline numerics correct: {ok}")
    print(f"total simulated time: {mcl.now * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
