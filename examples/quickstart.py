#!/usr/bin/env python
"""Quickstart: automatic command-queue scheduling in ~40 lines.

Two kernels with opposite device affinities — a regular compute kernel
(GPU-friendly) and a divergent gather kernel (CPU-friendly) — are enqueued
on two auto-scheduled command queues.  MultiCL profiles them at the first
synchronisation point and maps each queue to its best device; the host
code never names a device.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ContextScheduler, MultiCL, SchedFlag

PROGRAM = """
// @multicl flops_per_item=220 bytes_per_item=8 divergence=0.0 irregularity=0.0 writes=1
__kernel void saxpy_heavy(__global float* x, __global float* y, int n) {
  int i = get_global_id(0);
  float v = x[i];
  for (int k = 0; k < 32; ++k) v = v * 1.0001f + 0.5f;
  y[i] = v;
}

// @multicl flops_per_item=20 bytes_per_item=72 divergence=0.6 irregularity=0.8 gpu_eff=0.12 writes=1
__kernel void sparse_gather(__global float* x, __global float* y, int n) {
  int i = get_global_id(0);
  if (i % 7 == 0) y[i] = x[(i * 7919) % n];
  else            y[i] = x[i];
}
"""

N = 1 << 20


def main() -> None:
    # 1. One line picks the global policy (the proposed context property).
    mcl = MultiCL(policy=ContextScheduler.AUTO_FIT)
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()

    x = np.linspace(0.0, 1.0, N, dtype=np.float32)
    buf_x = ctx.create_buffer(4 * N, host_array=x.copy(), name="x")
    buf_y = ctx.create_buffer(4 * N, host_array=np.zeros(N, np.float32), name="y")
    buf_z = ctx.create_buffer(4 * N, host_array=np.zeros(N, np.float32), name="z")

    heavy = program.create_kernel("saxpy_heavy")
    heavy.set_arg(0, buf_x)
    heavy.set_arg(1, buf_y)
    heavy.set_arg(2, N)

    gather = program.create_kernel("sparse_gather")
    gather.set_arg(0, buf_x)
    gather.set_arg(1, buf_z)
    gather.set_arg(2, N)

    # 2. One line per queue opts into scheduling (the proposed SCHED_* flags).
    flags = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
    q_compute = mcl.queue(flags=flags, name="compute-queue")
    q_gather = mcl.queue(flags=flags, name="gather-queue")

    # Both kernels consume x, so the gather waits on the upload event —
    # cross-queue ordering the sanitizer (MULTICL_SANITIZE=1) would
    # otherwise flag as a read/write race.
    ev_x = q_compute.enqueue_write_buffer(buf_x, x)
    q_compute.enqueue_nd_range_kernel(heavy, (N,), (128,))
    q_gather.enqueue_nd_range_kernel(gather, (N,), (128,), wait_events=[ev_x])

    # Synchronisation triggers the scheduler: profile -> map -> issue.
    q_compute.finish()
    q_gather.finish()

    print(f"simulated node: {mcl.platform.spec.name}")
    print(f"compute-queue  -> {q_compute.device}  (regular FLOP-heavy kernel)")
    print(f"gather-queue   -> {q_gather.device}  (divergent, uncoalesced kernel)")
    print(f"virtual time elapsed: {mcl.now * 1e3:.2f} ms")
    stats = mcl.stats_between(0.0, mcl.now)
    print("time by category:", {k: f"{v * 1e3:.2f} ms" for k, v in sorted(stats.by_category.items())})


if __name__ == "__main__":
    main()
