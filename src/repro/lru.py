"""Bounded LRU mapping shared by the runtime's small hot-path memos.

Two memo caches in the runtime are bounded but were bounded *badly*:

* :data:`repro.ocl.source._parse_memo` cleared the **entire** memo once it
  crossed its bound, evicting hot program sources mid-run (a benchmark
  loop alternating 65+ distinct sources would re-parse everything on every
  iteration);
* :data:`repro.core.profile_store._fp_memo` evicted in FIFO order, which
  throws away the *hottest* entry whenever it happens to be the oldest.

:class:`BoundedLRU` is the one implementation both now share: a plain
insertion-ordered dict where a hit moves the key to the end and inserts
evict from the front, so the entry dropped is always the least recently
*used* one.  It deliberately imports nothing from the rest of the package
(``repro.ocl`` and ``repro.core`` both depend on it, in that order).
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, Optional, Tuple, TypeVar

__all__ = ["BoundedLRU"]

K = TypeVar("K")
V = TypeVar("V")


class BoundedLRU(Generic[K, V]):
    """A dict bounded to ``maxsize`` entries with least-recently-used
    eviction.

    ``get`` refreshes recency (move-to-end); ``put`` inserts (or refreshes)
    and evicts the oldest entries while over the bound.  Not thread-safe —
    the memos it backs are per-process, accessed from the single simulation
    thread.
    """

    __slots__ = ("maxsize", "_data")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: Dict[K, V] = {}

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        data = self._data
        try:
            value = data.pop(key)
        except KeyError:
            return default
        data[key] = value  # re-insert at the end: most recently used
        return value

    def put(self, key: K, value: V) -> None:
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.maxsize:
            # Evict from the front (least recently used).  A single pop
            # suffices in steady state; the loop also repairs a cache whose
            # maxsize was lowered after construction.
            while len(data) >= self.maxsize:
                del data[next(iter(data))]
        data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        """Keys, oldest (least recently used) first."""
        return iter(self._data)

    def items(self) -> Iterator[Tuple[K, V]]:
        return iter(self._data.items())

    def clear(self) -> None:
        self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundedLRU(maxsize={self.maxsize}, len={len(self._data)})"
