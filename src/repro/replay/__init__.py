"""Open-loop traffic replay at production scale.

The paper evaluates the scheduler closed-loop (fixed work, measure
makespan).  This package adds the complementary *open-loop* view used to
evaluate production schedulers: seedable arrival processes (Poisson,
bursty on/off, diurnal) over a mix of kernel families drive the simulated
fleet whether or not it keeps up, and the figures of merit are per-request
arrival-to-completion latency percentiles (p50/p99/p999), sustained
throughput, and per-tenant fairness.

Entry points:

* :func:`~repro.replay.shard.run_serial` /
  :func:`~repro.replay.shard.run_sharded` — engine-mode replay of
  independent tenants, optionally fanned across processes with
  bit-identical results;
* :func:`~repro.replay.runner.run_service_replay` — contended replay
  through the multi-tenant fair-share scheduling service;
* ``python -m repro.replay`` (or ``python -m repro.bench replay``) — CLI.
"""

from repro.replay.arrivals import (
    DEFAULT_FAMILIES,
    ArrivalProcess,
    DiurnalProcess,
    KernelFamily,
    OnOffProcess,
    PoissonProcess,
    derive_seed,
    make_process,
)
from repro.replay.metrics import (
    LatencyHistogram,
    ReplayReport,
    TenantResult,
    jain_index,
    merge_results,
)
from repro.replay.runner import (
    DiscardSink,
    ReplayConfig,
    run_service_replay,
    run_tenant,
)
from repro.replay.shard import (
    ensure_profile_cache,
    run_serial,
    run_sharded,
    verify_against_serial,
)

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "OnOffProcess",
    "DiurnalProcess",
    "KernelFamily",
    "DEFAULT_FAMILIES",
    "make_process",
    "derive_seed",
    "LatencyHistogram",
    "TenantResult",
    "ReplayReport",
    "jain_index",
    "merge_results",
    "ReplayConfig",
    "DiscardSink",
    "run_tenant",
    "run_service_replay",
    "run_serial",
    "run_sharded",
    "verify_against_serial",
    "ensure_profile_cache",
]
