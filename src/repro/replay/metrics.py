"""Latency accounting for open-loop replay: mergeable histograms, fairness.

Per-request latencies at production scale cannot be held resident (a
million floats per tenant, more across a fleet), and percentiles must be
computable *across shards* — so instead of sorting raw samples we fold
each latency into a :class:`LatencyHistogram` with geometrically spaced
buckets.  Like a t-digest, histograms from different shards merge exactly
(bucket-wise count addition, identical edges by construction), and any
quantile is answerable after the fact with bounded relative error
(``growth - 1``, 5% by default — tighter than the noise on any simulated
percentile we report).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "LatencyHistogram",
    "TenantResult",
    "ReplayReport",
    "jain_index",
    "merge_results",
]


class LatencyHistogram:
    """Fixed-geometry log-bucketed histogram of non-negative samples.

    Bucket 0 holds samples at or below ``floor``; bucket ``i >= 1`` holds
    samples in ``(floor·growth^(i-1), floor·growth^i]``.  All histograms
    with the same ``(floor, growth)`` share bucket edges, so merging is
    plain count addition — the property sharded replay relies on.  Exact
    ``count``/``total``/``min``/``max`` ride along for means and clamping.
    """

    __slots__ = ("floor", "growth", "_inv_log_growth", "counts",
                 "count", "total", "min", "max")

    def __init__(self, floor: float = 1e-7, growth: float = 1.05) -> None:
        if floor <= 0.0 or growth <= 1.0:
            raise ValueError("floor must be > 0 and growth > 1")
        self.floor = floor
        self.growth = growth
        self._inv_log_growth = 1.0 / math.log(growth)
        #: bucket index -> sample count (sparse)
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def add(self, x: float) -> None:
        if x <= self.floor:
            idx = 0
        else:
            idx = 1 + int(math.log(x / self.floor) * self._inv_log_growth)
        counts = self.counts
        counts[idx] = counts.get(idx, 0) + 1
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyHistogram") -> None:
        if (other.floor, other.growth) != (self.floor, self.growth):
            raise ValueError("cannot merge histograms with different geometry")
        counts = self.counts
        for idx, n in other.counts.items():
            counts[idx] = counts.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def quantile(self, q: float) -> float:
        """Upper edge of the bucket holding the ``q``-quantile sample,
        clamped to the exact observed [min, max]."""
        return self.quantiles([q])[0]

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Several quantiles in one cumulative walk (qs need not be sorted)."""
        if self.count == 0:
            return [0.0 for _ in qs]
        order = sorted(range(len(qs)), key=lambda i: qs[i])
        out = [0.0] * len(qs)
        targets = [max(1, math.ceil(qs[i] * self.count)) for i in order]
        cumulative = 0
        pos = 0
        for idx in sorted(self.counts):
            cumulative += self.counts[idx]
            while pos < len(order) and targets[pos] <= cumulative:
                edge = self.floor * self.growth ** idx if idx else self.floor
                out[order[pos]] = min(max(edge, self.min), self.max)
                pos += 1
            if pos == len(order):
                break
        for i in range(pos, len(order)):  # q > 1 safety: everything maxes out
            out[order[i]] = self.max
        return out

    # -- pickling across shard processes -----------------------------------
    def to_dict(self) -> Dict:
        return {
            "floor": self.floor,
            "growth": self.growth,
            "counts": dict(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max,
        }

    @staticmethod
    def from_dict(d: Dict) -> "LatencyHistogram":
        hist = LatencyHistogram(d["floor"], d["growth"])
        hist.counts = {int(k): int(v) for k, v in d["counts"].items()}
        hist.count = int(d["count"])
        hist.total = float(d["total"])
        hist.min = math.inf if d["min"] is None else float(d["min"])
        hist.max = float(d["max"])
        return hist


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = maximally skewed."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares <= 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass
class TenantResult:
    """One tenant's replay outcome (picklable across shard processes)."""

    tenant: str
    index: int
    weight: float
    requests: int
    completed: int
    #: virtual time of the last completion (the tenant's replayed horizon)
    end_time: float
    latency_sum: float
    histogram: Dict
    #: kernel busy seconds per device resource (from the trace aggregates)
    device_seconds: Dict[str, float]
    #: intervals handed to the streaming sink (0 = resident trace)
    spilled: int
    #: resident intervals left after the run (bounded by the spill threshold)
    resident: int
    #: deterministic fold of the whole replay (serial ≡ sharded, bit-exact)
    checksum: float
    #: cold-start profiling epochs run on the devices (engine mode with
    #: ``cold_start``; 0 otherwise)
    profiling_epochs: int = 0
    #: cold-start epochs served by the static-feature predictor instead
    predicted_epochs: int = 0

    @property
    def hist(self) -> LatencyHistogram:
        return LatencyHistogram.from_dict(self.histogram)

    @property
    def throughput(self) -> float:
        """Completed commands per simulated second."""
        return self.completed / self.end_time if self.end_time > 0 else 0.0


@dataclass
class ReplayReport:
    """Merged view over every tenant of a replay run."""

    tenants: List[TenantResult]
    merged: LatencyHistogram
    total_commands: int
    #: fleet horizon: the slowest tenant's virtual end time
    virtual_seconds: float
    #: Jain index over per-tenant weight-normalised throughput
    fairness: float
    checksum: float
    wall_seconds: Optional[float] = None
    #: extra per-tenant fair-share data (service mode: telemetry shares)
    shares: Dict[str, float] = field(default_factory=dict)

    @property
    def simulated_throughput(self) -> float:
        """Commands per *simulated* second across the fleet."""
        if self.virtual_seconds <= 0.0:
            return 0.0
        return self.total_commands / self.virtual_seconds

    @property
    def replay_rate(self) -> Optional[float]:
        """Commands per *wall* second — the engine-scalability figure."""
        if not self.wall_seconds:
            return None
        return self.total_commands / self.wall_seconds

    def percentiles(self) -> Dict[str, float]:
        p50, p99, p999 = self.merged.quantiles([0.50, 0.99, 0.999])
        return {"p50": p50, "p99": p99, "p999": p999}

    def render(self) -> str:
        pct = self.percentiles()
        lines = [
            f"open-loop replay: {self.total_commands} commands over "
            f"{len(self.tenants)} tenant(s), "
            f"{self.virtual_seconds:.3f}s simulated",
            f"  latency p50 {pct['p50'] * 1e3:.3f} ms | "
            f"p99 {pct['p99'] * 1e3:.3f} ms | "
            f"p999 {pct['p999'] * 1e3:.3f} ms | "
            f"mean {self.merged.mean * 1e3:.3f} ms",
            f"  throughput {self.simulated_throughput:.1f} commands/s "
            f"simulated | fairness (Jain) {self.fairness:.4f}",
        ]
        if self.wall_seconds:
            lines.append(
                f"  replay rate {self.replay_rate:.0f} commands/s of wall "
                f"time ({self.wall_seconds:.2f}s wall)"
            )
        for t in self.tenants:
            h = t.hist
            p99 = h.quantile(0.99)
            lines.append(
                f"  {t.tenant:>10s}: {t.completed}/{t.requests} done, "
                f"p99 {p99 * 1e3:.3f} ms, {t.throughput:.1f} cmd/s, "
                f"weight {t.weight:g}"
                + (f", share {self.shares[t.tenant]:.3f}"
                   if t.tenant in self.shares else "")
            )
        profiled = sum(t.profiling_epochs for t in self.tenants)
        predicted = sum(t.predicted_epochs for t in self.tenants)
        if profiled or predicted:
            lines.append(
                f"  cold start: {profiled} profiling epoch(s) on devices, "
                f"{predicted} served by the predictor"
            )
        lines.append(f"  checksum {self.checksum!r}")
        return "\n".join(lines)


def merge_results(results: Sequence[TenantResult]) -> ReplayReport:
    """Fold per-tenant results (any order) into one deterministic report.

    Results are first sorted by tenant index, so serial and sharded runs
    merge identically — including the float checksum, which is summed in
    index order.
    """
    ordered = sorted(results, key=lambda r: r.index)
    merged: Optional[LatencyHistogram] = None
    checksum = 0.0
    total = 0
    horizon = 0.0
    normalised = []
    for res in ordered:
        hist = res.hist
        if merged is None:
            merged = hist
        else:
            merged.merge(hist)
        checksum += res.checksum
        total += res.completed
        horizon = max(horizon, res.end_time)
        if res.weight > 0.0 and res.end_time > 0.0:
            normalised.append(res.throughput / res.weight)
    if merged is None:
        merged = LatencyHistogram()
    return ReplayReport(
        tenants=list(ordered),
        merged=merged,
        total_commands=total,
        virtual_seconds=horizon,
        fairness=jain_index(normalised),
        checksum=checksum,
    )
