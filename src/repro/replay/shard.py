"""Sharded tenant replay: fan independent tenants across processes.

Engine-mode tenants are independent replicas (own platform, own engine,
own derived seed), so sharding is embarrassingly parallel — and, more
importantly, *bit-exact*: :func:`run_serial` and :func:`run_sharded`
produce identical merged reports (including the float checksum) because

* every tenant's arrival schedule depends only on ``derive_seed(seed, i)``,
  never on which process replays it;
* the device-profile cache is prewarmed once (single-flight locked on
  disk) before any tenant starts, so every replica sees the same measured
  profile and a zero-time platform construction — the same discipline
  :mod:`repro.bench.parallel` uses for the experiment fleet, whose
  :func:`~repro.bench.parallel.fork_map` / worker-initializer machinery
  this module reuses;
* results are merged in tenant-index order regardless of completion order.

``verify_against_serial`` re-runs the schedule serially (cheap: the cache
is warm) and compares checksums — the CI replay smoke job's assertion.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.replay.metrics import ReplayReport, TenantResult, merge_results
from repro.replay.runner import ReplayConfig, run_tenant

__all__ = [
    "ensure_profile_cache",
    "run_serial",
    "run_sharded",
    "verify_against_serial",
]


def ensure_profile_cache(profile_dir: Optional[str]) -> str:
    """Warm the shared device-profile cache; return the resolved directory.

    Constructing one profiled platform measures (or loads) the default
    node's profile into ``profile_dir`` under the profile store's
    single-flight lock; every later construction — this process or a
    forked shard — then charges no simulated time, which keeps replay
    timestamps identical everywhere.
    """
    from repro.bench import figures
    from repro.ocl.platform import Platform

    if profile_dir is None:
        profile_dir = figures._profile_dir()
    else:
        figures.set_profile_dir(profile_dir)
    Platform(profile=True, profile_dir=profile_dir)
    return profile_dir


def _replay_one(task: Tuple[ReplayConfig, int]) -> TenantResult:
    config, index = task
    return run_tenant(config, index)


def run_serial(config: ReplayConfig) -> ReplayReport:
    """Replay every tenant in index order, in-process; the reference path."""
    config.validate()
    started = time.perf_counter()
    config = config.with_profile_dir(ensure_profile_cache(config.profile_dir))
    results = [run_tenant(config, i) for i in range(config.tenants)]
    report = merge_results(results)
    report.wall_seconds = time.perf_counter() - started
    return report


def run_sharded(config: ReplayConfig, shards: int) -> ReplayReport:
    """Replay tenants fanned across ``shards`` worker processes.

    Produces a report bit-identical to :func:`run_serial` on the same
    config (``wall_seconds`` excepted — that is measured, not simulated).
    """
    from repro.bench.parallel import _init_worker, fork_map

    config.validate()
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    started = time.perf_counter()
    profile_dir = ensure_profile_cache(config.profile_dir)
    config = config.with_profile_dir(profile_dir)
    tasks = [(config, i) for i in range(config.tenants)]
    results: List[TenantResult] = fork_map(
        _replay_one,
        tasks,
        jobs=shards,
        initializer=_init_worker,
        initargs=(profile_dir,),
    )
    report = merge_results(results)
    report.wall_seconds = time.perf_counter() - started
    return report


def verify_against_serial(report: ReplayReport, config: ReplayConfig) -> bool:
    """Whether a (sharded) report matches a fresh serial replay bit-exactly."""
    serial = run_serial(config)
    if serial.checksum != report.checksum:
        return False
    if serial.total_commands != report.total_commands:
        return False
    return serial.merged.to_dict() == report.merged.to_dict()
