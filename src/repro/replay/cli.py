"""Command line for open-loop replay: ``python -m repro.replay ...``.

Also reachable as ``python -m repro.bench replay ...`` so the whole
evaluation surface lives under one entry point.

Examples::

    # one million commands, four tenants, Poisson arrivals, two shards
    python -m repro.replay --commands 250000 --tenants 4 --shards 2

    # bursty traffic through the shared fair-share service
    python -m repro.replay --mode service --process bursty \\
        --commands 2000 --tenants 3 --weights 4,2,1
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.replay.runner import (
    CHUNK_ENV,
    SHARDS_ENV,
    SPILL_ENV,
    ReplayConfig,
    _env_int,
)

__all__ = ["build_config", "main"]


def _parse_weights(raw: str) -> tuple:
    try:
        weights = tuple(float(w) for w in raw.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"weights must be comma-separated numbers, got {raw!r}"
        )
    if not weights or any(w <= 0.0 for w in weights):
        raise argparse.ArgumentTypeError("weights must be positive")
    return weights


def _build_parser(prog: Optional[str]) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog or "python -m repro.replay",
        description="Open-loop traffic replay against the simulated fleet: "
        "seeded arrival processes, per-request latency percentiles, "
        "throughput, and per-tenant fairness.",
    )
    parser.add_argument(
        "--commands", type=int, default=100_000, metavar="N",
        help="commands per tenant (default 100000)",
    )
    parser.add_argument(
        "--tenants", type=int, default=4, metavar="N",
        help="independent tenants (default 4)",
    )
    parser.add_argument(
        "--process", choices=("poisson", "bursty", "diurnal"),
        default="poisson", help="arrival process (default poisson)",
    )
    parser.add_argument(
        "--rate", type=float, default=300.0, metavar="R",
        help="arrivals per simulated second per tenant (default 300, "
        "~2/3 of a tenant fleet's capacity)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed; tenant i replays substream derive_seed(seed, i)",
    )
    parser.add_argument(
        "--weights", type=_parse_weights, default=(1.0,), metavar="W1,W2,...",
        help="per-tenant fair-share weights, cycled (default 1)",
    )
    parser.add_argument(
        "--policy", choices=("jsq", "rr"), default="jsq",
        help="engine-mode dispatch policy (default jsq)",
    )
    parser.add_argument(
        "--mode", choices=("engine", "service"), default="engine",
        help="engine: independent per-tenant replicas at scale; "
        "service: shared fair-share fleet with real contention",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help=f"fan tenants across N processes (engine mode; default "
        f"${SHARDS_ENV} or 1; results are bit-identical to serial)",
    )
    parser.add_argument(
        "--chunk", type=int, default=0, metavar="K",
        help=f"arrivals injected per epoch (default ${CHUNK_ENV} or 8192)",
    )
    parser.add_argument(
        "--spill-every", type=int, default=0, metavar="K",
        help=f"streaming-trace spill threshold (default ${SPILL_ENV} "
        f"or 16384)",
    )
    parser.add_argument(
        "--no-streaming", action="store_true",
        help="keep the full trace resident (small runs only)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="spill intervals to PATH.tenant<i>.jsonl instead of discarding",
    )
    parser.add_argument(
        "--cold-start", action="store_true",
        help="engine mode: model the dynamic profiler's cold start — the "
        "first arrival of each unseen kernel family runs one profiling "
        "launch per device before requests of that family are served",
    )
    parser.add_argument(
        "--predict", action="store_true",
        help="with --cold-start: serve unseen families from the "
        "static-feature predictor (repro.predict) — zero profiling "
        "launches hit the devices",
    )
    parser.add_argument(
        "--family-churn", type=int, default=0, metavar="N",
        help="with --cold-start: every N arrivals, families count as "
        "unseen again (0 = only the very first sight is cold)",
    )
    parser.add_argument(
        "--verify-serial", action="store_true",
        help="after a sharded run, re-run serially and fail on any "
        "checksum difference",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of text",
    )
    return parser


def build_config(args: argparse.Namespace) -> ReplayConfig:
    return ReplayConfig(
        commands=args.commands,
        tenants=args.tenants,
        process=args.process,
        rate=args.rate,
        seed=args.seed,
        weights=args.weights,
        policy=args.policy,
        chunk=args.chunk,
        spill_every=args.spill_every,
        streaming=not args.no_streaming,
        trace_path=args.trace,
        cold_start=args.cold_start,
        predict=args.predict,
        family_churn=args.family_churn,
    ).validate()


def _report_json(report) -> str:
    pct = report.percentiles()
    return json.dumps(
        {
            "total_commands": report.total_commands,
            "virtual_seconds": report.virtual_seconds,
            "wall_seconds": report.wall_seconds,
            "simulated_throughput": report.simulated_throughput,
            "replay_rate": report.replay_rate,
            "fairness": report.fairness,
            "checksum": report.checksum,
            "latency": {**pct, "mean": report.merged.mean},
            "shares": report.shares,
            "tenants": [
                {
                    "tenant": t.tenant,
                    "weight": t.weight,
                    "completed": t.completed,
                    "end_time": t.end_time,
                    "throughput": t.throughput,
                    "spilled": t.spilled,
                    "checksum": t.checksum,
                    "profiling_epochs": t.profiling_epochs,
                    "predicted_epochs": t.predicted_epochs,
                }
                for t in report.tenants
            ],
        },
        indent=2,
    )


def main(argv: Optional[List[str]] = None, prog: Optional[str] = None) -> int:
    args = _build_parser(prog).parse_args(argv)
    try:
        config = build_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.mode == "service":
        if args.shards not in (None, 1):
            print(
                "error: --shards applies to engine mode only (service mode "
                "shares one fleet)",
                file=sys.stderr,
            )
            return 2
        from repro.replay.runner import run_service_replay

        import time

        started = time.perf_counter()
        report = run_service_replay(config)
        report.wall_seconds = time.perf_counter() - started
    else:
        from repro.replay.shard import (
            run_serial,
            run_sharded,
            verify_against_serial,
        )

        shards = args.shards
        if shards is None:
            shards = _env_int(SHARDS_ENV, 1)
        report = (
            run_serial(config) if shards <= 1 else run_sharded(config, shards)
        )
        if args.verify_serial:
            if not verify_against_serial(report, config):
                print(
                    "verify-serial FAILED: sharded replay diverged from the "
                    "serial reference",
                    file=sys.stderr,
                )
                return 1
            print("verified: sharded replay bit-identical to the serial run")

    print(_report_json(report) if args.json else report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
