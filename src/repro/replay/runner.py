"""Open-loop replay drivers: per-tenant engine replay and service replay.

Two replay modes share the arrival machinery (:mod:`repro.replay.arrivals`)
and the result types (:mod:`repro.replay.metrics`):

* **engine mode** (:func:`run_tenant`) — each tenant replays against its
  own :class:`~repro.ocl.platform.Platform` (own event engine, own device
  fleet), dispatching requests straight onto device FIFO resources with a
  join-shortest-queue or round-robin policy and per-(family, device)
  service times derived from the measured
  :class:`~repro.core.device_profiler.DeviceProfile`.  Tenants are
  *independent replicas*, which is exactly what makes serial and sharded
  runs bit-identical — and it scales to millions of commands per run;
* **service mode** (:func:`run_service_replay`) — all tenants share one
  :class:`~repro.service.core.SchedulingService` fleet and contend through
  the fair-share arbiter, at smaller command counts.  This is the mode
  that measures *real* multi-tenant interference and fairness; engine mode
  measures raw open-loop queueing behaviour and replay throughput.

The hot loop is epoch-batched: a chunk of arrivals is injected with
:meth:`~repro.sim.engine.SimEngine.schedule_batch` (one heap rebuild per
epoch, not one sift-up per command) and drained with
:meth:`~repro.sim.engine.SimEngine.run_until_time`.  Per-request
allocations are held to the task tuple itself: request names, metadata
dicts, and the completion-callback list are shared per kernel family, and
the arrival timestamp rides in the :class:`~repro.sim.engine.SimTask`
``arrival_time`` slot.

Environment knobs (all overridable per :class:`ReplayConfig`):

* ``MULTICL_REPLAY_CHUNK`` — arrivals injected per epoch (default 8192);
* ``MULTICL_REPLAY_SPILL_EVERY`` — streaming-trace spill threshold
  (default 16384);
* ``MULTICL_REPLAY_SHARDS`` — default shard count for the CLI.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.replay.arrivals import (
    DEFAULT_FAMILIES,
    KernelFamily,
    derive_seed,
    make_process,
)
from repro.replay.metrics import LatencyHistogram, TenantResult
from repro.sim.export import JsonlTraceSink
from repro.sim.trace import TraceSink

__all__ = [
    "CHUNK_ENV",
    "SPILL_ENV",
    "SHARDS_ENV",
    "ReplayConfig",
    "DiscardSink",
    "run_tenant",
    "run_service_replay",
]

#: Arrivals injected per ``schedule_batch`` epoch.
CHUNK_ENV = "MULTICL_REPLAY_CHUNK"
#: Streaming-trace spill threshold (resident intervals before a spill).
SPILL_ENV = "MULTICL_REPLAY_SPILL_EVERY"
#: Default shard count for ``python -m repro.replay`` / ``repro.bench replay``.
SHARDS_ENV = "MULTICL_REPLAY_SHARDS"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class ReplayConfig:
    """Everything a replay run needs; picklable across shard processes."""

    #: commands replayed *per tenant*
    commands: int = 100_000
    tenants: int = 4
    #: arrival process per tenant: ``poisson`` | ``bursty`` | ``diurnal``
    process: str = "poisson"
    #: long-run arrival rate per tenant (requests per simulated second);
    #: the default sits at ~2/3 of a tenant fleet's capacity, so the open
    #: queue is stable and the latency percentiles measure real queueing
    rate: float = 300.0
    #: extra arrival-process parameters (e.g. ``on_s``/``off_s``)
    process_params: Dict[str, float] = field(default_factory=dict)
    seed: int = 0
    #: per-tenant fair-share weights, cycled if shorter than ``tenants``
    weights: Tuple[float, ...] = (1.0,)
    #: engine-mode dispatch: ``jsq`` (join shortest queue) | ``rr``
    policy: str = "jsq"
    #: arrivals injected per epoch (0 -> MULTICL_REPLAY_CHUNK or 8192)
    chunk: int = 0
    #: streaming spill threshold (0 -> MULTICL_REPLAY_SPILL_EVERY or 16384)
    spill_every: int = 0
    #: stream the trace through a sink (flat memory); False keeps the
    #: resident trace — only sane for small runs
    streaming: bool = True
    #: spill intervals to ``<trace_path>.tenant<i>.jsonl`` instead of
    #: discarding them (engine mode)
    trace_path: Optional[str] = None
    families: Tuple[KernelFamily, ...] = DEFAULT_FAMILIES
    #: shared on-disk device-profile cache (None -> harness default)
    profile_dir: Optional[str] = None
    #: engine mode: model the dynamic profiler's cold start — the first
    #: arrival of an *unseen* kernel family runs one profiling launch per
    #: device before any request of that family can be served, so early
    #: (and post-churn) requests queue behind profiling.  Off by default:
    #: cold-start accounting changes checksums.
    cold_start: bool = False
    #: with ``cold_start``: serve unseen families from the static-feature
    #: predictor instead — zero profiling launches ever hit the devices
    #: (the :mod:`repro.predict` path applied to the replay model)
    predict: bool = False
    #: with ``cold_start``: every ``family_churn`` arrivals the tenant's
    #: families count as unseen again, modelling a stream whose kernel
    #: population keeps changing (0 = only the very first sight is cold)
    family_churn: int = 0

    def resolved_chunk(self) -> int:
        return self.chunk if self.chunk > 0 else _env_int(CHUNK_ENV, 8192)

    def resolved_spill(self) -> int:
        return (
            self.spill_every
            if self.spill_every > 0
            else _env_int(SPILL_ENV, 16384)
        )

    def tenant_name(self, index: int) -> str:
        return f"tenant-{index}"

    def tenant_weight(self, index: int) -> float:
        return self.weights[index % len(self.weights)]

    def validate(self) -> "ReplayConfig":
        if self.commands < 1:
            raise ValueError(f"commands must be >= 1, got {self.commands}")
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.rate <= 0.0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.policy not in ("jsq", "rr"):
            raise ValueError(f"policy must be 'jsq' or 'rr', got {self.policy!r}")
        if self.family_churn < 0:
            raise ValueError(
                f"family_churn must be >= 0, got {self.family_churn}"
            )
        if self.predict and not self.cold_start:
            raise ValueError("predict requires cold_start (nothing to skip)")
        if not self.weights:
            raise ValueError("weights must not be empty")
        make_process(self.process, self.rate, **self.process_params)
        return self

    def with_profile_dir(self, profile_dir: str) -> "ReplayConfig":
        return replace(self, profile_dir=profile_dir)


class DiscardSink(TraceSink):
    """Count-and-drop sink: the flat-memory default for huge replays.

    Aggregate accounting (per-device busy seconds, totals) survives in the
    :class:`~repro.sim.trace.Trace` cumulative aggregates; the raw
    intervals themselves are only needed when a ``trace_path`` asks for an
    on-disk record.
    """

    def __init__(self) -> None:
        self.consumed = 0

    def consume(self, intervals) -> None:
        self.consumed += len(intervals)


class _EngineTenant:
    """One tenant's engine-mode replay state (single-use)."""

    __slots__ = (
        "engine",
        "resources",
        "durations",
        "free",
        "names",
        "metas",
        "callbacks",
        "jsq",
        "rr_next",
        "hist",
        "completed",
        "latency_sum",
        "last_end",
        "cold_start",
        "predict",
        "churn",
        "arrivals",
        "seen",
        "prof_names",
        "profiling_epochs",
        "predicted_epochs",
    )

    def __init__(self, platform, config: ReplayConfig, tenant: str) -> None:
        self.engine = platform.engine
        devices = platform.node.device_list()
        profile = platform.device_profile
        self.resources = [d.resource for d in devices]
        # Service time of one request of family f on device d: compute at
        # the measured instruction throughput + memory traffic at the
        # measured bandwidth + the per-launch fixed cost.  Requests of one
        # family are identical, so this is precomputed once per run.
        self.durations: List[List[float]] = []
        for fam in config.families:
            row = []
            for dev in devices:
                name = dev.name
                row.append(
                    fam.flops / (profile.gflops[name] * 1e9)
                    + fam.bytes / (profile.bandwidth_gbs[name] * 1e9)
                    + profile.launch_overhead_s[name]
                )
            self.durations.append(row)
        #: per-device backlog horizon (virtual time the device frees up)
        self.free = [0.0] * len(devices)
        # Shared per-family request names and trace metadata: requests of a
        # family are indistinguishable, so a million tasks share four
        # strings and four read-only dicts instead of allocating their own.
        self.names = [f"req:{fam.name}" for fam in config.families]
        self.metas = [
            {"family": fam.name, "tenant": tenant} for fam in config.families
        ]
        #: one shared completion-callback list for every request (the
        #: engine reads it and clears the *task's* reference, never the
        #: list itself)
        self.callbacks = [self._on_done]
        self.jsq = config.policy == "jsq"
        self.rr_next = 0
        self.hist = LatencyHistogram()
        self.completed = 0
        self.latency_sum = 0.0
        self.last_end = 0.0
        # Cold-start modelling (see ReplayConfig.cold_start): which
        # (family, generation) pairs have been profiled or predicted.
        self.cold_start = config.cold_start
        self.predict = config.predict
        self.churn = config.family_churn
        self.arrivals = 0
        self.seen: set = set()
        self.prof_names = [f"prof:{fam.name}" for fam in config.families]
        self.profiling_epochs = 0
        self.predicted_epochs = 0

    def _first_sight(self, fam: int) -> None:
        """An unseen family arrived: profile it on every device, or predict.

        The measured path mirrors the kernel profiler: one profiling launch
        per device, serialised on each device's FIFO ahead of any pending
        requests — exactly the cold-start epoch the predictor eliminates.
        The predicted path costs zero device seconds (static features only).
        """
        if self.predict:
            self.predicted_epochs += 1
            return
        self.profiling_epochs += 1
        engine = self.engine
        now = engine.clock._now
        durations = self.durations[fam]
        name = self.prof_names[fam]
        free = self.free
        for i, resource in enumerate(self.resources):
            duration = durations[i]
            start = free[i]
            if start < now:
                start = now
            free[i] = start + duration
            task = engine.task(
                name, duration, resource, category="profile-kernel"
            )
            task.meta = self.metas[fam]

    def arrive(self, fam: int) -> None:
        """Dispatch one arriving request (fires at its arrival timestamp)."""
        engine = self.engine
        now = engine.clock._now
        if self.cold_start:
            self.arrivals += 1
            generation = self.arrivals // self.churn if self.churn else 0
            key = fam * 1_000_003 + generation
            if key not in self.seen:
                self.seen.add(key)
                self._first_sight(fam)
        free = self.free
        durations = self.durations[fam]
        if self.jsq:
            dev = 0
            best = free[0]
            for i in range(1, len(free)):
                if free[i] < best:
                    best = free[i]
                    dev = i
        else:
            dev = self.rr_next
            self.rr_next = (dev + 1) % len(free)
        duration = durations[dev]
        start = free[dev]
        if start < now:
            start = now
        free[dev] = start + duration
        task = engine.task(self.names[fam], duration, self.resources[dev])
        # engine.task() copies caller metadata defensively; assigning the
        # shared read-only dict afterwards keeps the per-request cost to
        # the task object itself.
        task.meta = self.metas[fam]
        task.arrival_time = now
        task._callbacks = self.callbacks

    def _on_done(self, task) -> None:
        end = task.end_time
        latency = end - task.arrival_time
        self.hist.add(latency)
        self.completed += 1
        self.latency_sum += latency
        if end > self.last_end:
            self.last_end = end


def _fold_checksum(
    completed: int,
    last_end: float,
    latency_sum: float,
    device_seconds: Dict[str, float],
) -> float:
    """Deterministic float fold of a tenant's replay outcome.

    Pure float additions in a fixed (sorted-key) order — no libm calls —
    so the value is bit-identical across processes and platforms; the
    serial-vs-sharded tests and the perf-baseline checksum pin it.
    """
    checksum = float(completed) + last_end + latency_sum
    for name in sorted(device_seconds):
        checksum += device_seconds[name]
    return checksum


def run_tenant(config: ReplayConfig, index: int) -> TenantResult:
    """Replay one tenant's full arrival schedule on its own platform.

    The device-profile cache must be warm (see
    :func:`repro.replay.shard.ensure_profile_cache`): a cold measurement
    would advance the engine clock past the first arrivals.
    """
    from repro.ocl.platform import Platform

    config.validate()
    platform = Platform(profile=True, profile_dir=config.profile_dir)
    engine = platform.engine
    trace = engine.trace
    sink: Optional[TraceSink] = None
    if config.streaming:
        if config.trace_path:
            sink = JsonlTraceSink(f"{config.trace_path}.tenant{index}.jsonl")
        else:
            sink = DiscardSink()
        trace.attach_sink(sink, spill_every=config.resolved_spill())

    tenant = config.tenant_name(index)
    state = _EngineTenant(platform, config, tenant)
    process = make_process(config.process, config.rate, **config.process_params)
    seed = derive_seed(config.seed, index)
    base = engine.now  # 0.0 with a warm profile cache; offset keeps a
    # cold-cache run valid instead of scheduling into the past

    arrive = state.arrive
    chunk = config.resolved_chunk()
    schedule_batch = engine.schedule_batch
    run_until_time = engine.run_until_time
    batch: List[Tuple[float, object, int]] = []
    append = batch.append
    for t, fam in process.stream(config.families, seed, config.commands):
        append((base + t, arrive, fam))
        if len(batch) >= chunk:
            schedule_batch(batch)
            run_until_time(batch[-1][0])
            del batch[:]
    if batch:
        schedule_batch(batch)
    engine.run_until_idle()

    device_seconds = trace.by_resource()
    resident = len(trace)
    if sink is not None:
        trace.flush()
        sink.close()
    return TenantResult(
        tenant=tenant,
        index=index,
        weight=config.tenant_weight(index),
        requests=config.commands,
        completed=state.completed,
        end_time=state.last_end,
        latency_sum=state.latency_sum,
        histogram=state.hist.to_dict(),
        device_seconds=dict(device_seconds),
        spilled=trace.spilled_count,
        resident=resident,
        checksum=_fold_checksum(
            state.completed, state.last_end, state.latency_sum, device_seconds
        ),
        profiling_epochs=state.profiling_epochs,
        predicted_epochs=state.predicted_epochs,
    )


# ---------------------------------------------------------------------------
# Service mode: shared fleet, fair-share contention
# ---------------------------------------------------------------------------

_SERVICE_GLOBAL = 1 << 14
_SERVICE_LOCAL = 128


def _service_program_source(families: Tuple[KernelFamily, ...]) -> str:
    """One annotated kernel per family, work sized so a launch over
    ``_SERVICE_GLOBAL`` items carries exactly the family's footprint."""
    parts = []
    for fam in families:
        kname = fam.name.replace("-", "_")
        flops = fam.flops / _SERVICE_GLOBAL
        nbytes = fam.bytes / _SERVICE_GLOBAL
        parts.append(
            f"// @multicl flops_per_item={flops:g} bytes_per_item={nbytes:g} "
            f"writes=0\n"
            f"__kernel void {kname}(__global float* x) {{\n"
            f"  int i = get_global_id(0);\n"
            f"  (void)x[i];\n"
            f"}}\n"
        )
    return "\n".join(parts)


class _ServiceTenant:
    """One tenant's client state against the shared scheduling service."""

    def __init__(self, service, config: ReplayConfig, index: int) -> None:
        from repro.ocl.enums import SchedFlag

        self.name = config.tenant_name(index)
        self.index = index
        self.weight = config.tenant_weight(index)
        self.session = service.create_session(self.name, weight=self.weight)
        program = self.session.create_program(
            _service_program_source(config.families)
        ).build()
        self.kernels = [
            program.create_kernel(fam.name.replace("-", "_"))
            for fam in config.families
        ]
        self.buffer = self.session.create_buffer(
            4 * _SERVICE_GLOBAL, name=f"{self.name}-data"
        )
        self.queue = self.session.create_queue(
            sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC, name=f"{self.name}-q"
        )
        self.engine = service.platform.engine
        self.hist = LatencyHistogram()
        self.requests = 0
        self.completed = 0
        self.latency_sum = 0.0
        self.last_end = 0.0

    def enqueue(self, fam: int) -> None:
        """Submit one arriving request (fires at its arrival timestamp)."""
        kernel = self.kernels[fam]
        kernel.set_arg(0, self.buffer)
        event = self.queue.enqueue_nd_range_kernel(
            kernel, (_SERVICE_GLOBAL,), (_SERVICE_LOCAL,)
        )
        self.requests += 1
        arrival = self.engine.clock._now
        event.set_callback(lambda ev, t0=arrival: self._on_done(ev, t0))

    def _on_done(self, event, arrival: float) -> None:
        end = event.profile_end
        latency = end - arrival
        self.hist.add(latency)
        self.completed += 1
        self.latency_sum += latency
        if end > self.last_end:
            self.last_end = end

    def result(self, device_seconds: Dict[str, float]) -> TenantResult:
        return TenantResult(
            tenant=self.name,
            index=self.index,
            weight=self.weight,
            requests=self.requests,
            completed=self.completed,
            end_time=self.last_end,
            latency_sum=self.latency_sum,
            histogram=self.hist.to_dict(),
            device_seconds=device_seconds,
            spilled=0,
            resident=0,
            checksum=_fold_checksum(
                self.completed, self.last_end, self.latency_sum, device_seconds
            ),
        )


def run_service_replay(config: ReplayConfig):
    """Replay all tenants through one shared fair-share scheduling service.

    Arrivals from every tenant's (independently seeded) process are merged
    into one time-ordered schedule, injected epoch-by-epoch through
    ``schedule_batch``; each epoch boundary is an arbitration point
    (:meth:`~repro.service.core.SchedulingService.trigger`).  Latency here
    includes *fair-share queueing*: time a request spends deferred in its
    tenant's ready pool counts against it, which is the whole point of the
    mode.  Returns a merged :class:`~repro.replay.metrics.ReplayReport`
    with per-tenant telemetry shares attached.
    """
    from repro.replay.metrics import merge_results
    from repro.service.core import SchedulingService

    config.validate()
    service = SchedulingService(profile_dir=config.profile_dir)
    engine = service.platform.engine
    tenants = [
        _ServiceTenant(service, config, i) for i in range(config.tenants)
    ]

    def tenant_schedule(i: int):
        process = make_process(
            config.process, config.rate, **config.process_params
        )
        seed = derive_seed(config.seed, i)
        for t, fam in process.stream(config.families, seed, config.commands):
            yield t, i, fam

    merged_arrivals = heapq.merge(
        *(tenant_schedule(i) for i in range(config.tenants))
    )

    def fire(payload: Tuple[int, int]) -> None:
        tenant_idx, fam = payload
        tenants[tenant_idx].enqueue(fam)

    base = engine.now
    chunk = config.resolved_chunk()
    batch: List[Tuple[float, object, Tuple[int, int]]] = []
    for t, tenant_idx, fam in merged_arrivals:
        batch.append((base + t, fire, (tenant_idx, fam)))
        if len(batch) >= chunk:
            engine.schedule_batch(batch)
            service.run_until_time(batch[-1][0])
            service.trigger()
            del batch[:]
    if batch:
        engine.schedule_batch(batch)
        engine.run_until_idle()
    # Drain: keep arbitrating until every ready pool has reached the fleet.
    while service.has_backlog():
        service.trigger()
        service.run_until_idle()
    service.run_until_idle()

    usage = service.utilization()
    results = [
        t.result({"fleet": usage[t.name].device_seconds})
        for t in tenants
    ]
    report = merge_results(results)
    report.shares = service.shares()
    return report
