"""``python -m repro.replay`` — see :mod:`repro.replay.cli`."""

from repro.replay.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
