"""Deterministic, seedable request-arrival processes over kernel families.

The replay subsystem evaluates the scheduler as an *open* queueing system:
requests arrive according to a stochastic process whether or not the fleet
has kept up, and the figures of merit are latency percentiles and
sustained throughput rather than makespan (the closed-loop view the paper
reports).  Three arrival processes cover the production-traffic shapes the
queueing literature cares about:

* :class:`PoissonProcess` — memoryless arrivals at a constant rate, the
  M/G/k baseline;
* :class:`OnOffProcess` — bursty on/off (Markov-modulated) traffic: ON
  windows at an elevated rate separated by silent OFF windows, with the
  same long-run average rate;
* :class:`DiurnalProcess` — a sinusoidally rate-modulated day/night cycle,
  realised by thinning a dominating Poisson process.

Every process is a pure function of its parameters and a seed (stdlib
``random.Random``, whose sequence is stable across Python versions and
platforms), so the same seed reproduces the same arrival schedule
bit-for-bit — the property the serial-vs-sharded determinism tests pin.

Each arrival also draws a *kernel family* (a request type with a fixed
flops/bytes footprint) from a weighted mix, modelling heterogeneous
production traffic: many small requests, a tail of heavy ones.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

__all__ = [
    "KernelFamily",
    "DEFAULT_FAMILIES",
    "ArrivalProcess",
    "PoissonProcess",
    "OnOffProcess",
    "DiurnalProcess",
    "make_process",
    "derive_seed",
]

_SEED_MASK = (1 << 63) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def derive_seed(seed: int, index: int) -> int:
    """Mix a base seed with a stream index (per-tenant substreams).

    Pure integer arithmetic so serial and sharded runs derive identical
    per-tenant seeds regardless of process boundaries.
    """
    return ((seed + 1) * _GOLDEN + index * 0x85EBCA6B) & _SEED_MASK


@dataclass(frozen=True)
class KernelFamily:
    """One request type: a kernel with a fixed per-request work footprint."""

    name: str
    flops: float
    bytes: float
    #: relative arrival frequency within the traffic mix
    weight: float = 1.0


#: Production-flavoured default mix: mostly small requests, a heavy tail.
DEFAULT_FAMILIES: Tuple[KernelFamily, ...] = (
    KernelFamily("pointwise", flops=2.0e8, bytes=6.0e7, weight=8.0),
    KernelFamily("stencil", flops=1.2e9, bytes=3.0e8, weight=4.0),
    KernelFamily("reduce", flops=4.0e8, bytes=6.0e8, weight=2.0),
    KernelFamily("batch-gemm", flops=1.0e10, bytes=1.2e9, weight=1.0),
)


class ArrivalProcess:
    """Base class: a seedable stream of ``(arrival_time, family_index)``.

    Subclasses implement :meth:`_arrivals` (an infinite generator of
    arrival timestamps drawing from the supplied RNG); :meth:`stream`
    interleaves the family draw from the *same* RNG so the whole schedule
    is one deterministic sequence.
    """

    kind = "base"
    rate: float

    def _arrivals(self, rng: random.Random) -> Iterator[float]:
        raise NotImplementedError

    def stream(
        self,
        families: Sequence[KernelFamily],
        seed: int,
        limit: int,
    ) -> Iterator[Tuple[float, int]]:
        """Yield ``limit`` arrivals as ``(time, family_index)`` tuples."""
        rng = random.Random(seed)
        cum = []
        total = 0.0
        for fam in families:
            total += fam.weight
            cum.append(total)
        arrivals = self._arrivals(rng)
        uniform = rng.random
        for _ in range(limit):
            t = next(arrivals)
            yield t, bisect_right(cum, uniform() * total, 0, len(cum) - 1)


@dataclass(frozen=True)
class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival times at ``rate``."""

    rate: float
    kind = "poisson"

    def _arrivals(self, rng: random.Random) -> Iterator[float]:
        expovariate = rng.expovariate
        rate = self.rate
        t = 0.0
        while True:
            t += expovariate(rate)
            yield t


@dataclass(frozen=True)
class OnOffProcess(ArrivalProcess):
    """Bursty traffic: Poisson bursts in ON windows, silence in OFF windows.

    ``rate`` is the *long-run average*; during an ON window the
    instantaneous rate is ``rate * (on_s + off_s) / on_s``.  Realised by
    drawing a Poisson stream over cumulative *active* (ON) time and mapping
    it onto the wall clock, inserting the OFF gap between consecutive ON
    windows — exact, no thinning needed.
    """

    rate: float
    on_s: float = 2.0
    off_s: float = 6.0
    kind = "bursty"

    def _arrivals(self, rng: random.Random) -> Iterator[float]:
        expovariate = rng.expovariate
        on = self.on_s
        cycle = on + self.off_s
        burst_rate = self.rate * cycle / on
        active = 0.0
        while True:
            active += expovariate(burst_rate)
            window, offset = divmod(active, on)
            yield window * cycle + offset


@dataclass(frozen=True)
class DiurnalProcess(ArrivalProcess):
    """Day/night cycle: rate(t) = rate·(1 + amplitude·sin(2πt/period)).

    Realised by thinning a dominating Poisson process at the peak rate
    (``amplitude`` must stay below 1 so the rate never goes negative).
    """

    rate: float
    amplitude: float = 0.6
    period_s: float = 60.0
    kind = "diurnal"

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )

    def _arrivals(self, rng: random.Random) -> Iterator[float]:
        expovariate = rng.expovariate
        uniform = rng.random
        peak = self.rate * (1.0 + self.amplitude)
        two_pi_over_period = 2.0 * math.pi / self.period_s
        t = 0.0
        while True:
            t += expovariate(peak)
            instantaneous = self.rate * (
                1.0 + self.amplitude * math.sin(t * two_pi_over_period)
            )
            if uniform() * peak <= instantaneous:
                yield t


_PROCESSES = {
    "poisson": PoissonProcess,
    "bursty": OnOffProcess,
    "diurnal": DiurnalProcess,
}


def make_process(kind: str, rate: float, **params) -> ArrivalProcess:
    """Build an arrival process by name (``poisson``/``bursty``/``diurnal``)."""
    try:
        cls = _PROCESSES[kind]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {kind!r}; expected one of "
            f"{sorted(_PROCESSES)}"
        )
    return cls(rate=rate, **params)
