"""Ready-made node configurations.

:func:`aji_cluster15_node` models the paper's testbed (Section VI.A):

* dual-socket, oct-core AMD Opteron 6134 ("Magny-Cours") exposed as one
  OpenCL CPU device — 16 cores at 2.3 GHz, 32 GB RAM;
* two NVIDIA Tesla C2050 GPUs — 14 SMs, 1.15 GHz, 3 GB GDDR5, 144 GB/s;
* network/PCIe asymmetry: the GPUs have affinity to socket 1 while the host
  thread runs on socket 0, so host↔GPU transfers cross the HyperTransport
  interconnect — modelled as reduced effective PCIe bandwidth and higher
  latency, which is what makes device *distance* matter to the scheduler.

Absolute rates are vendor datasheet numbers derated to realistic achievable
fractions; the reproduction only relies on their *relative* magnitudes.
"""

from __future__ import annotations

from functools import lru_cache

from repro.hardware.specs import DeviceKind, DeviceSpec, LinkSpec, NodeSpec

__all__ = [
    "aji_cluster15_node",
    "symmetric_dual_gpu_node",
    "cpu_only_node",
    "OPTERON_6134",
    "TESLA_C2050",
]

GB = 1e9
MB = 1e6

#: The paper's CPU device: 2 sockets x 8 cores, 2.3 GHz Opteron 6134.
#: Peak SP ≈ 16 cores * 2.3 GHz * 4 lanes (SSE) ≈ 147 GFLOP/s.
OPTERON_6134 = DeviceSpec(
    name="cpu",
    kind=DeviceKind.CPU,
    compute_units=16,
    clock_ghz=2.3,
    peak_gflops=147.0,
    mem_bandwidth_gbs=42.0,
    mem_size_bytes=int(32 * GB),
    launch_overhead_s=4e-6,
    base_compute_efficiency=0.60,
    base_memory_efficiency=0.55,
    divergence_penalty=0.10,  # CPUs branch-predict well
    irregularity_penalty=0.35,  # caches absorb some irregularity
    saturation_work_items=16 * 8,  # a few work items per core saturate
    socket=0,
)

#: The paper's GPU device: Tesla C2050 (Fermi, 14 SMs, 1.15 GHz).
#: Peak SP 1030 GFLOP/s, 144 GB/s GDDR5, 3 GB.
TESLA_C2050 = DeviceSpec(
    name="gpu",
    kind=DeviceKind.GPU,
    compute_units=14,
    clock_ghz=1.15,
    peak_gflops=1030.0,
    mem_bandwidth_gbs=144.0,
    mem_size_bytes=int(3 * GB),
    launch_overhead_s=20e-6,
    base_compute_efficiency=0.55,
    base_memory_efficiency=0.65,
    divergence_penalty=0.85,  # warp divergence serialises lanes
    irregularity_penalty=0.85,  # uncoalesced access wrecks DRAM efficiency
    saturation_work_items=14 * 1536,  # Fermi occupancy
    socket=1,
)


def _named(spec: DeviceSpec, name: str, socket: int) -> DeviceSpec:
    """Clone a device spec under a new name/socket."""
    from dataclasses import replace

    return replace(spec, name=name, socket=socket)


# The preset factories are cached: NodeSpec is frozen, so every runtime can
# share one instance — which also lets the profile-store fingerprint memo
# (keyed on the spec object) hit across runtime constructions.
@lru_cache(maxsize=None)
def aji_cluster15_node() -> NodeSpec:
    """The paper's evaluation node: 1 CPU device + 2 C2050 GPUs.

    Host thread affinity is socket 0; both GPUs hang off socket 1, so the
    effective host↔GPU bandwidth includes a cross-socket penalty (PCIe gen2
    x16 ≈ 6 GB/s achievable, derated to 5 GB/s across HyperTransport, with
    higher small-transfer latency).  The CPU OpenCL device shares host
    DRAM; SnuCL still performs a copy for buffer writes, at memcpy speed.
    """
    cpu = OPTERON_6134
    gpu0 = _named(TESLA_C2050, "gpu0", socket=1)
    gpu1 = _named(TESLA_C2050, "gpu1", socket=1)
    return NodeSpec(
        name="aji-cluster15",
        devices=(cpu, gpu0, gpu1),
        host_links={
            "cpu": LinkSpec(name="dram-cpu", latency_s=2e-6, bandwidth_gbs=10.0),
            "gpu0": LinkSpec(name="pcie-gpu0", latency_s=18e-6, bandwidth_gbs=5.0),
            "gpu1": LinkSpec(name="pcie-gpu1", latency_s=18e-6, bandwidth_gbs=5.0),
        },
    )


@lru_cache(maxsize=None)
def symmetric_dual_gpu_node() -> NodeSpec:
    """Two identical GPUs, no CPU device — for unit tests and ablations."""
    gpu0 = _named(TESLA_C2050, "gpu0", socket=0)
    gpu1 = _named(TESLA_C2050, "gpu1", socket=0)
    return NodeSpec(
        name="dual-gpu",
        devices=(gpu0, gpu1),
        host_links={
            "gpu0": LinkSpec(name="pcie-gpu0", latency_s=15e-6, bandwidth_gbs=6.0),
            "gpu1": LinkSpec(name="pcie-gpu1", latency_s=15e-6, bandwidth_gbs=6.0),
        },
    )


@lru_cache(maxsize=None)
def cpu_only_node() -> NodeSpec:
    """Single CPU device — degenerate scheduling case for tests."""
    return NodeSpec(
        name="cpu-only",
        devices=(OPTERON_6134,),
        host_links={
            "cpu": LinkSpec(name="dram-cpu", latency_s=2e-6, bandwidth_gbs=10.0),
        },
    )
