"""Device fission: the model behind ``clCreateSubDevices``.

Paper Section IV.D: "The function clCreateSubDevices from OpenCL 1.2
creates a group of cl_device_id subobjects from a parent device object.
Our solution works seamlessly with cl_device_id objects that are ...
created by clCreateSubDevices.  Our example scheduler handles all
cl_device_id objects and makes queue–device mapping decisions uniformly."

The model: partitioning a device *equally* into ``count`` sub-devices
splits its compute units, peak throughput, memory bandwidth, capacity, and
occupancy saturation proportionally; the per-launch overhead is inherited.
Sub-devices keep the parent's host link *shared* (same physical PCIe/DRAM
path — :class:`~repro.hardware.topology.SimNode` gives same-named links
one FIFO resource), so transfers to sibling sub-devices contend exactly
like the real thing.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.hardware.specs import DeviceSpec, HardwareError, NodeSpec

__all__ = ["split_device_spec", "fission_node_spec"]


def split_device_spec(spec: DeviceSpec, count: int) -> List[DeviceSpec]:
    """Partition ``spec`` equally into ``count`` sub-device specs.

    Sub-devices are named ``<parent>.<i>``.  Raises if the device has
    fewer compute units than requested partitions.
    """
    if count < 2:
        raise HardwareError("fission needs at least 2 sub-devices")
    if spec.compute_units < count:
        raise HardwareError(
            f"{spec.name}: cannot split {spec.compute_units} compute units "
            f"into {count} sub-devices"
        )
    subs = []
    for i in range(count):
        subs.append(
            dataclasses.replace(
                spec,
                name=f"{spec.name}.{i}",
                compute_units=spec.compute_units // count,
                peak_gflops=spec.peak_gflops / count,
                mem_bandwidth_gbs=spec.mem_bandwidth_gbs / count,
                mem_size_bytes=spec.mem_size_bytes // count,
                saturation_work_items=max(
                    1, spec.saturation_work_items // count
                ),
            )
        )
    return subs


def fission_node_spec(
    node: NodeSpec, device_name: str, count: int
) -> Tuple[NodeSpec, List[str]]:
    """Return a new node spec with ``device_name`` replaced by sub-devices.

    The sub-devices inherit the parent's :class:`LinkSpec` verbatim, so the
    shared-link rule in :class:`~repro.hardware.topology.SimNode` makes
    them contend for the parent's physical path.  Returns the new spec and
    the sub-device names.
    """
    parent = node.device(device_name)
    subs = split_device_spec(parent, count)
    devices = []
    for d in node.devices:
        if d.name == device_name:
            devices.extend(subs)
        else:
            devices.append(d)
    links = {k: v for k, v in node.host_links.items() if k != device_name}
    for sub in subs:
        links[sub.name] = node.host_links[device_name]
    new_spec = NodeSpec(
        name=f"{node.name}+fission({device_name}x{count})",
        devices=tuple(devices),
        host_links=links,
    )
    return new_spec, [s.name for s in subs]
