"""Simulated heterogeneous node substrate.

The paper evaluates on a dual-socket AMD Opteron 6134 node with two NVIDIA
Tesla C2050 GPUs (Section VI.A).  No such hardware (nor any OpenCL driver)
is available here, so this package provides a parametric model of a
heterogeneous compute node:

* :mod:`repro.hardware.specs` — frozen dataclasses describing devices,
  transfer links, and whole nodes;
* :mod:`repro.hardware.cost` — a roofline-style kernel cost model with
  device-kind sensitivity knobs (branch divergence, memory irregularity,
  occupancy saturation);
* :mod:`repro.hardware.topology` — binds a node spec to the discrete-event
  engine: device execution resources, host↔device transfer links (including
  device-to-device staging through host memory, as the paper's Section V.C.3
  requires), and intra-device copies;
* :mod:`repro.hardware.presets` — ready-made nodes, including
  :func:`~repro.hardware.presets.aji_cluster15_node`, calibrated to the
  paper's testbed.

Scheduling decisions in MultiCL depend only on *relative* device
characteristics (which device is faster for which kernel, and what data
movement costs), which is exactly what these models encode.
"""

from repro.hardware.specs import DeviceKind, DeviceSpec, LinkSpec, NodeSpec
from repro.hardware.cost import KernelCost, kernel_time, workgroup_time, transfer_time
from repro.hardware.topology import SimDevice, SimNode
from repro.hardware.presets import (
    aji_cluster15_node,
    symmetric_dual_gpu_node,
    cpu_only_node,
)

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "LinkSpec",
    "NodeSpec",
    "KernelCost",
    "kernel_time",
    "workgroup_time",
    "transfer_time",
    "SimDevice",
    "SimNode",
    "aji_cluster15_node",
    "symmetric_dual_gpu_node",
    "cpu_only_node",
]
