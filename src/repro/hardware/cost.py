"""Roofline-style kernel cost model.

A kernel's execution time on a device is::

    t = launch_overhead + max(flops / eff_gflops, bytes / eff_bandwidth)

where the effective rates fold in (a) the device's base efficiency for
portable OpenCL code, (b) a divergence penalty on compute, (c) an access
irregularity penalty on bandwidth, (d) occupancy (small launches cannot
saturate a GPU), and (e) an optional per-device-kind efficiency override
supplied by the kernel itself.  The override is how the workloads encode
"this SNU-NPB kernel was ported from MPI Fortran and is unoptimised for
GPUs" (paper Section VI.B.1 / Fig. 3) without hand-picking absolute times.

The same module provides transfer-time and microbenchmark helpers used by
the MultiCL device profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.hardware.specs import DeviceKind, DeviceSpec, LinkSpec

__all__ = [
    "KernelCost",
    "effective_gflops",
    "effective_bandwidth_gbs",
    "kernel_time",
    "workgroup_time",
    "transfer_time",
]

GB = 1e9

# Floor occupancy: even a single work-item launch gets this fraction of the
# device (it still uses one lane); prevents degenerate infinite times.
_MIN_OCCUPANCY = 1e-3


@dataclass(frozen=True)
class KernelCost:
    """Work descriptor for one kernel launch.

    Attributes
    ----------
    flops:
        Total floating-point work in the launch.
    bytes:
        Total device-memory traffic of the launch.
    work_items:
        Global NDRange size (total work items).
    workgroup_size:
        Work-group size used for the launch (needed by minikernel profiling:
        one workgroup's share of the work).
    divergence:
        Branch-divergence intensity in [0, 1].
    irregularity:
        Memory-access irregularity in [0, 1] (0 = fully coalesced/streaming).
    efficiency:
        Optional per-device-kind multiplicative efficiency override,
        e.g. ``{DeviceKind.GPU: 0.08}`` for a kernel whose port is a poor
        match for GPUs.  Defaults to 1.0 for unlisted kinds.
    """

    flops: float
    bytes: float
    work_items: int
    workgroup_size: int = 64
    divergence: float = 0.0
    irregularity: float = 0.0
    efficiency: Mapping[DeviceKind, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes < 0:
            raise ValueError("flops/bytes must be non-negative")
        if self.work_items <= 0:
            raise ValueError("work_items must be positive")
        if self.workgroup_size <= 0:
            raise ValueError("workgroup_size must be positive")
        if not 0.0 <= self.divergence <= 1.0:
            raise ValueError(f"divergence={self.divergence} outside [0, 1]")
        if not 0.0 <= self.irregularity <= 1.0:
            raise ValueError(f"irregularity={self.irregularity} outside [0, 1]")
        for kind, eff in self.efficiency.items():
            if eff <= 0:
                raise ValueError(f"efficiency[{kind}] must be positive, got {eff}")

    @property
    def num_workgroups(self) -> int:
        """Number of workgroups in the launch (ceiling division)."""
        return max(1, -(-self.work_items // self.workgroup_size))

    def with_workgroup_size(self, wg: int) -> "KernelCost":
        """Copy of this cost with a different work-group size."""
        return KernelCost(
            flops=self.flops,
            bytes=self.bytes,
            work_items=self.work_items,
            workgroup_size=wg,
            divergence=self.divergence,
            irregularity=self.irregularity,
            efficiency=dict(self.efficiency),
        )

    def scaled(self, factor: float) -> "KernelCost":
        """Copy with flops/bytes/work_items scaled by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return KernelCost(
            flops=self.flops * factor,
            bytes=self.bytes * factor,
            work_items=max(1, int(round(self.work_items * factor))),
            workgroup_size=self.workgroup_size,
            divergence=self.divergence,
            irregularity=self.irregularity,
            efficiency=dict(self.efficiency),
        )


def _occupancy(spec: DeviceSpec, work_items: int) -> float:
    occ = work_items / float(spec.saturation_work_items)
    return min(1.0, max(_MIN_OCCUPANCY, occ))


def effective_gflops(spec: DeviceSpec, cost: KernelCost) -> float:
    """Effective compute rate (GFLOP/s) of ``spec`` running ``cost``."""
    eff = spec.base_compute_efficiency
    eff *= 1.0 - cost.divergence * spec.divergence_penalty
    eff *= cost.efficiency.get(spec.kind, 1.0)
    eff *= _occupancy(spec, cost.work_items)
    return max(spec.peak_gflops * eff, 1e-12)


def effective_bandwidth_gbs(spec: DeviceSpec, cost: KernelCost) -> float:
    """Effective memory bandwidth (GB/s) of ``spec`` running ``cost``."""
    eff = spec.base_memory_efficiency
    eff *= 1.0 - cost.irregularity * spec.irregularity_penalty
    eff *= cost.efficiency.get(spec.kind, 1.0)
    return max(spec.mem_bandwidth_gbs * eff, 1e-12)


def kernel_time(spec: DeviceSpec, cost: KernelCost) -> float:
    """Predicted execution time (s) of one launch of ``cost`` on ``spec``."""
    t_compute = cost.flops / (effective_gflops(spec, cost) * GB)
    t_memory = cost.bytes / (effective_bandwidth_gbs(spec, cost) * GB)
    return spec.launch_overhead_s + max(t_compute, t_memory)


def workgroup_time(spec: DeviceSpec, cost: KernelCost) -> float:
    """Execution time (s) of a launch where only workgroup 0 does work.

    This is the cost of a *minikernel* launch (paper Fig. 2): the full grid
    is launched — so the launch overhead and the (tiny) cost of every other
    workgroup evaluating the guard and returning are preserved — but the
    real work is one workgroup's share.
    """
    groups = cost.num_workgroups
    body = kernel_time(spec, cost) - spec.launch_overhead_s
    # Guard evaluation for the returning groups: one compare per work item.
    guard_flops = cost.work_items
    guard = guard_flops / (effective_gflops(spec, cost) * GB)
    return spec.launch_overhead_s + body / groups + guard


def transfer_time(link: LinkSpec, nbytes: int) -> float:
    """Time (s) to move ``nbytes`` over ``link``."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return link.latency_s + nbytes / (link.bandwidth_gbs * GB)
