"""Bind hardware specs to the discrete-event engine.

:class:`SimNode` creates one FIFO resource per device execution engine and
one per host↔device link, then exposes task factories for kernel launches
and data transfers.  Device-to-device transfers are staged through host
memory (D2H followed by H2D) because, as the paper notes in Section V.C.3,
"current vendor drivers do not support direct D2D transfer capabilities
across vendors and device types".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.hardware.cost import KernelCost, kernel_time, transfer_time, workgroup_time
from repro.hardware.specs import DeviceSpec, HardwareError, NodeSpec
from repro.sim.engine import SimEngine, SimTask
from repro.sim.resources import FifoResource

__all__ = ["SimDevice", "SimNode"]

GB = 1e9


class SimDevice:
    """A device bound to the engine: spec + serial execution resource."""

    def __init__(self, engine: SimEngine, spec: DeviceSpec) -> None:
        self.engine = engine
        self.spec = spec
        self.resource = FifoResource(engine, f"dev:{spec.name}")
        #: transient service-time multiplier (fault injection: thermal
        #: throttling / noisy neighbours); 1.0 = nominal speed.
        self.slowdown = 1.0

    @property
    def name(self) -> str:
        return self.spec.name

    def submit_kernel(
        self,
        name: str,
        cost: KernelCost,
        deps: Optional[Sequence[SimTask]] = None,
        category: str = "kernel",
        minikernel: bool = False,
        meta: Optional[dict] = None,
    ) -> SimTask:
        """Enqueue a kernel launch on this device's execution resource."""
        duration = (
            workgroup_time(self.spec, cost) if minikernel else kernel_time(self.spec, cost)
        )
        duration *= self.slowdown
        info = {"device": self.name, "kernel": name, "minikernel": minikernel}
        if meta:
            info.update(meta)
        return self.engine.task(
            name=f"{name}@{self.name}",
            duration=duration,
            resource=self.resource,
            deps=list(deps or []),
            category=category,
            meta=info,
        )

    def submit_intradevice_copy(
        self,
        nbytes: int,
        deps: Optional[Sequence[SimTask]] = None,
        category: str = "transfer",
        name: str = "d2d-local",
        meta: Optional[dict] = None,
    ) -> SimTask:
        """A copy within device memory (charged at device bandwidth)."""
        duration = nbytes / (self.spec.mem_bandwidth_gbs * GB) * self.slowdown
        info = {"device": self.name, "bytes": nbytes, "direction": "local"}
        if meta:
            info.update(meta)
        return self.engine.task(
            name=f"{name}@{self.name}",
            duration=duration,
            resource=self.resource,
            deps=list(deps or []),
            category=category,
            meta=info,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimDevice({self.spec.name!r}, kind={self.spec.kind.value})"


class SimNode:
    """A heterogeneous node bound to one engine.

    With ``duplex_links=True`` each physical link gets *two* FIFO resources
    — ``link:<name>:h2d`` and ``link:<name>:d2h`` — modelling the separate
    upload/download DMA engines of modern PCIe devices, so an H2D prefetch
    and a D2H read-back can be in flight simultaneously (the hardware half
    of transfer/compute overlap; the software half is
    :mod:`repro.ocl.overlap`).  Off by default: the single shared resource
    per link keeps traces and utilization reports bit-identical for every
    existing workload.
    """

    def __init__(
        self, engine: SimEngine, spec: NodeSpec, duplex_links: bool = False
    ) -> None:
        self.engine = engine
        self.spec = spec
        self.duplex_links = bool(duplex_links)
        self.devices: Dict[str, SimDevice] = {
            d.name: SimDevice(engine, d) for d in spec.devices
        }
        # Devices whose LinkSpec share a *name* share one physical link —
        # one FIFO resource (per direction, if duplex), so their transfers
        # contend.  This is how sub-devices created by clCreateSubDevices
        # keep sharing their parent's PCIe/DRAM path.
        by_name: Dict[str, FifoResource] = {}
        by_name_d2h: Dict[str, FifoResource] = {}
        self.links: Dict[str, FifoResource] = {}
        #: D2H-direction resource per device (== links[dev] when simplex).
        self.d2h_links: Dict[str, FifoResource] = {}
        for dev, link in spec.host_links.items():
            if link.name not in by_name:
                if self.duplex_links:
                    by_name[link.name] = FifoResource(
                        engine, f"link:{link.name}:h2d"
                    )
                    by_name_d2h[link.name] = FifoResource(
                        engine, f"link:{link.name}:d2h"
                    )
                else:
                    by_name[link.name] = FifoResource(engine, f"link:{link.name}")
                    by_name_d2h[link.name] = by_name[link.name]
            self.links[dev] = by_name[link.name]
            self.d2h_links[dev] = by_name_d2h[link.name]

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def device(self, name: str) -> SimDevice:
        try:
            return self.devices[name]
        except KeyError:
            raise HardwareError(f"no device named {name!r} on node {self.spec.name}")

    def device_list(self) -> List[SimDevice]:
        """Devices in spec order (stable — index == OpenCL device index)."""
        return [self.devices[d.name] for d in self.spec.devices]

    # ------------------------------------------------------------------
    # Analytic transfer costs (used by the scheduler's cost estimates)
    # ------------------------------------------------------------------
    def h2d_seconds(self, device: str, nbytes: int) -> float:
        """Predicted host-to-device transfer time."""
        return transfer_time(self.spec.host_links[device], nbytes)

    def d2h_seconds(self, device: str, nbytes: int) -> float:
        """Predicted device-to-host transfer time (symmetric links)."""
        return transfer_time(self.spec.host_links[device], nbytes)

    def d2d_seconds(self, src: str, dst: str, nbytes: int) -> float:
        """Predicted device-to-device time: staged D2H + H2D via host."""
        if src == dst:
            return nbytes / (self.device(src).spec.mem_bandwidth_gbs * GB)
        return self.d2h_seconds(src, nbytes) + self.h2d_seconds(dst, nbytes)

    # ------------------------------------------------------------------
    # Transfer task factories (charge simulated time on link resources)
    # ------------------------------------------------------------------
    def submit_h2d(
        self,
        device: str,
        nbytes: int,
        deps: Optional[Sequence[SimTask]] = None,
        category: str = "transfer",
        name: str = "h2d",
        meta: Optional[dict] = None,
    ) -> SimTask:
        # Raw link time (not self.h2d_seconds: subclasses may override the
        # estimate to include extra hops they charge as separate tasks).
        duration = transfer_time(self.spec.host_links[device], nbytes)
        info = {"device": device, "bytes": nbytes, "direction": "h2d"}
        if meta:
            info.update(meta)
        return self.engine.task(
            name=f"{name}:host->{device}",
            duration=duration,
            resource=self.links[device],
            deps=list(deps or []),
            category=category,
            meta=info,
        )

    def submit_d2h(
        self,
        device: str,
        nbytes: int,
        deps: Optional[Sequence[SimTask]] = None,
        category: str = "transfer",
        name: str = "d2h",
        meta: Optional[dict] = None,
    ) -> SimTask:
        duration = transfer_time(self.spec.host_links[device], nbytes)
        info = {"device": device, "bytes": nbytes, "direction": "d2h"}
        if meta:
            info.update(meta)
        return self.engine.task(
            name=f"{name}:{device}->host",
            duration=duration,
            resource=self.d2h_links[device],
            deps=list(deps or []),
            category=category,
            meta=info,
        )

    def submit_d2d(
        self,
        src: str,
        dst: str,
        nbytes: int,
        deps: Optional[Sequence[SimTask]] = None,
        category: str = "transfer",
        name: str = "d2d",
        meta: Optional[dict] = None,
    ) -> SimTask:
        """Device→device move, staged through host memory.

        Returns the final (H2D) task; its completion means the data is
        resident on ``dst``.
        """
        if src == dst:
            return self.device(src).submit_intradevice_copy(
                nbytes, deps=deps, category=category, name=name, meta=meta
            )
        stage = self.submit_d2h(src, nbytes, deps=deps, category=category,
                                name=name, meta=meta)
        return self.submit_h2d(dst, nbytes, deps=[stage], category=category,
                               name=name, meta=meta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimNode({self.spec.name!r}, devices={list(self.devices)})"
