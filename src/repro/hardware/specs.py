"""Frozen hardware descriptions: devices, links, nodes.

These are *pure data*; binding them to the discrete-event engine happens in
:mod:`repro.hardware.topology`.  All bandwidths are GB/s (1e9 bytes/s), all
latencies are seconds, memory sizes are bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Tuple

__all__ = ["DeviceKind", "DeviceSpec", "LinkSpec", "NodeSpec", "HardwareError"]

GB = 1e9
MB = 1e6
KB = 1e3


class HardwareError(ValueError):
    """Raised for inconsistent hardware descriptions."""


class DeviceKind(str, Enum):
    """OpenCL device kinds we model (maps to CL_DEVICE_TYPE_*)."""

    CPU = "cpu"
    GPU = "gpu"
    ACCELERATOR = "accelerator"


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one OpenCL device.

    Attributes
    ----------
    name:
        Unique device name within a node (e.g. ``"gpu0"``).
    kind:
        :class:`DeviceKind`.
    compute_units:
        Number of OpenCL compute units (CPU cores or GPU SMs).
    clock_ghz:
        Core clock; informational and used for the instruction-throughput
        microbenchmark sanity checks.
    peak_gflops:
        Peak single-precision throughput (GFLOP/s).
    mem_bandwidth_gbs:
        Peak device-memory bandwidth (GB/s).
    mem_size_bytes:
        Device memory capacity; allocations beyond it raise CL_MEM errors.
    launch_overhead_s:
        Fixed per-kernel-launch latency charged by the device.
    base_compute_efficiency:
        Fraction of peak compute achievable by well-behaved portable OpenCL
        code on this device (captures how "unoptimised for the architecture"
        the SNU-NPB kernels are, per the paper's Section VI.B.1).
    base_memory_efficiency:
        Fraction of peak bandwidth achievable by streaming portable code.
    divergence_penalty:
        How strongly branch divergence degrades compute efficiency on this
        device (GPUs: high; CPUs: low).
    irregularity_penalty:
        How strongly non-coalesced / strided access degrades effective
        bandwidth (GPUs: high; CPUs: moderate — caches help).
    saturation_work_items:
        Work-item count needed to saturate the device; smaller launches are
        charged proportionally lower occupancy.
    socket:
        NUMA socket the device is attached to (for topology bookkeeping).
    """

    name: str
    kind: DeviceKind
    compute_units: int
    clock_ghz: float
    peak_gflops: float
    mem_bandwidth_gbs: float
    mem_size_bytes: int
    launch_overhead_s: float = 10e-6
    base_compute_efficiency: float = 0.5
    base_memory_efficiency: float = 0.6
    divergence_penalty: float = 0.5
    irregularity_penalty: float = 0.5
    saturation_work_items: int = 1 << 14
    socket: int = 0

    def __post_init__(self) -> None:
        if self.compute_units <= 0:
            raise HardwareError(f"{self.name}: compute_units must be positive")
        if self.peak_gflops <= 0 or self.mem_bandwidth_gbs <= 0:
            raise HardwareError(f"{self.name}: peak rates must be positive")
        if self.mem_size_bytes <= 0:
            raise HardwareError(f"{self.name}: mem_size_bytes must be positive")
        for attr in (
            "base_compute_efficiency",
            "base_memory_efficiency",
            "divergence_penalty",
            "irregularity_penalty",
        ):
            v = getattr(self, attr)
            if not 0.0 <= v <= 1.0:
                raise HardwareError(f"{self.name}: {attr}={v} outside [0, 1]")
        if self.launch_overhead_s < 0:
            raise HardwareError(f"{self.name}: negative launch overhead")


@dataclass(frozen=True)
class LinkSpec:
    """A host↔device transfer link (one direction-pair, shared FIFO)."""

    name: str
    latency_s: float
    bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise HardwareError(f"link {self.name}: negative latency")
        if self.bandwidth_gbs <= 0:
            raise HardwareError(f"link {self.name}: bandwidth must be positive")


@dataclass(frozen=True)
class NodeSpec:
    """A whole compute node: devices plus their host links.

    ``host_links`` maps device name → :class:`LinkSpec` used for both H2D and
    D2H transfers of that device (the paper's testbed has symmetric PCIe
    links; asymmetry can be modelled with distinct specs if needed via
    ``h2d_links``/``d2h_links`` overrides).
    """

    name: str
    devices: Tuple[DeviceSpec, ...]
    host_links: Dict[str, LinkSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [d.name for d in self.devices]
        if len(set(names)) != len(names):
            raise HardwareError(f"node {self.name}: duplicate device names {names}")
        if not self.devices:
            raise HardwareError(f"node {self.name}: needs at least one device")
        missing = [n for n in names if n not in self.host_links]
        if missing:
            raise HardwareError(
                f"node {self.name}: devices missing host links: {missing}"
            )

    @property
    def device_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.devices)

    def device(self, name: str) -> DeviceSpec:
        for d in self.devices:
            if d.name == name:
                return d
        raise HardwareError(f"node {self.name}: no device named {name!r}")
