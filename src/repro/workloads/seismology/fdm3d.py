"""3-D staggered-grid elastic velocity–stress solver.

The paper's FDM-Seismology "divides the domain into a three-dimensional
grid" (Section VI.B.2).  :mod:`repro.workloads.seismology.fdm` models the
two-queue driver with a 2-D solver for speed; this module is the
full-fidelity 3-D reference: nine wavefields (three velocities, six
stress components) on a standard (Madariaga–Virieux) staggered grid,

* velocities:  ∂t vᵢ = (1/ρ) ∑ⱼ ∂ⱼ σᵢⱼ
* stresses:    ∂t σᵢⱼ = λ δᵢⱼ ∇·v + μ (∂ᵢ vⱼ + ∂ⱼ vᵢ)

with a Cerjan sponge on all six faces, a Ricker source in the normal
stresses, and the same *two independent x-regions with halo exchange*
structure as the 2-D solver — :class:`RegionPair3D` reproduces the
monolithic solution bit-for-bit, which the test suite asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.workloads.seismology.fdm import ricker_wavelet

__all__ = ["FDM3DParameters", "FDM3DSimulation", "RegionPair3D"]

VELOCITY_FIELDS = ("vx", "vy", "vz")
STRESS_FIELDS = ("sxx", "syy", "szz", "sxy", "sxz", "syz")
ALL_FIELDS = VELOCITY_FIELDS + STRESS_FIELDS


@dataclass(frozen=True)
class FDM3DParameters:
    """Physical + discretisation parameters (defaults CFL-safe)."""

    nx: int = 48
    ny: int = 48
    nz: int = 48
    dx: float = 10.0
    dt: float = 1e-3
    vp: float = 3000.0
    vs: float = 1800.0
    rho: float = 2200.0
    source_frequency: float = 12.0
    sponge_width: int = 8
    sponge_strength: float = 0.02

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 12:
            raise ValueError("grid too small (need ≥ 12 points per side)")
        cfl = self.vp * self.dt * math.sqrt(3.0) / self.dx
        if cfl >= 1.0:
            raise ValueError(
                f"CFL violated: vp*dt*sqrt(3)/dx = {cfl:.3f} must be < 1"
            )
        if self.vs >= self.vp:
            raise ValueError("shear velocity must be below P velocity")

    @property
    def lam(self) -> float:
        return self.rho * (self.vp ** 2 - 2.0 * self.vs ** 2)

    @property
    def mu(self) -> float:
        return self.rho * self.vs ** 2


def _sponge(n: int, width: int, strength: float) -> np.ndarray:
    prof = np.ones(n)
    for i in range(width):
        d = math.exp(-((strength * (width - i)) ** 2))
        prof[i] = d
        prof[n - 1 - i] = d
    return prof


def _dplus(f: np.ndarray, axis: int) -> np.ndarray:
    """Forward difference along ``axis`` (valid on [0, n-1))."""
    a = [slice(None)] * 3
    b = [slice(None)] * 3
    a[axis] = slice(1, None)
    b[axis] = slice(None, -1)
    return f[tuple(a)] - f[tuple(b)]


class FDM3DSimulation:
    """Monolithic 3-D solver: nine wavefields on one grid."""

    def __init__(self, params: FDM3DParameters) -> None:
        self.p = params
        shape = (params.nx, params.ny, params.nz)
        for name in ALL_FIELDS:
            setattr(self, name, np.zeros(shape))
        self.step_index = 0
        sx = _sponge(params.nx, params.sponge_width, params.sponge_strength)
        sy = _sponge(params.ny, params.sponge_width, params.sponge_strength)
        sz = _sponge(params.nz, params.sponge_width, params.sponge_strength)
        self._damp = sx[:, None, None] * sy[None, :, None] * sz[None, None, :]
        self._source_pos = (params.nx // 2, params.ny // 2, params.nz // 3)

    # ------------------------------------------------------------------
    # Update phases (interior points; Dirichlet walls)
    # ------------------------------------------------------------------
    def step_velocity(self, x_range: Tuple[int, int] | None = None) -> None:
        p = self.p
        c = p.dt / (p.rho * p.dx)
        lo = max(x_range[0], 1) if x_range else 1
        hi = min(x_range[1], p.nx - 1) if x_range else p.nx - 1
        sl = slice(lo, hi)
        i = (sl, slice(1, -1), slice(1, -1))
        # vx += c (D-x sxx + D-y sxy + D-z sxz): backward differences land
        # on the staggered positions; implemented via shifted slices.
        self.vx[i] += c * (
            (self.sxx[lo + 1 : hi + 1, 1:-1, 1:-1] - self.sxx[i])
            + (self.sxy[sl, 1:-1, 1:-1] - self.sxy[sl, :-2, 1:-1])
            + (self.sxz[sl, 1:-1, 1:-1] - self.sxz[sl, 1:-1, :-2])
        )
        self.vy[i] += c * (
            (self.sxy[i] - self.sxy[lo - 1 : hi - 1, 1:-1, 1:-1])
            + (self.syy[sl, 2:, 1:-1] - self.syy[i])
            + (self.syz[sl, 1:-1, 1:-1] - self.syz[sl, 1:-1, :-2])
        )
        self.vz[i] += c * (
            (self.sxz[i] - self.sxz[lo - 1 : hi - 1, 1:-1, 1:-1])
            + (self.syz[sl, 1:-1, 1:-1] - self.syz[sl, :-2, 1:-1])
            + (self.szz[sl, 1:-1, 2:] - self.szz[i])
        )
        for name in VELOCITY_FIELDS:
            f = getattr(self, name)
            f[sl, :, :] *= self._damp[sl, :, :]

    def step_stress(self, x_range: Tuple[int, int] | None = None) -> None:
        p = self.p
        dtdx = p.dt / p.dx
        lam, mu = p.lam, p.mu
        l2m = lam + 2.0 * mu
        lo = max(x_range[0], 1) if x_range else 1
        hi = min(x_range[1], p.nx - 1) if x_range else p.nx - 1
        sl = slice(lo, hi)
        i = (sl, slice(1, -1), slice(1, -1))
        dvxdx = self.vx[i] - self.vx[lo - 1 : hi - 1, 1:-1, 1:-1]
        dvydy = self.vy[i] - self.vy[sl, :-2, 1:-1]
        dvzdz = self.vz[i] - self.vz[sl, 1:-1, :-2]
        self.sxx[i] += dtdx * (l2m * dvxdx + lam * (dvydy + dvzdz))
        self.syy[i] += dtdx * (l2m * dvydy + lam * (dvxdx + dvzdz))
        self.szz[i] += dtdx * (l2m * dvzdz + lam * (dvxdx + dvydy))
        dvxdy = self.vx[sl, 2:, 1:-1] - self.vx[i]
        dvydx = self.vy[lo + 1 : hi + 1, 1:-1, 1:-1] - self.vy[i]
        self.sxy[i] += dtdx * mu * (dvxdy + dvydx)
        dvxdz = self.vx[sl, 1:-1, 2:] - self.vx[i]
        dvzdx = self.vz[lo + 1 : hi + 1, 1:-1, 1:-1] - self.vz[i]
        self.sxz[i] += dtdx * mu * (dvxdz + dvzdx)
        dvydz = self.vy[sl, 1:-1, 2:] - self.vy[i]
        dvzdy = self.vz[sl, 2:, 1:-1] - self.vz[i]
        self.syz[i] += dtdx * mu * (dvydz + dvzdy)
        for name in STRESS_FIELDS:
            f = getattr(self, name)
            f[sl, :, :] *= self._damp[sl, :, :]

    def inject_source(self) -> None:
        p = self.p
        t = (self.step_index + 0.5) * p.dt
        amp = float(ricker_wavelet(np.asarray([t]), p.source_frequency)[0])
        i, j, k = self._source_pos
        for name in ("sxx", "syy", "szz"):
            getattr(self, name)[i, j, k] += amp * p.dt

    def step(self) -> None:
        self.step_velocity()
        self.step_stress()
        self.inject_source()
        self.step_index += 1

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def energy(self) -> float:
        kinetic = 0.5 * self.p.rho * sum(
            float((getattr(self, f) ** 2).sum()) for f in VELOCITY_FIELDS
        )
        strain = sum(
            float((getattr(self, f) ** 2).sum()) for f in STRESS_FIELDS
        )
        return kinetic + strain / (2.0 * self.p.mu)

    def snapshot(self) -> Dict[str, np.ndarray]:
        return {f: getattr(self, f).copy() for f in ALL_FIELDS}


class RegionPair3D:
    """The 3-D scheme split into two x-subdomains with halo exchange.

    Identical structure to the 2-D :class:`RegionPairSimulation`: each
    phase is computed strictly region-by-region over disjoint x ranges, so
    two command queues can own the regions; the result is bit-for-bit
    equal to the monolithic solver.
    """

    def __init__(self, params: FDM3DParameters) -> None:
        if params.nx % 2:
            raise ValueError("nx must be even for a two-region split")
        self.p = params
        self.mono = FDM3DSimulation(params)
        self.half = params.nx // 2
        self.step_index = 0

    def _range(self, region: int) -> Tuple[int, int]:
        return (0, self.half) if region == 0 else (self.half, self.p.nx)

    def step_velocity_region(self, region: int) -> None:
        self.mono.step_velocity(self._range(region))

    def step_stress_region(self, region: int) -> None:
        self.mono.step_stress(self._range(region))

    def inject_source(self) -> None:
        self.mono.step_index = self.step_index
        self.mono.inject_source()

    def step(self) -> None:
        self.step_velocity_region(0)
        self.step_velocity_region(1)
        self.step_stress_region(0)
        self.step_stress_region(1)
        self.inject_source()
        self.step_index += 1
        self.mono.step_index = self.step_index

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    def energy(self) -> float:
        return self.mono.energy()

    def interface_halo_bytes(self) -> int:
        """Bytes exchanged per phase: 9 fields, one yz-plane."""
        return len(ALL_FIELDS) * self.p.ny * self.p.nz * 8
