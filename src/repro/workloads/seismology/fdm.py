"""2-D staggered-grid velocity–stress finite-difference seismic solver.

The paper's FDM-Seismology application "implements a parallel
velocity-stress, staggered-grid finite-difference approach for propagation
of waves in a layered medium", with absorbing boundary conditions around
the region of interest and the wavefields "divided into two independent
regions [that] can be computed in parallel".

This module is the real numerical substrate: an elastic P-SV solver on a
standard (Virieux) staggered grid,

* velocity updates:   ∂t vx = (1/ρ)(∂x σxx + ∂z σxz)
*                     ∂t vz = (1/ρ)(∂x σxz + ∂z σzz)
* stress updates:     ∂t σxx = (λ+2μ) ∂x vx + λ ∂z vz
*                     ∂t σzz = λ ∂x vx + (λ+2μ) ∂z vz
*                     ∂t σxz = μ (∂z vx + ∂x vz)

with a Cerjan sponge (exponential damping) absorbing layer and a Ricker
source wavelet injected into the normal stresses.

:class:`RegionPairSimulation` runs the same scheme split into two
subdomains with explicit interface halo exchange — the structure the
two-command-queue OpenCL driver mirrors — and reproduces the monolithic
solution *exactly* (bit-for-bit), which the test suite asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "FDMParameters",
    "FDMSimulation",
    "RegionPairSimulation",
    "ricker_wavelet",
]


def ricker_wavelet(t: np.ndarray, peak_frequency: float) -> np.ndarray:
    """Ricker (Mexican-hat) source time function, peak at t = 1/f."""
    a = (math.pi * peak_frequency * (t - 1.0 / peak_frequency)) ** 2
    return (1.0 - 2.0 * a) * np.exp(-a)


@dataclass(frozen=True)
class FDMParameters:
    """Physical + discretisation parameters for the solver.

    Defaults describe a small homogeneous medium comfortably inside the
    CFL limit ``dt ≤ dx / (vp √2)``.
    """

    nx: int = 128
    nz: int = 128
    dx: float = 10.0  # m
    dt: float = 1e-3  # s
    vp: float = 3000.0  # m/s
    vs: float = 1800.0  # m/s
    rho: float = 2200.0  # kg/m^3
    source_frequency: float = 12.0  # Hz
    sponge_width: int = 12
    sponge_strength: float = 0.015

    def __post_init__(self) -> None:
        if self.nx < 16 or self.nz < 16:
            raise ValueError("grid too small (need ≥ 16 points per side)")
        cfl = self.vp * self.dt * math.sqrt(2.0) / self.dx
        if cfl >= 1.0:
            raise ValueError(
                f"CFL violated: vp*dt*sqrt(2)/dx = {cfl:.3f} must be < 1"
            )
        if self.vs >= self.vp:
            raise ValueError("shear velocity must be below P velocity")

    @property
    def lam(self) -> float:
        """First Lamé parameter λ = ρ(vp² − 2 vs²)."""
        return self.rho * (self.vp ** 2 - 2.0 * self.vs ** 2)

    @property
    def mu(self) -> float:
        """Shear modulus μ = ρ vs²."""
        return self.rho * self.vs ** 2


def _sponge_profile(n: int, width: int, strength: float) -> np.ndarray:
    """Cerjan damping factors along one axis (1 in the interior)."""
    prof = np.ones(n)
    for i in range(width):
        d = math.exp(-((strength * (width - i)) ** 2))
        prof[i] = d
        prof[n - 1 - i] = d
    return prof


class FDMSimulation:
    """Monolithic solver: five wavefields on one grid."""

    def __init__(self, params: FDMParameters) -> None:
        self.p = params
        shape = (params.nx, params.nz)
        self.vx = np.zeros(shape)
        self.vz = np.zeros(shape)
        self.sxx = np.zeros(shape)
        self.szz = np.zeros(shape)
        self.sxz = np.zeros(shape)
        self.step_index = 0
        sx = _sponge_profile(params.nx, params.sponge_width, params.sponge_strength)
        sz = _sponge_profile(params.nz, params.sponge_width, params.sponge_strength)
        self._damp = sx[:, None] * sz[None, :]
        self._source_pos = (params.nx // 2, params.nz // 3)

    # -- update phases ------------------------------------------------------
    def step_velocity(self) -> None:
        p = self.p
        c = p.dt / (p.rho * p.dx)
        vx, vz = self.vx, self.vz
        sxx, szz, sxz = self.sxx, self.szz, self.sxz
        vx[1:-1, 1:-1] += c * (
            (sxx[2:, 1:-1] - sxx[1:-1, 1:-1]) + (sxz[1:-1, 1:-1] - sxz[1:-1, :-2])
        )
        vz[1:-1, 1:-1] += c * (
            (sxz[1:-1, 1:-1] - sxz[:-2, 1:-1]) + (szz[1:-1, 2:] - szz[1:-1, 1:-1])
        )
        vx *= self._damp
        vz *= self._damp

    def step_stress(self) -> None:
        p = self.p
        dtdx = p.dt / p.dx
        lam, mu, l2m = p.lam, p.mu, p.lam + 2.0 * p.mu
        vx, vz = self.vx, self.vz
        dvxdx = vx[1:-1, 1:-1] - vx[:-2, 1:-1]
        dvzdz = vz[1:-1, 1:-1] - vz[1:-1, :-2]
        self.sxx[1:-1, 1:-1] += dtdx * (l2m * dvxdx + lam * dvzdz)
        self.szz[1:-1, 1:-1] += dtdx * (lam * dvxdx + l2m * dvzdz)
        dvxdz = vx[1:-1, 2:] - vx[1:-1, 1:-1]
        dvzdx = vz[2:, 1:-1] - vz[1:-1, 1:-1]
        self.sxz[1:-1, 1:-1] += dtdx * mu * (dvxdz + dvzdx)
        for f in (self.sxx, self.szz, self.sxz):
            f *= self._damp

    def inject_source(self) -> None:
        p = self.p
        t = (self.step_index + 0.5) * p.dt
        amp = float(ricker_wavelet(np.asarray([t]), p.source_frequency)[0])
        i, j = self._source_pos
        self.sxx[i, j] += amp * p.dt
        self.szz[i, j] += amp * p.dt

    def step(self) -> None:
        """One full time step: velocity, then stress + source."""
        self.step_velocity()
        self.step_stress()
        self.inject_source()
        self.step_index += 1

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    # -- diagnostics --------------------------------------------------------
    def energy(self) -> float:
        """Kinetic + strain energy proxy (bounded if stable)."""
        kinetic = 0.5 * self.p.rho * float((self.vx ** 2 + self.vz ** 2).sum())
        strain = float((self.sxx ** 2 + self.szz ** 2 + self.sxz ** 2).sum())
        return kinetic + strain / (2.0 * self.p.mu)

    def wavefield_snapshot(self) -> Dict[str, np.ndarray]:
        return {
            "vx": self.vx.copy(),
            "vz": self.vz.copy(),
            "sxx": self.sxx.copy(),
            "szz": self.szz.copy(),
            "sxz": self.sxz.copy(),
        }


class RegionPairSimulation:
    """The same scheme split into two x-subdomains with halo exchange.

    Region 0 owns columns ``[0, nx/2)`` and region 1 owns ``[nx/2, nx)``,
    each padded with a one-column halo of the neighbour.  Stepping a phase
    region-by-region and exchanging halos between phases reproduces the
    monolithic stencil exactly — this is what makes the wavefield regions
    "independent" within a phase and computable on two command queues.
    """

    def __init__(self, params: FDMParameters) -> None:
        if params.nx % 2:
            raise ValueError("nx must be even for a two-region split")
        self.p = params
        self.mono = FDMSimulation(params)  # storage reused; stepping below
        self.half = params.nx // 2
        self.step_index = 0

    # The implementation operates on the shared arrays with region slices
    # (a halo exchange is implicit in slicing the full array, but the
    # driver charges explicit transfer time for it).  To keep the "two
    # independent regions" structure honest we compute each phase strictly
    # region-by-region over disjoint column ranges.
    def _col_range(self, region: int) -> Tuple[int, int]:
        return (0, self.half) if region == 0 else (self.half, self.p.nx)

    def step_velocity_region(self, region: int) -> None:
        p = self.p
        c = p.dt / (p.rho * p.dx)
        lo, hi = self._col_range(region)
        lo_i = max(lo, 1)
        hi_i = min(hi, p.nx - 1)
        m = self.mono
        sl = slice(lo_i, hi_i)
        m.vx[sl, 1:-1] += c * (
            (m.sxx[lo_i + 1 : hi_i + 1, 1:-1] - m.sxx[sl, 1:-1])
            + (m.sxz[sl, 1:-1] - m.sxz[sl, :-2])
        )
        m.vz[sl, 1:-1] += c * (
            (m.sxz[sl, 1:-1] - m.sxz[lo_i - 1 : hi_i - 1, 1:-1])
            + (m.szz[sl, 2:] - m.szz[sl, 1:-1])
        )
        m.vx[sl, :] *= m._damp[sl, :]
        m.vz[sl, :] *= m._damp[sl, :]

    def step_stress_region(self, region: int) -> None:
        p = self.p
        dtdx = p.dt / p.dx
        lam, mu, l2m = p.lam, p.mu, p.lam + 2.0 * p.mu
        lo, hi = self._col_range(region)
        lo_i = max(lo, 1)
        hi_i = min(hi, p.nx - 1)
        m = self.mono
        sl = slice(lo_i, hi_i)
        dvxdx = m.vx[sl, 1:-1] - m.vx[lo_i - 1 : hi_i - 1, 1:-1]
        dvzdz = m.vz[sl, 1:-1] - m.vz[sl, :-2]
        m.sxx[sl, 1:-1] += dtdx * (l2m * dvxdx + lam * dvzdz)
        m.szz[sl, 1:-1] += dtdx * (lam * dvxdx + l2m * dvzdz)
        dvxdz = m.vx[sl, 2:] - m.vx[sl, 1:-1]
        dvzdx = m.vz[lo_i + 1 : hi_i + 1, 1:-1] - m.vz[sl, 1:-1]
        m.sxz[sl, 1:-1] += dtdx * mu * (dvxdz + dvzdx)
        for f in (m.sxx, m.szz, m.sxz):
            f[sl, :] *= m._damp[sl, :]

    def inject_source(self) -> None:
        # The source sits in region 1's column range in the driver; physics
        # identical to the monolithic path.
        m = self.mono
        m.step_index = self.step_index
        m.inject_source()

    def step(self) -> None:
        """One full step through the region-split phases."""
        self.step_velocity_region(0)
        self.step_velocity_region(1)
        self.step_stress_region(0)
        self.step_stress_region(1)
        self.inject_source()
        self.step_index += 1
        self.mono.step_index = self.step_index

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    def energy(self) -> float:
        return self.mono.energy()

    @property
    def source_region(self) -> int:
        return 0 if self.mono._source_pos[0] < self.half else 1

    def interface_halo_bytes(self) -> int:
        """Bytes exchanged at the interface per phase (5 fields, 1 column)."""
        return 5 * self.p.nz * 8
