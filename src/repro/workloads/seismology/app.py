"""FDM-Seismology OpenCL driver (paper Section VI.B.2, Figs. 9 and 10).

Structure, matching the paper exactly:

* the wavefields are divided into two independent regions, each computed
  by its own command queue;
* the velocity wavefields use **7 kernels** — 3 on region 1, 4 on region 2
  (the extra one injects the source);
* the stress wavefields use **25 kernels** — 11 on region 1, 14 on
  region 2 (the update sweeps are strip-decomposed, as in the original
  code derived from Fortran DISFD);
* two data-layout variants exist: **column-major** (follows Fortran's
  arrays; best when both queues land on the CPU, worst on a single GPU —
  a 2.7× spread) and **row-major** (GPU-amenable; best split across the
  two GPUs, 2.3× better than the worst all-CPU mapping);
* each iteration is one synchronization epoch, so the driver uses
  ``SCHED_KERNEL_EPOCH`` in auto mode (the paper notes
  ``SCHED_EXPLICIT_REGION`` around the first iteration behaves the same).

In functional mode the kernels carry the *real* region-split solver of
:mod:`repro.workloads.seismology.fdm` as host payloads, with stress phases
waiting on both regions' velocity events — the interface coupling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.flags import SchedulerConfig
from repro.core.runtime import MultiCL
from repro.hardware.specs import NodeSpec
from repro.ocl.context import Context
from repro.ocl.enums import ContextScheduler, SchedFlag
from repro.ocl.event import Event
from repro.ocl.queue import CommandQueue
from repro.workloads.base import WorkloadError, WorkloadRun
from repro.workloads.npb.common import kernel_source
from repro.workloads.seismology.fdm import FDMParameters, RegionPairSimulation
from repro.workloads.seismology.fdm3d import FDM3DParameters, RegionPair3D

__all__ = ["FDMSeismologyApp", "run_seismology", "DEVICE_COMBOS", "LAYOUTS"]

LAYOUTS = ("column", "row")

#: The nine manual queue→device mappings of Fig. 9 (two queues, three
#: devices), in the paper's order.
DEVICE_COMBOS: Tuple[Tuple[str, str], ...] = (
    ("gpu0", "gpu0"),
    ("gpu1", "gpu1"),
    ("cpu", "cpu"),
    ("gpu0", "gpu1"),
    ("gpu0", "cpu"),
    ("gpu1", "gpu0"),
    ("gpu1", "cpu"),
    ("cpu", "gpu0"),
    ("cpu", "gpu1"),
)

#: Modelled per-region grid (cost model only; functional runs use a small
#: real grid).  Calibrated so per-iteration times match Fig. 9's scale.
_MODEL_NX = 2880
_MODEL_NZ = 2880

#: Layout-dependent kernel characteristics (see module docstring).
_LAYOUT_ANNOTATIONS = {
    "column": {"irregularity": 0.70, "cpu_eff": 1.0, "gpu_eff": 0.17},
    "row": {"irregularity": 0.08, "cpu_eff": 0.65, "gpu_eff": 0.184},
}

#: Velocity kernels per region (paper: 3 on region 1, 4 on region 2).
_VELOCITY_KERNELS = (
    ("vel_vx", "vel_vz", "vel_sponge"),
    ("vel_vx", "vel_vz", "vel_sponge", "vel_source"),
)
#: Stress strip counts per region: 3+3+3+2 = 11 and 4+4+4+2 = 14.
_STRESS_STRIPS = (3, 4)

_FUNCTIONAL_PARAMS = FDMParameters(nx=96, nz=96)
_FUNCTIONAL_PARAMS_3D = FDM3DParameters(nx=32, ny=32, nz=32)


class FDMSeismologyApp:
    """Builds the kernels/buffers and enqueues iterations."""

    def __init__(
        self,
        layout: str = "column",
        steps: int = 50,
        functional: bool = False,
        solver_dim: int = 2,
    ) -> None:
        if layout not in LAYOUTS:
            raise WorkloadError(f"layout must be one of {LAYOUTS}, got {layout!r}")
        if steps < 1:
            raise WorkloadError("steps must be >= 1")
        if solver_dim not in (2, 3):
            raise WorkloadError("solver_dim must be 2 or 3")
        self.layout = layout
        self.steps = steps
        self.functional = functional
        self.solver_dim = solver_dim
        self.context: Optional[Context] = None
        self.queues: List[CommandQueue] = []
        self.checks: Dict[str, object] = {}
        # Functional payloads: the fast 2-D solver by default, or the
        # full-fidelity 3-D elastic solver (the paper's "three-dimensional
        # grid") — both expose the same region-split interface.
        self.sim = None
        if functional:
            self.sim = (
                RegionPairSimulation(_FUNCTIONAL_PARAMS)
                if solver_dim == 2
                else RegionPair3D(_FUNCTIONAL_PARAMS_3D)
            )

    # ------------------------------------------------------------------
    # Source generation
    # ------------------------------------------------------------------
    def _region_points(self) -> int:
        return _MODEL_NX * _MODEL_NZ

    def generate_source(self) -> str:
        ann = _LAYOUT_ANNOTATIONS[self.layout]
        src = ""

        def add(name: str, flops: float, bytes_: float, writes: str = "0") -> None:
            nonlocal src
            src += kernel_source(
                name,
                "__global double* f0, __global double* f1, __global double* f2, int n",
                {
                    "flops_per_item": flops,
                    "bytes_per_item": bytes_,
                    "divergence": 0.05,
                    "writes": writes,
                    **ann,
                },
                body=f"/* {name} staggered-grid sweep ({self.layout}-major) */",
            )

        for region in (0, 1):
            for kname in _VELOCITY_KERNELS[region]:
                if kname == "vel_source":
                    # Point source injection: trivial work.
                    src += kernel_source(
                        f"{kname}_r{region}",
                        "__global double* f0, __global double* f1, "
                        "__global double* f2, int n",
                        {
                            "flops_per_item": 8,
                            "bytes_per_item": 16,
                            "divergence": 0.0,
                            "irregularity": 0.0,
                            "cpu_eff": 1.0,
                            "gpu_eff": 0.5,
                            "writes": "0,1",
                        },
                        body="/* Ricker wavelet injection */",
                    )
                else:
                    add(f"{kname}_r{region}", 14, 44, writes="0")
            strips = _STRESS_STRIPS[region]
            for comp in ("sxx", "szz", "sxz"):
                for s in range(strips):
                    add(f"st_{comp}{s}_r{region}", 16, 52 / strips * 3, writes="0")
            for s in range(2):
                add(f"st_sponge{s}_r{region}", 4, 24, writes="0,1,2")
        return src

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self, context: Context, queues: Sequence[CommandQueue]) -> None:
        if len(queues) != 2:
            raise WorkloadError("FDM-Seismology uses exactly two command queues")
        self.context = context
        self.queues = list(queues)
        program = context.create_program(self.generate_source()).build()
        self.program = program
        pts = self._region_points()
        self._region_state: List[Dict[str, object]] = []
        for region, q in enumerate(self.queues):
            halo_bytes = max(5 * _MODEL_NZ * 8, 64)
            bufs = {
                "v": context.create_buffer(pts * 2 * 8, name=f"fdm-v-r{region}"),
                "s": context.create_buffer(pts * 3 * 8, name=f"fdm-s-r{region}"),
                # Outgoing boundary strip: written by this region's sponge
                # kernels, copied to the neighbour each step.
                "halo": context.create_buffer(halo_bytes, name=f"fdm-halo-r{region}"),
                # Incoming ghost cells: written only by the halo-exchange
                # copy, read by this region's stress kernels.
                "halo_in": context.create_buffer(
                    halo_bytes, name=f"fdm-halo-in-r{region}"
                ),
            }
            q.enqueue_write_buffer(bufs["v"])
            q.enqueue_write_buffer(bufs["s"])
            # Iteration 1 exchanges the *initial* boundary values, so the
            # outgoing strip must be populated before the first copy reads it.
            q.enqueue_write_buffer(bufs["halo"])
            kernels: Dict[str, object] = {}
            names = [f"{k}_r{region}" for k in _VELOCITY_KERNELS[region]]
            strips = _STRESS_STRIPS[region]
            names += [
                f"st_{comp}{s}_r{region}"
                for comp in ("sxx", "szz", "sxz")
                for s in range(strips)
            ]
            names += [f"st_sponge{s}_r{region}" for s in range(2)]
            for kname in names:
                k = program.create_kernel(kname)
                k.set_arg(0, bufs["v"])
                k.set_arg(1, bufs["s"])
                # Stress sweeps consume the neighbour's ghost cells; every
                # other kernel works on the region's own boundary strip.
                is_stress = kname.startswith("st_") and not kname.startswith(
                    "st_sponge"
                )
                k.set_arg(2, bufs["halo_in"] if is_stress else bufs["halo"])
                k.set_arg(3, pts)
                kernels[kname] = k
            self._region_state.append({"bufs": bufs, "kernels": kernels})
        if self.functional:
            self._attach_functional()
        for q in self.queues:
            q.finish()

    def _attach_functional(self) -> None:
        sim = self.sim
        assert sim is not None
        for region in (0, 1):
            ks = self._region_state[region]["kernels"]
            ks[f"vel_vx_r{region}"].set_host_function(
                lambda args, r=region: sim.step_velocity_region(r)
            )
            ks[f"st_sxx0_r{region}"].set_host_function(
                lambda args, r=region: sim.step_stress_region(r)
            )
        self._region_state[1]["kernels"]["vel_source_r1"].set_host_function(
            lambda args: self._advance_source()
        )

    def _advance_source(self) -> None:
        assert self.sim is not None
        self.sim.inject_source()
        self.sim.step_index += 1
        self.sim.mono.step_index = self.sim.step_index

    # ------------------------------------------------------------------
    # Iterations
    # ------------------------------------------------------------------
    def enqueue_iteration(self, it: int) -> None:
        """One time step: velocity phase, halo, stress phase, source.

        Stress kernels wait on *both* regions' velocity events — the
        interface coupling that makes the halo exchange necessary.
        """
        pts = self._region_points()
        vel_events: List[Event] = []
        for region, q in enumerate(self.queues):
            ks = self._region_state[region]["kernels"]
            ev: Optional[Event] = None
            for kname in _VELOCITY_KERNELS[region]:
                if kname == "vel_source":
                    continue  # source fires after stress in this scheme
                ev = q.enqueue_nd_range_kernel(
                    ks[f"{kname}_r{region}"], (pts,), (128,)
                )
            assert ev is not None
            vel_events.append(ev)
        # Interface halo exchange (velocity values cross the split): each
        # queue pulls the neighbour's outgoing strip into its own ghost
        # cells.  Send and receive sides are distinct buffers, so the two
        # copies never touch the same memory object concurrently.
        halo_events: List[Event] = []
        for region, q in enumerate(self.queues):
            bufs = self._region_state[region]["bufs"]
            other = vel_events[1 - region]
            halo_events.append(
                q.enqueue_copy_buffer(
                    self._region_state[1 - region]["bufs"]["halo"],
                    bufs["halo_in"],
                    wait_events=[vel_events[region], other],
                )
            )
        for region, q in enumerate(self.queues):
            ks = self._region_state[region]["kernels"]
            strips = _STRESS_STRIPS[region]
            # Waiting on *both* copies (in-order queues propagate the edge
            # to the rest of the step) keeps this region's sponge writes to
            # its outgoing strip ordered after the neighbour's copy that
            # still reads it.
            wait: Sequence[Event] = [halo_events[region], halo_events[1 - region]]
            for comp in ("sxx", "szz", "sxz"):
                for s in range(strips):
                    q.enqueue_nd_range_kernel(
                        ks[f"st_{comp}{s}_r{region}"], (pts,), (128,),
                        wait_events=wait,
                    )
                    wait = ()
            for s in range(2):
                q.enqueue_nd_range_kernel(
                    ks[f"st_sponge{s}_r{region}"], (pts,), (128,)
                )
        # Source injection closes the step (region 1).
        self.queues[1].enqueue_nd_range_kernel(
            self._region_state[1]["kernels"]["vel_source_r1"], (1024,), (64,)
        )

    def finalize(self) -> None:
        if self.functional and self.sim is not None:
            self.checks["energy"] = self.sim.energy()
            self.checks["steps"] = self.sim.step_index
            mono_max = float(np.abs(self.sim.mono.vx).max())
            self.checks["wave_amplitude"] = mono_max
            self.checks["stable"] = bool(np.isfinite(mono_max) and mono_max < 1e6)


def run_seismology(
    layout: str = "column",
    mode: str = "auto",
    devices: Optional[Sequence[str]] = None,
    steps: int = 50,
    functional: bool = False,
    node_spec: Optional[NodeSpec] = None,
    config: Optional[SchedulerConfig] = None,
    profile_dir: Optional[str] = None,
) -> WorkloadRun:
    """Run the two-queue FDM-Seismology driver; see :func:`~repro.workloads.npb.common.run_npb`."""
    if mode not in ("manual", "auto", "round_robin"):
        raise WorkloadError(f"unknown mode {mode!r}")
    policy = {
        "manual": None,
        "auto": ContextScheduler.AUTO_FIT,
        "round_robin": ContextScheduler.ROUND_ROBIN,
    }[mode]
    mcl = MultiCL(
        node_spec=node_spec, policy=policy, config=config, profile_dir=profile_dir
    )
    app = FDMSeismologyApp(layout=layout, steps=steps, functional=functional)
    queues: List[CommandQueue] = []
    if mode == "manual":
        if devices is None or len(devices) != 2:
            raise WorkloadError("manual mode needs a (region1, region2) device pair")
        for i, dev in enumerate(devices):
            queues.append(mcl.queue(device=dev, flags=SchedFlag.SCHED_OFF, name=f"q{i}"))
    else:
        flags = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
        for i in range(2):
            initial = mcl.device_names[i % len(mcl.device_names)]
            queues.append(mcl.queue(device=initial, flags=flags, name=f"q{i}"))
    app.setup(mcl.context, queues)

    iter_times: List[float] = []
    t0 = mcl.now
    for it in range(steps):
        t_it = mcl.now
        app.enqueue_iteration(it)
        for q in queues:
            q.finish()
        iter_times.append(mcl.now - t_it)
    app.finalize()
    for q in queues:
        q.finish()
    t1 = mcl.now
    return WorkloadRun(
        name="FDM-Seismology",
        problem_class=layout,
        num_queues=2,
        mode=mode,
        seconds=t1 - t0,
        stats=mcl.stats_between(t0, t1),
        bindings={q.name: q.device for q in queues},
        mappings=mcl.scheduler_mappings(),
        iteration_seconds=iter_times,
        checks=dict(app.checks),
    )
