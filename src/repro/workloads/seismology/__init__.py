"""FDM-Seismology (paper Section VI.B.2).

* :mod:`repro.workloads.seismology.fdm` — a real 2-D staggered-grid
  velocity–stress finite-difference solver (numpy) with sponge absorbing
  boundaries and a Ricker source, plus a two-region split-domain variant
  whose halo exchange reproduces the monolithic solution exactly;
* :mod:`repro.workloads.seismology.app` — the two-command-queue OpenCL
  driver with the paper's kernel structure (velocity: 3 + 4 kernels,
  stress: 11 + 14, per region) in column-major and row-major variants.
"""

from repro.workloads.seismology.fdm import (
    FDMParameters,
    FDMSimulation,
    RegionPairSimulation,
    ricker_wavelet,
)
from repro.workloads.seismology.fdm3d import (
    FDM3DParameters,
    FDM3DSimulation,
    RegionPair3D,
)
from repro.workloads.seismology.app import (
    FDMSeismologyApp,
    run_seismology,
    DEVICE_COMBOS,
)

__all__ = [
    "FDMParameters",
    "FDMSimulation",
    "RegionPairSimulation",
    "FDM3DParameters",
    "FDM3DSimulation",
    "RegionPair3D",
    "ricker_wavelet",
    "FDMSeismologyApp",
    "run_seismology",
    "DEVICE_COMBOS",
]
