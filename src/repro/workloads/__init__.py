"""Evaluation workloads (paper Section VI).

* :mod:`repro.workloads.npb` — the six SNU-NPB-MD benchmarks (BT, CG, EP,
  FT, MG, SP) as task-parallel OpenCL drivers over the simulated runtime,
  with the queue-count restrictions and scheduler options of Table II, the
  problem-class scaling of NPB 3.3, and per-kernel cost characteristics
  calibrated so the single-device CPU/GPU ratios match the paper's Fig. 3.
* :mod:`repro.workloads.seismology` — FDM-Seismology: a real 2-D
  staggered-grid velocity–stress finite-difference solver (numpy) wrapped
  in the paper's two-queue OpenCL driver with column-major and row-major
  kernel variants.
"""

from repro.workloads.base import (
    ProblemClass,
    QueueRule,
    WorkloadRun,
    any_queue_rule,
    power_of_two_rule,
    square_rule,
)

__all__ = [
    "ProblemClass",
    "QueueRule",
    "WorkloadRun",
    "any_queue_rule",
    "power_of_two_rule",
    "square_rule",
]
