"""Shared workload abstractions.

Problem classes follow NPB naming (S, W, A, B, C, D).  Queue-count rules
encode the per-benchmark restrictions of the paper's Table II ("Square:
1,4", "Power of 2: 1,2,4", "Any: 1,2,4").  :class:`WorkloadRun` is the
uniform result record every driver returns: simulated timings, run
accounting, scheduler decisions and (in functional mode) numerical checks.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.runtime import RunStats

__all__ = [
    "ProblemClass",
    "QueueRule",
    "any_queue_rule",
    "power_of_two_rule",
    "square_rule",
    "WorkloadRun",
    "WorkloadError",
]


class WorkloadError(ValueError):
    """Invalid workload configuration (class, queue count...)."""


class ProblemClass(str, enum.Enum):
    """NPB problem classes, smallest to largest."""

    S = "S"
    W = "W"
    A = "A"
    B = "B"
    C = "C"
    D = "D"

    @property
    def rank(self) -> int:
        return list(ProblemClass).index(self)

    def __lt__(self, other: "ProblemClass") -> bool:  # type: ignore[override]
        return self.rank < other.rank


@dataclass(frozen=True)
class QueueRule:
    """Allowed command-queue counts for a benchmark."""

    description: str
    allowed: Sequence[int]

    def validate(self, num_queues: int) -> None:
        if num_queues not in self.allowed:
            raise WorkloadError(
                f"queue count {num_queues} not allowed "
                f"({self.description}: {list(self.allowed)})"
            )


def any_queue_rule(counts: Sequence[int] = (1, 2, 4)) -> QueueRule:
    return QueueRule("Any", tuple(counts))


def power_of_two_rule(counts: Sequence[int] = (1, 2, 4)) -> QueueRule:
    for c in counts:
        if c & (c - 1):
            raise WorkloadError(f"{c} is not a power of two")
    return QueueRule("Power of 2", tuple(counts))


def square_rule(counts: Sequence[int] = (1, 4)) -> QueueRule:
    for c in counts:
        if int(math.isqrt(c)) ** 2 != c:
            raise WorkloadError(f"{c} is not a square")
    return QueueRule("Square", tuple(counts))


@dataclass
class WorkloadRun:
    """Result of one driver run on the simulated runtime."""

    #: benchmark name, e.g. "FT"
    name: str
    #: problem class label
    problem_class: str
    #: number of command queues
    num_queues: int
    #: "manual" (explicit device list), "auto" (MultiCL), or "round_robin"
    mode: str
    #: total simulated seconds of the measured region
    seconds: float
    #: accounting record for the measured region
    stats: RunStats
    #: final device binding per queue name
    bindings: Dict[str, str] = field(default_factory=dict)
    #: mapping decisions at each scheduler trigger
    mappings: List[Dict[str, str]] = field(default_factory=list)
    #: simulated seconds per iteration (iterative workloads)
    iteration_seconds: List[float] = field(default_factory=list)
    #: outcome of functional verification, if it ran
    checks: Dict[str, Any] = field(default_factory=dict)
    #: kernel-profiler counters at the end of the run (auto modes):
    #: measurements, cache hits, predictions, declines...
    profiler_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def devices_used(self) -> List[str]:
        return sorted(set(self.bindings.values()))

    def overhead_vs(self, ideal_seconds: float) -> float:
        """The paper's overhead metric:
        ``(T_scheduler_map − T_ideal_map) / T_ideal_map``."""
        if ideal_seconds <= 0:
            raise WorkloadError("ideal time must be positive")
        return (self.seconds - ideal_seconds) / ideal_seconds
