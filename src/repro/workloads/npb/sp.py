"""SP — Scalar Pentadiagonal solver (implicit CFD, many short iterations).

Like BT, SP is an ADI scheme over a 3-D grid, but the factored systems are
*scalar* pentadiagonal, so each iteration is lighter while the iteration
count is high (400).  The Fortran-derived OpenCL kernels remain CPU-
leaning (Fig. 3: GPU ≈ 2.4× slower).

Table II: square queue counts (1, 4); classes S, W, A, B, C;
``SCHED_EXPLICIT_REGION`` around the warm-up iteration.

Functional mode reuses the dimension-split solve of
:func:`repro.workloads.npb.numerics.adi_step` and verifies it against a
heavier-smoothing reference (a second application reduces the field's
maximum — diffusion is monotone).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.ocl.context import Context
from repro.ocl.enums import SchedFlag
from repro.ocl.queue import CommandQueue
from repro.workloads.base import ProblemClass, square_rule
from repro.workloads.npb import numerics
from repro.workloads.npb.common import NPBApplication, kernel_source, register_benchmark

__all__ = ["SP"]

#: (grid n, iterations) per class — NPB 3.3.
_CLASS_PARAMS = {
    ProblemClass.S: (12, 100),
    ProblemClass.W: (36, 400),
    ProblemClass.A: (64, 400),
    ProblemClass.B: (102, 400),
    ProblemClass.C: (162, 400),
}

_SOLVE = {
    "divergence": 0.35,
    "irregularity": 0.40,
    "cpu_eff": 1.0,
    "gpu_eff": 0.10,
}
_POINTWISE = {
    "divergence": 0.05,
    "irregularity": 0.15,
    "cpu_eff": 1.0,
    "gpu_eff": 0.18,
}


@register_benchmark
class SP(NPBApplication):
    NAME = "SP"
    QUEUE_RULE = square_rule((1, 4))
    VALID_CLASSES = tuple(_CLASS_PARAMS)
    TABLE2_FLAGS = SchedFlag.SCHED_EXPLICIT_REGION

    @property
    def grid_n(self) -> int:
        return _CLASS_PARAMS[self.problem_class][0]

    @property
    def default_iterations(self) -> int:
        return _CLASS_PARAMS[self.problem_class][1]

    @property
    def points_per_queue(self) -> int:
        return self.grid_n ** 3 // self.num_queues

    def generate_source(self) -> str:
        n = self.grid_n
        src = kernel_source(
            "sp_compute_rhs",
            "__global double* u, __global double* rhs, int n",
            {"flops_per_item": 120, "bytes_per_item": 200, "writes": "1", **_POINTWISE},
            body="/* flux + dissipation stencil (modelled) */",
        )
        src += kernel_source(
            "sp_txinvr",
            "__global double* u, __global double* rhs, int n",
            {"flops_per_item": 40, "bytes_per_item": 80, "writes": "1", **_POINTWISE},
            body="/* block-diagonal premultiply (modelled) */",
        )
        for axis in ("x", "y", "z"):
            src += kernel_source(
                f"sp_{axis}_solve",
                "__global double* u, __global double* rhs, __global double* lhs, int n",
                {"flops_per_item": 220, "bytes_per_item": 120, "writes": "1,2", **_SOLVE},
                body=f"/* scalar pentadiagonal sweep along {axis} (modelled) */",
            )
        src += kernel_source(
            "sp_add",
            "__global double* u, __global double* rhs, int n",
            {
                "flops_per_item": 5,
                "bytes_per_item": 80,
                "divergence": 0.0,
                "irregularity": 0.1,
                "cpu_eff": 1.0,
                "gpu_eff": 0.5,
                "writes": "0",
            },
            body="/* u += rhs (modelled) */",
        )
        return src

    def setup(self, context: Context, queues: Sequence[CommandQueue]) -> None:
        self.context = context
        self.queues = list(queues)
        program = context.create_program(self.generate_source()).build()
        self.program = program
        pts = self.points_per_queue
        self._per_queue: Dict[int, Dict[str, object]] = {}
        for qi, q in enumerate(queues):
            bufs = {
                "u": context.create_buffer(pts * 5 * 8, name=f"sp-u-{qi}"),
                "rhs": context.create_buffer(pts * 5 * 8, name=f"sp-rhs-{qi}"),
                "lhs": context.create_buffer(pts * 9 * 8, name=f"sp-lhs-{qi}"),
            }
            q.enqueue_write_buffer(bufs["u"])
            kernels = {}
            for kname in (
                "sp_compute_rhs",
                "sp_txinvr",
                "sp_x_solve",
                "sp_y_solve",
                "sp_z_solve",
                "sp_add",
            ):
                k = program.create_kernel(kname)
                k.set_arg(0, bufs["u"])
                k.set_arg(1, bufs["rhs"])
                if "solve" in kname:
                    k.set_arg(2, bufs["lhs"])
                    k.set_arg(3, pts)
                else:
                    k.set_arg(2, pts)
                kernels[kname] = k
            self._per_queue[qi] = {"bufs": bufs, "kernels": kernels}
        for q in queues:
            q.finish()

    def enqueue_iteration(self, it: int) -> None:
        pts = self.points_per_queue
        for qi, q in enumerate(self.queues):
            ks = self._per_queue[qi]["kernels"]
            q.enqueue_nd_range_kernel(ks["sp_compute_rhs"], (pts,), (64,))
            q.enqueue_nd_range_kernel(ks["sp_txinvr"], (pts,), (64,))
            for kname in ("sp_x_solve", "sp_y_solve", "sp_z_solve"):
                q.enqueue_nd_range_kernel(ks[kname], (pts,), (64,))
            q.enqueue_nd_range_kernel(ks["sp_add"], (pts,), (64,))
        if self.num_queues > 1:
            n = self.grid_n
            face_bytes = (n * n // int(math.isqrt(self.num_queues))) * 5 * 8
            for qi, q in enumerate(self.queues):
                bufs = self._per_queue[qi]["bufs"]
                q.enqueue_read_buffer(bufs["u"], nbytes=face_bytes)
                q.enqueue_write_buffer(bufs["u"], nbytes=face_bytes)

    def finalize(self) -> None:
        if self.functional:
            n = 13
            u = np.zeros((n, n, n))
            u[n // 2, n // 2, n // 2] = 1.0
            once = numerics.adi_step(u, dt=0.05, h=1.0 / (n - 1))
            twice = numerics.adi_step(once, dt=0.05, h=1.0 / (n - 1))
            self.checks["monotone"] = bool(twice.max() < once.max() <= u.max())
            self.checks["bounded"] = bool(twice.min() >= 0.0)
