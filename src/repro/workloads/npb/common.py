"""Shared NPB driver machinery.

Each benchmark subclasses :class:`NPBApplication` and provides: its
(annotated) OpenCL-C program source, buffer/kernel setup, and a per-
iteration enqueue method.  :func:`run_npb` then drives it through one of
three modes:

* ``manual`` — stock OpenCL: queues created ``SCHED_OFF`` and bound to an
  explicit device list (the paper's baselines: CPU-only, GPU-only, the
  round-robin variants of Fig. 4, and the single-device runs of Fig. 3);
* ``auto`` — the MultiCL path: the *same* driver with the benchmark's
  Table II scheduler options applied — the "about four source lines" the
  paper modifies: context property, queue properties, explicit-region
  start/stop via ``clSetCommandQueueSchedProperty``, and (BT, FT)
  ``clSetKernelWorkGroupInfo`` calls;
* ``round_robin`` — the ROUND_ROBIN global policy baseline.

Iterative benchmarks run their warm-up iterations inside the explicit
scheduling region and are then frozen on the chosen devices, exactly as
described for the SNU-NPB evaluation (Section VI.B.1).
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.flags import SchedulerConfig
from repro.core.runtime import MultiCL
from repro.hardware.specs import NodeSpec
from repro.ocl.context import Context
from repro.ocl.enums import ContextScheduler, SchedFlag
from repro.ocl.kernel import Kernel
from repro.ocl.queue import CommandQueue
from repro.workloads.base import ProblemClass, QueueRule, WorkloadError, WorkloadRun

__all__ = [
    "NPBApplication",
    "run_npb",
    "kernel_source",
    "BENCHMARKS",
    "get_benchmark",
    "register_benchmark",
]


def kernel_source(
    name: str,
    args: str,
    annotations: Dict[str, object],
    body: str = "/* modelled kernel body */",
) -> str:
    """Render one annotated toy OpenCL-C kernel."""
    annot = " ".join(f"{k}={v}" for k, v in annotations.items())
    return (
        f"// @multicl {annot}\n"
        f"__kernel void {name}({args}) {{\n"
        f"  {body}\n"
        f"}}\n"
    )


class NPBApplication(ABC):
    """Base class for the six SNU-NPB-MD drivers."""

    #: Benchmark name ("BT", "CG", ...).
    NAME: str = "?"
    #: Queue-count restriction (paper Table II).
    QUEUE_RULE: QueueRule
    #: Problem classes the benchmark supports (paper Table II).
    VALID_CLASSES: Tuple[ProblemClass, ...] = ()
    #: Local scheduler flags applied in auto mode (paper Table II), on top
    #: of SCHED_AUTO_DYNAMIC.
    TABLE2_FLAGS: SchedFlag = SchedFlag.SCHED_EXPLICIT_REGION
    #: Whether the driver calls clSetKernelWorkGroupInfo (BT and FT).
    USES_WORKGROUP_INFO: bool = False

    def __init__(
        self,
        problem_class: ProblemClass,
        num_queues: int,
        functional: bool = False,
        iterations_override: Optional[int] = None,
    ) -> None:
        problem_class = ProblemClass(problem_class)
        if problem_class not in self.VALID_CLASSES:
            raise WorkloadError(
                f"{self.NAME} supports classes "
                f"{[c.value for c in self.VALID_CLASSES]}, not {problem_class.value}"
            )
        self.QUEUE_RULE.validate(num_queues)
        self.problem_class = problem_class
        self.num_queues = num_queues
        self.functional = functional
        self._iterations_override = iterations_override
        # Populated by setup():
        self.context: Optional[Context] = None
        self.queues: List[CommandQueue] = []
        self.kernels: Dict[str, Kernel] = {}
        self.checks: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Subclass surface
    # ------------------------------------------------------------------
    @abstractmethod
    def generate_source(self) -> str:
        """The benchmark's annotated OpenCL-C program source."""

    @abstractmethod
    def setup(self, context: Context, queues: Sequence[CommandQueue]) -> None:
        """Create buffers/kernels and enqueue initial data writes.

        Called before any scheduling region starts, so initial writes land
        on the queues' creation-time devices (the SnuCL behaviour)."""

    @abstractmethod
    def enqueue_iteration(self, it: int) -> None:
        """Enqueue one time step / outer iteration on all queues."""

    @property
    @abstractmethod
    def default_iterations(self) -> int:
        """NPB iteration count for the current problem class."""

    def finalize(self) -> None:
        """Read back results; populate ``self.checks`` in functional mode."""

    # ------------------------------------------------------------------
    # Common helpers
    # ------------------------------------------------------------------
    @property
    def iterations(self) -> int:
        if self._iterations_override is not None:
            return max(1, self._iterations_override)
        return self.default_iterations

    #: Iterations profiled inside the explicit scheduling region.
    warmup_iterations: int = 1

    def apply_workgroup_info(self) -> None:
        """BT/FT hook: set per-device launch configurations."""

    def finish_all(self) -> None:
        assert self.context is not None
        for q in self.queues:
            q.finish()


# ---------------------------------------------------------------------------
# Benchmark registry
# ---------------------------------------------------------------------------
BENCHMARKS: Dict[str, type] = {}


def register_benchmark(cls: type) -> type:
    BENCHMARKS[cls.NAME] = cls
    return cls


def get_benchmark(name: str) -> type:
    try:
        return BENCHMARKS[name.upper()]
    except KeyError:
        raise WorkloadError(f"unknown benchmark {name!r}; have {sorted(BENCHMARKS)}")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def run_npb(
    app: NPBApplication,
    mode: str = "auto",
    devices: Optional[Sequence[str]] = None,
    node_spec: Optional[NodeSpec] = None,
    config: Optional[SchedulerConfig] = None,
    profile_dir: Optional[str] = None,
    auto_flags: Optional[SchedFlag] = None,
) -> WorkloadRun:
    """Run ``app`` on a fresh simulated platform; see module docstring.

    ``auto_flags`` overrides the queue scheduling flags used in auto mode
    (default: ``SCHED_AUTO_DYNAMIC | app.TABLE2_FLAGS``) — used by the
    static-vs-dynamic ablation.
    """
    if mode not in ("manual", "auto", "round_robin"):
        raise WorkloadError(f"unknown mode {mode!r}")
    policy = {
        "manual": None,
        "auto": ContextScheduler.AUTO_FIT,
        "round_robin": ContextScheduler.ROUND_ROBIN,
    }[mode]
    mcl = MultiCL(
        node_spec=node_spec, policy=policy, config=config, profile_dir=profile_dir
    )
    ndev = len(mcl.device_names)

    queues: List[CommandQueue] = []
    if mode == "manual":
        if devices is None:
            raise WorkloadError("manual mode requires a device list")
        if len(devices) != app.num_queues:
            raise WorkloadError(
                f"need {app.num_queues} devices, got {len(devices)}"
            )
        for i in range(app.num_queues):
            queues.append(
                mcl.queue(device=devices[i], flags=SchedFlag.SCHED_OFF, name=f"q{i}")
            )
        queue_flags = SchedFlag.SCHED_OFF
    else:
        queue_flags = (
            auto_flags
            if auto_flags is not None
            else SchedFlag.SCHED_AUTO_DYNAMIC | app.TABLE2_FLAGS
        )
        for i in range(app.num_queues):
            # SnuCL-style creation: an initial device is still named.
            initial = mcl.device_names[i % ndev]
            queues.append(mcl.queue(device=initial, flags=queue_flags, name=f"q{i}"))

    app.setup(mcl.context, queues)
    if app.USES_WORKGROUP_INFO and mode != "manual":
        app.apply_workgroup_info()

    explicit_region = bool(queue_flags & SchedFlag.SCHED_EXPLICIT_REGION)
    iter_times: List[float] = []
    t0 = mcl.now

    def run_iteration(it: int) -> None:
        t_it = mcl.now
        app.enqueue_iteration(it)
        app.finish_all()
        iter_times.append(mcl.now - t_it)

    if mode != "manual" and explicit_region:
        # The ~4-line change: bracket the warm-up with the proposed
        # clSetCommandQueueSchedProperty calls.
        for q in queues:
            q.set_sched_property(SchedFlag.SCHED_AUTO_DYNAMIC)
        for it in range(min(app.warmup_iterations, app.iterations)):
            run_iteration(it)
        for q in queues:
            q.set_sched_property(SchedFlag.SCHED_OFF)
        start = min(app.warmup_iterations, app.iterations)
    else:
        start = 0
    for it in range(start, app.iterations):
        run_iteration(it)

    app.finalize()
    app.finish_all()
    t1 = mcl.now

    profiler_stats: Dict[str, Any] = {}
    scheduler = mcl.context.scheduler
    profiler = getattr(scheduler, "profiler", None)
    if profiler is not None:
        profiler_stats = dataclasses.asdict(profiler.stats)

    return WorkloadRun(
        name=app.NAME,
        problem_class=app.problem_class.value,
        num_queues=app.num_queues,
        mode=mode,
        seconds=t1 - t0,
        stats=mcl.stats_between(t0, t1),
        bindings={q.name: q.device for q in queues},
        mappings=mcl.scheduler_mappings(),
        iteration_seconds=iter_times,
        checks=dict(app.checks),
        profiler_stats=profiler_stats,
    )
