"""FT — 3-D Fast Fourier Transform (I/O-intensive).

NPB FT evolves a PDE in frequency space: per iteration it scales the
spectrum and inverse-transforms it, checksumming scattered elements.  The
SNU-NPB-MD version distributes the grid among the command queues as slabs,
so (a) *the data per queue shrinks as queues grow* — the property behind
Fig. 6's falling profiling overhead — and (b) each iteration performs an
all-to-all transpose staged through host memory, making FT the benchmark
whose profiling overhead is dominated by data transfer (Figs. 6 and 7).

Table II: power-of-two queues (1, 2, 4 — plus 8 for the Fig. 6 sweep);
classes S, W, A only (larger grids exceed the C2050's 3 GB);
``SCHED_EXPLICIT_REGION`` + ``clSetKernelWorkGroupInfo`` (CPU and GPU want
different FFT work-group shapes).

Functional mode (single queue) runs the real frequency-space evolution of
:func:`repro.workloads.npb.numerics.ft_evolve` on a reduced 32³ grid and
records the checksum series.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import math
import numpy as np

from repro.ocl.context import Context
from repro.ocl.enums import SchedFlag
from repro.ocl.queue import CommandQueue
from repro.workloads.base import ProblemClass, power_of_two_rule
from repro.workloads.npb import numerics
from repro.workloads.npb.common import NPBApplication, kernel_source, register_benchmark

__all__ = ["FT"]

#: (nx, ny, nz, iterations) per class — NPB 3.3.
_CLASS_PARAMS = {
    ProblemClass.S: (64, 64, 64, 6),
    ProblemClass.W: (128, 128, 32, 6),
    ProblemClass.A: (256, 256, 128, 6),
}

_FUNCTIONAL_SHAPE = (32, 32, 32)
_ALPHA = 1e-6


@register_benchmark
class FT(NPBApplication):
    NAME = "FT"
    QUEUE_RULE = power_of_two_rule((1, 2, 4, 8))
    VALID_CLASSES = tuple(_CLASS_PARAMS)
    TABLE2_FLAGS = SchedFlag.SCHED_EXPLICIT_REGION
    USES_WORKGROUP_INFO = True

    @property
    def shape(self) -> Tuple[int, int, int]:
        nx, ny, nz, _ = _CLASS_PARAMS[self.problem_class]
        return (nx, ny, nz)

    @property
    def default_iterations(self) -> int:
        return _CLASS_PARAMS[self.problem_class][3]

    @property
    def points_per_queue(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz // self.num_queues

    @property
    def slab_bytes(self) -> int:
        """One complex128 array slab per queue."""
        return self.points_per_queue * 16

    def generate_source(self) -> str:
        nx, ny, nz = self.shape
        src = kernel_source(
            "ft_evolve",
            "__global double2* u0, __global double2* u1, "
            "__global double* twiddle, int n",
            {
                "flops_per_item": 8,
                "bytes_per_item": 40,
                "divergence": 0.0,
                "irregularity": 0.10,
                "cpu_eff": 1.0,
                "gpu_eff": 0.30,
                "writes": "1",
            },
            body="/* u1 = u0 * twiddle decay (modelled) */",
        )
        src += kernel_source(
            "ft_fft_xy",
            "__global double2* u, int dir, int n",
            {
                "flops_per_item": round(5 * math.log2(nx * ny), 2),
                "bytes_per_item": 48,
                "divergence": 0.15,
                "irregularity": 0.55,
                "cpu_eff": 1.0,
                "gpu_eff": 0.25,
                "writes": "0",
            },
            body="/* batched 2-D FFT over the local slab (modelled) */",
        )
        src += kernel_source(
            "ft_fft_z",
            "__global double2* u, int dir, int n",
            {
                "flops_per_item": round(5 * math.log2(max(nz, 2)), 2),
                "bytes_per_item": 48,
                "divergence": 0.15,
                "irregularity": 0.55,
                "cpu_eff": 1.0,
                "gpu_eff": 0.25,
                "writes": "0",
            },
            body="/* 1-D FFTs along z after the transpose (modelled) */",
        )
        src += kernel_source(
            "ft_checksum",
            "__global double2* u, __global double2* out, int n",
            {
                "flops_per_item": 4,
                "bytes_per_item": 16,
                "divergence": 0.2,
                "irregularity": 0.6,
                "cpu_eff": 1.0,
                "gpu_eff": 0.30,
                "writes": "1",
            },
            body="/* scattered-element checksum (modelled) */",
        )
        return src

    def setup(self, context: Context, queues: Sequence[CommandQueue]) -> None:
        self.context = context
        self.queues = list(queues)
        program = context.create_program(self.generate_source()).build()
        self.program = program
        self._per_queue: Dict[int, Dict[str, object]] = {}
        functional = self.functional and self.num_queues == 1
        self._functional_active = functional
        for qi, q in enumerate(queues):
            if functional:
                rng = np.random.default_rng(42 + qi)
                u0_arr = (
                    rng.standard_normal(_FUNCTIONAL_SHAPE)
                    + 1j * rng.standard_normal(_FUNCTIONAL_SHAPE)
                ).astype(np.complex128)
                u0_hat = np.fft.fftn(u0_arr)
                u1_arr = np.zeros_like(u0_hat)
                cs_arr = np.zeros(2, dtype=np.float64)
            else:
                u0_hat = u1_arr = cs_arr = None
            bufs = {
                "u0": context.create_buffer(
                    self.slab_bytes, host_array=u0_hat, name=f"ft-u0-{qi}"
                ),
                "u1": context.create_buffer(
                    self.slab_bytes, host_array=u1_arr, name=f"ft-u1-{qi}"
                ),
                "twiddle": context.create_buffer(
                    self.points_per_queue * 8, name=f"ft-tw-{qi}"
                ),
                "csum": context.create_buffer(
                    16, host_array=cs_arr, name=f"ft-cs-{qi}"
                ),
            }
            # Initial slab distribution: this is the bulk data whose staging
            # dominates FT's profiling overhead.
            q.enqueue_write_buffer(bufs["u0"])
            q.enqueue_write_buffer(bufs["twiddle"])
            evolve = program.create_kernel("ft_evolve")
            evolve.set_arg(0, bufs["u0"])
            evolve.set_arg(1, bufs["u1"])
            evolve.set_arg(2, bufs["twiddle"])
            evolve.set_arg(3, self.points_per_queue)
            fft_xy = program.create_kernel("ft_fft_xy")
            fft_xy.set_arg(0, bufs["u1"])
            fft_xy.set_arg(1, -1)
            fft_xy.set_arg(2, self.points_per_queue)
            fft_z = program.create_kernel("ft_fft_z")
            fft_z.set_arg(0, bufs["u1"])
            fft_z.set_arg(1, -1)
            fft_z.set_arg(2, self.points_per_queue)
            checksum = program.create_kernel("ft_checksum")
            checksum.set_arg(0, bufs["u1"])
            checksum.set_arg(1, bufs["csum"])
            checksum.set_arg(2, self.points_per_queue)
            state: Dict[str, object] = {
                "bufs": bufs,
                "evolve": evolve,
                "fft_xy": fft_xy,
                "fft_z": fft_z,
                "checksum": checksum,
                "cs_out": np.zeros(2, dtype=np.float64),
            }
            if functional:
                self._attach_functional(state)
            self._per_queue[qi] = state
        for q in queues:
            q.finish()
        self.checks["checksums"] = []

    def _attach_functional(self, state: Dict[str, object]) -> None:
        indexmap = numerics.ft_indexmap(_FUNCTIONAL_SHAPE)
        app = self

        def evolve_host(args: Dict[str, object]) -> None:
            step = app._current_step
            decay = np.exp(-4.0 * _ALPHA * (math.pi ** 2) * indexmap * step)
            args["u1"][...] = args["u0"] * decay

        def checksum_host(args: Dict[str, object]) -> None:
            x = np.fft.ifftn(args["u"])
            nx, ny, nz = x.shape
            csum = 0.0 + 0.0j
            for j in range(1, 1025):
                csum += x[j % nx, (3 * j) % ny, (5 * j) % nz]
            csum /= nx * ny * nz
            args["out"][0] = csum.real
            args["out"][1] = csum.imag

        state["evolve"].set_host_function(evolve_host)  # type: ignore[attr-defined]
        state["checksum"].set_host_function(checksum_host)  # type: ignore[attr-defined]

    _current_step = 1

    def enqueue_iteration(self, it: int) -> None:
        self._current_step = it + 1
        n = self.points_per_queue
        for qi, q in enumerate(self.queues):
            st = self._per_queue[qi]
            q.enqueue_nd_range_kernel(st["evolve"], (n,), (128,))
            q.enqueue_nd_range_kernel(st["fft_xy"], (n,), (128,))
        if self.num_queues > 1:
            # All-to-all transpose: each queue exchanges (Q-1)/Q of its slab
            # with the others, staged through host memory.
            frac = (self.num_queues - 1) / self.num_queues
            xfer = int(self.slab_bytes * frac)
            for qi, q in enumerate(self.queues):
                bufs = self._per_queue[qi]["bufs"]
                q.enqueue_read_buffer(bufs["u1"], nbytes=xfer)
                q.enqueue_write_buffer(bufs["u1"], nbytes=xfer)
        for qi, q in enumerate(self.queues):
            st = self._per_queue[qi]
            q.enqueue_nd_range_kernel(st["fft_z"], (n,), (128,))
            q.enqueue_nd_range_kernel(st["checksum"], (1024,), (64,))
            q.enqueue_read_buffer(st["bufs"]["csum"], st["cs_out"])

    def apply_workgroup_info(self) -> None:
        """Device-specific FFT launch shapes via clSetKernelWorkGroupInfo."""
        assert self.context is not None
        n = self.points_per_queue
        for st in self._per_queue.values():
            for key in ("fft_xy", "fft_z"):
                kernel = st[key]
                for dev in self.context.platform.node.device_list():
                    local = 16 if dev.spec.kind.value == "cpu" else 256
                    kernel.set_work_group_info(dev.name, (n,), (min(local, n),))

    def finalize(self) -> None:
        self.finish_all()
        if self._functional_active:
            st = self._per_queue[0]
            self.checks["checksum"] = complex(st["cs_out"][0], st["cs_out"][1])
            # Reference: same evolution computed directly.
            rng = np.random.default_rng(42)
            u0 = (
                rng.standard_normal(_FUNCTIONAL_SHAPE)
                + 1j * rng.standard_normal(_FUNCTIONAL_SHAPE)
            ).astype(np.complex128)
            indexmap = numerics.ft_indexmap(_FUNCTIONAL_SHAPE)
            _, ref = numerics.ft_evolve(
                np.fft.fftn(u0), indexmap, _ALPHA, self.iterations
            )
            self.checks["checksum_ref"] = ref
