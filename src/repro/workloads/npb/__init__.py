"""SNU-NPB-MD style benchmarks over the simulated OpenCL runtime.

One module per benchmark — BT, CG, EP, FT, MG, SP — each exposing an
application class derived from :class:`repro.workloads.npb.common.NPBApplication`
plus the queue-count restrictions and scheduler options of the paper's
Table II.  :mod:`repro.workloads.npb.numerics` holds real (small-scale)
reference numerics attached as functional payloads in functional mode.
"""

from repro.workloads.npb.bt import BT
from repro.workloads.npb.cg import CG
from repro.workloads.npb.ep import EP
from repro.workloads.npb.ft import FT
from repro.workloads.npb.mg import MG
from repro.workloads.npb.sp import SP
from repro.workloads.npb.common import (
    NPBApplication,
    run_npb,
    BENCHMARKS,
    get_benchmark,
)

__all__ = [
    "BT",
    "CG",
    "EP",
    "FT",
    "MG",
    "SP",
    "NPBApplication",
    "run_npb",
    "BENCHMARKS",
    "get_benchmark",
]
