"""CG — Conjugate Gradient (irregular sparse solver).

NPB CG estimates the largest eigenvalue of a sparse SPD matrix with inverse
power iteration; the inner loop is a conjugate-gradient solve dominated by
an irregular sparse matrix-vector product.  The SNU-NPB OpenCL port is
CPU-friendly (Fig. 3: GPU ≈ 1.9× slower) because the gather-heavy SpMV is
uncoalesced on GPUs.

Table II: power-of-two queues (1, 2, 4); classes S–C;
``SCHED_EXPLICIT_REGION`` around the warm-up iteration.

Decomposition: block rows — each queue owns ``na/Q`` rows of the matrix and
the matching vector chunks.  Every iteration runs SpMV + two dot products +
three AXPY updates per queue, then an all-gather of the updated direction
vector (staged through the host, as SNU-NPB-MD does across devices) and a
host-side reduction of the dot partials.

Functional mode solves a real 2-D Poisson system with the hand-rolled CG of
:mod:`repro.workloads.npb.numerics` and records the residual history.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.ocl.context import Context
from repro.ocl.enums import SchedFlag
from repro.ocl.queue import CommandQueue
from repro.workloads.base import ProblemClass, power_of_two_rule
from repro.workloads.npb import numerics
from repro.workloads.npb.common import NPBApplication, kernel_source, register_benchmark

__all__ = ["CG"]

#: (na, nonzer-per-row factor, CG iterations) per class — NPB 3.3 table.
_CLASS_PARAMS = {
    ProblemClass.S: (1400, 7, 15),
    ProblemClass.W: (7000, 8, 15),
    ProblemClass.A: (14000, 11, 15),
    ProblemClass.B: (75000, 13, 75),
    ProblemClass.C: (150000, 15, 75),
}

_GPU_EFF_SPMV = 0.30  # with irregularity/divergence this yields ≈1.9× (Fig. 3)


@register_benchmark
class CG(NPBApplication):
    NAME = "CG"
    QUEUE_RULE = power_of_two_rule((1, 2, 4))
    VALID_CLASSES = tuple(_CLASS_PARAMS)
    TABLE2_FLAGS = SchedFlag.SCHED_EXPLICIT_REGION

    @property
    def na(self) -> int:
        return _CLASS_PARAMS[self.problem_class][0]

    @property
    def nonzer(self) -> int:
        return _CLASS_PARAMS[self.problem_class][1]

    @property
    def default_iterations(self) -> int:
        return _CLASS_PARAMS[self.problem_class][2]

    @property
    def rows_per_queue(self) -> int:
        return max(1, self.na // self.num_queues)

    def generate_source(self) -> str:
        nnz_row = self.nonzer ** 2
        src = kernel_source(
            "cg_spmv",
            "__global double* a, __global int* colidx, __global int* rowstr, "
            "__global double* p, __global double* q, int rows",
            {
                "flops_per_item": 2 * nnz_row,
                "bytes_per_item": 12 * nnz_row + 16,
                "divergence": 0.30,
                "irregularity": 0.85,
                "cpu_eff": 1.0,
                "gpu_eff": _GPU_EFF_SPMV,
                "writes": "4",
            },
            body="/* q[i] = sum_j a[j] * p[colidx[j]] (modelled) */",
        )
        src += kernel_source(
            "cg_dot",
            "__global double* x, __global double* y, __global double* out, int rows",
            {
                "flops_per_item": 2,
                "bytes_per_item": 16,
                "divergence": 0.05,
                "irregularity": 0.05,
                "cpu_eff": 1.0,
                "gpu_eff": 0.7,
                "writes": "2",
            },
            body="/* partial dot-product reduction (modelled) */",
        )
        src += kernel_source(
            "cg_axpy",
            "__global double* x, __global double* y, double alpha, int rows",
            {
                "flops_per_item": 2,
                "bytes_per_item": 24,
                "divergence": 0.0,
                "irregularity": 0.05,
                "cpu_eff": 1.0,
                "gpu_eff": 0.7,
                "writes": "1",
            },
            body="/* y += alpha * x (modelled) */",
        )
        return src

    def setup(self, context: Context, queues: Sequence[CommandQueue]) -> None:
        self.context = context
        self.queues = list(queues)
        program = context.create_program(self.generate_source()).build()
        self.program = program
        rows = self.rows_per_queue
        nnz_row = self.nonzer ** 2
        self._per_queue: Dict[int, Dict[str, object]] = {}
        for qi, q in enumerate(queues):
            bufs = {
                "a": context.create_buffer(rows * nnz_row * 8, name=f"cg-a-{qi}"),
                "colidx": context.create_buffer(
                    rows * nnz_row * 4, name=f"cg-col-{qi}"
                ),
                "rowstr": context.create_buffer((rows + 1) * 4, name=f"cg-row-{qi}"),
                # p is the full direction vector (SpMV gathers globally).
                "p": context.create_buffer(self.na * 8, name=f"cg-p-{qi}"),
                "q": context.create_buffer(rows * 8, name=f"cg-q-{qi}"),
                "r": context.create_buffer(rows * 8, name=f"cg-r-{qi}"),
                "x": context.create_buffer(rows * 8, name=f"cg-x-{qi}"),
                "dot": context.create_buffer(16, name=f"cg-dot-{qi}"),
            }
            # Initial data: matrix chunk + starting vectors land on the
            # queue's creation-time device (before any scheduling region).
            for key in ("a", "colidx", "rowstr", "p", "x"):
                q.enqueue_write_buffer(bufs[key])
            spmv = program.create_kernel("cg_spmv")
            for i, key in enumerate(("a", "colidx", "rowstr", "p", "q")):
                spmv.set_arg(i, bufs[key])
            spmv.set_arg(5, rows)
            dot = program.create_kernel("cg_dot")
            dot.set_arg(0, bufs["r"])
            dot.set_arg(1, bufs["r"])
            dot.set_arg(2, bufs["dot"])
            dot.set_arg(3, rows)
            axpy = program.create_kernel("cg_axpy")
            axpy.set_arg(0, bufs["q"])
            axpy.set_arg(1, bufs["x"])
            axpy.set_arg(2, 1.0)
            axpy.set_arg(3, rows)
            self._per_queue[qi] = {
                "bufs": bufs,
                "spmv": spmv,
                "dot": dot,
                "axpy": axpy,
                "dot_out": np.zeros(2, dtype=np.float64),
            }
        for q in queues:
            q.finish()

    def enqueue_iteration(self, it: int) -> None:
        rows = self.rows_per_queue
        for qi, q in enumerate(self.queues):
            st = self._per_queue[qi]
            bufs = st["bufs"]
            q.enqueue_nd_range_kernel(st["spmv"], (rows,), (64,))
            q.enqueue_nd_range_kernel(st["dot"], (rows,), (64,))
            q.enqueue_nd_range_kernel(st["axpy"], (rows,), (64,))
            q.enqueue_nd_range_kernel(st["axpy"], (rows,), (64,))
            q.enqueue_nd_range_kernel(st["axpy"], (rows,), (64,))
            q.enqueue_nd_range_kernel(st["dot"], (rows,), (64,))
            # Dot partials to host (the host combines alpha/beta).
            q.enqueue_read_buffer(bufs["dot"], st["dot_out"])
        if self.num_queues > 1:
            # All-gather of the direction vector, staged through the host:
            # each queue exports its chunk and imports the assembled vector.
            for qi, q in enumerate(self.queues):
                bufs = self._per_queue[qi]["bufs"]
                q.enqueue_read_buffer(bufs["p"], nbytes=rows * 8)
                q.enqueue_write_buffer(bufs["p"], nbytes=self.na * 8)

    def finalize(self) -> None:
        if self.functional:
            # Reference numerics: real CG on a 2-D Poisson system.
            grid = 16
            data, idx, ptr, size = numerics.make_poisson_csr(grid)
            b = np.ones(size)
            _, history = numerics.conjugate_gradient(
                data, idx, ptr, b, iterations=min(self.iterations * 5, 80)
            )
            self.checks["residual_history"] = history
            self.checks["converged"] = history[-1] < history[0] * 1e-3
