"""BT — Block Tridiagonal solver (compute-heavy implicit CFD).

NPB BT solves the 3-D compressible Navier–Stokes equations with an ADI
scheme whose x/y/z sweeps invert 5×5 block tridiagonal systems.  The block
solves carry long serial dependencies along each line, which the Fortran-
derived OpenCL port maps poorly onto GPUs — BT shows the worst GPU/CPU
ratio in Fig. 3 (≈3.5×).

Table II: square queue counts (1, 4 — a √Q×√Q column decomposition);
classes S, W, A, B; ``SCHED_EXPLICIT_REGION`` +
``clSetKernelWorkGroupInfo`` (CPU and GPU need different 2-D launch
shapes for the sweep kernels).

Functional mode runs the real dimension-split tridiagonal solve
(:func:`repro.workloads.npb.numerics.adi_step`) on a small grid and checks
diffusion invariants (boundedness, positivity).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.ocl.context import Context
from repro.ocl.enums import SchedFlag
from repro.ocl.queue import CommandQueue
from repro.workloads.base import ProblemClass, square_rule
from repro.workloads.npb import numerics
from repro.workloads.npb.common import NPBApplication, kernel_source, register_benchmark

__all__ = ["BT"]

#: (grid n, iterations) per class — NPB 3.3.
_CLASS_PARAMS = {
    ProblemClass.S: (12, 60),
    ProblemClass.W: (24, 200),
    ProblemClass.A: (64, 200),
    ProblemClass.B: (102, 200),
}

#: Block-solve kernels: serial line dependencies, register pressure —
#: calibrated so single-device GPU/CPU ≈ 3.5 (Fig. 3).
_SOLVE = {
    "divergence": 0.45,
    "irregularity": 0.45,
    "cpu_eff": 1.0,
    "gpu_eff": 0.082,
}
_RHS = {
    "divergence": 0.15,
    "irregularity": 0.30,
    "cpu_eff": 1.0,
    "gpu_eff": 0.22,
}


@register_benchmark
class BT(NPBApplication):
    NAME = "BT"
    QUEUE_RULE = square_rule((1, 4))
    VALID_CLASSES = tuple(_CLASS_PARAMS)
    TABLE2_FLAGS = SchedFlag.SCHED_EXPLICIT_REGION
    USES_WORKGROUP_INFO = True

    @property
    def grid_n(self) -> int:
        return _CLASS_PARAMS[self.problem_class][0]

    @property
    def default_iterations(self) -> int:
        return _CLASS_PARAMS[self.problem_class][1]

    @property
    def points_per_queue(self) -> int:
        return self.grid_n ** 3 // self.num_queues

    def generate_source(self) -> str:
        n = self.grid_n
        src = kernel_source(
            "bt_compute_rhs",
            "__global double* u, __global double* rhs, int n",
            {"flops_per_item": 160, "bytes_per_item": 240, "writes": "1", **_RHS},
            body="/* 13-point flux stencil over 5 variables (modelled) */",
        )
        for axis in ("x", "y", "z"):
            src += kernel_source(
                f"bt_{axis}_solve",
                "__global double* u, __global double* rhs, __global double* lhs, int n",
                {"flops_per_item": 620, "bytes_per_item": 200, "writes": "1,2", **_SOLVE},
                body=f"/* 5x5 block tridiagonal sweep along {axis} (modelled) */",
            )
        src += kernel_source(
            "bt_add",
            "__global double* u, __global double* rhs, int n",
            {
                "flops_per_item": 5,
                "bytes_per_item": 80,
                "divergence": 0.0,
                "irregularity": 0.1,
                "cpu_eff": 1.0,
                "gpu_eff": 0.5,
                "writes": "0",
            },
            body="/* u += rhs (modelled) */",
        )
        return src

    def setup(self, context: Context, queues: Sequence[CommandQueue]) -> None:
        self.context = context
        self.queues = list(queues)
        program = context.create_program(self.generate_source()).build()
        self.program = program
        pts = self.points_per_queue
        self._per_queue: Dict[int, Dict[str, object]] = {}
        for qi, q in enumerate(queues):
            bufs = {
                "u": context.create_buffer(pts * 5 * 8, name=f"bt-u-{qi}"),
                "rhs": context.create_buffer(pts * 5 * 8, name=f"bt-rhs-{qi}"),
                "lhs": context.create_buffer(pts * 15 * 8, name=f"bt-lhs-{qi}"),
            }
            q.enqueue_write_buffer(bufs["u"])
            kernels = {}
            for kname in (
                "bt_compute_rhs",
                "bt_x_solve",
                "bt_y_solve",
                "bt_z_solve",
                "bt_add",
            ):
                k = program.create_kernel(kname)
                k.set_arg(0, bufs["u"])
                k.set_arg(1, bufs["rhs"])
                if "solve" in kname:
                    k.set_arg(2, bufs["lhs"])
                    k.set_arg(3, pts)
                else:
                    k.set_arg(2, pts)
                kernels[kname] = k
            self._per_queue[qi] = {"bufs": bufs, "kernels": kernels}
        for q in queues:
            q.finish()

    def apply_workgroup_info(self) -> None:
        """The Table II note: BT sets CPU- and GPU-specific sweep shapes.

        The NDRange covers the same points either way; only the work-group
        geometry differs (small groups matching CPU cores, large ones to
        fill GPU SMs) — exactly what the proposed API decouples from the
        launch call.
        """
        assert self.context is not None
        pts = self.points_per_queue
        for st in self._per_queue.values():
            for kname in ("bt_x_solve", "bt_y_solve", "bt_z_solve"):
                kernel = st["kernels"][kname]
                for dev in self.context.platform.node.device_list():
                    local = 16 if dev.spec.kind.value == "cpu" else 256
                    kernel.set_work_group_info(dev.name, (pts,), (min(local, pts),))

    def enqueue_iteration(self, it: int) -> None:
        pts = self.points_per_queue
        for qi, q in enumerate(self.queues):
            ks = self._per_queue[qi]["kernels"]
            q.enqueue_nd_range_kernel(ks["bt_compute_rhs"], (pts,), (64,))
            # The sweeps are launched over all points (wavefront-style);
            # their serial-line inefficiency is captured by the cost
            # annotations, not by starving the launch of work items.
            for kname in ("bt_x_solve", "bt_y_solve", "bt_z_solve"):
                q.enqueue_nd_range_kernel(ks[kname], (pts,), (64,))
            q.enqueue_nd_range_kernel(ks["bt_add"], (pts,), (64,))
        if self.num_queues > 1:
            # Face exchange between the √Q×√Q column blocks.
            n = self.grid_n
            face_bytes = (n * n // int(math.isqrt(self.num_queues))) * 5 * 8
            for qi, q in enumerate(self.queues):
                bufs = self._per_queue[qi]["bufs"]
                q.enqueue_read_buffer(bufs["u"], nbytes=face_bytes)
                q.enqueue_write_buffer(bufs["u"], nbytes=face_bytes)

    def finalize(self) -> None:
        if self.functional:
            n = 13
            u = np.zeros((n, n, n))
            u[n // 2, n // 2, n // 2] = 1.0
            total0 = u.sum()
            for _ in range(min(self.iterations, 20)):
                u = numerics.adi_step(u, dt=0.05, h=1.0 / (n - 1))
            self.checks["max_value"] = float(u.max())
            self.checks["bounded"] = bool(0.0 <= u.min() and u.max() <= 1.0)
            self.checks["mass_initial"] = float(total0)
            self.checks["mass_final"] = float(u.sum())
