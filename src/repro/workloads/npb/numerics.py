"""Reference numerics for the NPB benchmarks (small-scale, real).

The simulated devices charge *modelled* time, but in functional mode each
benchmark also computes real numbers so correctness is testable:

* :func:`randlc` / :func:`vranlc` — NPB's 48-bit linear congruential
  generator (the double-precision formulation from the original suite);
* :func:`ep_tally` — EP's gaussian-pair acceptance/annulus counting;
* :func:`make_poisson_csr` / :func:`conjugate_gradient` — CG's sparse
  solver substrate (hand-rolled CG, no scipy dependency);
* :func:`ft_evolve` — FT's frequency-space evolution + inverse FFT with
  NPB-style checksums;
* :func:`mg_vcycle` — MG's 3-D V-cycle (residual, smoother, restriction,
  prolongation);
* :func:`adi_step` / :func:`thomas` — the dimension-split tridiagonal
  solves underlying BT and SP (BT solves block systems, SP scalar
  pentadiagonal; both are represented by scalar tridiagonal line solves of
  a 3-D diffusion operator, which exercises the same sweep structure).

Everything here is deterministic and exercised directly by unit tests.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "randlc",
    "vranlc",
    "vranlc_fast",
    "ipow46",
    "ep_tally",
    "make_poisson_csr",
    "csr_matvec",
    "conjugate_gradient",
    "ft_indexmap",
    "ft_evolve",
    "mg_residual",
    "mg_smooth",
    "mg_restrict",
    "mg_prolongate",
    "mg_vcycle",
    "thomas",
    "adi_step",
]

# ---------------------------------------------------------------------------
# NPB 48-bit LCG  (x_{k+1} = a * x_k mod 2^46, double-precision arithmetic)
# ---------------------------------------------------------------------------
_R23 = 2.0 ** -23
_T23 = 2.0 ** 23
_R46 = 2.0 ** -46
_T46 = 2.0 ** 46

#: NPB's default multiplier a = 5^13.
LCG_A = float(5 ** 13)


def randlc(x: float, a: float = LCG_A) -> Tuple[float, float]:
    """One step of the NPB LCG.

    Returns ``(uniform, new_seed)`` where ``uniform`` is in (0, 1).  This is
    a faithful transcription of NPB's ``randlc``: the 46-bit product is
    formed from 23-bit halves to stay exact in double precision.
    """
    a1 = math.floor(_R23 * a)
    a2 = a - _T23 * a1
    x1 = math.floor(_R23 * x)
    x2 = x - _T23 * x1
    t1 = a1 * x2 + a2 * x1
    t2 = math.floor(_R23 * t1)
    z = t1 - _T23 * t2
    t3 = _T23 * z + a2 * x2
    t4 = math.floor(_R46 * t3)
    x = t3 - _T46 * t4
    return _R46 * x, x


def vranlc(n: int, x: float, a: float = LCG_A) -> Tuple[np.ndarray, float]:
    """Generate ``n`` successive uniforms; returns (array, new_seed).

    Delegates to :func:`vranlc_fast` — bit-for-bit the same stream as
    chaining :func:`randlc` (which remains the scalar reference the test
    suite cross-checks against), without the O(n) Python loop.
    """
    if n == 0:
        return np.empty(0, dtype=np.float64), x
    return vranlc_fast(n, x, a)


def _mul46(x: np.ndarray, a: float) -> np.ndarray:
    """Elementwise ``a * x mod 2^46`` in the LCG's exact double arithmetic."""
    a1 = math.floor(_R23 * a)
    a2 = a - _T23 * a1
    x1 = np.floor(_R23 * x)
    x2 = x - _T23 * x1
    t1 = a1 * x2 + a2 * x1
    t2 = np.floor(_R23 * t1)
    z = t1 - _T23 * t2
    t3 = _T23 * z + a2 * x2
    t4 = np.floor(_R46 * t3)
    return t3 - _T46 * t4


def vranlc_fast(n: int, x: float, a: float = LCG_A) -> Tuple[np.ndarray, float]:
    """Vectorised :func:`vranlc`: same stream, O(n log n) numpy work.

    The k-th output seed is ``a^(k+1) · x mod 2^46``; instead of chaining n
    sequential multiplications we decompose each exponent in binary and
    apply the precomputed ``a^(2^j)`` factors to the whole vector at once —
    ~log2(n) vectorised passes.  Bit-for-bit identical to the scalar
    generator (the double-precision modular product is exact), which the
    test suite asserts.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    exponents = np.arange(1, n + 1, dtype=np.int64)
    seeds = np.full(n, float(x))
    factor = a  # a^(2^j), advanced by squaring
    bit = 1
    max_exp = int(exponents[-1])
    while bit <= max_exp:
        mask = (exponents & bit) != 0
        if mask.any():
            seeds[mask] = _mul46(seeds[mask], factor)
        bit <<= 1
        if bit <= max_exp:
            _, factor = randlc(factor, factor)
    return _R46 * seeds, float(seeds[-1])


def ipow46(a: float, exponent: int) -> float:
    """Compute ``a ** exponent mod 2^46`` in the LCG's arithmetic.

    NPB uses this to jump the generator ahead so independent chunks (here:
    per-command-queue chunks) can be generated without serialising.
    """
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    result = 1.0
    base = a
    e = exponent
    while e > 0:
        if e % 2 == 1:
            _, result = randlc(result, base)
        _, base = randlc(base, base)
        e //= 2
    return result


def ep_tally(n_pairs: int, seed: float = 271828183.0) -> Dict[str, object]:
    """EP's core: gaussian deviates by acceptance-rejection, annulus counts.

    Generates ``2 * n_pairs`` uniforms with the NPB LCG, maps to (-1, 1),
    accepts pairs with t = x²+y² ≤ 1, forms gaussian deviates
    X = x·√(−2·ln t / t), Y likewise, and counts pairs into ten square
    annuli by ⌊max(|X|, |Y|)⌋.  Returns sums and counts.
    """
    if n_pairs <= 0:
        raise ValueError("n_pairs must be positive")
    u, _ = vranlc_fast(2 * n_pairs, seed)
    x = 2.0 * u[0::2] - 1.0
    y = 2.0 * u[1::2] - 1.0
    t = x * x + y * y
    accept = t <= 1.0
    xt, yt, tt = x[accept], y[accept], t[accept]
    factor = np.sqrt(-2.0 * np.log(tt) / tt)
    gx = xt * factor
    gy = yt * factor
    l = np.minimum(np.floor(np.maximum(np.abs(gx), np.abs(gy))).astype(int), 9)
    counts = np.bincount(l, minlength=10)[:10]
    return {
        "sx": float(gx.sum()),
        "sy": float(gy.sum()),
        "counts": counts,
        "accepted": int(accept.sum()),
    }


# ---------------------------------------------------------------------------
# CG: sparse SPD system + hand-rolled conjugate gradient
# ---------------------------------------------------------------------------
def make_poisson_csr(n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """5-point 2-D Poisson matrix on an n×n grid in CSR form.

    Returns ``(data, indices, indptr, size)`` with ``size = n*n``.  SPD by
    construction, so CG converges — the same property NPB's CG matrix has.
    """
    if n < 2:
        raise ValueError("grid must be at least 2x2")
    size = n * n
    # Per row the column-sorted stencil is always (row-n, row-1, row,
    # row+1, row+n) with the off-grid neighbours dropped, so the whole
    # matrix assembles as one masked (size, 5) candidate table — boolean
    # masking flattens row-major, preserving the per-row sorted order the
    # scalar assembly produced.
    ij = np.arange(n)
    ii = np.repeat(ij, n)
    jj = np.tile(ij, n)
    rows = np.arange(size, dtype=np.int64)
    cand = np.stack([rows - n, rows - 1, rows, rows + 1, rows + n], axis=1)
    vals = np.broadcast_to(
        np.array([-1.0, -1.0, 4.0, -1.0, -1.0]), cand.shape
    )
    valid = np.stack(
        [ii > 0, jj > 0, np.ones(size, dtype=bool), jj < n - 1, ii < n - 1],
        axis=1,
    )
    indptr = np.zeros(size + 1, dtype=np.int64)
    np.cumsum(valid.sum(axis=1), out=indptr[1:])
    return (
        np.ascontiguousarray(vals[valid], dtype=np.float64),
        np.ascontiguousarray(cand[valid], dtype=np.int64),
        indptr,
        size,
    )


def csr_matvec(
    data: np.ndarray, indices: np.ndarray, indptr: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """y = A @ x for a CSR matrix (vectorised with reduceat)."""
    contrib = data * x[indices]
    # indptr[:-1] marks row starts; empty rows would need care, ours have none.
    y = np.add.reduceat(contrib, indptr[:-1])
    return y


def conjugate_gradient(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    b: np.ndarray,
    iterations: int = 25,
) -> Tuple[np.ndarray, List[float]]:
    """Plain CG; returns the iterate and the residual-norm history."""
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rho = float(r @ r)
    history = [math.sqrt(rho)]
    for _ in range(iterations):
        q = csr_matvec(data, indices, indptr, p)
        denom = float(p @ q)
        if denom == 0.0:
            break
        alpha = rho / denom
        x += alpha * p
        r -= alpha * q
        rho_new = float(r @ r)
        history.append(math.sqrt(rho_new))
        if rho_new == 0.0:
            break
        p = r + (rho_new / rho) * p
        rho = rho_new
    return x, history


# ---------------------------------------------------------------------------
# FT: frequency-space evolution
# ---------------------------------------------------------------------------
def ft_indexmap(shape: Tuple[int, int, int]) -> np.ndarray:
    """NPB FT's exponent index map: squared wavenumber distance per mode."""
    nx, ny, nz = shape
    kx = np.minimum(np.arange(nx), nx - np.arange(nx)) ** 2
    ky = np.minimum(np.arange(ny), ny - np.arange(ny)) ** 2
    kz = np.minimum(np.arange(nz), nz - np.arange(nz)) ** 2
    return (
        kx[:, None, None] + ky[None, :, None] + kz[None, None, :]
    ).astype(np.float64)


def ft_evolve(
    u0_hat: np.ndarray, indexmap: np.ndarray, alpha: float, step: int
) -> Tuple[np.ndarray, complex]:
    """One FT iteration: decay modes in frequency space, inverse FFT,
    NPB-style checksum over a scattered index set."""
    decay = np.exp(-4.0 * alpha * (math.pi ** 2) * indexmap * step)
    u1_hat = u0_hat * decay
    x = np.fft.ifftn(u1_hat)
    nx, ny, nz = x.shape
    j = np.arange(1, 1025)
    csum = complex(x[j % nx, (3 * j) % ny, (5 * j) % nz].sum())
    return x, csum / (nx * ny * nz)


# ---------------------------------------------------------------------------
# MG: 3-D multigrid V-cycle pieces
# ---------------------------------------------------------------------------
def mg_residual(u: np.ndarray, v: np.ndarray, h: float) -> np.ndarray:
    """r = v - A u with A the 7-point Laplacian (Dirichlet walls)."""
    r = np.zeros_like(u)
    lap = (
        u[:-2, 1:-1, 1:-1]
        + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1]
        + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2]
        + u[1:-1, 1:-1, 2:]
        - 6.0 * u[1:-1, 1:-1, 1:-1]
    ) / (h * h)
    r[1:-1, 1:-1, 1:-1] = v[1:-1, 1:-1, 1:-1] - (-lap)
    return r


def mg_smooth(u: np.ndarray, v: np.ndarray, h: float, sweeps: int = 2) -> np.ndarray:
    """Damped-Jacobi smoothing for -∆u = v."""
    omega = 0.8
    for _ in range(sweeps):
        neigh = (
            u[:-2, 1:-1, 1:-1]
            + u[2:, 1:-1, 1:-1]
            + u[1:-1, :-2, 1:-1]
            + u[1:-1, 2:, 1:-1]
            + u[1:-1, 1:-1, :-2]
            + u[1:-1, 1:-1, 2:]
        )
        jac = (neigh + h * h * v[1:-1, 1:-1, 1:-1]) / 6.0
        u = u.copy()
        u[1:-1, 1:-1, 1:-1] = (1 - omega) * u[1:-1, 1:-1, 1:-1] + omega * jac
    return u


def mg_restrict(r: np.ndarray) -> np.ndarray:
    """Full-weighting restriction to the next coarser grid (size (n//2)+1)."""
    return r[::2, ::2, ::2].copy()


def mg_prolongate(e: np.ndarray, fine_shape: Tuple[int, int, int]) -> np.ndarray:
    """Trilinear prolongation back to the fine grid."""
    out = np.zeros(fine_shape, dtype=e.dtype)
    out[::2, ::2, ::2] = e
    # interpolate along each axis in turn
    out[1::2, :, :] = 0.5 * (out[0:-1:2, :, :] + out[2::2, :, :])
    out[:, 1::2, :] = 0.5 * (out[:, 0:-1:2, :] + out[:, 2::2, :])
    out[:, :, 1::2] = 0.5 * (out[:, :, 0:-1:2] + out[:, :, 2::2])
    return out


def mg_vcycle(u: np.ndarray, v: np.ndarray, h: float, min_size: int = 3) -> np.ndarray:
    """One V-cycle for -∆u = v on a (2^k + 1)³ grid."""
    u = mg_smooth(u, v, h)
    if u.shape[0] <= min_size:
        return mg_smooth(u, v, h, sweeps=8)
    r = mg_residual(u, v, h)
    rc = mg_restrict(r)
    ec = mg_vcycle(np.zeros_like(rc), rc, 2 * h, min_size)
    u = u + mg_prolongate(ec, u.shape)
    return mg_smooth(u, v, h)


# ---------------------------------------------------------------------------
# BT/SP: dimension-split implicit diffusion (ADI with Thomas solves)
# ---------------------------------------------------------------------------
def thomas(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Tridiagonal solve along the *last* axis of ``rhs`` (batched).

    ``lower[0]`` and ``upper[-1]`` are ignored.  Standard Thomas algorithm,
    vectorised over leading axes.
    """
    n = rhs.shape[-1]
    if not (lower.shape[-1] == diag.shape[-1] == upper.shape[-1] == n):
        raise ValueError("band shapes must match rhs")
    cp = np.zeros_like(rhs)
    dp = np.zeros_like(rhs)
    cp[..., 0] = upper[..., 0] / diag[..., 0]
    dp[..., 0] = rhs[..., 0] / diag[..., 0]
    for i in range(1, n):
        denom = diag[..., i] - lower[..., i] * cp[..., i - 1]
        cp[..., i] = upper[..., i] / denom
        dp[..., i] = (rhs[..., i] - lower[..., i] * dp[..., i - 1]) / denom
    x = np.zeros_like(rhs)
    x[..., -1] = dp[..., -1]
    for i in range(n - 2, -1, -1):
        x[..., i] = dp[..., i] - cp[..., i] * x[..., i + 1]
    return x


def adi_step(u: np.ndarray, dt: float, h: float) -> np.ndarray:
    """One ADI (dimension-split implicit Euler) step of 3-D diffusion.

    Solves (I − dt·∂²/∂x²)(I − dt·∂²/∂y²)(I − dt·∂²/∂z²) u⁺ = u with
    Dirichlet boundaries, one tridiagonal sweep per dimension — the solve
    structure of BT's x/y/z_solve and SP's sweeps.
    """
    lam = dt / (h * h)
    out = u.copy()
    for axis in range(3):
        moved = np.moveaxis(out, axis, -1)
        n = moved.shape[-1]
        lower = np.full(n, -lam)
        diag = np.full(n, 1.0 + 2.0 * lam)
        upper = np.full(n, -lam)
        # Dirichlet walls: keep boundary values fixed.
        diag[0] = diag[-1] = 1.0
        upper[0] = lower[-1] = 0.0
        lower[0] = upper[-1] = 0.0
        shape = (1,) * (moved.ndim - 1) + (n,)
        solved = thomas(
            lower.reshape(shape), diag.reshape(shape), upper.reshape(shape), moved
        )
        out = np.moveaxis(solved, -1, axis)
    return out
