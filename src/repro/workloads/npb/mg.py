"""MG — Multigrid V-cycle (memory-bandwidth bound stencils).

NPB MG applies V-cycles of a 7-point Laplacian multigrid solver.  The
SNU-NPB OpenCL port runs markedly better on the CPU (Fig. 3: GPU ≈ 3×
slower): the stencil kernels are written Fortran-style (strided accesses,
no use of local memory), so GPU bandwidth efficiency collapses.

Table II: power-of-two queues (1, 2, 4); classes S, W, A, B;
``SCHED_EXPLICIT_REGION`` around the warm-up V-cycle.

Decomposition: slab split along z.  One iteration enqueues, per queue, the
down-sweep (residual + restriction per level), coarse smoothing, and the
up-sweep (interpolation + residual + smoother per level), with a halo
exchange between neighbouring queues at the finest level.

Functional mode runs real V-cycles (:func:`repro.workloads.npb.numerics.mg_vcycle`)
on a 33³ grid and records the residual-norm history.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.ocl.context import Context
from repro.ocl.enums import SchedFlag
from repro.ocl.queue import CommandQueue
from repro.workloads.base import ProblemClass, power_of_two_rule
from repro.workloads.npb import numerics
from repro.workloads.npb.common import NPBApplication, kernel_source, register_benchmark

__all__ = ["MG"]

#: (grid n, iterations) per class — NPB 3.3.
_CLASS_PARAMS = {
    ProblemClass.S: (32, 4),
    ProblemClass.W: (128, 4),
    ProblemClass.A: (256, 4),
    ProblemClass.B: (256, 20),
}

#: Coarsest level size.
_MIN_LEVEL = 4

#: Annotation shared by the stencil kernels (calibrated to Fig. 3's ≈3×).
_STENCIL = {
    "divergence": 0.10,
    "irregularity": 0.50,
    "cpu_eff": 1.0,
    "gpu_eff": 0.11,
}


@register_benchmark
class MG(NPBApplication):
    NAME = "MG"
    QUEUE_RULE = power_of_two_rule((1, 2, 4))
    VALID_CLASSES = tuple(_CLASS_PARAMS)
    TABLE2_FLAGS = SchedFlag.SCHED_EXPLICIT_REGION

    @property
    def grid_n(self) -> int:
        return _CLASS_PARAMS[self.problem_class][0]

    @property
    def default_iterations(self) -> int:
        return _CLASS_PARAMS[self.problem_class][1]

    @property
    def levels(self) -> List[int]:
        """Grid sizes from finest to coarsest."""
        out = []
        n = self.grid_n
        while n >= _MIN_LEVEL:
            out.append(n)
            n //= 2
        return out

    def generate_source(self) -> str:
        src = ""
        for name, flops, bytes_, writes in (
            ("mg_resid", 21, 72, "2"),
            ("mg_psinv", 25, 72, "0"),
            ("mg_rprj3", 19, 40, "1"),
            ("mg_interp", 12, 40, "1"),
        ):
            src += kernel_source(
                name,
                "__global double* u, __global double* v, __global double* r, int n",
                {
                    "flops_per_item": flops,
                    "bytes_per_item": bytes_,
                    "writes": writes,
                    **_STENCIL,
                },
                body=f"/* {name} 7-point stencil sweep (modelled) */",
            )
        return src

    def setup(self, context: Context, queues: Sequence[CommandQueue]) -> None:
        self.context = context
        self.queues = list(queues)
        program = context.create_program(self.generate_source()).build()
        self.program = program
        n = self.grid_n
        pts_per_queue = n * n * n // self.num_queues
        self._per_queue: Dict[int, Dict[str, object]] = {}
        for qi, q in enumerate(queues):
            bufs = {
                "u": context.create_buffer(pts_per_queue * 8, name=f"mg-u-{qi}"),
                "v": context.create_buffer(pts_per_queue * 8, name=f"mg-v-{qi}"),
                # r holds every level's residual (sum over levels < 8/7 n^3).
                "r": context.create_buffer(
                    int(pts_per_queue * 8 * 8 / 7) + 8, name=f"mg-r-{qi}"
                ),
            }
            q.enqueue_write_buffer(bufs["v"])
            kernels = {}
            for kname in ("mg_resid", "mg_psinv", "mg_rprj3", "mg_interp"):
                k = program.create_kernel(kname)
                k.set_arg(0, bufs["u"])
                k.set_arg(1, bufs["v"])
                k.set_arg(2, bufs["r"])
                k.set_arg(3, n)
                kernels[kname] = k
            self._per_queue[qi] = {"bufs": bufs, "kernels": kernels}
        for q in queues:
            q.finish()

    def _level_items(self, level_n: int) -> int:
        return max(64, level_n ** 3 // self.num_queues)

    def enqueue_iteration(self, it: int) -> None:
        levels = self.levels
        for qi, q in enumerate(self.queues):
            ks = self._per_queue[qi]["kernels"]
            # Down sweep: residual + restriction per level.
            for ln in levels[:-1]:
                items = self._level_items(ln)
                q.enqueue_nd_range_kernel(ks["mg_resid"], (items,), (64,))
                q.enqueue_nd_range_kernel(ks["mg_rprj3"], (items // 8 or 64,), (64,))
            # Coarsest-level smoothing.
            q.enqueue_nd_range_kernel(
                ks["mg_psinv"], (self._level_items(levels[-1]),), (64,)
            )
            # Up sweep: interpolation + residual + smoother per level.
            for ln in reversed(levels[:-1]):
                items = self._level_items(ln)
                q.enqueue_nd_range_kernel(ks["mg_interp"], (items,), (64,))
                q.enqueue_nd_range_kernel(ks["mg_resid"], (items,), (64,))
                q.enqueue_nd_range_kernel(ks["mg_psinv"], (items,), (64,))
        if self.num_queues > 1:
            # Finest-level halo exchange between neighbouring slabs.
            n = self.grid_n
            halo_bytes = n * n * 8
            for qi, q in enumerate(self.queues):
                bufs = self._per_queue[qi]["bufs"]
                q.enqueue_read_buffer(bufs["u"], nbytes=halo_bytes)
                q.enqueue_write_buffer(bufs["u"], nbytes=halo_bytes)

    def finalize(self) -> None:
        if self.functional:
            n = 33
            rng = np.random.default_rng(7)
            v = np.zeros((n, n, n))
            v[1:-1, 1:-1, 1:-1] = rng.standard_normal((n - 2, n - 2, n - 2))
            u = np.zeros_like(v)
            h = 1.0 / (n - 1)
            history = [float(np.linalg.norm(numerics.mg_residual(u, v, h)))]
            for _ in range(self.iterations):
                u = numerics.mg_vcycle(u, v, h)
                history.append(float(np.linalg.norm(numerics.mg_residual(u, v, h))))
            self.checks["residual_history"] = history
            self.checks["converging"] = history[-1] < history[0] * 0.2
