"""EP — Embarrassingly Parallel (random-number generation).

The paper's characterisation (Section VI.B.1): "the EP benchmark (random
number generator) is known to be very compute intensive and not iterative";
it is the one SNU-NPB benchmark that runs *faster on the GPU*, and "the CPU
(nonideal device) can be up to 20× slower than the GPU (ideal device) for
certain problem sizes" — which is what makes full-kernel profiling cost
~20× (Fig. 8) and minikernel profiling essential.

Table II: any queue count (1, 2, 4); classes S–D; scheduler options
``SCHED_KERNEL_EPOCH`` + ``SCHED_COMPUTE_BOUND``.

Modelling notes.  Each queue generates ``2^m / Q`` gaussian pairs with the
NPB 48-bit LCG; one work item handles a batch of pairs.  The CPU-side
efficiency degrades with problem class (annotation ``cpu_eff``): the
per-thread tally tables and RNG state fall out of cache as the batch count
grows, while the GPU hides the latency — calibrated so the CPU/GPU ratio
spans ≈2.5× (class S) to ≈20× (class D), matching Fig. 3 and Fig. 8.

Functional mode runs the *real* LCG/tally pipeline
(:func:`repro.workloads.npb.numerics.ep_tally`) at a reduced pair count per
queue, with jump-ahead seeding so queues draw disjoint streams.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.ocl.context import Context
from repro.ocl.enums import SchedFlag
from repro.ocl.queue import CommandQueue
from repro.workloads.base import ProblemClass, any_queue_rule
from repro.workloads.npb import numerics
from repro.workloads.npb.common import NPBApplication, kernel_source, register_benchmark

__all__ = ["EP"]

#: log2 of the gaussian-pair count per class (NPB 3.3).
_CLASS_M = {
    ProblemClass.S: 24,
    ProblemClass.W: 25,
    ProblemClass.A: 28,
    ProblemClass.B: 30,
    ProblemClass.C: 32,
    ProblemClass.D: 36,
}

#: CPU efficiency per class (see module docstring; calibrated to Fig. 3/8).
_CPU_EFF = {
    ProblemClass.S: 0.90,
    ProblemClass.W: 0.80,
    ProblemClass.A: 0.55,
    ProblemClass.B: 0.40,
    ProblemClass.C: 0.25,
    ProblemClass.D: 0.13,
}

_GPU_EFF = 0.50
#: FLOPs to generate + tally one gaussian pair (RNG, log, sqrt, compare).
_FLOPS_PER_PAIR = 90.0
#: Pairs handled by one work item (SNU-NPB batches work per item).
_PAIRS_PER_ITEM = 256
#: Pair count per queue in functional mode (the vectorised LCG makes
#: a real 64k-pair tally cheap).
_FUNCTIONAL_PAIRS = 1 << 16


@register_benchmark
class EP(NPBApplication):
    NAME = "EP"
    QUEUE_RULE = any_queue_rule((1, 2, 4))
    VALID_CLASSES = (
        ProblemClass.S,
        ProblemClass.W,
        ProblemClass.A,
        ProblemClass.B,
        ProblemClass.C,
        ProblemClass.D,
    )
    TABLE2_FLAGS = SchedFlag.SCHED_KERNEL_EPOCH | SchedFlag.SCHED_COMPUTE_BOUND

    @property
    def pairs_total(self) -> int:
        return 1 << _CLASS_M[self.problem_class]

    @property
    def pairs_per_queue(self) -> int:
        return self.pairs_total // self.num_queues

    @property
    def default_iterations(self) -> int:
        return 1  # EP is not iterative

    def generate_source(self) -> str:
        pc = self.problem_class
        items = max(1, self.pairs_per_queue // _PAIRS_PER_ITEM)
        flops = _FLOPS_PER_PAIR * self.pairs_per_queue / items
        src = kernel_source(
            "ep",
            "__global double* qq, __global double* sxy, int nk",
            {
                "flops_per_item": round(flops, 3),
                "bytes_per_item": 24,
                "divergence": 0.25,
                "irregularity": 0.05,
                "cpu_eff": _CPU_EFF[pc],
                "gpu_eff": _GPU_EFF,
                "writes": "0,1",
            },
            body="/* batch LCG + gaussian tally (modelled) */",
        )
        src += kernel_source(
            "ep_reduce",
            "__global double* qq, __global double* out, int ngroups",
            {
                "flops_per_item": 32,
                "bytes_per_item": 96,
                "divergence": 0.0,
                "irregularity": 0.1,
                "cpu_eff": 1.0,
                "gpu_eff": 0.6,
                "writes": "1",
            },
            body="/* per-workgroup tally reduction (modelled) */",
        )
        return src

    def setup(self, context: Context, queues: Sequence[CommandQueue]) -> None:
        self.context = context
        self.queues = list(queues)
        program = context.create_program(self.generate_source()).build()
        self.program = program
        self._per_queue: Dict[int, Dict[str, object]] = {}
        for qi, q in enumerate(queues):
            items = max(1, self.pairs_per_queue // _PAIRS_PER_ITEM)
            groups = max(1, items // 64)
            tally_arr = np.zeros(12, dtype=np.float64) if self.functional else None
            result_arr = np.zeros(12, dtype=np.float64) if self.functional else None
            tally = context.create_buffer(
                max(96 * groups, 96),
                host_array=tally_arr,
                name=f"ep-tally-{qi}",
            )
            result = context.create_buffer(
                96, host_array=result_arr, name=f"ep-result-{qi}"
            )
            k = program.create_kernel("ep")
            k.set_arg(0, tally)
            k.set_arg(1, result)
            k.set_arg(2, items)
            kr = program.create_kernel("ep_reduce")
            kr.set_arg(0, tally)
            kr.set_arg(1, result)
            kr.set_arg(2, groups)
            if self.functional:
                self._attach_functional(qi, k)
            self._per_queue[qi] = {
                "ep": k,
                "reduce": kr,
                "items": items,
                "result": result,
                "out": np.zeros(12, dtype=np.float64),
            }

    def _attach_functional(self, qi: int, kernel) -> None:
        """Real LCG pipeline at reduced scale, disjoint streams per queue."""
        n = _FUNCTIONAL_PAIRS
        start_pair = qi * n
        jump = numerics.ipow46(numerics.LCG_A, 2 * start_pair)
        _, seed = numerics.randlc(271828183.0, jump)

        def host(args: Dict[str, object]) -> None:
            tallies = numerics.ep_tally(n, seed)
            qq = args["qq"]
            qq[:10] = tallies["counts"]
            qq[10] = tallies["sx"]
            qq[11] = tallies["sy"]
            sxy = args["sxy"]
            sxy[:10] = tallies["counts"]
            sxy[10] = tallies["sx"]
            sxy[11] = tallies["sy"]

        kernel.set_host_function(host)

    def enqueue_iteration(self, it: int) -> None:
        for qi, q in enumerate(self.queues):
            state = self._per_queue[qi]
            items = state["items"]
            q.enqueue_nd_range_kernel(state["ep"], (items,), (64,))
            q.enqueue_nd_range_kernel(state["reduce"], (1024,), (64,))

    def finalize(self) -> None:
        for qi, q in enumerate(self.queues):
            state = self._per_queue[qi]
            q.enqueue_read_buffer(state["result"], state["out"])
        self.finish_all()
        if self.functional:
            counts = np.zeros(10)
            sx = sy = 0.0
            for state in self._per_queue.values():
                counts += state["out"][:10]
                sx += state["out"][10]
                sy += state["out"][11]
            total_pairs = _FUNCTIONAL_PAIRS * self.num_queues
            self.checks["acceptance"] = float(counts.sum()) / total_pairs
            self.checks["counts"] = counts.tolist()
            self.checks["sx"] = sx
            self.checks["sy"] = sy
