"""Admission control for the multi-tenant scheduling service.

Two gates, both enforced *before* work reaches the shared fleet:

* **Session admission** — the service caps concurrently active sessions
  (``max_sessions``).  An over-capacity ``create_session`` either *rejects*
  (:class:`AdmissionError`) or *queues* the session on a FIFO waitlist
  (``on_overload="queue"``); queued sessions are admitted automatically as
  active sessions close.
* **Resource quotas** — each tenant carries a :class:`TenantQuota`:
  ``max_resident_bytes`` bounds the bytes of buffers the tenant may hold on
  the fleet, ``max_queues`` bounds its command queues, and
  ``max_device_seconds`` bounds its cumulative device time.  Byte and queue
  quotas reject at creation time; the device-time quota is enforced by the
  arbiter (an over-budget tenant's ready pools stay queued, and a forced
  trigger raises :class:`QuotaExceeded`).

Defaults come from the environment so a fleet operator can set one policy
for every client process: ``MULTICL_TENANT_QUOTA_BYTES`` (per-tenant
resident-byte quota) and ``MULTICL_TENANT_MAX_SESSIONS`` (service-wide
session cap).  Unset means unlimited.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.session import TenantSession

__all__ = [
    "AdmissionError",
    "QuotaExceeded",
    "TenantQuota",
    "AdmissionController",
    "QUOTA_BYTES_ENV",
    "MAX_SESSIONS_ENV",
]

#: Default per-tenant resident-byte quota (unset = unlimited).
QUOTA_BYTES_ENV = "MULTICL_TENANT_QUOTA_BYTES"
#: Default service-wide cap on concurrently active sessions.
MAX_SESSIONS_ENV = "MULTICL_TENANT_MAX_SESSIONS"


class AdmissionError(RuntimeError):
    """A tenant request was rejected by admission control."""


class QuotaExceeded(AdmissionError):
    """A tenant exhausted a quota mid-run (e.g. its device-time budget)."""


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid {name}={raw!r}: expected an integer",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return value if value >= 0 else None


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource bounds (``None`` = unlimited).

    ``max_resident_bytes`` — total bytes of fleet buffers the tenant may
    allocate; ``max_queues`` — command queues it may create;
    ``max_device_seconds`` — cumulative device busy-seconds it may consume
    (kernels, transfers and migrations attributed through the trace's
    tenant tag).
    """

    max_resident_bytes: Optional[int] = None
    max_queues: Optional[int] = None
    max_device_seconds: Optional[float] = None

    @staticmethod
    def from_env(base: Optional["TenantQuota"] = None) -> "TenantQuota":
        """Fill unset knobs from the environment (operator defaults)."""
        quota = base or TenantQuota()
        if quota.max_resident_bytes is None:
            env_bytes = _env_int(QUOTA_BYTES_ENV)
            if env_bytes is not None:
                quota = TenantQuota(
                    max_resident_bytes=env_bytes,
                    max_queues=quota.max_queues,
                    max_device_seconds=quota.max_device_seconds,
                )
        return quota


class AdmissionController:
    """Session cap + per-tenant quota enforcement for one service."""

    def __init__(self, max_sessions: Optional[int] = None) -> None:
        if max_sessions is None:
            max_sessions = _env_int(MAX_SESSIONS_ENV)
        self.max_sessions = max_sessions
        self.active: List["TenantSession"] = []
        #: FIFO of sessions waiting for an active slot (``on_overload="queue"``).
        self.waitlist: List["TenantSession"] = []

    # ------------------------------------------------------------------
    # Session admission
    # ------------------------------------------------------------------
    def admit_session(self, session: "TenantSession", on_overload: str) -> bool:
        """Admit ``session`` or handle overload; returns True if admitted.

        ``on_overload="reject"`` raises :class:`AdmissionError` when the
        service is at capacity; ``"queue"`` parks the session on the
        waitlist (it is admitted when a slot frees up).
        """
        if on_overload not in ("reject", "queue"):
            raise ValueError(
                f"on_overload must be 'reject' or 'queue', got {on_overload!r}"
            )
        if self.max_sessions is None or len(self.active) < self.max_sessions:
            self.active.append(session)
            return True
        if on_overload == "reject":
            raise AdmissionError(
                f"session {session.name!r} rejected: service at capacity "
                f"({len(self.active)}/{self.max_sessions} active sessions)"
            )
        self.waitlist.append(session)
        return False

    def release_session(self, session: "TenantSession") -> List["TenantSession"]:
        """A session closed; admit waiting sessions into the freed slots.

        Returns the sessions admitted off the waitlist (the service
        activates them — builds their contexts — in order).
        """
        if session in self.active:
            self.active.remove(session)
        elif session in self.waitlist:
            self.waitlist.remove(session)
            return []
        admitted: List["TenantSession"] = []
        while self.waitlist and (
            self.max_sessions is None or len(self.active) < self.max_sessions
        ):
            nxt = self.waitlist.pop(0)
            self.active.append(nxt)
            admitted.append(nxt)
        return admitted

    # ------------------------------------------------------------------
    # Resource quotas
    # ------------------------------------------------------------------
    def check_buffer(self, session: "TenantSession", nbytes: int) -> None:
        """Reject a buffer allocation that would exceed the byte quota."""
        limit = session.quota.max_resident_bytes
        if limit is not None and session.allocated_bytes + nbytes > limit:
            raise AdmissionError(
                f"tenant {session.name!r} over resident-byte quota: "
                f"{session.allocated_bytes} + {nbytes} > {limit}"
            )

    def check_queue(self, session: "TenantSession") -> None:
        """Reject a queue creation that would exceed the queue quota."""
        limit = session.quota.max_queues
        if limit is not None and session.queue_count + 1 > limit:
            raise AdmissionError(
                f"tenant {session.name!r} over queue quota: "
                f"{session.queue_count} + 1 > {limit}"
            )
