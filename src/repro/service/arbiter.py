"""Weighted deficit-round-robin arbitration across tenant ready pools.

In service mode every tenant context's scheduler trigger is routed here
(:attr:`Context.arbiter <repro.ocl.context.Context.arbiter>`), so the
arbiter sees *all* tenants' ready pools at every synchronization boundary
and decides **when** each pool dispatches.  **Where** the pool's queues run
is still decided by the owning tenant's own policy — dispatch goes through
:meth:`MultiCLSchedulerBase.dispatch
<repro.core.scheduler.MultiCLSchedulerBase.dispatch>`, which sanitizes the
pool and runs the usual AUTO_FIT / ROUND_ROBIN mapping.

The algorithm is classic deficit round-robin, weighted:

* Each tenant holds a *deficit* counter in estimated device-seconds.  Every
  arbitration round credits each backlogged tenant ``quantum × weight``;
  an idle tenant's deficit resets to zero (no banking ahead of demand).
* In priority-then-round-robin order, a tenant whose deficit covers its
  pool's estimated cost dispatches the pool and pays the cost.
* Pool cost is *estimated* with the same analytic model the simulator
  charges (:func:`~repro.hardware.cost.kernel_time` over
  :meth:`Kernel.launch_cost`, plus link-model transfer times), because the
  trace-measured usage only materializes after virtual time advances —
  fairness decisions cannot wait for it.

Two trigger flavours:

* :meth:`FairShareArbiter.arbitrate` — a *voluntary* round (the service's
  pacing loop).  Under-credit pools simply stay deferred until their
  deficit accrues; this is where weighted fairness emerges under backlog.
* :meth:`FairShareArbiter.on_trigger` — a *forced* trigger from a blocked
  host call (``clFlush``/``clFinish``/cross-queue waits).  The triggering
  context's pool **must** drain, so rounds repeat until its deficit covers
  the pool (other backlogged tenants dispatch along the way as their
  credit allows — the blocked tenant cannot jump the queue for free).

A tenant whose charged device-seconds exhaust its
:attr:`TenantQuota.max_device_seconds` is *parked*: voluntary rounds skip
it, and a forced trigger raises
:class:`~repro.service.admission.QuotaExceeded`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.hardware.cost import kernel_time
from repro.ocl.enums import CommandKind
from repro.service.admission import QuotaExceeded

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.context import Context
    from repro.ocl.queue import CommandQueue
    from repro.service.core import SchedulingService
    from repro.service.session import TenantSession

__all__ = ["FairShareArbiter"]

#: Forced-drain safety cap: a blocked host must never spin forever waiting
#: for credit (e.g. a degenerate zero quantum); past this many rounds the
#: triggering pool dispatches regardless, driving its deficit negative —
#: the debt is repaid out of future credits, preserving long-run fairness.
_MAX_FORCED_ROUNDS = 100_000


class FairShareArbiter:
    """Weighted DRR over the active sessions of one scheduling service."""

    def __init__(
        self, service: "SchedulingService", quantum: Optional[float] = None
    ) -> None:
        self.service = service
        #: Credit (estimated device-seconds) added per unit weight per
        #: round.  ``None`` = auto-calibrate on the first backlogged round
        #: to half the smallest pool cost per max weight, so one round
        #: never credits a whole pool to every tenant at once (which would
        #: collapse DRR into FIFO).
        self.quantum = quantum
        #: tenant -> deficit counter (estimated device-seconds).
        self.deficit: Dict[str, float] = {}
        #: tenant -> cumulative estimated device-seconds dispatched.
        self.charged: Dict[str, float] = {}
        #: completed arbitration rounds (voluntary + forced).
        self.rounds = 0
        #: dispatch log: (round, tenant, estimated seconds) per pool.
        self.dispatch_log: List[tuple] = []
        #: tenant -> {"solves", "repairs", "reuses"} mapping-path telemetry,
        #: accumulated from the owning scheduler's counters around each
        #: dispatch — the service-level view of how often a tenant's
        #: triggers were satisfied by incremental repair or outright reuse
        #: instead of a full pool re-solve.
        self.mapper_stats: Dict[str, Dict[str, int]] = {}
        # Re-entrancy guard: fault recovery can force a trigger *while* a
        # dispatched pool is being profiled (virtual time advances inside
        # the pass).  The nested trigger bypasses arbitration — its pool
        # dispatches immediately under the already-running round's credit.
        self._in_trigger = False

    # ------------------------------------------------------------------
    # Cost model (the same analytic model the simulator charges)
    # ------------------------------------------------------------------
    def estimate_pool_seconds(
        self, context: "Context", pool: Sequence["CommandQueue"]
    ) -> float:
        """Estimated device+link seconds to run ``pool``'s deferred work.

        Each queue is costed on its *best* active device (the optimistic
        mapping a policy could reach).  Crucially this does not depend on
        the queue's current binding, so identical epochs cost identical
        credit for every tenant — binding-dependent estimates would let a
        tenant's fair-share price drift with its mapping history.
        """
        node = context.platform.node
        devices = context.active_device_names or list(context.device_names)
        total = 0.0
        for q in pool:
            best = math.inf
            for dev in devices:
                spec = node.device(dev).spec
                seconds = 0.0
                for cmd in q.pending:
                    if cmd.kind is CommandKind.NDRANGE_KERNEL:
                        assert cmd.kernel is not None and cmd.launch is not None
                        seconds += kernel_time(
                            spec, cmd.kernel.launch_cost(spec, cmd.launch)
                        )
                    elif cmd.kind is CommandKind.WRITE_BUFFER:
                        seconds += node.h2d_seconds(dev, cmd.nbytes)
                    elif cmd.kind is CommandKind.READ_BUFFER:
                        seconds += node.d2h_seconds(dev, cmd.nbytes)
                    elif cmd.kind in (
                        CommandKind.FILL_BUFFER, CommandKind.COPY_BUFFER
                    ):
                        seconds += node.d2d_seconds(dev, dev, cmd.nbytes)
                    # markers/barriers are free
                best = min(best, seconds)
            total += 0.0 if best is math.inf else best
        return total

    # ------------------------------------------------------------------
    # Quota parking
    # ------------------------------------------------------------------
    def is_parked(self, session: "TenantSession") -> bool:
        """Whether ``session`` exhausted its device-time quota."""
        limit = session.quota.max_device_seconds
        if limit is None:
            return False
        return self.charged.get(session.name, 0.0) >= limit

    # ------------------------------------------------------------------
    # Trigger entry points
    # ------------------------------------------------------------------
    def on_trigger(
        self,
        context: "Context",
        pool: Sequence["CommandQueue"],
        trigger_queue: Optional["CommandQueue"] = None,
    ) -> None:
        """Forced trigger: the host is blocked until ``context`` drains."""
        if self._in_trigger:
            # Nested (fault-recovery) trigger: drain directly, charging the
            # owner so the replayed work still counts against its share.
            cost = self.estimate_pool_seconds(context, pool)
            tenant = context.tenant
            if tenant is not None:
                self.deficit[tenant] = self.deficit.get(tenant, 0.0) - cost
                self.charged[tenant] = self.charged.get(tenant, 0.0) + cost
            self._dispatch(context, list(pool), trigger_queue, cost)
            return
        session = self._session_of(context)
        if session is not None and self.is_parked(session):
            limit = session.quota.max_device_seconds
            raise QuotaExceeded(
                f"tenant {session.name!r} forced a scheduler trigger but its "
                f"device-time quota is exhausted "
                f"({self.charged.get(session.name, 0.0):.6f}s charged of "
                f"{limit}s allowed)"
            )
        self._in_trigger = True
        try:
            forced_rounds = 0
            while True:
                drained = self._round(force_context=context)
                if drained or not context.pending_queues():
                    break
                forced_rounds += 1
                if forced_rounds >= _MAX_FORCED_ROUNDS:  # pragma: no cover
                    live = context.pending_queues()
                    cost = self.estimate_pool_seconds(context, live)
                    tenant = context.tenant
                    if tenant is not None:
                        self.deficit[tenant] = (
                            self.deficit.get(tenant, 0.0) - cost
                        )
                        self.charged[tenant] = (
                            self.charged.get(tenant, 0.0) + cost
                        )
                    self._dispatch(context, live, trigger_queue, cost)
                    break
        finally:
            self._in_trigger = False

    def arbitrate(self) -> int:
        """One voluntary fair-share round; returns pools dispatched.

        Safe to call any time (the service's pacing loop); pools whose
        tenants lack credit stay deferred.
        """
        if self._in_trigger:
            return 0
        self._in_trigger = True
        try:
            return self._round(force_context=None)
        finally:
            self._in_trigger = False

    # ------------------------------------------------------------------
    # One DRR round
    # ------------------------------------------------------------------
    def _round(self, force_context: Optional["Context"]) -> int:
        """Credit backlogged tenants, dispatch every affordable pool.

        Returns the number of pools dispatched; when ``force_context`` is
        given the return value doubles as "did the forced pool dispatch".
        """
        self.rounds += 1
        # Stable service order: priority first (higher = served earlier in
        # the round), then admission order (dict insertion order).
        sessions = [
            s
            for s in self.service.sessions.values()
            if s.state == "active" and s.context is not None
        ]
        sessions.sort(key=lambda s: -s.priority)
        backlog: List[tuple] = []
        for s in sessions:
            pool = s.context.pending_queues()
            if not pool or self.is_parked(s):
                # Idle (or parked) tenants bank nothing: DRR resets credit
                # when the queue empties, else a long-idle tenant returns
                # with unbounded burst rights.
                self.deficit[s.name] = 0.0
                continue
            backlog.append((s, pool, self.estimate_pool_seconds(s.context, pool)))
        if not backlog:
            return 0
        if self.quantum is None:
            # Auto-calibrate: half the smallest non-trivial pool per unit of
            # the largest weight — several rounds per pool, so shares track
            # weights at sub-pool resolution.
            costs = [c for _, _, c in backlog if c > 0.0]
            w_max = max(s.weight for s, _, _ in backlog)
            base = min(costs) if costs else 1e-6
            self.quantum = max(base / (2.0 * max(w_max, 1.0)), 1e-12)
        dispatched = 0
        forced_dispatched = 0
        for s, pool, cost in backlog:
            credit = self.deficit.get(s.name, 0.0) + self.quantum * s.weight
            if credit >= cost:
                credit -= cost
                self.charged[s.name] = self.charged.get(s.name, 0.0) + cost
                self._dispatch(s.context, pool, None, cost, tenant=s.name)
                dispatched += 1
                if force_context is not None and s.context is force_context:
                    forced_dispatched += 1
            self.deficit[s.name] = credit
        return forced_dispatched if force_context is not None else dispatched

    # ------------------------------------------------------------------
    # Dispatch plumbing
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        context: "Context",
        pool: List["CommandQueue"],
        trigger_queue: Optional["CommandQueue"],
        cost: float,
        tenant: Optional[str] = None,
    ) -> None:
        """Hand one ready pool to its owner's policy (sanitize + map + issue)."""
        scheduler = context.scheduler
        assert scheduler is not None, "arbitrated context must have a scheduler"
        self.dispatch_log.append(
            (self.rounds, tenant or context.tenant, cost)
        )
        before = (
            getattr(scheduler, "mapper_solves", 0),
            getattr(scheduler, "mapper_repairs", 0),
            getattr(scheduler, "mapper_reuses", 0),
        )
        # Tenant policy decides the mapping; dispatch() sanitizes the pool.
        scheduler.dispatch(pool, trigger_queue)  # type: ignore[attr-defined]
        name = tenant or context.tenant
        if name is not None:
            stats = self.mapper_stats.setdefault(
                name, {"solves": 0, "repairs": 0, "reuses": 0}
            )
            stats["solves"] += getattr(scheduler, "mapper_solves", 0) - before[0]
            stats["repairs"] += getattr(scheduler, "mapper_repairs", 0) - before[1]
            stats["reuses"] += getattr(scheduler, "mapper_reuses", 0) - before[2]

    def _session_of(self, context: "Context") -> Optional["TenantSession"]:
        if context.tenant is None:
            return None
        return self.service.sessions.get(context.tenant)
