"""Tenant sessions: one client of the multi-tenant scheduling service.

A session wraps one :class:`~repro.ocl.context.Context` on the service's
shared platform.  The context is tagged with the tenant name (so every task
it issues is attributable in the trace) and wired to the service's
fair-share arbiter (so every scheduler trigger becomes an arbitration
point).  Within the session the tenant keeps full control of its own
scheduling policy — AUTO_FIT, ROUND_ROBIN, or any registered custom policy.

Lifecycle: ``waiting`` (admitted to the waitlist, no context yet) →
``active`` (context built, resources usable) → ``closed`` (queues
released; the freed slot admits the next waitlisted session).  Resource
factories go through the service's admission controller, so per-tenant
byte/queue quotas are enforced *before* anything reaches the fleet.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, TYPE_CHECKING

from repro.ocl.context import TENANT_PROPERTY_KEY, Context
from repro.ocl.enums import ContextProperty, ContextScheduler, MemFlag, SchedFlag
from repro.service.admission import AdmissionError, TenantQuota

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.ocl.memory import Buffer
    from repro.ocl.program import Program
    from repro.ocl.queue import CommandQueue
    from repro.service.core import SchedulingService
    from repro.service.telemetry import TenantUsage

__all__ = ["TenantSession"]


class TenantSession:
    """One tenant's handle on the shared scheduling service."""

    def __init__(
        self,
        service: "SchedulingService",
        name: str,
        weight: float = 1.0,
        priority: int = 0,
        quota: Optional[TenantQuota] = None,
        policy: Any = ContextScheduler.AUTO_FIT,
        device_names: Optional[Sequence[str]] = None,
        properties: Optional[dict] = None,
    ) -> None:
        if weight <= 0.0:
            raise ValueError(f"tenant weight must be positive, got {weight}")
        self.service = service
        self.name = name
        #: Fair-share weight: long-run device-second share under backlog is
        #: proportional to this.
        self.weight = float(weight)
        #: Service order within an arbitration round (higher = earlier).
        self.priority = int(priority)
        self.quota = TenantQuota.from_env(quota)
        self.policy = policy
        self.device_names = (
            tuple(device_names) if device_names is not None else None
        )
        self.extra_properties = dict(properties or {})
        #: ``waiting`` | ``active`` | ``closed``
        self.state = "waiting"
        self.context: Optional[Context] = None
        #: bytes of buffers created through this session (admission counter)
        self.allocated_bytes = 0
        #: queues created through this session (admission counter)
        self.queue_count = 0

    # ------------------------------------------------------------------
    # Lifecycle (driven by the service)
    # ------------------------------------------------------------------
    def _activate(self) -> None:
        """Build the tenant's context on the shared platform (service-only)."""
        assert self.state == "waiting" and self.context is None
        props = dict(self.extra_properties)
        props[TENANT_PROPERTY_KEY] = self.name
        props[ContextProperty.CL_CONTEXT_SCHEDULER] = self.policy
        self.context = self.service.platform.create_context(
            self.device_names, props
        )
        self.context.arbiter = self.service.arbiter
        self.state = "active"

    def close(self) -> None:
        """Finish outstanding work, release queues, free the session slot.

        Idempotent.  Closing a ``waiting`` session just leaves the
        waitlist.
        """
        if self.state == "closed":
            return
        if self.state == "active" and self.context is not None:
            for q in self.context.queues:
                q.release()
        self.state = "closed"
        self.service._on_session_closed(self)

    # ------------------------------------------------------------------
    # Admission-checked resource factories
    # ------------------------------------------------------------------
    def _require_active(self) -> Context:
        if self.state != "active" or self.context is None:
            raise AdmissionError(
                f"tenant session {self.name!r} is {self.state}; resources can "
                f"only be created on an active session"
            )
        return self.context

    def create_buffer(
        self,
        nbytes: int,
        flags: MemFlag = MemFlag.READ_WRITE,
        host_array: Optional["np.ndarray"] = None,
        name: Optional[str] = None,
    ) -> "Buffer":
        """clCreateBuffer, gated by the tenant's resident-byte quota."""
        ctx = self._require_active()
        self.service.admission.check_buffer(self, int(nbytes))
        buf = ctx.create_buffer(
            nbytes, flags=flags, host_array=host_array, name=name
        )
        self.allocated_bytes += int(nbytes)
        return buf

    def create_queue(
        self,
        device_name: Optional[str] = None,
        sched_flags: Any = SchedFlag.SCHED_AUTO_DYNAMIC,
        name: Optional[str] = None,
        out_of_order: bool = False,
    ) -> "CommandQueue":
        """clCreateCommandQueue, gated by the tenant's queue quota.

        Defaults to ``SCHED_AUTO_DYNAMIC``: service-mode queues are meant
        to be arbitrated, and only deferred (auto-scheduled) commands pass
        through the fair-share arbiter.
        """
        ctx = self._require_active()
        self.service.admission.check_queue(self)
        q = ctx.create_queue(
            device_name, sched_flags=sched_flags, name=name,
            out_of_order=out_of_order,
        )
        self.queue_count += 1
        return q

    def create_program(self, source: str) -> "Program":
        """clCreateProgramWithSource (no quota: host-side only)."""
        return self._require_active().create_program(source)

    # ------------------------------------------------------------------
    # Synchronization & introspection
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Drain all of this tenant's queues (a forced arbitration point)."""
        self._require_active().finish_all()

    def pending_queues(self) -> List["CommandQueue"]:
        """This tenant's ready pool (deferred work awaiting arbitration)."""
        if self.context is None:
            return []
        return self.context.pending_queues()

    @property
    def usage(self) -> "TenantUsage":
        """Live trace-derived utilization for this tenant."""
        return self.service.telemetry.usage(self.name)

    @property
    def charged_seconds(self) -> float:
        """Estimated device-seconds the arbiter has charged this tenant."""
        return self.service.arbiter.charged.get(self.name, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TenantSession({self.name!r}, state={self.state!r}, "
            f"weight={self.weight}, priority={self.priority})"
        )
