"""Per-tenant utilization telemetry derived from the shared trace.

Every task a tenant's queues issue carries a ``tenant`` tag in its trace
meta (stamped by :class:`~repro.ocl.queue.CommandQueue` from the context's
``multicl.tenant`` property), so tenant accounting needs no workload
instrumentation: :class:`TenantTelemetry` folds the engine's trace into
per-tenant busy-second aggregates.

The fold is *incremental*: the trace is append-only, so a cursor remembers
how far the last :meth:`TenantTelemetry.refresh` got and each interval is
aggregated exactly once — live dashboards can poll ``snapshot()`` every
scheduler round without rescanning history.

Accounting rules (matching what the arbiter charges against quotas):

* **device seconds** — intervals on ``dev:*`` resources in the ``kernel``
  and ``transfer`` categories (kernel launches, fills, device-local
  copies).  Profiling work (``profile-*`` categories) is *excluded*: it is
  scheduler overhead, and charging it to tenants would let a profiling-
  heavy policy (AUTO_FIT) distort fairness against a profiling-free one.
* **link seconds** — ``transfer``/``migration`` intervals on ``link:*``
  resources (PCIe and NIC hops).

Work with no tenant tag (single-tenant runs, engine-internal tasks) is
aggregated under :data:`UNTAGGED`, so per-tenant sums plus the untagged
bucket always reconcile exactly with the raw trace totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.trace import Trace

__all__ = ["UNTAGGED", "TenantUsage", "TenantTelemetry"]

#: Pseudo-tenant collecting work that carries no tenant tag.
UNTAGGED = "<untagged>"

#: Categories that count as tenant-attributable *device* work.
_DEVICE_CATEGORIES = frozenset({"kernel", "transfer", "migration"})
#: Categories that count as tenant-attributable *link* work.
_LINK_CATEGORIES = frozenset({"transfer", "migration"})


@dataclass
class TenantUsage:
    """Accumulated busy-seconds for one tenant."""

    device_seconds: float = 0.0
    link_seconds: float = 0.0
    #: completed tenant-attributable tasks (device + link)
    tasks: int = 0
    #: device name -> device busy seconds
    by_device: Dict[str, float] = field(default_factory=dict)
    #: category -> busy seconds (device + link)
    by_category: Dict[str, float] = field(default_factory=dict)

    @property
    def busy_seconds(self) -> float:
        return self.device_seconds + self.link_seconds


class TenantTelemetry:
    """Incremental tenant-usage aggregation over one :class:`Trace`."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._cursor = 0
        self._usage: Dict[str, TenantUsage] = {}

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Fold intervals recorded since the last refresh."""
        intervals = self.trace._intervals
        usage = self._usage
        for iv in intervals[self._cursor:]:
            resource = iv.resource
            if resource.startswith("dev:"):
                if iv.category not in _DEVICE_CATEGORIES:
                    continue
                is_device = True
            elif resource.startswith("link:"):
                if iv.category not in _LINK_CATEGORIES:
                    continue
                is_device = False
            else:
                continue
            tenant = iv.meta.get("tenant") or UNTAGGED
            u = usage.get(tenant)
            if u is None:
                u = usage[tenant] = TenantUsage()
            dur = iv.end - iv.start
            u.tasks += 1
            u.by_category[iv.category] = u.by_category.get(iv.category, 0.0) + dur
            if is_device:
                u.device_seconds += dur
                dev = resource[4:]  # strip "dev:"
                u.by_device[dev] = u.by_device.get(dev, 0.0) + dur
            else:
                u.link_seconds += dur
        self._cursor = len(intervals)

    # ------------------------------------------------------------------
    # Queries (all refresh first — results reflect the live trace)
    # ------------------------------------------------------------------
    def tenants(self) -> List[str]:
        """Tenants seen so far (excluding the untagged bucket)."""
        self.refresh()
        return sorted(t for t in self._usage if t != UNTAGGED)

    def usage(self, tenant: str) -> TenantUsage:
        """Usage for ``tenant`` (zeros if it has not run anything yet)."""
        self.refresh()
        return self._usage.get(tenant, TenantUsage())

    def device_seconds(self, tenant: str) -> float:
        """Total device busy-seconds attributed to ``tenant``."""
        return self.usage(tenant).device_seconds

    def snapshot(self) -> Dict[str, TenantUsage]:
        """Copy of the full per-tenant usage map (incl. untagged bucket)."""
        self.refresh()
        return {
            t: TenantUsage(
                device_seconds=u.device_seconds,
                link_seconds=u.link_seconds,
                tasks=u.tasks,
                by_device=dict(u.by_device),
                by_category=dict(u.by_category),
            )
            for t, u in self._usage.items()
        }

    def shares(self, tenants: Optional[List[str]] = None) -> Dict[str, float]:
        """Fraction of total tenant device-seconds each tenant consumed.

        Restricted to ``tenants`` when given (the untagged bucket is never
        included).  All zeros if nothing has run.
        """
        self.refresh()
        names = tenants if tenants is not None else self.tenants()
        secs = {t: self._usage.get(t, TenantUsage()).device_seconds for t in names}
        total = sum(secs.values())
        if total <= 0.0:
            return {t: 0.0 for t in names}
        return {t: s / total for t, s in secs.items()}
