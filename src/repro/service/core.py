"""The multi-tenant scheduling service: N tenants, one simulated fleet.

:class:`SchedulingService` composes the pieces this package provides
around one shared :class:`~repro.ocl.platform.Platform`:

* an :class:`~repro.service.admission.AdmissionController` gating session
  creation (reject or waitlist at the session cap) and per-tenant
  byte/queue quotas;
* a :class:`~repro.service.arbiter.FairShareArbiter` running weighted
  deficit round-robin over all tenants' ready pools at every scheduler
  trigger;
* a :class:`~repro.service.telemetry.TenantTelemetry` folding the shared
  engine trace into live per-tenant utilization.

Typical driver loop::

    service = SchedulingService(max_sessions=8)
    a = service.create_session("tenant-a", weight=4.0)
    b = service.create_session("tenant-b", weight=1.0)
    ... enqueue work on a.create_queue(...) / b.create_queue(...) ...
    while service.has_backlog():
        service.trigger()          # one fair-share arbitration round
        service.run_until_idle()   # let dispatched work complete
    print(service.telemetry.shares())

Each tenant keeps its own scheduling policy (AUTO_FIT by default); the
service only decides *when* each tenant's deferred pool reaches the fleet.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.ocl.enums import ContextScheduler
from repro.ocl.platform import Platform
from repro.service.admission import AdmissionController, AdmissionError, TenantQuota
from repro.service.arbiter import FairShareArbiter
from repro.service.session import TenantSession
from repro.service.telemetry import TenantTelemetry, TenantUsage

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.specs import NodeSpec

__all__ = ["SchedulingService"]


class SchedulingService:
    """Shared-fleet scheduling front end for multiple tenant sessions."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        node_spec: Optional["NodeSpec"] = None,
        max_sessions: Optional[int] = None,
        quantum: Optional[float] = None,
        profile: bool = True,
        profile_dir: Optional[str] = None,
    ) -> None:
        if platform is not None and node_spec is not None:
            raise ValueError("pass either a platform or a node_spec, not both")
        self.platform = (
            platform
            if platform is not None
            else Platform(node_spec, profile=profile, profile_dir=profile_dir)
        )
        self.admission = AdmissionController(max_sessions)
        self.telemetry = TenantTelemetry(self.platform.engine.trace)
        self.arbiter = FairShareArbiter(self, quantum=quantum)
        #: tenant name -> session, in admission order (incl. waiting/closed).
        self.sessions: Dict[str, TenantSession] = {}

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def create_session(
        self,
        name: str,
        weight: float = 1.0,
        priority: int = 0,
        quota: Optional[TenantQuota] = None,
        policy: Any = ContextScheduler.AUTO_FIT,
        device_names: Optional[Sequence[str]] = None,
        properties: Optional[dict] = None,
        on_overload: str = "reject",
    ) -> TenantSession:
        """Admit a new tenant session (or waitlist it, or reject it).

        Raises :class:`~repro.service.admission.AdmissionError` when the
        service is at its session cap and ``on_overload="reject"``; with
        ``"queue"`` the returned session starts ``waiting`` and activates
        automatically when a slot frees up.
        """
        if name in self.sessions and self.sessions[name].state != "closed":
            raise AdmissionError(f"tenant session {name!r} already exists")
        session = TenantSession(
            self,
            name,
            weight=weight,
            priority=priority,
            quota=quota,
            policy=policy,
            device_names=device_names,
            properties=properties,
        )
        admitted = self.admission.admit_session(session, on_overload)
        self.sessions[name] = session
        if admitted:
            session._activate()
        return session

    def close_session(self, name: str) -> None:
        """Close ``name``'s session (see :meth:`TenantSession.close`)."""
        session = self.sessions.get(name)
        if session is None:
            raise KeyError(f"no tenant session named {name!r}")
        session.close()

    def _on_session_closed(self, session: TenantSession) -> None:
        """Free the slot; activate waitlisted sessions in FIFO order."""
        for nxt in self.admission.release_session(session):
            nxt._activate()

    def active_sessions(self) -> List[TenantSession]:
        """Sessions currently holding a fleet slot, in admission order."""
        return [s for s in self.sessions.values() if s.state == "active"]

    # ------------------------------------------------------------------
    # Scheduling drivers
    # ------------------------------------------------------------------
    def has_backlog(self) -> bool:
        """Whether any active tenant holds deferred (unarbitrated) work."""
        return any(s.pending_queues() for s in self.active_sessions())

    def trigger(self) -> int:
        """Run one voluntary fair-share round; returns pools dispatched."""
        return self.arbiter.arbitrate()

    def run_until_idle(self) -> float:
        """Advance virtual time until all dispatched work completes."""
        self.platform.engine.run_until_idle()
        return self.platform.engine.now

    def run_until_time(self, time: float) -> float:
        """Advance virtual time to exactly ``time``; later events stay queued.

        The open-loop replay driver's epoch step: process everything due in
        the epoch window, then arbitrate (:meth:`trigger`) at the boundary
        without draining in-service work the way :meth:`run_until_idle`
        would.
        """
        return self.platform.engine.run_until_time(time)

    def drain(self) -> None:
        """Force every tenant's backlog through (quota parking still
        applies: a parked tenant's forced drain raises
        :class:`~repro.service.admission.QuotaExceeded`)."""
        for s in self.active_sessions():
            s.finish()
        self.run_until_idle()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.platform.engine.now

    def utilization(self) -> Dict[str, TenantUsage]:
        """Live per-tenant usage snapshot (see :class:`TenantTelemetry`)."""
        return self.telemetry.snapshot()

    def shares(self) -> Dict[str, float]:
        """Fraction of tenant device-seconds per *known* tenant session."""
        return self.telemetry.shares(list(self.sessions))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = {s.name: s.state for s in self.sessions.values()}
        return f"SchedulingService(sessions={states})"
