"""Multi-tenant scheduling service over the simulated fleet.

The MultiCL runtime schedules one application's command queues; this
package puts a *service* in front of it: N tenant sessions — each with its
own context, scheduling policy, fair-share weight, and quotas — submit
against one shared simulated device fleet.  Admission control gates
resources before they reach the fleet, a weighted deficit-round-robin
arbiter decides when each tenant's ready pool dispatches, and per-tenant
utilization telemetry is derived from tenant tags in the shared trace.

Entry point: :class:`~repro.service.core.SchedulingService`.
"""

from repro.service.admission import (
    MAX_SESSIONS_ENV,
    QUOTA_BYTES_ENV,
    AdmissionController,
    AdmissionError,
    QuotaExceeded,
    TenantQuota,
)
from repro.service.arbiter import FairShareArbiter
from repro.service.core import SchedulingService
from repro.service.session import TenantSession
from repro.service.telemetry import UNTAGGED, TenantTelemetry, TenantUsage

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "FairShareArbiter",
    "MAX_SESSIONS_ENV",
    "QUOTA_BYTES_ENV",
    "QuotaExceeded",
    "SchedulingService",
    "TenantQuota",
    "TenantSession",
    "TenantTelemetry",
    "TenantUsage",
    "UNTAGGED",
]
