"""One experiment per table/figure of the paper's evaluation (Section VI).

Every function takes ``fast`` (reduced problem scale, for tests and CI) and
returns an :class:`~repro.bench.harness.ExperimentResult`.  ``--full`` runs
the paper-scale configurations: the Fig. 4 problem classes (BT.B, CG.C,
EP.D, FT.A, MG.B, SP.C), four command queues, full NPB iteration counts.

Each experiment is registered as a set of independent *units* — one
configuration of a sweep (a benchmark, a queue count, a noise level, a
policy) — plus a ``merge`` step that assembles unit payloads into the final
table.  The serial path (:func:`run_experiment`) and the process-pool fleet
(:mod:`repro.bench.parallel`) both execute exactly the same units in the
same order, so a parallel run reproduces the serial tables bit-for-bit.

Absolute times are simulated seconds on the modelled testbed and are *not*
expected to match the paper's wall-clock numbers; the shape claims are
(and are asserted by the test suite):

* Fig. 3 — CPU wins every benchmark except EP, by the paper's ratios;
* Fig. 4 — AUTO_FIT tracks the best manual schedule (geomean overhead
  ≈10%, FT the worst case);
* Fig. 5 — kernel→device distributions mirror the Fig. 3 affinities;
* Fig. 6 — FT profiling (data-transfer) overhead falls with queue count;
* Fig. 7 — data caching cuts FT profiling transfer time ≈50%;
* Fig. 8 — EP full-kernel profiling ≈20× vs minikernel ≈ constant few %;
* Fig. 9 — column-major best on (CPU,CPU), row-major on (GPU0,GPU1),
  AUTO_FIT optimal for both, round-robin splits across GPUs regardless;
* Fig. 10 — first-iteration profiling cost amortises.
"""

from __future__ import annotations

import atexit
import math
import os
import shutil
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ExperimentResult
from repro.core.flags import SchedulerConfig
from repro.ocl.enums import SchedFlag
from repro.workloads.base import ProblemClass
from repro.workloads.npb import BENCHMARKS, get_benchmark
from repro.workloads.npb.common import run_npb
from repro.workloads.seismology import DEVICE_COMBOS, run_seismology

__all__ = [
    "EXPERIMENTS",
    "REGISTRY",
    "Experiment",
    "PROFILE_DIR_ENV",
    "run_experiment",
    "experiment_units",
    "run_experiment_unit",
    "merge_experiment_units",
    "experiment_prewarm_specs",
    "set_profile_dir",
]

# ---------------------------------------------------------------------------
# Shared on-disk device-profile cache
# ---------------------------------------------------------------------------
#: Environment variable naming the harness-wide shared profile directory.
#: When set, every harness process (and every worker of a parallel fleet)
#: shares one device-profile cache instead of re-measuring per process.
PROFILE_DIR_ENV = "MULTICL_PROFILE_DIR"

#: Shared on-disk device-profile cache for a whole harness process.
_PROFILE_DIR: Optional[str] = None
#: Tempdir fallback we created ourselves (removed at interpreter exit).
_PROFILE_DIR_OWNED: Optional[str] = None


def _cleanup_profile_dir() -> None:
    global _PROFILE_DIR_OWNED
    if _PROFILE_DIR_OWNED is not None:
        shutil.rmtree(_PROFILE_DIR_OWNED, ignore_errors=True)
        _PROFILE_DIR_OWNED = None


atexit.register(_cleanup_profile_dir)


def _profile_dir() -> str:
    """Resolve the shared profile-cache directory for this process.

    Honors ``MULTICL_PROFILE_DIR``; otherwise falls back to a single
    tempdir per process that is removed at exit (no leaked
    ``multicl-profile-*`` directories).
    """
    global _PROFILE_DIR, _PROFILE_DIR_OWNED
    if _PROFILE_DIR is None:
        env = os.environ.get(PROFILE_DIR_ENV)
        if env:
            os.makedirs(env, exist_ok=True)
            _PROFILE_DIR = env
        else:
            _PROFILE_DIR = tempfile.mkdtemp(prefix="multicl-profile-")
            _PROFILE_DIR_OWNED = _PROFILE_DIR
    return _PROFILE_DIR


def set_profile_dir(path: Optional[str]) -> None:
    """Pin the shared profile directory (``None`` re-resolves lazily).

    Used by the parallel runner to point every worker at one cache.  An
    owned tempdir fallback is cleaned up before repinning.
    """
    global _PROFILE_DIR
    if path is not None and path != _PROFILE_DIR_OWNED:
        _cleanup_profile_dir()
    if path is not None:
        os.makedirs(path, exist_ok=True)
    _PROFILE_DIR = path


#: Problem classes used in Fig. 4 (the largest fitting each device).
FIG4_CLASSES = {"BT": "B", "CG": "C", "EP": "D", "FT": "A", "MG": "B", "SP": "C"}
#: Reduced classes for fast mode.
FAST_CLASSES = {"BT": "W", "CG": "A", "EP": "W", "FT": "S", "MG": "W", "SP": "W"}
#: Paper Fig. 3 single-device GPU/CPU time ratios (approximate bar reads).
FIG3_PAPER_RATIOS = {"BT": 3.5, "CG": 1.9, "EP": 0.35, "FT": 1.4, "MG": 3.0, "SP": 2.4}

#: The five showcased manual schedules of Fig. 4 (4 queues, CPU + 2 GPUs).
FIG4_SCHEDULES: Dict[str, Tuple[str, str, str, str]] = {
    "Explicit CPU only": ("cpu", "cpu", "cpu", "cpu"),
    "Explicit GPU only": ("gpu0", "gpu0", "gpu0", "gpu0"),
    "Round Robin (GPUs only)": ("gpu0", "gpu1", "gpu0", "gpu1"),
    "Round Robin #1": ("gpu0", "gpu0", "gpu1", "cpu"),
    "Round Robin #2": ("cpu", "cpu", "gpu0", "gpu1"),
}


def _fig3_classes(fast: bool) -> Dict[str, str]:
    # Fig. 3 uses the single-device version; we evaluate at the Fig. 4
    # classes so the two figures are directly comparable.
    return FAST_CLASSES if fast else FIG4_CLASSES


#: Fast-mode iteration overrides.  EP is non-iterative and FT's natural
#: count is already 6, so both keep their paper iteration counts even in
#: fast mode; the long-running iterative benchmarks are shortened but kept
#: long enough for first-epoch profiling to amortise realistically.
_FAST_ITERATIONS: Dict[str, Optional[int]] = {
    "BT": 40,
    "CG": 30,
    "EP": None,
    "FT": None,
    "MG": 10,
    "SP": 40,
}


def _make_app(name: str, pc: str, queues: int, fast: bool, **kw):
    cls = get_benchmark(name)
    override = _FAST_ITERATIONS.get(name) if fast else None
    return cls(ProblemClass(pc), queues, iterations_override=override, **kw)


# ---------------------------------------------------------------------------
# Fig. 3 — single-device CPU vs GPU
# ---------------------------------------------------------------------------
def _fig3_units(fast: bool) -> List[Any]:
    return list(_fig3_classes(fast).items())


def _fig3_unit(key: Any, fast: bool) -> Dict[str, Any]:
    name, pc = key
    times = {}
    for dev in ("cpu", "gpu0"):
        run = run_npb(
            _make_app(name, pc, 1, fast),
            mode="manual",
            devices=[dev],
            profile_dir=_profile_dir(),
        )
        times[dev] = run.seconds
    return {
        "benchmark": name,
        "class": pc,
        "cpu_s": times["cpu"],
        "gpu_s": times["gpu0"],
        "gpu_over_cpu": times["gpu0"] / times["cpu"],
        "paper_ratio": FIG3_PAPER_RATIOS[name],
    }


def _fig3_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="fig3",
        title="Fig. 3: relative execution time of SNU-NPB on CPU vs GPU (CPU = 1)",
        columns=["benchmark", "class", "cpu_s", "gpu_s", "gpu_over_cpu", "paper_ratio"],
    )
    for row in payloads:
        res.add(**row)
    res.notes.append(
        "shape claim: every benchmark except EP is faster on the CPU; "
        "EP is faster on the GPU (ratio < 1)."
    )
    return res


# ---------------------------------------------------------------------------
# Table I — proposed OpenCL extensions (rendered from the implementation)
# ---------------------------------------------------------------------------
def table1(fast: bool = True) -> ExperimentResult:
    """The paper's Table I, generated by introspecting the runtime —
    proving every proposed extension actually exists in the API."""
    from repro.ocl import api
    from repro.ocl.enums import ContextProperty, ContextScheduler

    res = ExperimentResult(
        name="table1",
        title="Table I: proposed OpenCL extensions (introspected)",
        columns=["cl_function", "extension", "options"],
    )
    res.add(
        cl_function="clCreateContext",
        extension=ContextProperty.CL_CONTEXT_SCHEDULER.name,
        options=", ".join(m.name for m in ContextScheduler),
    )
    sched_flags = [
        f.name for f in SchedFlag if f.name and f is not SchedFlag.SCHED_OFF
    ]
    res.add(
        cl_function="clCreateCommandQueue",
        extension="SCHED_* bitfield",
        options="SCHED_OFF, " + ", ".join(sched_flags),
    )
    for fn in ("clSetCommandQueueSchedProperty", "clSetKernelWorkGroupInfo"):
        assert callable(getattr(api, fn))
        res.add(cl_function=fn, extension="new CL API", options="implemented")
    res.notes.append(
        "every row is introspected from repro.ocl at run time; "
        "tests/test_ocl_context_platform.py asserts the same surface."
    )
    return res


# ---------------------------------------------------------------------------
# Table II — benchmark configurations
# ---------------------------------------------------------------------------
def table2(fast: bool = True) -> ExperimentResult:
    res = ExperimentResult(
        name="table2",
        title="Table II: SNU-NPB-MD requirements and scheduler options",
        columns=["benchmark", "classes", "queues", "scheduler_options"],
    )
    for name in sorted(BENCHMARKS):
        cls = BENCHMARKS[name]
        flags = SchedFlag.SCHED_AUTO_DYNAMIC | cls.TABLE2_FLAGS
        opts = [
            f.name
            for f in SchedFlag
            if f != SchedFlag.SCHED_OFF and flags & f
        ]
        if cls.USES_WORKGROUP_INFO:
            opts.append("clSetKernelWorkGroupInfo")
        res.add(
            benchmark=name,
            classes=",".join(c.value for c in cls.VALID_CLASSES),
            queues=f"{cls.QUEUE_RULE.description}: "
            f"{','.join(map(str, cls.QUEUE_RULE.allowed))}",
            scheduler_options=" | ".join(opts),
        )
    return res


# ---------------------------------------------------------------------------
# Fig. 4 — manual schedules vs AUTO_FIT (4 queues)
# ---------------------------------------------------------------------------
def _fig4_units(fast: bool) -> List[Any]:
    return list(_fig3_classes(fast).items())


def _fig4_unit(key: Any, fast: bool) -> Dict[str, Any]:
    name, pc = key
    manual: Dict[str, float] = {}
    for label, devs in FIG4_SCHEDULES.items():
        run = run_npb(
            _make_app(name, pc, 4, fast),
            mode="manual",
            devices=list(devs),
            profile_dir=_profile_dir(),
        )
        manual[label] = run.seconds
    auto = run_npb(
        _make_app(name, pc, 4, fast), mode="auto", profile_dir=_profile_dir()
    )
    # The paper's overhead metric compares against the *ideal* mapping.
    # AUTO_FIT may legitimately beat every showcased schedule (its
    # search space is all 3^4 assignments), so the ideal is the better
    # of (best showcased schedule, AUTO_FIT's own mapping run manually).
    auto_devices = [auto.bindings[f"q{i}"] for i in range(4)]
    replay = run_npb(
        _make_app(name, pc, 4, fast),
        mode="manual",
        devices=auto_devices,
        profile_dir=_profile_dir(),
    )
    ideal = min(min(manual.values()), replay.seconds)
    bench_label = f"{name}.{pc}"
    rows: List[Dict[str, Any]] = []
    for label, secs in manual.items():
        rows.append(
            {"benchmark": bench_label, "schedule": label, "seconds": secs,
             "overhead_pct": ""}
        )
    overhead = 100.0 * (auto.seconds - ideal) / ideal
    rows.append(
        {"benchmark": bench_label, "schedule": "Auto Fit",
         "seconds": auto.seconds, "overhead_pct": overhead}
    )
    return {"rows": rows, "factor": max(overhead, 0.0) / 100.0 + 1.0}


def _fig4_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="fig4",
        title="Fig. 4: SNU-NPB-MD manual vs automatic scheduling "
        "(4 queues; 1 CPU + 2 GPUs)",
        columns=["benchmark", "schedule", "seconds", "overhead_pct"],
    )
    overheads: List[float] = []
    for payload in payloads:
        for row in payload["rows"]:
            res.add(**row)
        overheads.append(payload["factor"])
    geomean = (math.prod(overheads)) ** (1.0 / len(overheads)) - 1.0
    res.notes.append(
        f"geometric-mean AUTO_FIT overhead vs best manual schedule: "
        f"{100 * geomean:.1f}% (paper: 10.1%, FT the worst at ~45%)"
    )
    return res


# ---------------------------------------------------------------------------
# Fig. 5 — kernel distribution across devices under AUTO_FIT
# ---------------------------------------------------------------------------
def _fig5_units(fast: bool) -> List[Any]:
    return list(_fig3_classes(fast).items())


def _fig5_unit(key: Any, fast: bool) -> Dict[str, Any]:
    name, pc = key
    run = run_npb(
        _make_app(name, pc, 4, fast), mode="auto", profile_dir=_profile_dir()
    )
    dist = run.stats.kernel_distribution()
    return {
        "benchmark": f"{name}.{pc}",
        "cpu_pct": 100.0 * dist.get("cpu", 0.0),
        "gpu0_pct": 100.0 * dist.get("gpu0", 0.0),
        "gpu1_pct": 100.0 * dist.get("gpu1", 0.0),
    }


def _fig5_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="fig5",
        title="Fig. 5: distribution of SNU-NPB-MD kernels to devices "
        "(AUTO_FIT, 4 queues)",
        columns=["benchmark", "cpu_pct", "gpu0_pct", "gpu1_pct"],
    )
    for row in payloads:
        res.add(**row)
    res.notes.append(
        "shape claim: CPU receives the majority of kernels for all "
        "benchmarks except EP, whose kernels go (almost) entirely to GPUs "
        "— mirroring the Fig. 3 affinities."
    )
    return res


# ---------------------------------------------------------------------------
# Fig. 6 — FT profiling (data-transfer) overhead vs queue count
# ---------------------------------------------------------------------------
def _ft_class(fast: bool) -> str:
    return "S" if fast else "A"


def _fig6_units(fast: bool) -> List[Any]:
    return [1, 2, 4, 8]


def _fig6_unit(key: Any, fast: bool) -> Dict[str, Any]:
    q_count = key
    pc = _ft_class(fast)
    auto = run_npb(
        _make_app("FT", pc, q_count, fast), mode="auto",
        profile_dir=_profile_dir(),
    )
    # Ideal = the same mapping executed manually (no profiling).
    devices = [auto.bindings[f"q{i}"] for i in range(q_count)]
    ideal = run_npb(
        _make_app("FT", pc, q_count, fast), mode="manual", devices=devices,
        profile_dir=_profile_dir(),
    )
    app = _make_app("FT", pc, q_count, fast)
    data_mb = (2 * app.slab_bytes + app.points_per_queue * 8) / 1e6
    return {
        "queues": q_count,
        "data_per_queue_mb": data_mb,
        "ideal_s": ideal.seconds,
        "auto_s": auto.seconds,
        "overhead_pct": 100.0 * (auto.seconds - ideal.seconds) / ideal.seconds,
        "profile_transfer_s": auto.stats.profile_transfer_seconds,
    }


def _fig6_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="fig6",
        title="Fig. 6: FT profiling (data-transfer) overhead vs queue count",
        columns=[
            "queues",
            "data_per_queue_mb",
            "ideal_s",
            "auto_s",
            "overhead_pct",
            "profile_transfer_s",
        ],
    )
    for row in payloads:
        res.add(**row)
    res.notes.append(
        "shape claim: data per queue halves as queues double, and the "
        "profiling overhead (dominated by staging that data) falls with "
        "queue count (paper: ~45% at 4 queues for FT.A)."
    )
    return res


# ---------------------------------------------------------------------------
# Fig. 7 — effect of data caching on FT profiling overhead
# ---------------------------------------------------------------------------
def _fig7_units(fast: bool) -> List[Any]:
    return [1, 2, 4, 8]


def _fig7_unit(key: Any, fast: bool) -> Dict[str, Any]:
    q_count = key
    pc = _ft_class(fast)
    overheads = {}
    for caching in (False, True):
        cfg = SchedulerConfig(data_caching=caching)
        auto = run_npb(
            _make_app("FT", pc, q_count, fast), mode="auto", config=cfg,
            profile_dir=_profile_dir(),
        )
        # The profiling data-transfer time itself (the quantity the
        # paper's Fig. 7 normalises).  Post-mapping migrations are
        # excluded: equally-optimal mappings can differ between the
        # two configs and would add unrelated noise.
        overheads[caching] = auto.stats.profile_transfer_seconds
    reduction = (
        100.0 * (overheads[False] - overheads[True]) / overheads[False]
        if overheads[False] > 0
        else 0.0
    )
    return {
        "queues": q_count,
        "without_caching_s": overheads[False],
        "with_caching_s": overheads[True],
        "reduction_pct": reduction,
    }


def _fig7_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="fig7",
        title="Fig. 7: data caching's effect on FT profiling transfer overhead",
        columns=[
            "queues",
            "without_caching_s",
            "with_caching_s",
            "reduction_pct",
        ],
    )
    for row in payloads:
        res.add(**row)
    res.notes.append(
        "shape claim: caching profiled data on the host (1×D2H + (n-1)×H2D, "
        "copies kept) consistently cuts the scheduler's data-movement time "
        "at every queue count.  The paper reports ≈50%; with our 3-device "
        "topology the op-count arithmetic ((n-1)(D2H+H2D) → 1 D2H+(n-1) "
        "H2D) bounds the saving near ≈30%, which is what we measure — see "
        "EXPERIMENTS.md."
    )
    return res


# ---------------------------------------------------------------------------
# Fig. 8 — minikernel vs full-kernel profiling for EP
# ---------------------------------------------------------------------------
def _fig8_units(fast: bool) -> List[Any]:
    return list(("S", "W", "A") if fast else ("S", "W", "A", "B", "C", "D"))


def _fig8_unit(key: Any, fast: bool) -> List[Dict[str, Any]]:
    pc = key
    ideal = run_npb(
        _make_app("EP", pc, 1, fast), mode="manual", devices=["gpu0"],
        profile_dir=_profile_dir(),
    )
    rows: List[Dict[str, Any]] = []
    for label, allow_mini in (("minikernel", True), ("full kernel", False)):
        cfg = SchedulerConfig(allow_minikernel=allow_mini)
        auto = run_npb(
            _make_app("EP", pc, 1, fast), mode="auto", config=cfg,
            profile_dir=_profile_dir(),
        )
        rows.append(
            {
                "class": pc,
                "mode": label,
                "ideal_s": ideal.seconds,
                "total_s": auto.seconds,
                "profiling_overhead_pct": 100.0
                * (auto.seconds - ideal.seconds)
                / ideal.seconds,
            }
        )
    return rows


def _fig8_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="fig8",
        title="Fig. 8: impact of minikernel profiling for EP",
        columns=[
            "class",
            "mode",
            "ideal_s",
            "total_s",
            "profiling_overhead_pct",
        ],
    )
    for rows in payloads:
        for row in rows:
            res.add(**row)
    res.notes.append(
        "shape claim: full-kernel profiling costs ≈ the CPU/GPU ratio "
        "(up to ~20× for class D) and grows with class; minikernel "
        "profiling stays a small, roughly constant overhead (~3%)."
    )
    return res


# ---------------------------------------------------------------------------
# Fig. 9 — FDM-Seismology device combinations
# ---------------------------------------------------------------------------
def _fig9_steps(fast: bool) -> int:
    return 10 if fast else 100


def _fig9_units(fast: bool) -> List[Any]:
    units: List[Any] = []
    for layout in ("column", "row"):
        for combo in DEVICE_COMBOS:
            units.append((layout, "manual", tuple(combo)))
        for label, mode in (("Round Robin", "round_robin"),
                            ("MultiCL Auto Fit", "auto")):
            units.append((layout, mode, label))
    return units


def _fig9_unit(key: Any, fast: bool) -> Tuple[str, str, float]:
    layout, mode, ident = key
    steps = _fig9_steps(fast)
    if mode == "manual":
        combo = ident
        label = f"({combo[0]},{combo[1]})"
        run = run_seismology(
            layout, mode="manual", devices=list(combo), steps=steps,
            profile_dir=_profile_dir(),
        )
    else:
        label = ident
        run = run_seismology(
            layout, mode=mode, steps=steps, profile_dir=_profile_dir()
        )
    return label, layout, run.seconds / steps * 1e3


def _fig9_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="fig9",
        title="Fig. 9: FDM-Seismology time per iteration (ms) across "
        "queue-device mappings",
        columns=["mapping", "column_major_ms", "row_major_ms"],
    )
    rows: Dict[str, Dict[str, float]] = {}
    for label, layout, ms in payloads:
        rows.setdefault(label, {})[layout] = ms
    for label, vals in rows.items():
        res.add(
            mapping=label,
            column_major_ms=vals.get("column"),
            row_major_ms=vals.get("row"),
        )
    res.notes.append(
        "shape claims: column-major best on (cpu,cpu) with ≈2.7× spread to "
        "the worst single-GPU mapping; row-major best on (gpu0,gpu1) with "
        "≈2.3× spread to (cpu,cpu); AUTO_FIT matches the best mapping for "
        "both layouts; round-robin splits across the GPUs regardless, "
        "suboptimal for column-major."
    )
    return res


# ---------------------------------------------------------------------------
# Fig. 10 — per-iteration amortisation of profiling overhead
# ---------------------------------------------------------------------------
def fig10(fast: bool = True) -> ExperimentResult:
    res = ExperimentResult(
        name="fig10",
        title="Fig. 10: FDM-Seismology per-iteration times under AUTO_FIT "
        "(profiling amortises; velocity/stress split as in the paper)",
        columns=["iteration", "total_ms", "velocity_ms", "stress_ms",
                 "profiling_ms"],
    )
    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler
    from repro.workloads.seismology.app import FDMSeismologyApp

    steps = 12 if fast else 40
    mcl = MultiCL(policy=ContextScheduler.AUTO_FIT, profile_dir=_profile_dir())
    app = FDMSeismologyApp(layout="column", steps=steps)
    queues = [
        mcl.queue(
            device=mcl.device_names[i % len(mcl.device_names)],
            flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH,
            name=f"q{i}",
        )
        for i in range(2)
    ]
    app.setup(mcl.context, queues)
    boundaries = [mcl.now]
    for it in range(steps):
        app.enqueue_iteration(it)
        for q in queues:
            q.finish()
        boundaries.append(mcl.now)

    def busy(t0: float, t1: float, prefix: str) -> float:
        return sum(
            iv.duration
            for iv in mcl.engine.trace.filter(category="kernel")
            if t0 <= iv.start < t1 and iv.meta.get("kernel", "").startswith(prefix)
        )

    for i in range(steps):
        t0, t1 = boundaries[i], boundaries[i + 1]
        prof = sum(
            iv.duration
            for iv in mcl.engine.trace.between(t0, t1)
            if iv.category in ("profile-kernel", "profile-transfer")
        )
        res.add(
            iteration=i,
            total_ms=(t1 - t0) * 1e3,
            velocity_ms=busy(t0, t1, "vel_") * 1e3,
            stress_ms=busy(t0, t1, "st_") * 1e3,
            profiling_ms=prof * 1e3,
        )
    first = res.rows[0]["total_ms"]
    rest = [r["total_ms"] for r in res.rows[1:]]
    res.notes.append(
        f"iteration 0 (profiled): {first:.0f} ms; steady state: "
        f"{sum(rest) / len(rest):.0f} ms — the added cost is amortised "
        f"over the remaining iterations.  Stress computation dominates "
        f"velocity (25 vs 7 kernels), matching the paper's stacked bars."
    )
    return res


# ---------------------------------------------------------------------------
# Ablations beyond the paper's figures
# ---------------------------------------------------------------------------
def _ablations_units(fast: bool) -> List[Any]:
    return [
        ("trigger frequency", "per-epoch (default)"),
        ("trigger frequency", "per-kernel"),
        ("profile caching", "profile caching on"),
        ("profile caching", "profile caching off"),
        ("static vs dynamic", "dynamic (profiled)"),
        ("static vs dynamic", "static (hint only)"),
    ]


def _ablations_unit(key: Any, fast: bool) -> Dict[str, Any]:
    experiment, variant = key
    pc = "W" if fast else "A"
    if experiment == "trigger frequency":
        # 1. Scheduler trigger frequency: per-epoch vs per-kernel.
        cfg = SchedulerConfig(per_kernel_trigger=(variant == "per-kernel"))
        run = run_npb(
            _make_app("CG", pc, 4, fast), mode="auto", config=cfg,
            profile_dir=_profile_dir(),
        )
    elif experiment == "profile caching":
        # 2. Kernel-profile caching on/off (iterative workload).
        cfg = SchedulerConfig(
            profile_caching=(variant == "profile caching on")
        )
        run = run_npb(
            _make_app("MG", pc, 4, fast), mode="auto", config=cfg,
            profile_dir=_profile_dir(),
        )
    else:
        # 3. Static (hint-only) vs dynamic scheduling: BT is compute-heavy
        # but CPU-bound — a compute-bound *hint* sends it to the GPU
        # (wrong), while dynamic profiling discovers the truth.
        static_flags = (
            SchedFlag.SCHED_AUTO_STATIC
            | SchedFlag.SCHED_KERNEL_EPOCH
            | SchedFlag.SCHED_COMPUTE_BOUND
        )
        kwargs = {} if variant == "dynamic (profiled)" else {
            "auto_flags": static_flags
        }
        run = run_npb(
            _make_app("BT", pc, 4, fast), mode="auto",
            profile_dir=_profile_dir(), **kwargs,
        )
    return {"experiment": experiment, "variant": variant, "seconds": run.seconds}


def _ablations_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="ablations",
        title="Ablations: trigger frequency, profile caching, static hints",
        columns=["experiment", "variant", "seconds"],
    )
    for row in payloads:
        res.add(**row)
    res.notes.append(
        "per-kernel triggering and disabled profile caching increase "
        "overhead; static hints are cheap but can pick the wrong device "
        "(the speed-vs-optimality tradeoff of Section V.B)."
    )
    return res


# ---------------------------------------------------------------------------
# Robustness: how much measurement error can the mapper absorb?
# ---------------------------------------------------------------------------
def _robustness_units(fast: bool) -> List[Any]:
    return [
        (noise, layout)
        for noise in (0.0, 0.05, 0.10, 0.20, 0.40)
        for layout in ("column", "row")
    ]


def _robustness_unit(key: Any, fast: bool) -> Dict[str, Any]:
    noise, layout = key
    steps = 6 if fast else 30
    optimal_sets = {"column": {"cpu"}, "row": {"gpu0", "gpu1"}}
    cfg = SchedulerConfig(measurement_noise=noise)
    run = run_seismology(
        layout, mode="auto", steps=steps, config=cfg,
        profile_dir=_profile_dir(),
    )
    chosen = set(run.bindings.values())
    return {
        "noise_pct": 100.0 * noise,
        "layout": layout,
        "mapping": ",".join(sorted(run.bindings.values())),
        "optimal": chosen == optimal_sets[layout],
        "seconds": run.seconds,
    }


def _robustness_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="robustness",
        title="Measurement-noise robustness of AUTO_FIT mapping",
        columns=["noise_pct", "layout", "mapping", "optimal", "seconds"],
    )
    for row in payloads:
        res.add(**row)
    res.notes.append(
        "the device gaps in this workload (≈2.3-2.7x) tolerate substantial "
        "measurement error before the mapping flips — one profiling run "
        "per device suffices, as the paper assumes."
    )
    return res


# ---------------------------------------------------------------------------
# Baselines: epoch-granularity (MultiCL) vs kernel-granularity (SOCL-style)
# ---------------------------------------------------------------------------
_BASELINE_POLICIES = (
    "MultiCL AUTO_FIT (epochs)",
    "SOCL-style (per kernel)",
    "Round robin",
)


def _baselines_units(fast: bool) -> List[Any]:
    return [
        (workload, policy_label)
        for workload in ("coherent queues", "mixed queues")
        for policy_label in _BASELINE_POLICIES
    ]


def _baselines_unit(key: Any, fast: bool) -> Dict[str, Any]:
    """One (workload, policy) cell of the Section III.B SOCL contrast.

    Two workload shapes under three policies:

    * **coherent queues** (the paper's regime — NPB and FDM-Seismology
      queues each hold kernels of one personality): epoch granularity
      reaches the same placement as per-kernel decisions while making an
      order of magnitude fewer scheduling decisions;
    * **mixed queues** (each queue alternates GPU- and CPU-leaning
      kernels): the flexibility limit of batching — per-kernel placement
      can exploit the split, which is why the paper offers
      ``SCHED_EXPLICIT_REGION`` to rescope what gets batched.
    """
    from repro.core.baselines import KERNEL_GRANULARITY_POLICY
    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler

    workload, policy_label = key
    mixed = workload == "mixed queues"
    policy = {
        "MultiCL AUTO_FIT (epochs)": ContextScheduler.AUTO_FIT,
        "SOCL-style (per kernel)": KERNEL_GRANULARITY_POLICY,
        "Round robin": ContextScheduler.ROUND_ROBIN,
    }[policy_label]
    src = (
        "// @multicl flops_per_item=300 bytes_per_item=8 writes=1\n"
        "__kernel void gk(__global float* a, __global float* b, int n) { }\n"
        "// @multicl flops_per_item=20 bytes_per_item=64 divergence=0.7 "
        "irregularity=0.8 gpu_eff=0.1 writes=1\n"
        "__kernel void ck(__global float* a, __global float* b, int n) { }\n"
    )
    n = 1 << 18 if fast else 1 << 20
    rounds = 4 if fast else 12

    mcl = MultiCL(policy=policy, profile_dir=_profile_dir())
    ctx = mcl.context
    program = ctx.create_program(src).build()
    queues = []
    for qi in range(4):
        gk = program.create_kernel("gk")
        ck = program.create_kernel("ck")
        a = ctx.create_buffer(4 * n)
        b = ctx.create_buffer(4 * n)
        a.mark_valid("host")
        for k in (gk, ck):
            k.set_arg(0, a)
            k.set_arg(1, b)
            k.set_arg(2, n)
        q = mcl.queue(
            flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH,
            name=f"q{qi}",
        )
        if mixed:
            for _ in range(rounds):
                q.enqueue_nd_range_kernel(gk, (n,), (64,))
                q.enqueue_nd_range_kernel(ck, (n,), (64,))
        else:
            # Coherent personality per queue (the paper's workloads).
            kern = gk if qi % 2 == 0 else ck
            for _ in range(2 * rounds):
                q.enqueue_nd_range_kernel(kern, (n,), (64,))
        queues.append(q)
    t0 = mcl.now
    for q in queues:
        q.finish()
    sched = mcl.context.scheduler
    decisions = getattr(sched, "decisions", None)
    if decisions is None:
        decisions = len(getattr(sched, "mapping_history", []))
    return {
        "workload": workload,
        "policy": policy_label,
        "seconds": mcl.now - t0,
        "decisions": decisions,
        "migrations": mcl.engine.trace.count(category="migration"),
    }


def _baselines_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="baselines",
        title="Scheduling granularity: MultiCL epochs vs SOCL-style "
        "per-kernel decisions",
        columns=["workload", "policy", "seconds", "decisions", "migrations"],
    )
    for row in payloads:
        res.add(**row)
    res.notes.append(
        "coherent queues (the paper's regime): epoch batching matches "
        "per-kernel placement quality with far fewer scheduling decisions "
        "— the Section III.B overhead argument.  Mixed queues: per-kernel "
        "placement can exploit the intra-queue split, the flexibility "
        "limit the paper addresses with SCHED_EXPLICIT_REGION rescoping."
    )
    return res


# ---------------------------------------------------------------------------
# Predicted vs profiled: the repro.predict ablation
# ---------------------------------------------------------------------------
def _predicted_units(fast: bool) -> List[Any]:
    return list(_fig3_classes(fast).items())


def _predicted_unit(key: Any, fast: bool) -> Dict[str, Any]:
    """One benchmark under AUTO_FIT, profiled vs predicted.

    The predicted run replaces every first-sight profiling epoch with the
    static-feature model (:mod:`repro.predict`): kernels are costed from
    parsed source before launch, so the scheduler maps them without ever
    running a measurement.  The table reports the makespan delta that
    costs and the fraction of profiling work it eliminates.
    """
    name, pc = key
    profiled = run_npb(
        _make_app(name, pc, 4, fast), mode="auto", profile_dir=_profile_dir()
    )
    predicted = run_npb(
        _make_app(name, pc, 4, fast),
        mode="auto",
        config=SchedulerConfig(predict=True),
        profile_dir=_profile_dir(),
    )
    base = profiled.profiler_stats
    pred = predicted.profiler_stats
    runs_base = base.get("profiling_runs", 0)
    runs_pred = pred.get("profiling_runs", 0)
    eliminated = (
        100.0 * (runs_base - runs_pred) / runs_base if runs_base else 0.0
    )
    return {
        "benchmark": f"{name}.{pc}",
        "profiled_s": profiled.seconds,
        "predicted_s": predicted.seconds,
        "makespan_delta_pct": 100.0
        * (predicted.seconds - profiled.seconds)
        / profiled.seconds,
        "measurements": pred.get("kernels_measured", 0),
        "kernels_predicted": pred.get("kernels_predicted", 0),
        "declines": pred.get("predict_declines", 0),
        "profiling_epochs_eliminated_pct": eliminated,
    }


def _predicted_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="predicted_vs_profiled",
        title="Predicted vs profiled scheduling: static-feature model "
        "replacing first-epoch measurement (AUTO_FIT, 4 queues)",
        columns=[
            "benchmark",
            "profiled_s",
            "predicted_s",
            "makespan_delta_pct",
            "measurements",
            "kernels_predicted",
            "declines",
            "profiling_epochs_eliminated_pct",
        ],
    )
    for row in payloads:
        res.add(**row)
    worst = max(abs(r["makespan_delta_pct"]) for r in payloads)
    eliminated = [r["profiling_epochs_eliminated_pct"] for r in payloads]
    res.notes.append(
        f"shape claim: predicted scheduling stays within 15% of the "
        f"fully-profiled makespan (worst |delta| here {worst:.1f}%; "
        f"negative deltas mean the predicted run is *faster* — it skips "
        f"the profiling epoch) while eliminating >=90% of profiling "
        f"epochs (mean {sum(eliminated) / len(eliminated):.0f}%)."
    )
    return res


# ---------------------------------------------------------------------------
# Cluster mode: scheduling over remote accelerators (SnuCL cluster mode)
# ---------------------------------------------------------------------------
def _cluster_units(fast: bool) -> List[Any]:
    return [
        (workload, platform_label)
        for workload in ("compute-heavy", "bandwidth-bound")
        for platform_label in ("single node", "two-node cluster")
    ]


def _cluster_unit(key: Any, fast: bool) -> Dict[str, Any]:
    """One (workload, platform) cell of the SnuCL cluster-mode extension.

    The paper (Section II.B) notes its optimisations "can be applied
    directly to the cluster mode as well"; this measures that claim on a
    two-node cluster (the paper's node + a remote GPU pair over
    InfiniBand).  Compute-heavy pools should speed up by borrowing remote
    GPUs; bandwidth-bound pools must stay on the root node.
    """
    from repro.cluster import two_node_cluster
    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler

    workload, platform_label = key
    compute_src = (
        "// @multicl flops_per_item=2500 bytes_per_item=4 writes=1\n"
        "__kernel void crunch(__global float* a, __global float* b, int n) { }\n"
    )
    stream_src = (
        "// @multicl flops_per_item=2 bytes_per_item=24 writes=1\n"
        "__kernel void stream3(__global float* a, __global float* b, int n) { }\n"
    )
    n = 1 << 20 if fast else 1 << 22
    src, kname, queues, nbytes = {
        "compute-heavy": (compute_src, "crunch", 6, 4 * n),
        "bandwidth-bound": (stream_src, "stream3", 3, 64 << 20),
    }[workload]
    spec = None if platform_label == "single node" else two_node_cluster()

    mcl = MultiCL(
        node_spec=spec,
        policy=ContextScheduler.AUTO_FIT,
        profile_dir=_profile_dir(),
    )
    ctx = mcl.context
    program = ctx.create_program(src).build()
    qs = []
    for i in range(queues):
        k = program.create_kernel(kname)
        a = ctx.create_buffer(nbytes)
        b = ctx.create_buffer(nbytes)
        a.mark_valid("host")
        k.set_arg(0, a)
        k.set_arg(1, b)
        k.set_arg(2, n)
        q = mcl.queue(
            flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH,
            name=f"q{i}",
        )
        for _ in range(4):
            q.enqueue_nd_range_kernel(k, (n,), (128,))
        qs.append(q)
    t0 = mcl.now
    for q in qs:
        q.finish()
    remote = sum(1 for q in qs if q.device.startswith("node1."))
    return {
        "workload": workload,
        "platform": platform_label,
        "seconds": mcl.now - t0,
        "remote_queues": remote,
    }


def _cluster_merge(fast: bool, payloads: List[Any]) -> ExperimentResult:
    res = ExperimentResult(
        name="cluster",
        title="MultiCL over SnuCL cluster mode: when are remote GPUs worth it?",
        columns=["workload", "platform", "seconds", "remote_queues"],
    )
    for row in payloads:
        res.add(**row)
    res.notes.append(
        "compute-heavy pools speed up by borrowing the remote GPUs; "
        "bandwidth-bound pools stay entirely on the root node (shipping "
        "their data over InfiniBand would dominate)."
    )
    res.notes.append(
        "the bandwidth-bound pool is slower on the cluster even though no "
        "remote device is chosen: dynamic profiling stages the inputs to "
        "every candidate device, including the remote ones — profiling "
        "overhead grows with cluster size, which is exactly why the "
        "paper's overhead-reduction optimisations matter more in cluster "
        "mode."
    )
    return res


def _two_node_cluster_spec():
    from repro.cluster import two_node_cluster

    return two_node_cluster()


# ---------------------------------------------------------------------------
# Section VI.C — lines of code changed per application
# ---------------------------------------------------------------------------
def loc(fast: bool = True) -> ExperimentResult:
    res = ExperimentResult(
        name="loc",
        title="Section VI.C: OpenCL source lines modified to enable MultiCL",
        columns=["application", "changed_calls", "lines"],
    )
    for name in sorted(BENCHMARKS):
        cls = BENCHMARKS[name]
        calls = ["clCreateContext(+CL_CONTEXT_SCHEDULER)",
                 "clCreateCommandQueue(+SCHED_*)"]
        if cls.TABLE2_FLAGS & SchedFlag.SCHED_EXPLICIT_REGION:
            calls.append("clSetCommandQueueSchedProperty(start)")
            calls.append("clSetCommandQueueSchedProperty(stop)")
        if cls.USES_WORKGROUP_INFO:
            calls.append("clSetKernelWorkGroupInfo")
        res.add(application=name, changed_calls="; ".join(calls), lines=len(calls))
    res.add(
        application="FDM-Seismology",
        changed_calls="clCreateContext(+CL_CONTEXT_SCHEDULER); "
        "clCreateCommandQueue(+SCHED_KERNEL_EPOCH)",
        lines=2,
    )
    lines = [r["lines"] for r in res.rows]
    res.notes.append(
        f"average lines changed: {sum(lines) / len(lines):.1f} "
        f"(paper: about four source lines per application)."
    )
    return res


# ---------------------------------------------------------------------------
# Experiment registry: units + merge per experiment
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Experiment:
    """One registered experiment and its parallel decomposition.

    ``units(fast)`` lists the experiment's independent configurations
    (picklable keys); ``run_unit(key, fast)`` executes one of them and
    returns a picklable payload; ``merge(fast, payloads)`` assembles the
    payloads — in ``units`` order — into the final
    :class:`ExperimentResult`.  ``extra_specs`` names node-spec factories
    beyond the default testbed whose device profiles the parallel runner
    prewarms before fanning out.
    """

    describe: str
    units: Callable[[bool], List[Any]]
    run_unit: Callable[[Any, bool], Any]
    merge: Callable[[bool, List[Any]], ExperimentResult]
    extra_specs: Tuple[Callable[[], Any], ...] = ()


def _whole(fn: Callable[..., ExperimentResult]) -> Dict[str, Any]:
    """Decomposition for experiments that run as a single unit."""
    return {
        "units": lambda fast: [None],
        "run_unit": lambda key, fast: fn(fast=fast),
        "merge": lambda fast, payloads: payloads[0],
    }


REGISTRY: Dict[str, Experiment] = {
    "fig3": Experiment(
        describe="Single-device CPU vs GPU relative times",
        units=_fig3_units, run_unit=_fig3_unit, merge=_fig3_merge,
    ),
    "table1": Experiment(
        describe="Proposed OpenCL extensions (introspected)", **_whole(table1),
    ),
    "table2": Experiment(
        describe="Benchmark requirements and scheduler options",
        **_whole(table2),
    ),
    "fig4": Experiment(
        describe="Manual vs automatic scheduling, 4 queues",
        units=_fig4_units, run_unit=_fig4_unit, merge=_fig4_merge,
    ),
    "fig5": Experiment(
        describe="Kernel distribution across devices",
        units=_fig5_units, run_unit=_fig5_unit, merge=_fig5_merge,
    ),
    "fig6": Experiment(
        describe="FT profiling overhead vs queue count",
        units=_fig6_units, run_unit=_fig6_unit, merge=_fig6_merge,
    ),
    "fig7": Experiment(
        describe="Data caching effect on FT profiling",
        units=_fig7_units, run_unit=_fig7_unit, merge=_fig7_merge,
    ),
    "fig8": Experiment(
        describe="Minikernel profiling impact for EP",
        units=_fig8_units, run_unit=_fig8_unit, merge=_fig8_merge,
    ),
    "fig9": Experiment(
        describe="FDM-Seismology device combinations",
        units=_fig9_units, run_unit=_fig9_unit, merge=_fig9_merge,
    ),
    "fig10": Experiment(
        describe="FDM-Seismology per-iteration amortisation", **_whole(fig10),
    ),
    "ablations": Experiment(
        describe="Design-choice ablations",
        units=_ablations_units, run_unit=_ablations_unit,
        merge=_ablations_merge,
    ),
    "robustness": Experiment(
        describe="Measurement-noise robustness of the mapper",
        units=_robustness_units, run_unit=_robustness_unit,
        merge=_robustness_merge,
    ),
    "predicted_vs_profiled": Experiment(
        describe="Static-feature prediction vs dynamic profiling",
        units=_predicted_units, run_unit=_predicted_unit,
        merge=_predicted_merge,
    ),
    "cluster": Experiment(
        describe="MultiCL over SnuCL cluster mode (extension)",
        units=_cluster_units, run_unit=_cluster_unit, merge=_cluster_merge,
        extra_specs=(_two_node_cluster_spec,),
    ),
    "baselines": Experiment(
        describe="Epoch vs per-kernel scheduling granularity (SOCL contrast)",
        units=_baselines_units, run_unit=_baselines_unit,
        merge=_baselines_merge,
    ),
    "loc": Experiment(
        describe="Lines of code changed per application", **_whole(loc),
    ),
}


def _get(name: str) -> Experiment:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; have {sorted(REGISTRY)}")


def experiment_units(name: str, fast: bool = True) -> List[Any]:
    """The experiment's independent unit keys, in canonical order."""
    return _get(name).units(fast)


def run_experiment_unit(name: str, key: Any, fast: bool = True) -> Any:
    """Execute one unit of ``name``; returns its picklable payload."""
    return _get(name).run_unit(key, fast)


def merge_experiment_units(
    name: str, fast: bool, payloads: Sequence[Any]
) -> ExperimentResult:
    """Assemble unit payloads (in :func:`experiment_units` order)."""
    return _get(name).merge(fast, list(payloads))


def experiment_prewarm_specs(name: str) -> Tuple[Optional[Callable[[], Any]], ...]:
    """Node-spec factories whose device profiles the experiment needs.

    ``None`` stands for the default testbed node.
    """
    return (None,) + _get(name).extra_specs


def run_experiment(name: str, fast: bool = True) -> ExperimentResult:
    exp = _get(name)
    payloads = [exp.run_unit(key, fast) for key in exp.units(fast)]
    return exp.merge(fast, payloads)


def _composed(name: str) -> Callable[..., ExperimentResult]:
    def fn(fast: bool = True) -> ExperimentResult:
        return run_experiment(name, fast=fast)

    fn.__name__ = name
    fn.__qualname__ = name
    fn.__doc__ = REGISTRY[name].describe
    return fn


#: Serial entry points for the decomposed sweep experiments (the
#: single-unit experiments keep their hand-written functions above).
fig3 = _composed("fig3")
fig4 = _composed("fig4")
fig5 = _composed("fig5")
fig6 = _composed("fig6")
fig7 = _composed("fig7")
fig8 = _composed("fig8")
fig9 = _composed("fig9")
ablations = _composed("ablations")
robustness = _composed("robustness")
predicted_vs_profiled = _composed("predicted_vs_profiled")
cluster = _composed("cluster")
baselines = _composed("baselines")

#: Backwards-compatible name → (callable, description) view of REGISTRY.
EXPERIMENTS: Dict[str, Tuple[Callable[..., ExperimentResult], str]] = {
    name: (globals()[name], exp.describe) for name, exp in REGISTRY.items()
}
