"""Command-line entry point: ``python -m repro.bench <experiment> [--full]``.

``list`` shows the available experiments; ``all`` runs every one.  Fast
mode (default) uses reduced problem classes/iterations; ``--full`` runs the
paper-scale configurations of Section VI.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench.figures import EXPERIMENTS, run_experiment

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the MultiCL paper's tables and figures "
        "on the simulated testbed.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig3..fig10, table2, ablations, loc), "
        "'all', or 'list'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale workloads (slower); default is a reduced fast mode",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"{name:10s} {desc}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2

    for name in names:
        t0 = time.time()
        result = run_experiment(name, fast=not args.full)
        wall = time.time() - t0
        print(result.render())
        print(f"({name} regenerated in {wall:.1f}s wall time)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
