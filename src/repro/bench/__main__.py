"""Command-line entry point: ``python -m repro.bench <experiment> [--full]``.

``list`` shows the available experiments; ``all`` runs every one.  Fast
mode (default) uses reduced problem classes/iterations; ``--full`` runs the
paper-scale configurations of Section VI.  ``--jobs N`` fans the
experiments' independent units across N worker processes (the results are
identical to a serial run; ``--verify-serial`` asserts it).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench.figures import EXPERIMENTS, run_experiment

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "replay":
        # Open-loop replay has its own option surface; hand the rest of the
        # command line to its CLI so both spellings behave identically:
        # ``python -m repro.bench replay ...`` == ``python -m repro.replay ...``
        from repro.replay.cli import main as replay_main

        return replay_main(argv[1:], prog="python -m repro.bench replay")
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the MultiCL paper's tables and figures "
        "on the simulated testbed.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig3..fig10, table2, ablations, loc), "
        "'all', 'list', or 'replay' (open-loop traffic replay; "
        "see 'replay --help')",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale workloads (slower); default is a reduced fast mode",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="fan independent experiment units across N processes "
        "(default 1 = serial; results are identical either way)",
    )
    parser.add_argument(
        "--verify-serial",
        action="store_true",
        help="after a parallel run, re-run serially and fail on any "
        "difference (the determinism guarantee, enforced)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"{name:10s} {desc}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2

    fast = not args.full
    if args.jobs != 1:
        from repro.bench.parallel import run_parallel, verify_against_serial

        t0 = time.time()
        results = run_parallel(names, fast=fast, jobs=args.jobs)
        wall = time.time() - t0
        for name, result in results.items():
            print(result.render())
            print()
        print(f"({len(names)} experiment(s) regenerated with "
              f"--jobs {args.jobs} in {wall:.1f}s wall time)")
        if args.verify_serial:
            mismatches = verify_against_serial(results, fast=fast)
            if mismatches:
                print(
                    f"parallel/serial mismatch in: {', '.join(mismatches)}",
                    file=sys.stderr,
                )
                return 1
            print("verified: parallel results identical to the serial run")
        return 0

    if args.verify_serial:
        print("--verify-serial requires --jobs N (N != 1)", file=sys.stderr)
        return 2

    for name in names:
        t0 = time.time()
        result = run_experiment(name, fast=fast)
        wall = time.time() - t0
        print(result.render())
        print(f"({name} regenerated in {wall:.1f}s wall time)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
