"""Result records and table formatting for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "format_table"]


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    #: experiment id, e.g. "fig4"
    name: str
    #: human title, e.g. "Fig. 4: SNU-NPB-MD manual vs automatic scheduling"
    title: str
    #: column order for printing
    columns: List[str]
    #: one dict per printed row
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: free-form commentary: paper expectation vs what we measured
    notes: List[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def column(self, name: str) -> List[Any]:
        return [r.get(name) for r in self.rows]

    def row_for(self, **match: Any) -> Dict[str, Any]:
        """First row whose fields match ``match`` (for assertions)."""
        for r in self.rows:
            if all(r.get(k) == v for k, v in match.items()):
                return r
        raise KeyError(f"no row matching {match} in {self.name}")

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.notes)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Dict[str, Any]],
    notes: Optional[Sequence[str]] = None,
) -> str:
    """Plain-text aligned table with a title rule and trailing notes."""
    table = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(t[i]) for t in table)) if table else len(c)
        for i, c in enumerate(columns)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for t in table:
        lines.append("  ".join(v.ljust(w) for v, w in zip(t, widths)))
    for note in notes or ():
        lines.append(f"note: {note}")
    return "\n".join(lines)
