"""Process-pool runner for the experiment fleet.

The paper's evaluation is a fleet of *independent* simulations — each
figure, and each configuration inside a sweep figure, runs its own
:class:`~repro.ocl.platform.Platform` with its own event engine.  This
module fans those units (declared by :data:`repro.bench.figures.REGISTRY`)
across a :class:`concurrent.futures.ProcessPoolExecutor` and merges the
payloads back in canonical unit order, so a parallel run produces
:class:`~repro.bench.harness.ExperimentResult`\\ s identical to the serial
path — the serial results remain the source of truth and ``--verify-serial``
(or :func:`verify_against_serial`) asserts the equality.

Determinism requires one piece of care: on a *cold* device-profile cache
the microbenchmarks charge the unit's simulated engine before the workload
starts, shifting every later timestamp by a constant — and float addition
at different absolute offsets differs in ulps.  The runner therefore
**prewarms** the shared on-disk profile cache (one measurement per node
spec, single-flight locked in :mod:`repro.core.profile_store`) before
fanning out, so every unit — serial or parallel, first or last — runs with
a warm cache and bit-identical timestamps.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench import figures
from repro.bench.harness import ExperimentResult

__all__ = [
    "default_jobs",
    "fork_map",
    "prewarm_profile_cache",
    "run_parallel",
    "verify_against_serial",
]


def default_jobs() -> int:
    """Worker count when ``--jobs`` is given without a value: the CPUs."""
    return max(os.cpu_count() or 1, 1)


def fork_map(
    fn,
    tasks,
    jobs: int,
    initializer=None,
    initargs: tuple = (),
) -> list:
    """Order-preserving process map over ``tasks`` with the fleet's defaults.

    The shared machinery under both the experiment fleet and the replay
    shard runner: prefer ``fork`` (workers inherit interpreter state —
    hash seed, imports, warm caches), ``chunksize=1`` to load-balance
    skewed task durations, and results in input order so merging stays
    deterministic.  ``jobs=1`` (or a single task) runs in-process, calling
    ``initializer`` first so both paths see identical setup.
    """
    tasks = list(tasks)
    jobs = max(int(jobs), 1)
    if jobs == 1 or len(tasks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(t) for t in tasks]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = multiprocessing.get_context()
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        mp_context=ctx,
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(fn, tasks, chunksize=1))


def prewarm_profile_cache(
    names: Iterable[str], profile_dir: str
) -> List[str]:
    """Measure (once) every node spec the experiments need into the cache.

    Returns the spec names warmed.  Constructing a profiled Platform runs
    the device microbenchmarks through :func:`~repro.core.device_profiler.
    get_or_measure`, which saves into ``profile_dir``; later constructions
    anywhere in the fleet then hit the warm cache and charge no simulated
    time, keeping parallel timestamps bit-identical to serial ones.
    """
    from repro.ocl.platform import Platform

    warmed: List[str] = []
    seen = set()
    for name in names:
        for factory in figures.experiment_prewarm_specs(name):
            spec = factory() if factory is not None else None
            platform = Platform(spec, profile=True, profile_dir=profile_dir)
            if platform.spec.name not in seen:
                seen.add(platform.spec.name)
                warmed.append(platform.spec.name)
    return warmed


def _init_worker(profile_dir: str) -> None:
    """Pool initializer: point the worker at the shared profile cache."""
    os.environ[figures.PROFILE_DIR_ENV] = profile_dir
    figures.set_profile_dir(profile_dir)


def _run_unit(task: Tuple[str, object, bool]):
    name, key, fast = task
    return figures.run_experiment_unit(name, key, fast)


def run_parallel(
    names: Iterable[str],
    fast: bool = True,
    jobs: Optional[int] = None,
    profile_dir: Optional[str] = None,
) -> Dict[str, ExperimentResult]:
    """Run ``names`` with their units fanned across ``jobs`` processes.

    Returns ``{name: ExperimentResult}`` in the input order.  ``jobs=None``
    uses :func:`default_jobs`; ``jobs=1`` executes the same unit schedule
    in-process (useful to isolate pool effects).  ``profile_dir`` defaults
    to the harness-wide shared directory (``MULTICL_PROFILE_DIR`` or a
    per-process tempdir cleaned at exit).
    """
    names = list(names)
    jobs = default_jobs() if jobs is None else max(int(jobs), 1)
    if profile_dir is None:
        profile_dir = figures._profile_dir()
    else:
        figures.set_profile_dir(profile_dir)
    prewarm_profile_cache(names, profile_dir)

    tasks: List[Tuple[str, object, bool]] = []
    counts: List[Tuple[str, int]] = []
    for name in names:
        units = figures.experiment_units(name, fast)
        counts.append((name, len(units)))
        tasks.extend((name, key, fast) for key in units)

    payloads = fork_map(
        _run_unit, tasks, jobs, initializer=_init_worker,
        initargs=(profile_dir,),
    )

    results: Dict[str, ExperimentResult] = {}
    offset = 0
    for name, n in counts:
        results[name] = figures.merge_experiment_units(
            name, fast, payloads[offset : offset + n]
        )
        offset += n
    return results


def verify_against_serial(
    results: Dict[str, ExperimentResult], fast: bool = True
) -> List[str]:
    """Re-run each experiment serially and compare; returns mismatches.

    The profile cache is warm after a parallel run, so the serial rerun is
    cheap and exercises exactly the reference path.
    """
    mismatches: List[str] = []
    for name, parallel_result in results.items():
        serial_result = figures.run_experiment(name, fast=fast)
        if serial_result != parallel_result:
            mismatches.append(name)
    return mismatches
