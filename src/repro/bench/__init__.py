"""Experiment harness regenerating every table and figure of Section VI.

Each experiment is a function returning an :class:`~repro.bench.harness.ExperimentResult`
(a titled table of rows plus notes on how it maps to the paper).  Run from
the command line::

    python -m repro.bench list
    python -m repro.bench fig4            # fast (reduced-scale) mode
    python -m repro.bench fig4 --full     # paper-scale workloads
    python -m repro.bench all

or through the pytest-benchmark suite in ``benchmarks/``.
"""

from repro.bench.harness import ExperimentResult, format_table
from repro.bench.figures import (
    EXPERIMENTS,
    REGISTRY,
    experiment_units,
    merge_experiment_units,
    run_experiment,
    run_experiment_unit,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "EXPERIMENTS",
    "REGISTRY",
    "run_experiment",
    "experiment_units",
    "run_experiment_unit",
    "merge_experiment_units",
]
