"""Discrete-event engine and task graph.

The engine owns a :class:`~repro.sim.clock.SimClock` and a time-ordered event
heap.  Work is expressed as :class:`SimTask` objects: a task has a fixed
*duration*, an optional *resource* it must be served by (FIFO, one task at a
time), and a set of *dependencies* (other tasks) that must complete before it
may start.  Tasks without a resource model host-side latencies: they start as
soon as their dependencies complete and occupy no shared resource.

This is the only place simulated time advances; everything above (the OpenCL
layer, the MultiCL scheduler, the workloads) expresses costs as task durations
and lets the engine order them.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.clock import SimClock
from repro.sim.trace import EMPTY_META, Trace, TraceInterval

__all__ = ["SimTask", "SimEngine", "SimError"]

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimError(RuntimeError):
    """Raised on invalid engine usage (cycles, double submission, ...)."""


#: Task lifecycle states.
_PENDING = "pending"  # created, not yet submitted
#: Shared metadata mapping for tasks created without meta.  Read-only (it
#: also flows into TraceInterval.meta): an in-place mutation raises instead
#: of silently polluting every metadata-free task and trace interval.
_EMPTY_META: Dict[str, Any] = EMPTY_META  # type: ignore[assignment]
_WAITING = "waiting"  # submitted, waiting on dependencies
_READY = "ready"  # dependencies met, queued on its resource
_RUNNING = "running"  # in service
_DONE = "done"
_ABORTED = "aborted"  # cancelled by fault injection; may have a replacement


class SimTask:
    """A unit of simulated work.

    Parameters
    ----------
    name:
        Human-readable identifier (shows up in traces).
    duration:
        Service time in simulated seconds.  Must be non-negative.
    resource:
        Optional :class:`~repro.sim.resources.FifoResource`; when ``None``
        the task runs "in the air" (host-side latency) without queueing.
    deps:
        Tasks that must complete before this one starts.
    category:
        Free-form label used by the trace for time accounting, e.g.
        ``"kernel"``, ``"transfer"``, ``"profile"``.
    meta:
        Arbitrary metadata propagated to the trace (kernel names, sizes...).
    """

    __slots__ = (
        "name",
        "duration",
        "resource",
        "deps",
        "category",
        "meta",
        "state",
        "start_time",
        "end_time",
        "arrival_time",
        "_unmet",
        "_dependents",
        "_callbacks",
        "replacement",
        "released_deps",
    )

    def __init__(
        self,
        name: str,
        duration: float,
        resource: Optional["FifoResource"] = None,  # noqa: F821
        deps: Optional[List["SimTask"]] = None,
        category: str = "work",
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if duration < 0.0:
            raise SimError(f"task {name!r} has negative duration {duration!r}")
        self.name = name
        self.duration = float(duration)
        self.resource = resource
        self.deps: List[SimTask] = list(deps) if deps else []
        self.category = category
        # Shared sentinel for the metadata-free common case; treated as
        # read-only (callers wanting task-local metadata pass a dict).
        self.meta: Dict[str, Any] = dict(meta) if meta else _EMPTY_META
        self.state = _PENDING
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        #: Open-loop accounting hook: when the task models a request in a
        #: queueing system, the replayer stamps its *arrival* time here so
        #: completion handlers can compute arrival→completion latency
        #: (``start_time`` is service start, which differs under queueing).
        self.arrival_time: Optional[float] = None
        self._unmet = 0
        # Lazily allocated (None == empty): most tasks never gain waiters
        # or completion callbacks, so skip two list allocations per task.
        self._dependents: Optional[List[SimTask]] = None
        self._callbacks: Optional[List[Callable[["SimTask"], None]]] = None
        #: When a fault aborts this task and the owning command is replayed,
        #: points at the replacement incarnation (waiters follow the chain).
        self.replacement: Optional["SimTask"] = None
        #: Aborted with dependents released (orphaned work with no replay):
        #: new dependency edges treat this task as satisfied.
        self.released_deps = False

    @property
    def done(self) -> bool:
        return self.state == _DONE

    @property
    def aborted(self) -> bool:
        return self.state == _ABORTED

    def on_complete(self, fn: Callable[["SimTask"], None]) -> None:
        """Register ``fn(task)`` to run when the task completes.

        If the task is already done the callback fires immediately.
        """
        if self.done:
            fn(self)
        elif self._callbacks is None:
            self._callbacks = [fn]
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimTask({self.name!r}, dur={self.duration:.3g}, "
            f"state={self.state}, start={self.start_time}, end={self.end_time})"
        )


class SimEngine:
    """Event heap + virtual clock + task dependency resolution.

    Event-heap entries are ``(time, seq, fn, arg)`` tuples; internal task
    completions carry the task itself as ``arg`` (calling ``fn(arg)``)
    instead of closing a fresh lambda over it, which keeps the per-task
    dispatch cost to one tuple allocation.  ``arg is None`` marks a plain
    user callback registered through :meth:`schedule_at`.
    """

    def __init__(self, trace: Optional[Trace] = None) -> None:
        self.clock = SimClock()
        self.trace = trace if trace is not None else Trace()
        self._heap: List[Tuple[float, int, Callable[..., None], Optional[SimTask]]] = []
        self._seq = itertools.count()
        self._open_tasks = 0
        #: Heap generation counter: bumped once per bulk rebuild in
        #: :meth:`schedule_batch` (extend + single heapify).  Replay epochs
        #: assert on it to prove batch injection took the O(H+K) rebuild or
        #: O(K) sorted-extend path rather than K individual sift-ups.
        self.heap_generation = 0
        # Depth guard for the zero-duration inline-finish fast path: long
        # chains of zero-cost host tasks fall back to the heap instead of
        # recursing without bound.
        self._inline_depth = 0
        # Cached bound method: completion events all dispatch here, and
        # binding it once avoids a method-object allocation per task.
        self._finish_cb = self._finish

    # ------------------------------------------------------------------
    # Low-level event scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.clock.now

    def schedule_at(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute simulated ``time`` (>= now)."""
        if time < self.clock._now:
            raise SimError(f"cannot schedule event in the past ({time} < {self.now})")
        _heappush(self._heap, (float(time), next(self._seq), fn, None))

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` simulated seconds."""
        if delay < 0.0:
            raise SimError(f"negative delay {delay!r}")
        self.schedule_at(self.clock._now + delay, fn)

    def schedule_batch(
        self,
        events: Iterable[Tuple[float, Callable[..., None], Optional[Any]]],
    ) -> int:
        """Schedule many ``(time, fn, arg)`` events in one pass; return count.

        This is the open-loop replay injection path: an epoch of arrivals
        lands in the heap at once instead of through per-event
        :meth:`schedule_at` calls.  Three regimes, cheapest first:

        * heap empty + events already time-sorted — a sorted list *is* a
          valid binary heap, so the batch is adopted with a plain extend
          (O(K), no sifting at all);
        * batch comparable to or larger than the pending heap — extend and
          re-heapify once (O(H+K), bumping :attr:`heap_generation`), which
          for epoch-sized batches beats K·log(H) sift-ups and, crucially,
          is paid per *epoch*, never per event — a replay of N total
          commands injected in E epochs pays O(N + E·H), not O(N·log N);
        * small batch against a large heap — fall back to individual
          pushes (re-heapifying everything would be the O(total) trap).

        ``arg`` follows the internal event convention: ``None`` means
        ``fn()``, anything else means ``fn(arg)`` — so batch events can
        carry a payload without closing a lambda over it.
        """
        now = self.clock._now
        seq = self._seq
        entries: List[Tuple[float, int, Callable[..., None], Optional[Any]]] = []
        prev = now
        sorted_ok = True
        for time, fn, arg in events:
            time = float(time)
            if time < now:
                raise SimError(
                    f"cannot schedule event in the past ({time} < {now})"
                )
            if time < prev:
                sorted_ok = False
            prev = time
            entries.append((time, next(seq), fn, arg))
        if not entries:
            return 0
        heap = self._heap
        if not heap and sorted_ok:
            heap.extend(entries)
        elif len(entries) * 4 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
            self.heap_generation += 1
        else:
            for entry in entries:
                _heappush(heap, entry)
        return len(entries)

    # ------------------------------------------------------------------
    # Task API
    # ------------------------------------------------------------------
    def submit(self, task: SimTask) -> SimTask:
        """Submit ``task`` for execution once its dependencies complete."""
        if task.state != _PENDING:
            raise SimError(f"task {task.name!r} submitted twice")
        self._open_tasks += 1
        if not task.deps:
            # Fast path: independent task — straight to ready (inlined
            # _make_ready; this is the per-task common case).
            task.state = _READY
            resource = task.resource
            if resource is None:
                self._begin(task)
            else:
                resource._enqueue(task)
            return task
        task.state = _WAITING
        unmet = 0
        for i, dep in enumerate(task.deps):
            # A dependency aborted by fault injection resolves through its
            # replacement chain (the replayed incarnation); an orphaned
            # abort with released dependents counts as satisfied.
            while dep.state == _ABORTED and dep.replacement is not None:
                dep = dep.replacement
            task.deps[i] = dep
            if dep.done:
                continue
            if dep.state == _ABORTED and dep.released_deps:
                continue
            if dep.state == _PENDING:
                raise SimError(
                    f"task {task.name!r} depends on unsubmitted task {dep.name!r}"
                )
            # An aborted dep not yet replayed still collects dependents:
            # adopt() transfers them to the replacement when it appears.
            if dep._dependents is None:
                dep._dependents = [task]
            else:
                dep._dependents.append(task)
            unmet += 1
        task._unmet = unmet
        if unmet == 0:
            self._make_ready(task)
        return task

    def task(
        self,
        name: str,
        duration: float,
        resource: Optional["FifoResource"] = None,  # noqa: F821
        deps: Optional[List[SimTask]] = None,
        category: str = "work",
        meta: Optional[Dict[str, Any]] = None,
    ) -> SimTask:
        """Create *and submit* a task in one call."""
        task = SimTask(name, duration, resource, deps, category, meta)
        if deps:
            return self.submit(task)
        # Inline submit fast path: a freshly created task cannot be a double
        # submission, and with no deps it goes straight to ready.
        self._open_tasks += 1
        task.state = _READY
        if resource is None:
            self._begin(task)
        else:
            resource._enqueue(task)
        return task

    def _make_ready(self, task: SimTask) -> None:
        task.state = _READY
        if task.resource is None:
            self._begin(task)
        else:
            task.resource._enqueue(task)

    def _begin(self, task: SimTask) -> None:
        """Start service for a ready task (resource already acquired)."""
        task.state = _RUNNING
        now = self.clock._now
        task.start_time = now
        duration = task.duration
        if duration == 0.0 and task.resource is None and self._inline_depth < 64:
            # Zero-duration host task: completing it cannot advance the
            # clock or overtake any pending event's *time*, so finish
            # inline instead of round-tripping through the heap.
            self._inline_depth += 1
            try:
                self._finish(task)
            finally:
                self._inline_depth -= 1
            return
        # Internal scheduling: end >= now by construction, so skip the
        # past-time validation and lambda closure of schedule_at.
        _heappush(
            self._heap, (now + duration, next(self._seq), self._finish_cb, task)
        )

    def _finish(self, task: SimTask) -> None:
        if task.state == _ABORTED:
            # Stale completion event of a task cancelled by fault injection.
            return
        task.state = _DONE
        now = self.clock._now
        task.end_time = now
        self._open_tasks -= 1
        resource = task.resource
        start = task.start_time
        # Equivalent to self.trace.record(...), with the call layers peeled
        # off: Trace.record is a bare append by contract (lazy indexing).
        trace = self.trace
        intervals = trace._intervals
        intervals.append(
            TraceInterval(
                resource.name if resource is not None else "host",
                task.name,
                task.category,
                start if start is not None else now,
                now,
                task.meta,
            )
        )
        # Streaming mode: once the resident tail reaches the spill
        # threshold, hand it to the attached sink.  ``_spill_at`` is 0
        # (falsy) on a plain resident trace, so the default path pays one
        # attribute load and a truthiness check.
        if trace._spill_at and len(intervals) >= trace._spill_at:
            trace._spill()
        if resource is not None:
            resource._service_done()
        if task._dependents:
            for dep in task._dependents:
                dep._unmet -= 1
                if dep._unmet == 0 and dep.state == _WAITING:
                    self._make_ready(dep)
            task._dependents = None
        if task._callbacks:
            callbacks, task._callbacks = task._callbacks, None
            for fn in callbacks:
                fn(task)

    # ------------------------------------------------------------------
    # Fault support
    # ------------------------------------------------------------------
    def abort(self, task: SimTask, release_dependents: bool = False) -> bool:
        """Cancel a submitted, unfinished task (fault injection).

        A task in service is pulled off its resource and the lost partial
        work is recorded in the trace under the ``fault`` category.  With
        ``release_dependents`` the task counts as satisfied for its waiters
        (used for orphaned work like profiling launches on a dead device);
        without it the caller is expected to :meth:`adopt` a replacement
        task so waiters can follow the replay.  Returns ``False`` if the
        task already completed or was already aborted.
        """
        if task.state in (_DONE, _ABORTED):
            return False
        if task.state == _PENDING:
            raise SimError(f"cannot abort unsubmitted task {task.name!r}")
        if task.state == _READY and task.resource is not None:
            task.resource._remove(task)
        elif task.state == _RUNNING:
            if task.start_time is not None and self.now > task.start_time:
                resname = task.resource.name if task.resource is not None else "host"
                self.trace.record(
                    resource=resname,
                    task=f"lost:{task.name}",
                    category="fault",
                    start=task.start_time,
                    end=self.now,
                    meta={**task.meta, "aborted": True},
                )
            if task.resource is not None:
                task.resource._abort_service(task)
        task.state = _ABORTED
        self._open_tasks -= 1
        if release_dependents:
            task.released_deps = True
            for dep in task._dependents or ():
                dep._unmet -= 1
                if dep._unmet == 0 and dep.state == _WAITING:
                    self._make_ready(dep)
            task._dependents = None
            task._callbacks = None
        return True

    def adopt(self, old: SimTask, new: SimTask) -> None:
        """Make ``new`` the replacement of aborted ``old``.

        Waiters (dependency edges and completion callbacks) registered on
        the aborted incarnation transfer to the replacement, and blocked
        :meth:`run_until` calls follow ``old.replacement`` to the live task.
        """
        if old.state != _ABORTED:
            raise SimError(f"cannot adopt from non-aborted task {old.name!r}")
        old.replacement = new
        if new.done:
            # Degenerate: replacement already finished — settle waiters now.
            for dep in old._dependents or ():
                dep._unmet -= 1
                if dep._unmet == 0 and dep.state == _WAITING:
                    self._make_ready(dep)
            for fn in old._callbacks or ():
                fn(new)
        else:
            if old._dependents:
                if new._dependents is None:
                    new._dependents = list(old._dependents)
                else:
                    new._dependents.extend(old._dependents)
            if old._callbacks:
                if new._callbacks is None:
                    new._callbacks = list(old._callbacks)
                else:
                    new._callbacks.extend(old._callbacks)
        old._dependents = None
        old._callbacks = None

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_until(self, task: SimTask) -> float:
        """Process events until ``task`` completes; return its end time.

        This models a *blocking host call*: the simulated host waits for the
        task, and the shared clock lands exactly on the task's completion.
        Events scheduled later than that stay queued for subsequent runs.
        If the task is aborted by fault injection while the host waits, the
        wait follows the replacement chain to the replayed incarnation.
        """
        if task.state == _PENDING:
            raise SimError(f"cannot wait on unsubmitted task {task.name!r}")
        heap = self._heap
        pop = _heappop
        clock = self.clock
        while True:
            if task.state == _ABORTED:
                if task.replacement is None:
                    raise SimError(
                        f"waiting on aborted task {task.name!r} with no replacement"
                    )
                task = task.replacement
                continue
            if task.state == _DONE:
                break
            if not heap:
                raise SimError(
                    f"deadlock: waiting on {task.name!r} with an empty event heap"
                )
            time, _, fn, arg = pop(heap)
            # Heap pop order is non-decreasing in time, so the monotonicity
            # check in SimClock.advance_to is redundant here.
            clock._now = time
            if arg is None:
                fn()
            else:
                fn(arg)
        # The final processed event may have been exactly this task's finish;
        # the clock already sits at task.end_time.
        assert task.end_time is not None
        return task.end_time

    def run_until_idle(self) -> float:
        """Drain all queued events; return the final simulated time."""
        heap = self._heap
        pop = _heappop
        clock = self.clock
        while heap:
            time, _, fn, arg = pop(heap)
            clock._now = time
            if arg is None:
                fn()
            else:
                fn(arg)
        if self._open_tasks:
            raise SimError(f"{self._open_tasks} task(s) never completed (cycle?)")
        return self.now

    def run_until_time(self, time: float) -> float:
        """Process every event with timestamp <= ``time``; land the clock on
        ``time``.

        The open-loop replay driver alternates ``schedule_batch`` (inject
        the next epoch of arrivals) with ``run_until_time`` (advance to the
        epoch boundary); unlike :meth:`run_until` it needs no sentinel task,
        and unlike :meth:`run_until_idle` it leaves future events queued.
        Events scheduled *during* processing are honoured when they also
        fall inside the window.
        """
        clock = self.clock
        if time < clock._now:
            raise SimError(
                f"cannot run backwards to {time} (now {clock._now})"
            )
        heap = self._heap
        pop = _heappop
        while heap and heap[0][0] <= time:
            t, _, fn, arg = pop(heap)
            clock._now = t
            if arg is None:
                fn()
            else:
                fn(arg)
        clock._now = time
        return time

    def elapse(self, duration: float, category: str = "host", name: str = "host-delay") -> None:
        """Advance the simulated host by ``duration`` seconds.

        Concurrent device work scheduled inside that window is processed in
        order, exactly as if the host were sleeping while devices progress.
        """
        sleeper = self.task(name, duration, category=category)
        self.run_until(sleeper)
