"""FIFO resources: serial servers for simulated tasks.

A :class:`FifoResource` serves one task at a time in arrival order.  Devices
expose one resource per execution engine (compute unit stream) and the node
topology exposes one per transfer link (e.g. the PCIe lane shared by both
GPUs on socket 1), so link contention is modelled for free.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SimEngine, SimTask

__all__ = ["FifoResource"]


class FifoResource:
    """A single-server FIFO queue bound to a :class:`~repro.sim.engine.SimEngine`.

    Parameters
    ----------
    engine:
        Owning engine; tasks served here advance its clock.
    name:
        Trace label, e.g. ``"dev:gpu0"`` or ``"link:pcie-s1"``.
    """

    __slots__ = ("engine", "name", "_queue", "_busy", "busy_time", "served")

    def __init__(self, engine: "SimEngine", name: str) -> None:
        self.engine = engine
        self.name = name
        self._queue: Deque["SimTask"] = deque()
        self._busy: Optional["SimTask"] = None
        #: accumulated busy seconds (for utilisation accounting)
        self.busy_time = 0.0
        #: number of tasks served to completion
        self.served = 0

    @property
    def busy(self) -> bool:
        """Whether a task is currently in service."""
        return self._busy is not None

    @property
    def backlog(self) -> int:
        """Number of tasks waiting (excluding the one in service)."""
        return len(self._queue)

    def pending_tasks(self) -> list:
        """In-service task (if any) followed by the waiting queue.

        Fault injection uses this to sweep unfinished work off a failed
        resource.
        """
        out = [self._busy] if self._busy is not None else []
        out.extend(self._queue)
        return out

    # Called by the engine -------------------------------------------------
    def _enqueue(self, task: "SimTask") -> None:
        if self._busy is None and not self._queue:
            # Idle server, empty queue: begin service directly instead of
            # paying a deque append/popleft round-trip per task.
            self._busy = task
            self.engine._begin(task)
            return
        self._queue.append(task)
        self._dispatch()

    def _dispatch(self) -> None:
        if self._busy is None and self._queue:
            task = self._queue.popleft()
            self._busy = task
            self.engine._begin(task)

    def _service_done(self) -> None:
        task = self._busy
        assert task is not None
        self.busy_time += task.duration
        self.served += 1
        # Inline _dispatch: this runs once per served task.
        if self._queue:
            nxt = self._queue.popleft()
            self._busy = nxt
            self.engine._begin(nxt)
        else:
            self._busy = None

    # Called by SimEngine.abort -------------------------------------------
    def _remove(self, task: "SimTask") -> None:
        """Drop a queued (not yet in-service) task."""
        self._queue.remove(task)

    def _abort_service(self, task: "SimTask") -> None:
        """Cancel the in-service task; partial service counts as busy time."""
        assert self._busy is task
        if task.start_time is not None:
            self.busy_time += max(self.engine.now - task.start_time, 0.0)
        self._busy = None
        self._dispatch()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "busy" if self.busy else "idle"
        return f"FifoResource({self.name!r}, {state}, backlog={self.backlog})"
