"""Virtual clock for the discrete-event engine.

The clock is monotonically non-decreasing.  Only the engine advances it;
user code reads :attr:`SimClock.now` and may *not* move time backwards.
All times are seconds of simulated wall-clock time, stored as floats.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised on an attempt to move simulated time backwards."""


class SimClock:
    """A monotonic virtual clock.

    Parameters
    ----------
    start:
        Initial simulated time in seconds (default ``0.0``).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Advance the clock to an absolute ``time``.

        Raises
        ------
        ClockError
            If ``time`` is earlier than the current time.  (Advancing to the
            *current* time is a no-op and allowed: zero-duration events are
            common.)
        """
        if time < self._now:
            raise ClockError(
                f"cannot move clock backwards: now={self._now!r}, target={time!r}"
            )
        self._now = float(time)

    def advance_by(self, delta: float) -> None:
        """Advance the clock by a non-negative ``delta`` seconds."""
        if delta < 0.0:
            raise ClockError(f"cannot advance clock by negative delta {delta!r}")
        self._now += float(delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.9f})"
