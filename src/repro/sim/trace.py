"""Timeline tracing for simulated runs.

The trace records one :class:`TraceInterval` per completed task: which
resource served it, what category of work it was, and when.  The evaluation
harness uses this to reproduce the paper's accounting figures — kernel→device
distributions (Fig. 5), profiling-overhead breakdowns (Figs. 6–8), and
per-iteration timelines (Fig. 10) — without instrumenting the runtime itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

__all__ = ["TraceInterval", "Trace", "FAULT_CATEGORY", "RECOVERY_CATEGORY"]

#: Category for injected faults and work lost to them (device failures,
#: transient slowdown windows, link outages, aborted partial executions).
FAULT_CATEGORY = "fault"
#: Category for recovery actions (command replays, queue remaps, backoff).
RECOVERY_CATEGORY = "recovery"


@dataclass(frozen=True)
class TraceInterval:
    """One served task on one resource."""

    resource: str
    task: str
    category: str
    start: float
    end: float
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Append-only collection of :class:`TraceInterval` records."""

    def __init__(self) -> None:
        self._intervals: List[TraceInterval] = []
        #: monotonically increasing marks: (time, label); used to delimit
        #: program phases such as iterations or synchronization epochs.
        self.marks: List[tuple] = []

    def record(
        self,
        resource: str,
        task: str,
        category: str,
        start: float,
        end: float,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._intervals.append(
            TraceInterval(resource, task, category, start, end, dict(meta or {}))
        )

    def mark(self, time: float, label: str) -> None:
        """Record a named instant (e.g. ``"iteration:3"``)."""
        self.marks.append((time, label))

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[TraceInterval]:
        return iter(self._intervals)

    def filter(
        self,
        resource: Optional[str] = None,
        category: Optional[str] = None,
        predicate: Optional[Callable[[TraceInterval], bool]] = None,
    ) -> List[TraceInterval]:
        """Select intervals by resource and/or category and/or predicate."""
        out = []
        for iv in self._intervals:
            if resource is not None and iv.resource != resource:
                continue
            if category is not None and iv.category != category:
                continue
            if predicate is not None and not predicate(iv):
                continue
            out.append(iv)
        return out

    def total_time(
        self, resource: Optional[str] = None, category: Optional[str] = None
    ) -> float:
        """Sum of durations matching the filters."""
        return sum(iv.duration for iv in self.filter(resource, category))

    def count(
        self, resource: Optional[str] = None, category: Optional[str] = None
    ) -> int:
        """Number of intervals matching the filters."""
        return len(self.filter(resource, category))

    def resources(self) -> List[str]:
        """Sorted list of distinct resource names seen."""
        return sorted({iv.resource for iv in self._intervals})

    def categories(self) -> List[str]:
        """Sorted list of distinct categories seen."""
        return sorted({iv.category for iv in self._intervals})

    def by_resource(self, category: Optional[str] = None) -> Dict[str, float]:
        """Map resource name -> total busy seconds (optionally per category)."""
        out: Dict[str, float] = {}
        for iv in self._intervals:
            if category is not None and iv.category != category:
                continue
            out[iv.resource] = out.get(iv.resource, 0.0) + iv.duration
        return out

    def counts_by_resource(self, category: Optional[str] = None) -> Dict[str, int]:
        """Map resource name -> number of served tasks (optionally per category)."""
        out: Dict[str, int] = {}
        for iv in self._intervals:
            if category is not None and iv.category != category:
                continue
            out[iv.resource] = out.get(iv.resource, 0) + 1
        return out

    def between(self, t0: float, t1: float) -> List[TraceInterval]:
        """Intervals whose *start* falls within ``[t0, t1)``."""
        return [iv for iv in self._intervals if t0 <= iv.start < t1]

    def extend(self, intervals: Iterable[TraceInterval]) -> None:
        """Bulk-append intervals (used when merging traces in tests)."""
        self._intervals.extend(intervals)
