"""Timeline tracing for simulated runs.

The trace records one :class:`TraceInterval` per completed task: which
resource served it, what category of work it was, and when.  The evaluation
harness uses this to reproduce the paper's accounting figures — kernel→device
distributions (Fig. 5), profiling-overhead breakdowns (Figs. 6–8), and
per-iteration timelines (Fig. 10) — without instrumenting the runtime itself.

Storage is *columnar/indexed with lazy maintenance*: :meth:`Trace.record`
(the engine's hottest call — once per completed task) is a bare list append,
while per-resource and per-category interval indexes plus running
``(resource, category) → (seconds, count)`` aggregates are caught up
incrementally on the first query after an append burst.  Each interval is
indexed exactly once, so a record-heavy run followed by query-heavy figure
generation pays O(1) amortised per record and O(matches) per query instead
of a full O(n) scan per accounting call.
"""

from __future__ import annotations

from bisect import bisect_left
from types import MappingProxyType
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, NamedTuple, Optional, Tuple

__all__ = ["TraceInterval", "Trace", "TraceSink", "FAULT_CATEGORY", "RECOVERY_CATEGORY"]

#: Shared default for metadata-free intervals.  Immutable on purpose: the
#: previous plain ``{}`` class default was aliased by *every*
#: default-constructed interval, so one in-place mutation (e.g. a tag added
#: post hoc) silently polluted all of them.  A read-only mapping keeps
#: ``.get()``/iteration working and turns that aliasing bug into a loud
#: ``TypeError``; callers wanting per-interval metadata pass their own dict.
EMPTY_META: Mapping[str, Any] = MappingProxyType({})

#: Category for injected faults and work lost to them (device failures,
#: transient slowdown windows, link outages, aborted partial executions).
FAULT_CATEGORY = "fault"
#: Category for recovery actions (command replays, queue remaps, backoff).
RECOVERY_CATEGORY = "recovery"


class TraceInterval(NamedTuple):
    """One served task on one resource.

    A named tuple (constructed ~once per simulated task): treat instances —
    including the ``meta`` mapping, which is stored without a defensive copy
    — as immutable.  Metadata-free intervals share the read-only
    :data:`EMPTY_META` sentinel, so they cannot alias mutable state.
    """

    resource: str
    task: str
    category: str
    start: float
    end: float
    meta: Mapping[str, Any] = EMPTY_META

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceSink:
    """Consumer of spilled interval batches from a streaming :class:`Trace`.

    Attach one with :meth:`Trace.attach_sink` and the trace stops holding
    every interval resident: whenever the resident tail reaches the spill
    threshold it is handed — as one list, ownership transferred — to
    :meth:`consume`.  Implementations fold the batch into whatever compact
    summary they maintain (latency histograms, per-category totals) or
    append it to disk (:class:`~repro.sim.export.JsonlTraceSink`), keeping
    host memory flat at millions of intervals.
    """

    def consume(self, intervals: List[TraceInterval]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (files); called by the owner."""


class Trace:
    """Append-only, lazily indexed collection of :class:`TraceInterval`.

    Mutations (:meth:`record` / :meth:`extend`) only append to the primary
    list; queries first fold not-yet-indexed intervals into the secondary
    indexes (:meth:`_catch_up`), then answer from the indexes.

    With a sink attached (:meth:`attach_sink`) the trace runs in
    *streaming* mode: intervals beyond the spill threshold are folded into
    the running ``(resource, category)`` aggregates — so
    :meth:`total_time` / :meth:`count` / :meth:`by_resource` /
    :meth:`counts_by_resource` stay exact over the whole run — and then
    handed to the sink and dropped.  Per-interval queries (:meth:`filter`,
    :meth:`between`, iteration, ``len``) cover only the resident tail in
    that mode; :attr:`total_recorded` counts everything ever recorded.
    """

    def __init__(self) -> None:
        self._intervals: List[TraceInterval] = []
        #: monotonically increasing marks: (time, label); used to delimit
        #: program phases such as iterations or synchronization epochs.
        self.marks: List[tuple] = []
        # Secondary indexes over _intervals[:_indexed_upto].
        self._by_resource: Dict[str, List[TraceInterval]] = {}
        self._by_category: Dict[str, List[TraceInterval]] = {}
        #: (resource, category) -> [summed seconds, interval count]
        self._aggregates: Dict[Tuple[str, str], List[float]] = {}
        self._indexed_upto = 0
        # Streaming mode (attach_sink): spill threshold (0 = resident
        # trace, the default) and intervals handed to the sink so far.
        self._sink: Optional[TraceSink] = None
        self._spill_at = 0
        self._spilled = 0
        # Lazily built sorted start index for between(); _start_index_n is
        # the interval count it was built at (-1 = invalid).
        self._start_keys: List[float] = []
        self._start_order: List[int] = []
        self._start_index_n = -1

    def record(
        self,
        resource: str,
        task: str,
        category: str,
        start: float,
        end: float,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        # Hot path: one tuple construction + one append.  The meta dict is
        # stored as given (callers hand over ownership); a ``None`` sentinel
        # normalises to the shared immutable empty mapping.  Indexing
        # happens lazily at the next query.
        self._intervals.append(
            TraceInterval(resource, task, category, start, end,
                          meta if meta is not None else EMPTY_META)
        )
        if self._spill_at and len(self._intervals) >= self._spill_at:
            self._spill()

    # ------------------------------------------------------------------
    # Streaming sink
    # ------------------------------------------------------------------
    def attach_sink(self, sink: TraceSink, spill_every: int = 16384) -> None:
        """Switch to streaming mode: spill to ``sink`` every ``spill_every``
        intervals.

        The running aggregates keep covering spilled intervals, so
        whole-run totals remain exact; per-interval queries are restricted
        to the resident (not yet spilled) tail from here on.
        """
        if spill_every < 1:
            raise ValueError(f"spill_every must be >= 1, got {spill_every}")
        if self._sink is not None:
            raise ValueError("trace already has a sink attached")
        self._sink = sink
        self._spill_at = int(spill_every)

    def _spill(self) -> None:
        """Hand the resident intervals to the sink and drop them."""
        intervals = self._intervals
        if not intervals:
            return
        # Fold the not-yet-indexed tail into the aggregates first (the
        # indexed prefix is already in); then the per-interval index lists
        # go with the intervals themselves.
        aggregates = self._aggregates
        for iv in intervals[self._indexed_upto:]:
            agg = aggregates.get((iv.resource, iv.category))
            if agg is None:
                aggregates[(iv.resource, iv.category)] = [iv.end - iv.start, 1]
            else:
                agg[0] += iv.end - iv.start
                agg[1] += 1
        self._spilled += len(intervals)
        self._intervals = []
        self._by_resource.clear()
        self._by_category.clear()
        self._indexed_upto = 0
        self._start_index_n = -1
        assert self._sink is not None
        self._sink.consume(intervals)

    def flush(self) -> None:
        """Spill any resident intervals to the sink regardless of threshold
        (no-op on a resident trace)."""
        if self._sink is not None:
            self._spill()

    @property
    def spilled_count(self) -> int:
        """Intervals handed to the sink so far (0 on a resident trace)."""
        return self._spilled

    @property
    def total_recorded(self) -> int:
        """All intervals ever recorded: resident tail + spilled."""
        return self._spilled + len(self._intervals)

    def _catch_up(self) -> None:
        """Fold intervals appended since the last query into the indexes."""
        upto = self._indexed_upto
        intervals = self._intervals
        if upto == len(intervals):
            return
        by_resource = self._by_resource
        by_category = self._by_category
        aggregates = self._aggregates
        for iv in intervals[upto:]:
            resource = iv.resource
            category = iv.category
            lst = by_resource.get(resource)
            if lst is None:
                by_resource[resource] = [iv]
            else:
                lst.append(iv)
            lst = by_category.get(category)
            if lst is None:
                by_category[category] = [iv]
            else:
                lst.append(iv)
            agg = aggregates.get((resource, category))
            if agg is None:
                aggregates[(resource, category)] = [iv.end - iv.start, 1]
            else:
                agg[0] += iv.end - iv.start
                agg[1] += 1
        self._indexed_upto = len(intervals)

    def mark(self, time: float, label: str) -> None:
        """Record a named instant (e.g. ``"iteration:3"``)."""
        self.marks.append((time, label))

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[TraceInterval]:
        return iter(self._intervals)

    def filter(
        self,
        resource: Optional[str] = None,
        category: Optional[str] = None,
        predicate: Optional[Callable[[TraceInterval], bool]] = None,
    ) -> List[TraceInterval]:
        """Select intervals by resource and/or category and/or predicate.

        Single-key lookups return straight from the index; combined lookups
        scan only the smaller of the two candidate lists.  Order always
        matches recording order (indexes are append-ordered).
        """
        self._catch_up()
        if resource is not None and category is not None:
            by_r = self._by_resource.get(resource, ())
            by_c = self._by_category.get(category, ())
            if len(by_r) <= len(by_c):
                out = [iv for iv in by_r if iv.category == category]
            else:
                out = [iv for iv in by_c if iv.resource == resource]
        elif resource is not None:
            out = list(self._by_resource.get(resource, ()))
        elif category is not None:
            out = list(self._by_category.get(category, ()))
        else:
            out = list(self._intervals)
        if predicate is not None:
            out = [iv for iv in out if predicate(iv)]
        return out

    def total_time(
        self, resource: Optional[str] = None, category: Optional[str] = None
    ) -> float:
        """Sum of durations matching the filters (O(distinct pairs))."""
        return self._sum_aggregates(resource, category, 0)

    def count(
        self, resource: Optional[str] = None, category: Optional[str] = None
    ) -> int:
        """Number of intervals matching the filters (O(distinct pairs))."""
        return int(self._sum_aggregates(resource, category, 1))

    def _sum_aggregates(
        self, resource: Optional[str], category: Optional[str], slot: int
    ) -> float:
        self._catch_up()
        if resource is not None and category is not None:
            agg = self._aggregates.get((resource, category))
            return agg[slot] if agg is not None else 0.0
        total = 0.0
        for (r, c), agg in self._aggregates.items():
            if resource is not None and r != resource:
                continue
            if category is not None and c != category:
                continue
            total += agg[slot]
        return total

    def resources(self) -> List[str]:
        """Sorted list of distinct resource names seen."""
        self._catch_up()
        return sorted(self._by_resource)

    def categories(self) -> List[str]:
        """Sorted list of distinct categories seen."""
        self._catch_up()
        return sorted(self._by_category)

    def by_resource(self, category: Optional[str] = None) -> Dict[str, float]:
        """Map resource name -> total busy seconds (optionally per category)."""
        self._catch_up()
        out: Dict[str, float] = {}
        for (r, c), agg in self._aggregates.items():
            if category is not None and c != category:
                continue
            out[r] = out.get(r, 0.0) + agg[0]
        return out

    def counts_by_resource(self, category: Optional[str] = None) -> Dict[str, int]:
        """Map resource name -> number of served tasks (optionally per category)."""
        self._catch_up()
        out: Dict[str, int] = {}
        for (r, c), agg in self._aggregates.items():
            if category is not None and c != category:
                continue
            out[r] = out.get(r, 0) + int(agg[1])
        return out

    def between(self, t0: float, t1: float) -> List[TraceInterval]:
        """Intervals whose *start* falls within ``[t0, t1)``.

        Answered with bisect over a lazily built sorted start index —
        O(log n + matches·log matches) per query once built, rebuilt only
        after an append burst — instead of a full linear scan per call.
        Results keep recording order, matching the linear-scan reference
        (starts are not globally sorted: a long task started early can
        finish, and thus be recorded, late).  Tiny traces take the plain
        scan; in streaming mode the window covers the resident tail only.
        """
        intervals = self._intervals
        n = len(intervals)
        if n < 64:
            return [iv for iv in intervals if t0 <= iv.start < t1]
        if self._start_index_n != n:
            pairs = sorted((iv.start, i) for i, iv in enumerate(intervals))
            self._start_keys = [start for start, _ in pairs]
            self._start_order = [i for _, i in pairs]
            self._start_index_n = n
        lo = bisect_left(self._start_keys, t0)
        hi = bisect_left(self._start_keys, t1)
        if lo >= hi:
            return []
        return [intervals[i] for i in sorted(self._start_order[lo:hi])]

    def extend(self, intervals: Iterable[TraceInterval]) -> None:
        """Bulk-append intervals (used when merging traces in tests)."""
        self._intervals.extend(intervals)
        if self._spill_at and len(self._intervals) >= self._spill_at:
            self._spill()
