"""Trace export and utilisation reporting.

Two consumers of :class:`~repro.sim.trace.Trace` beyond the benchmark
figures:

* :func:`to_chrome_trace` — convert a trace to the Chrome trace-event JSON
  format, loadable in ``chrome://tracing`` / Perfetto, with one row per
  simulated resource (devices, links, host) and colour-coded categories,
  so a whole scheduled run can be inspected visually;
* :func:`utilization_report` — per-resource busy fractions and per-category
  breakdowns over a time window, as a plain data structure (the examples
  print it; tests assert on it).

Simulated times are seconds; Chrome expects microseconds.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional

from repro.sim.trace import Trace, TraceInterval, TraceSink

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "utilization_report",
    "JsonlTraceSink",
    "read_jsonl_trace",
]

#: Stable colour names (Chrome trace palette) per category.
_COLORS = {
    "kernel": "thread_state_running",
    "transfer": "rail_load",
    "migration": "rail_animation",
    "profile-kernel": "terrible",
    "profile-transfer": "bad",
    "schedule": "grey",
    "build": "generic_work",
    "devprofile": "good",
    "fault": "black",
    "recovery": "olive",
}


def to_chrome_trace(trace: Trace, include_marks: bool = True) -> Dict:
    """Build a Chrome trace-event dict from ``trace``.

    Resources map to thread ids in one process; every interval becomes a
    complete ('X') event; trace marks become instant ('i') events.
    """
    resources = trace.resources()
    tids = {name: i + 1 for i, name in enumerate(resources)}
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "MultiCL simulation"},
        }
    ]
    for name, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for iv in trace:
        events.append(
            {
                "name": iv.task,
                "cat": iv.category,
                "ph": "X",
                "pid": 1,
                "tid": tids[iv.resource],
                "ts": iv.start * 1e6,
                "dur": iv.duration * 1e6,
                "cname": _COLORS.get(iv.category, "generic_work"),
                "args": {k: str(v) for k, v in iv.meta.items()},
            }
        )
    if include_marks:
        for time, label in trace.marks:
            events.append(
                {
                    "name": label,
                    "cat": "mark",
                    "ph": "i",
                    "pid": 1,
                    "ts": time * 1e6,
                    "s": "g",
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: Trace, path: str) -> str:
    """Serialise :func:`to_chrome_trace` to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(trace), fh)
    return path


class JsonlTraceSink(TraceSink):
    """Spill streamed trace intervals to a JSON-Lines file.

    One JSON object per interval, written batch-at-a-time as the streaming
    :class:`~repro.sim.trace.Trace` spills, so a replay of millions of
    commands keeps a full on-disk trace while holding only the spill batch
    resident.  Metadata-free intervals omit the ``meta`` key entirely —
    at production scale the empty-dict column would dominate the file.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w")
        self.written = 0

    def consume(self, intervals: List[TraceInterval]) -> None:
        dumps = json.dumps
        lines = []
        for iv in intervals:
            obj = {
                "resource": iv.resource,
                "task": iv.task,
                "category": iv.category,
                "start": iv.start,
                "end": iv.end,
            }
            if iv.meta:
                obj["meta"] = dict(iv.meta)
            lines.append(dumps(obj))
        lines.append("")  # trailing newline for the batch
        self._fh.write("\n".join(lines))
        self.written += len(intervals)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def read_jsonl_trace(path: str) -> Iterator[TraceInterval]:
    """Stream intervals back from a :class:`JsonlTraceSink` file."""
    with open(path) as fh:
        for line in fh:
            if not line.strip():
                continue
            obj = json.loads(line)
            yield TraceInterval(
                obj["resource"],
                obj["task"],
                obj["category"],
                obj["start"],
                obj["end"],
                obj.get("meta") or {},
            )


def utilization_report(
    trace: Trace,
    t0: float = 0.0,
    t1: Optional[float] = None,
) -> Dict[str, Dict]:
    """Per-resource utilisation over ``[t0, t1)``.

    Returns ``{resource: {"busy_s": float, "utilization": float,
    "by_category": {category: seconds}}}``.  ``t1`` defaults to the latest
    interval end.  Every interval is clipped to the window and only the
    overlapping portion is attributed, so intervals straddling either edge
    contribute exactly their in-window seconds (an interval entirely
    outside the window contributes nothing).  With exclusive resources the
    busy total can therefore never exceed the span — no clamping needed.
    """
    if t1 is None:
        t1 = max((iv.end for iv in trace), default=t0)
    span = max(t1 - t0, 1e-15)
    report: Dict[str, Dict] = {}
    for iv in trace:
        overlap = min(iv.end, t1) - max(iv.start, t0)
        # Zero-duration instants inside the window stay visible in the
        # report (0 s busy); anything else without overlap is out.
        if overlap < 0.0 or (
            overlap == 0.0 and not (iv.start == iv.end and t0 <= iv.start < t1)
        ):
            continue
        entry = report.setdefault(
            iv.resource, {"busy_s": 0.0, "utilization": 0.0, "by_category": {}}
        )
        entry["busy_s"] += overlap
        cats = entry["by_category"]
        cats[iv.category] = cats.get(iv.category, 0.0) + overlap
    for entry in report.values():
        entry["utilization"] = entry["busy_s"] / span
    return report
