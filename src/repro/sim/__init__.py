"""Discrete-event simulation substrate.

Every piece of simulated work in the reproduction — kernel executions,
PCIe/host transfers, profiling runs — is charged to a shared virtual clock
owned by a :class:`~repro.sim.engine.SimEngine`.  The OpenCL layer
(:mod:`repro.ocl`) submits commands to :class:`~repro.sim.resources.FifoResource`
instances (one per device execution unit, one per transfer link) and blocks
the simulated host by advancing the engine until completion events fire.

The substrate is deliberately small but fully general: it supports arbitrary
dependency DAGs between tasks, FIFO resources with serial service, and a
:class:`~repro.sim.trace.Trace` that records per-resource busy intervals so
experiments can account exactly where virtual time went (application work vs
profiling overhead vs data staging).
"""

from repro.sim.clock import SimClock
from repro.sim.engine import SimEngine, SimTask
from repro.sim.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPolicy,
)
from repro.sim.resources import FifoResource
from repro.sim.trace import (
    FAULT_CATEGORY,
    RECOVERY_CATEGORY,
    Trace,
    TraceInterval,
    TraceSink,
)
from repro.sim.export import (
    JsonlTraceSink,
    read_jsonl_trace,
    to_chrome_trace,
    utilization_report,
    write_chrome_trace,
)

__all__ = [
    "SimClock",
    "SimEngine",
    "SimTask",
    "FifoResource",
    "Trace",
    "TraceInterval",
    "TraceSink",
    "JsonlTraceSink",
    "read_jsonl_trace",
    "FAULT_CATEGORY",
    "RECOVERY_CATEGORY",
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultPolicy",
    "FaultInjector",
    "to_chrome_trace",
    "write_chrome_trace",
    "utilization_report",
]
