"""Fault injection and recovery for simulated runs.

The paper's device mapper assumes a fixed, healthy device pool; a runtime
serving real traffic does not get that luxury.  This module lets a
:class:`FaultPlan` inject hardware churn into a running simulation at
virtual timestamps:

* **permanent device failures** — the device disappears mid-run: its
  in-service and queued simulated work is aborted (the lost partial
  execution is recorded under the ``fault`` trace category), every
  issued-but-unfinished command of the queues it served is requeued, the
  affected kernel/epoch profile-cache entries are invalidated, buffer
  copies that lived only on the dead device fall back to their host shadow,
  and the context scheduler is re-triggered over the *degraded* device set;
* **transient slowdowns** — a device serves kernels ``factor``× slower for
  a window (thermal throttling, a noisy neighbour);
* **link outages** — a host↔device link is unavailable for a window, so
  transfers queue behind the outage (modelled as a blocking task on the
  link's FIFO resource).

Recovery accounting rides on the trace: every replayed command and every
queue remap appends a ``recovery`` interval, and retry backoff is charged
as simulated host time, so :class:`~repro.core.runtime.RunStats` can report
remap counts, replayed commands, and downtime without instrumenting the
workloads.  When no feasible device remains (or a command exhausts its
replay budget) recovery raises a clean
:class:`~repro.core.device_mapper.MapperError`.

Layering: this module lives in :mod:`repro.sim` but orchestrates objects
from the OpenCL layer through duck-typed interfaces (``context.queues``,
``queue.requeue_unfinished``, ``platform.mark_device_failed``); it imports
nothing from :mod:`repro.ocl` at module scope so the simulation substrate
stays standalone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.sim.trace import FAULT_CATEGORY, RECOVERY_CATEGORY

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultPolicy",
    "FaultInjector",
]


def _mapper_error(message: str):
    # Lazy import: repro.core.device_mapper is stdlib-only, but keeping the
    # import out of module scope preserves sim-layer independence.
    from repro.core.device_mapper import MapperError

    return MapperError(message)


class FaultKind(enum.Enum):
    """What breaks."""

    DEVICE_FAIL = "device-fail"
    DEVICE_SLOWDOWN = "device-slowdown"
    LINK_OUTAGE = "link-outage"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` names a device; for :attr:`FaultKind.LINK_OUTAGE` the outage
    hits that device's host link (devices sharing a physical link share the
    outage, exactly as they share the bandwidth).  ``duration`` is the
    window of a transient fault; ``factor`` the slowdown multiplier
    (``2.0`` = kernels take twice as long).
    """

    time: float
    kind: FaultKind
    target: str
    duration: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.duration < 0.0:
            raise ValueError(f"fault duration must be >= 0, got {self.duration}")
        if self.kind is FaultKind.DEVICE_SLOWDOWN and self.factor <= 0.0:
            raise ValueError(f"slowdown factor must be > 0, got {self.factor}")


class FaultPlan:
    """A chainable schedule of fault events.

    Example::

        plan = (FaultPlan()
                .fail_device("gpu1", at=0.05)
                .slow_device("gpu0", at=0.01, duration=0.02, factor=3.0)
                .cut_link("cpu", at=0.0, duration=0.005))
        MultiCL(policy=ContextScheduler.AUTO_FIT, fault_plan=plan)
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.time)

    def _add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        self.events.sort(key=lambda e: e.time)
        return self

    def fail_device(self, device: str, at: float) -> "FaultPlan":
        """Permanently fail ``device`` at virtual time ``at``."""
        return self._add(FaultEvent(at, FaultKind.DEVICE_FAIL, device))

    def slow_device(
        self, device: str, at: float, duration: float, factor: float
    ) -> "FaultPlan":
        """Serve ``device`` kernels ``factor``× slower during the window."""
        return self._add(
            FaultEvent(at, FaultKind.DEVICE_SLOWDOWN, device, duration, factor)
        )

    def cut_link(self, device: str, at: float, duration: float) -> "FaultPlan":
        """Block ``device``'s host link for ``duration`` seconds."""
        return self._add(FaultEvent(at, FaultKind.LINK_OUTAGE, device, duration))

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.events!r})"


@dataclass(frozen=True)
class FaultPolicy:
    """Recovery knobs (the MultiCL-level fault policy).

    ``max_attempts`` caps how many times one command may be replayed before
    recovery gives up with a ``MapperError``.  Backoff grows exponentially
    per failure event and is charged to the simulated host clock under the
    ``recovery`` trace category, so downtime shows up in the accounting.
    """

    max_attempts: int = 3
    backoff_s: float = 1e-3
    backoff_growth: float = 2.0

    def backoff_seconds(self, failure_index: int) -> float:
        """Backoff for the ``failure_index``-th failure (1-based)."""
        return self.backoff_s * self.backoff_growth ** max(failure_index - 1, 0)


class FaultInjector:
    """Arms a :class:`FaultPlan` on a context and runs the recovery path."""

    def __init__(self, context, policy: Optional[FaultPolicy] = None) -> None:
        self.context = context
        self.policy = policy or FaultPolicy()
        #: number of permanent device failures processed
        self.failures = 0
        #: commands requeued and replayed across all failures
        self.replayed_commands = 0
        #: queues moved to a different device by recovery
        self.remapped_queues = 0
        self.armed: List[FaultEvent] = []

    @property
    def engine(self):
        return self.context.platform.engine

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self, plan: FaultPlan) -> "FaultInjector":
        """Schedule every event of ``plan`` on the engine's virtual clock.

        Events whose timestamp already passed (e.g. cold device profiling
        advanced the clock) fire at the current time instead.
        """
        engine = self.engine
        for ev in plan.events:
            when = max(ev.time, engine.now)
            engine.schedule_at(when, lambda ev=ev: self._fire(ev))
            self.armed.append(ev)
        return self

    def _fire(self, ev: FaultEvent) -> None:
        if ev.kind is FaultKind.DEVICE_FAIL:
            self._device_fail(ev)
        elif ev.kind is FaultKind.DEVICE_SLOWDOWN:
            self._slowdown(ev)
        elif ev.kind is FaultKind.LINK_OUTAGE:
            self._link_outage(ev)
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unknown fault kind {ev.kind!r}")

    # ------------------------------------------------------------------
    # Transient faults
    # ------------------------------------------------------------------
    def _slowdown(self, ev: FaultEvent) -> None:
        platform = self.context.platform
        if not platform.is_available(ev.target):
            return
        device = platform.node.device(ev.target)
        engine = self.engine
        start = engine.now
        device.slowdown = ev.factor
        self._notify_slowdown(ev.target, "on_device_slowdown")

        def restore() -> None:
            device.slowdown = 1.0
            self._notify_slowdown(ev.target, "on_device_recovery")
            engine.trace.record(
                resource=f"dev:{ev.target}",
                task=f"slowdown:{ev.target}",
                category=FAULT_CATEGORY,
                start=start,
                end=engine.now,
                meta={"kind": "slowdown", "factor": ev.factor},
            )

        engine.schedule_after(ev.duration, restore)

    def _notify_slowdown(self, device: str, hook: str) -> None:
        """Forward a slowdown edge to the scheduler, if it listens.

        Only the predictor's learned state is affected on the scheduler
        side — measured profile caches stay valid (the slowdown is real
        observed time), so non-predicting runs see no behaviour change.
        """
        scheduler = self.context.scheduler
        fn = getattr(scheduler, hook, None)
        if fn is not None:
            fn(device)

    def _link_outage(self, ev: FaultEvent) -> None:
        links = self.context.platform.node.links
        if ev.target not in links:
            return
        # A blocking task on the link's FIFO: in-flight DMA drains first,
        # everything behind waits out the outage.
        self.engine.task(
            name=f"outage:{links[ev.target].name}",
            duration=ev.duration,
            resource=links[ev.target],
            category=FAULT_CATEGORY,
            meta={"kind": "link-outage", "device": ev.target},
        )

    # ------------------------------------------------------------------
    # Permanent failure + recovery
    # ------------------------------------------------------------------
    def _device_fail(self, ev: FaultEvent) -> None:
        context, engine = self.context, self.engine
        platform = context.platform
        dev = ev.target
        if not platform.is_available(dev):
            return
        now = engine.now
        platform.mark_device_failed(dev)
        self.failures += 1
        engine.trace.record(
            resource=f"dev:{dev}",
            task=f"fail:{dev}",
            category=FAULT_CATEGORY,
            start=now,
            end=now,
            meta={"kind": "device-failure"},
        )

        # Copies that lived only on the dead device fall back to the host
        # shadow (the functional contents are host-resident by construction).
        for buf in list(context.buffers):
            buf.drop_device(dev)

        # Invalidate kernel/epoch profile-cache entries measured on the dead
        # device and forget any static queue→device assignments to it.
        scheduler = context.scheduler
        if scheduler is not None and hasattr(scheduler, "on_device_failure"):
            scheduler.on_device_failure(dev)

        survivors = list(context.active_device_names)
        if not survivors:
            raise _mapper_error(
                f"device {dev!r} failed and no feasible device remains"
            )

        # Requeue every issued-but-unfinished command that depended on the
        # dead device (capped replay accounting per command).
        affected, replayed = self._requeue(dev, now)
        self.replayed_commands += replayed

        # Snapshot queue→device at *injection time*, before the backoff
        # elapse below can run a nested fault handler: a second failure
        # inside the backoff window triggers a full scheduling pass that
        # already moves this fault's queues, so a later snapshot would
        # under-count remaps and name the wrong origin device.  The guard
        # makes the record idempotent — whichever sync pass completes first
        # (the nested one or ours) does the accounting, exactly once.
        before = {q.name: q.device for q in affected}
        recorded = [False]

        def record() -> None:
            if recorded[0]:
                return
            recorded[0] = True
            self._record_remaps(affected, before, dev)

        if context.scheduler is not None:
            context.after_sync(record)

        # Sweep orphaned simulated work (e.g. profiling launches) off the
        # dead execution resource; their waiters are released so a blocked
        # profiling join returns with whatever the survivors measured.
        try:
            resource = platform.node.device(dev).resource
        except Exception:  # cluster topologies may alias device lookup
            resource = None
        if resource is not None:
            for task in list(resource.pending_tasks()):
                engine.abort(task, release_dependents=True)

        if replayed:
            backoff = self.policy.backoff_seconds(self.failures)
            if backoff > 0.0:
                engine.elapse(
                    backoff, category=RECOVERY_CATEGORY, name=f"backoff:{dev}"
                )

        # Re-trigger the scheduler over the degraded pool.  If a scheduling
        # pass is already in flight (failure during profiling) the context
        # folds this request into it; the remap accounting runs after the
        # pass completes either way.
        if context.scheduler is not None:
            context._sync_pending()
        else:
            # Scheduler-less context: simple failover to the first survivor.
            for q in affected:
                q.rebind(survivors[0])
            context.issue_pool([q for q in affected if q.pending])
            record()

    def _requeue(self, dev: str, now: float) -> Tuple[list, int]:
        """Requeue unfinished commands touching ``dev``; returns
        (affected queues, replayed command count)."""
        engine = self.engine
        affected = []
        replayed = 0
        for q in self.context.queues:
            if q.released:
                continue
            cmds = q.requeue_unfinished(dev)
            if cmds or q.device == dev:
                affected.append(q)
            for cmd in cmds:
                if cmd.attempts > self.policy.max_attempts:
                    raise _mapper_error(
                        f"command {cmd.kind.value!r} on queue {q.name!r} "
                        f"exceeded {self.policy.max_attempts} replay attempts"
                    )
                engine.trace.record(
                    resource="host",
                    task=f"replay:{cmd.kind.value}@{q.name}",
                    category=RECOVERY_CATEGORY,
                    start=now,
                    end=now,
                    meta={
                        "op": "replay",
                        "queue": q.name,
                        "attempt": cmd.attempts,
                        "device": dev,
                    },
                )
            replayed += len(cmds)
        return affected, replayed

    def _record_remaps(self, affected, before, dev: str) -> None:
        engine = self.engine
        now = engine.now
        repaired = bool(
            getattr(
                getattr(self.context.scheduler, "last_mapping", None),
                "repaired",
                False,
            )
        )
        for q in affected:
            old = before.get(q.name)
            if old is None or q.device == old:
                continue
            self.remapped_queues += 1
            engine.trace.record(
                resource="host",
                task=f"remap:{q.name}",
                category=RECOVERY_CATEGORY,
                start=now,
                end=now,
                meta={
                    "op": "remap",
                    "queue": q.name,
                    "from": old,
                    "to": q.device,
                    "repaired": repaired,
                },
            )
