"""Opt-in runtime sanitizer mode.

When enabled — ``MULTICL_SANITIZE=1`` in the environment,
``MultiCL(sanitize=True)``, or the ``"multicl.sanitize"`` context property —
the context validates the ready-queue pool at **every scheduler trigger**
(sync epoch, flush, blocking wait, per-kernel trigger) before any command
issues:

* :attr:`~repro.analysis.findings.Severity.ERROR` findings (wait-list
  cycles, data races, orphaned events) raise
  :class:`~repro.analysis.findings.SanitizerError` carrying the structured
  findings;
* :attr:`~repro.analysis.findings.Severity.WARNING` findings (stale reads)
  emit :class:`~repro.analysis.findings.SanitizerWarning`.

The checks are pure graph analysis over the deferred commands, so a clean
run's schedule and simulated timings are identical with the sanitizer on.
"""

from __future__ import annotations

import os
import warnings
from typing import List, Sequence, TYPE_CHECKING

from repro.analysis.findings import Finding, SanitizerError, SanitizerWarning, Severity
from repro.analysis.validator import validate_pool

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.queue import CommandQueue

__all__ = [
    "SANITIZE_ENV",
    "SANITIZE_PROPERTY_KEY",
    "sanitize_enabled_from_env",
    "check_pool",
]

#: Environment variable turning the runtime sanitizer on for a process.
SANITIZE_ENV = "MULTICL_SANITIZE"

#: Context-property key overriding the environment (bool value).
SANITIZE_PROPERTY_KEY = "multicl.sanitize"

_FALSY = ("", "0", "false", "no", "off")


def sanitize_enabled_from_env() -> bool:
    """Whether ``MULTICL_SANITIZE`` requests runtime sanitizing."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() not in _FALSY


def check_pool(pool: Sequence["CommandQueue"]) -> List[Finding]:
    """Validate ``pool``; raise on errors, warn on warnings.

    Returns the findings (possibly empty) when nothing reached
    :attr:`Severity.ERROR`.
    """
    findings = validate_pool(pool)
    errors = [f for f in findings if f.severity >= Severity.ERROR]
    for f in findings:
        if f.severity < Severity.ERROR:
            warnings.warn(str(f), SanitizerWarning, stacklevel=3)
    if errors:
        summary = "; ".join(str(f) for f in errors)
        raise SanitizerError(
            f"sanitizer found {len(errors)} error(s) in the scheduled pool: "
            f"{summary}",
            findings=tuple(findings),
        )
    return findings
