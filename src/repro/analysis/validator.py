"""Static validation of a scheduled ready-queue pool.

:func:`validate_pool` builds the cross-queue command DAG
(:mod:`repro.analysis.graph`) for the deferred commands of a pool and
reports structured :class:`~repro.analysis.findings.Finding` records for:

* **wait-list cycles** — the issue-blocking graph has a cycle, so
  :meth:`~repro.ocl.context.Context.issue_pool` is guaranteed to
  deadlock; the finding carries the actual cycle path
  (queue → event → queue);
* **orphaned events** — a wait list references an event whose command is
  neither issued nor pending on any pooled queue, so the waiter can never
  become ready;
* **buffer data races** — two commands touch the same
  :class:`~repro.ocl.memory.Buffer`, at least one writes, and no
  happens-before path (program order, barrier, or event chain) orders
  them;
* **stale reads** — a read ordered *before* the write that produces its
  data, a read of a never-written buffer, or a read of a buffer whose
  only device copy was lost to a fault (host-shadow fallback).

The checks are pure: nothing is issued, no simulated time passes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.analysis.findings import Finding, FindingKind, Severity
from repro.analysis.graph import CommandGraph, CommandNode, build_command_graph

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.queue import CommandQueue

__all__ = ["validate_pool", "describe_deadlock"]


def validate_pool(pool: Sequence["CommandQueue"]) -> List[Finding]:
    """Statically validate the deferred commands of ``pool``.

    Returns all findings, most severe classes first (cycles, orphans,
    races, stale reads).  An empty list means the pool is clean.
    """
    graph = build_command_graph(pool)
    findings: List[Finding] = []
    findings.extend(_cycle_findings(graph))
    findings.extend(_orphan_findings(graph))
    findings.extend(_race_findings(graph))
    findings.extend(_stale_read_findings(graph))
    return findings


# ---------------------------------------------------------------------------
# Wait-list cycles
# ---------------------------------------------------------------------------
def _cycle_description(cycle: Sequence[CommandNode]) -> str:
    hops = []
    for i, node in enumerate(cycle):
        nxt = cycle[(i + 1) % len(cycle)]
        ev = next(
            (e for e in node.command.wait_events if e.command is nxt.command),
            None,
        )
        link = f"--ev#{ev.id}-->" if ev is not None else "--queue-order-->"
        hops.append(f"{node.label} {link} {nxt.label}")
    return "; ".join(hops)


def _cycle_findings(graph: CommandGraph) -> List[Finding]:
    cycle = graph.find_issue_cycle()
    if cycle is None:
        return []
    labels = tuple(n.label for n in cycle) + (cycle[0].label,)
    return [
        Finding(
            kind=FindingKind.WAITLIST_CYCLE,
            severity=Severity.ERROR,
            message=f"event wait-list cycle: {_cycle_description(cycle)}",
            subjects=tuple(n.label for n in cycle),
            cycle=labels,
        )
    ]


# ---------------------------------------------------------------------------
# Orphaned events
# ---------------------------------------------------------------------------
def _orphan_findings(graph: CommandGraph) -> List[Finding]:
    findings = []
    for node, event in graph.orphans:
        findings.append(
            Finding(
                kind=FindingKind.ORPHAN_EVENT,
                severity=Severity.ERROR,
                message=(
                    f"{node.label} waits on ev#{event.id} "
                    f"({event.command.kind.value} on queue "
                    f"{event.queue.name!r}), which is neither issued nor "
                    f"pending on any pooled queue and can never issue"
                ),
                subjects=(node.label,),
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Data races
# ---------------------------------------------------------------------------
def _race_findings(graph: CommandGraph) -> List[Finding]:
    # buffer id -> [(node, writes?)] in node order
    touches: Dict[int, List[Tuple[CommandNode, bool]]] = {}
    buffer_names: Dict[int, str] = {}
    for node in graph.nodes:
        write_ids = {id(b) for b in node.writes}
        seen = set()
        for buf in tuple(node.writes) + tuple(node.reads):
            if id(buf) in seen:
                continue
            seen.add(id(buf))
            buffer_names[id(buf)] = buf.name
            touches.setdefault(id(buf), []).append((node, id(buf) in write_ids))
    findings = []
    for buf_id, accesses in touches.items():
        for i, (a, a_writes) in enumerate(accesses):
            for b, b_writes in accesses[i + 1:]:
                if not (a_writes or b_writes):
                    continue  # two reads never conflict
                if graph.ordered(a.index, b.index):
                    continue
                mode = "write/write" if a_writes and b_writes else "read/write"
                findings.append(
                    Finding(
                        kind=FindingKind.DATA_RACE,
                        severity=Severity.ERROR,
                        message=(
                            f"{mode} race on buffer "
                            f"{buffer_names[buf_id]!r}: {a.label} and "
                            f"{b.label} are not ordered by any event, "
                            f"program-order, or barrier path"
                        ),
                        subjects=(a.label, b.label),
                        buffer=buffer_names[buf_id],
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Stale reads
# ---------------------------------------------------------------------------
def _stale_read_findings(graph: CommandGraph) -> List[Finding]:
    findings = []
    for node in graph.nodes:
        write_ids = {id(b) for b in node.writes}
        for buf in node.reads:
            if id(buf) in write_ids:
                continue  # the command (re)produces the data itself
            writers = [
                w
                for w in graph.nodes
                if w.index != node.index and any(id(b) == id(buf) for b in w.writes)
            ]
            if any(graph.happens_before(w.index, node.index) for w in writers):
                continue  # some producing write is ordered before the read
            if getattr(buf, "host_shadow_stale", False):
                findings.append(
                    Finding(
                        kind=FindingKind.STALE_READ,
                        severity=Severity.WARNING,
                        message=(
                            f"{node.label} reads buffer {buf.name!r} whose "
                            f"only device copy was lost to a device failure; "
                            f"the host-shadow fallback may be stale"
                        ),
                        subjects=(node.label,),
                        buffer=buf.name,
                    )
                )
                continue
            if buf.initialized:
                continue
            later = [w for w in writers if graph.happens_before(node.index, w.index)]
            if later:
                findings.append(
                    Finding(
                        kind=FindingKind.STALE_READ,
                        severity=Severity.WARNING,
                        message=(
                            f"{node.label} reads buffer {buf.name!r} but is "
                            f"ordered before the write that produces it "
                            f"({later[0].label})"
                        ),
                        subjects=(node.label, later[0].label),
                        buffer=buf.name,
                    )
                )
            elif not writers:
                findings.append(
                    Finding(
                        kind=FindingKind.STALE_READ,
                        severity=Severity.WARNING,
                        message=(
                            f"{node.label} reads buffer {buf.name!r}, which "
                            f"is uninitialized and has no producing write "
                            f"in the pool"
                        ),
                        subjects=(node.label,),
                        buffer=buf.name,
                    )
                )
            # Unordered writers exist: that is a data race, reported above.
    return findings


# ---------------------------------------------------------------------------
# Issue-time deadlock diagnostics
# ---------------------------------------------------------------------------
def describe_deadlock(pool: Sequence["CommandQueue"]) -> Optional[str]:
    """Explain why issuing ``pool`` stalled, or None if no cause is found.

    Used by :meth:`~repro.ocl.context.Context.issue_pool` to turn the
    opaque "pending counts" deadlock error into the actual dependency
    cycle (or orphaned-event) diagnosis.
    """
    graph = build_command_graph(pool)
    cycle = graph.find_issue_cycle()
    if cycle is not None:
        return f"event wait-list cycle: {_cycle_description(cycle)}"
    if graph.orphans:
        node, event = graph.orphans[0]
        return (
            f"{node.label} waits on ev#{event.id} "
            f"({event.command.kind.value} on queue {event.queue.name!r}), "
            f"which is neither issued nor pending in the pool"
        )
    return None
