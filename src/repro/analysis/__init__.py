"""Command-graph validation and runtime sanitizing for scheduled pools.

The runtime may re-map command queues to devices behind the user's back,
which makes cross-queue event dependencies, buffer residency, and
migration ordering easy to silently get wrong.  This package is the
correctness tooling for that risk, exposed three ways:

* :func:`validate_pool` — pure static analysis of a ready-queue pool's
  command DAG: wait-list cycles (reported as the actual cycle path),
  cross-queue buffer data races, stale reads, orphaned events;
* the **runtime sanitizer** (``MULTICL_SANITIZE=1`` or
  ``MultiCL(sanitize=True)``) — runs :func:`check_pool` at every
  scheduler trigger and raises :class:`SanitizerError` / emits
  :class:`SanitizerWarning` per severity;
* :func:`lint_trace` — post-hoc lint over a recorded
  :class:`~repro.sim.trace.Trace` (exclusive-resource overlaps,
  negative-time intervals, work charged to failed devices).
"""

from repro.analysis.findings import (
    Finding,
    FindingKind,
    SanitizerError,
    SanitizerWarning,
    Severity,
)
from repro.analysis.graph import CommandGraph, CommandNode, build_command_graph
from repro.analysis.sanitizer import (
    SANITIZE_ENV,
    SANITIZE_PROPERTY_KEY,
    check_pool,
    sanitize_enabled_from_env,
)
from repro.analysis.trace_lint import lint_trace
from repro.analysis.validator import describe_deadlock, validate_pool

__all__ = [
    "Finding",
    "FindingKind",
    "Severity",
    "SanitizerError",
    "SanitizerWarning",
    "CommandGraph",
    "CommandNode",
    "build_command_graph",
    "validate_pool",
    "describe_deadlock",
    "check_pool",
    "lint_trace",
    "SANITIZE_ENV",
    "SANITIZE_PROPERTY_KEY",
    "sanitize_enabled_from_env",
]
