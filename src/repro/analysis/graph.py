"""Cross-queue command DAG for a scheduled ready-queue pool.

The runtime may re-map command queues to devices behind the user's back, so
the only ordering that survives scheduling is the one expressed through the
command graph itself: intra-queue program order (in-order queues), barriers
(out-of-order queues), and explicit event wait lists.  This module builds
that graph for a pool of queues holding deferred commands, in two views:

* **issue-blocking edges** (:attr:`CommandNode.blocks_on`) — what must
  issue before a command can issue.  Mirrors
  :meth:`~repro.ocl.context.Context.issue_pool` exactly: every command
  blocks on its queue predecessor (head-of-line issue, even on
  out-of-order queues) and on every still-deferred wait-list event.  A
  cycle here is a guaranteed issue deadlock.
* **happens-before edges** (:attr:`CommandNode.hb_succ`) — what is
  guaranteed to *execute* before what.  In-order queues chain program
  order; out-of-order queues order only around barriers; wait lists order
  producer before waiter.  Two commands touching the same buffer with no
  happens-before path between them race.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.ocl.enums import CommandKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.event import Event
    from repro.ocl.memory import Buffer
    from repro.ocl.queue import Command, CommandQueue

__all__ = ["CommandNode", "CommandGraph", "build_command_graph"]


@dataclass
class CommandNode:
    """One deferred command in the pool graph."""

    index: int
    queue: "CommandQueue"
    position: int  # position within queue.pending
    command: "Command"
    label: str
    reads: Tuple["Buffer", ...]
    writes: Tuple["Buffer", ...]
    #: node indexes this command must wait for before it can *issue*
    blocks_on: List[int] = field(default_factory=list)
    #: node indexes guaranteed to execute *after* this command
    hb_succ: List[int] = field(default_factory=list)


@dataclass
class CommandGraph:
    """The pool DAG plus everything the validator needs alongside it."""

    nodes: List[CommandNode]
    #: (waiting node, unissuable event) pairs found while resolving wait
    #: lists: the event's command is neither issued nor pending on any
    #: pooled queue, so the waiter can never become ready.
    orphans: List[Tuple[CommandNode, "Event"]]

    # -- reachability over happens-before edges -------------------------
    def happens_before(self, a: int, b: int) -> bool:
        """True if node ``a`` is ordered (transitively) before node ``b``."""
        return bool(self._reach_masks()[a] & (1 << b))

    def ordered(self, a: int, b: int) -> bool:
        """True if a happens-before path runs either way between the two."""
        masks = self._reach_masks()
        return bool(masks[a] & (1 << b)) or bool(masks[b] & (1 << a))

    def _reach_masks(self) -> List[int]:
        """Per-node bitmask of transitively reachable nodes (hb edges)."""
        cached = getattr(self, "_reach_cache", None)
        if cached is not None:
            return cached
        n = len(self.nodes)
        masks = [0] * n
        for start in range(n):
            seen = 1 << start
            stack = [start]
            while stack:
                cur = stack.pop()
                # Reuse already-computed masks (cur < start is complete).
                done = masks[cur]
                if cur != start and done:
                    seen |= done
                    continue
                for succ in self.nodes[cur].hb_succ:
                    bit = 1 << succ
                    if not seen & bit:
                        seen |= bit
                        stack.append(succ)
            masks[start] = seen & ~(1 << start)
        self._reach_cache = masks
        return masks

    # -- deadlock detection over issue-blocking edges --------------------
    def find_issue_cycle(self) -> Optional[List[CommandNode]]:
        """First cycle in the issue-blocking graph, or None.

        Returns the nodes along the cycle in wait order (each node blocks
        on the next; the last blocks on the first).
        """
        WHITE, GREY, BLACK = 0, 1, 2
        color = [WHITE] * len(self.nodes)
        for root in range(len(self.nodes)):
            if color[root] != WHITE:
                continue
            # Iterative DFS keeping the grey path explicit.
            stack: List[Tuple[int, int]] = [(root, 0)]
            path: List[int] = []
            while stack:
                node, edge = stack[-1]
                if edge == 0:
                    color[node] = GREY
                    path.append(node)
                deps = self.nodes[node].blocks_on
                if edge < len(deps):
                    stack[-1] = (node, edge + 1)
                    dep = deps[edge]
                    if color[dep] == GREY:
                        # path[i] blocks on path[i+1]; the back edge
                        # node -> dep closes the loop.
                        cycle = path[path.index(dep):]
                        return [self.nodes[i] for i in cycle]
                    if color[dep] == WHITE:
                        stack.append((dep, 0))
                else:
                    stack.pop()
                    path.pop()
                    color[node] = BLACK
        return None


def _node_label(queue: "CommandQueue", position: int, command: "Command") -> str:
    return f"{queue.name}[{position}]:{command.kind.value}"


def build_command_graph(pool: Sequence["CommandQueue"]) -> CommandGraph:
    """Build the command DAG over every deferred command of ``pool``."""
    nodes: List[CommandNode] = []
    by_command: Dict[int, CommandNode] = {}
    for q in pool:
        for pos, cmd in enumerate(q.pending):
            reads, writes = cmd.access_sets()
            node = CommandNode(
                index=len(nodes),
                queue=q,
                position=pos,
                command=cmd,
                label=_node_label(q, pos, cmd),
                reads=reads,
                writes=writes,
            )
            nodes.append(node)
            by_command[id(cmd)] = node

    graph = CommandGraph(nodes=nodes, orphans=[])

    for q in pool:
        prev: Optional[CommandNode] = None
        last_barrier: Optional[CommandNode] = None
        queue_nodes: List[CommandNode] = []
        for pos, cmd in enumerate(q.pending):
            node = by_command[id(cmd)]
            # Issue order is head-of-line on every queue (issue_pool only
            # ever considers pending[0]).
            if prev is not None:
                node.blocks_on.append(prev.index)
            # Happens-before: program order (in-order) or barriers (OOO).
            if not q.out_of_order:
                if prev is not None:
                    prev.hb_succ.append(node.index)
            elif cmd.kind is CommandKind.BARRIER:
                for earlier in queue_nodes:
                    if node.index not in earlier.hb_succ:
                        earlier.hb_succ.append(node.index)
                last_barrier = node
            elif last_barrier is not None:
                last_barrier.hb_succ.append(node.index)
            # Wait lists: producer happens-before waiter; a still-deferred
            # producer also blocks issue.
            for event in cmd.wait_events:
                if not event.deferred:
                    continue  # already issued: ordered before the whole pool
                producer = by_command.get(id(event.command))
                if producer is None:
                    graph.orphans.append((node, event))
                    continue
                if producer.index != node.index:
                    node.blocks_on.append(producer.index)
                    producer.hb_succ.append(node.index)
            prev = node
            queue_nodes.append(node)
    return graph
