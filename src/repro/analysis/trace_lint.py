"""Post-hoc lint over recorded :class:`~repro.sim.trace.Trace` objects.

The third exposure of the sanitizer: after (or during) a run, check the
recorded timeline itself for physically impossible or suspicious shapes —
the kind of accounting corruption that silently skews every downstream
figure:

* **negative-time intervals** — an interval ends before it starts;
* **exclusive-resource overlap** — two intervals overlap on a
  single-server FIFO resource (``dev:*`` / ``link:*``).  Fault and
  recovery intervals are exempt: slowdown windows deliberately span the
  kernels they throttle;
* **dead-device work** — work charged to a device after its permanent
  failure (a ``fault`` interval with ``kind == "device-failure"``).

Findings reuse the structured :class:`~repro.analysis.findings.Finding`
record, so trace lint composes with the pool validator in tooling.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.findings import Finding, FindingKind, Severity
from repro.sim.trace import FAULT_CATEGORY, RECOVERY_CATEGORY, Trace

__all__ = ["lint_trace"]

#: Trace categories allowed to overlap real work on the same resource.
_OVERLAY_CATEGORIES = frozenset((FAULT_CATEGORY, RECOVERY_CATEGORY))

#: Resource-name prefixes of single-server (exclusive) FIFO resources.
_EXCLUSIVE_PREFIXES = ("dev:", "link:")


def lint_trace(trace: Trace) -> List[Finding]:
    """Lint ``trace``; returns findings (empty = clean)."""
    findings: List[Finding] = []
    per_resource: Dict[str, List] = {}
    failed_at: Dict[str, float] = {}

    for iv in trace:
        if iv.end < iv.start:
            findings.append(
                Finding(
                    kind=FindingKind.TRACE_NEGATIVE_TIME,
                    severity=Severity.ERROR,
                    message=(
                        f"interval {iv.task!r} on {iv.resource} ends before "
                        f"it starts ({iv.end} < {iv.start})"
                    ),
                    subjects=(iv.task,),
                )
            )
        if iv.category == FAULT_CATEGORY and iv.meta.get("kind") == "device-failure":
            failed_at[iv.resource] = min(
                failed_at.get(iv.resource, math.inf), iv.start
            )
        if (
            iv.resource.startswith(_EXCLUSIVE_PREFIXES)
            and iv.category not in _OVERLAY_CATEGORIES
        ):
            per_resource.setdefault(iv.resource, []).append(iv)

    for resource, intervals in per_resource.items():
        intervals.sort(key=lambda iv: (iv.start, iv.end))
        prev = None
        for iv in intervals:
            if prev is not None and iv.start < prev.end - 1e-12:
                findings.append(
                    Finding(
                        kind=FindingKind.TRACE_OVERLAP,
                        severity=Severity.ERROR,
                        message=(
                            f"intervals {prev.task!r} and {iv.task!r} overlap "
                            f"on exclusive resource {resource} "
                            f"([{prev.start}, {prev.end}) vs "
                            f"[{iv.start}, {iv.end}))"
                        ),
                        subjects=(prev.task, iv.task),
                    )
                )
            if prev is None or iv.end > prev.end:
                prev = iv
        dead = failed_at.get(resource)
        if dead is not None:
            for iv in intervals:
                if iv.meta.get("aborted"):
                    continue  # partial execution cut off by the failure
                if iv.start >= dead - 1e-12:
                    findings.append(
                        Finding(
                            kind=FindingKind.TRACE_DEAD_DEVICE_WORK,
                            severity=Severity.ERROR,
                            message=(
                                f"interval {iv.task!r} starts at {iv.start} "
                                f"on {resource}, which permanently failed "
                                f"at {dead}"
                            ),
                            subjects=(iv.task,),
                        )
                    )
    return findings
