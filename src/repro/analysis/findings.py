"""Structured findings reported by the command-graph sanitizer.

Every check in :mod:`repro.analysis` — the static pool validator, the
opt-in runtime sanitizer, and the post-hoc trace lint — reports
:class:`Finding` records rather than strings, so callers can filter by
:class:`FindingKind`, gate on :class:`Severity`, and render the structured
payload (the cycle path, the racing command labels, the buffer name)
however they need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.ocl.errors import InvalidOperation

__all__ = [
    "Severity",
    "FindingKind",
    "Finding",
    "SanitizerError",
    "SanitizerWarning",
]


class Severity(enum.IntEnum):
    """How bad a finding is; orderable (``ERROR`` > ``WARNING`` > ``INFO``)."""

    INFO = 0
    WARNING = 1
    ERROR = 2


class FindingKind(enum.Enum):
    """What the sanitizer detected."""

    #: Event wait-list cycle among deferred commands (guaranteed issue
    #: deadlock); the finding carries the actual cycle path.
    WAITLIST_CYCLE = "waitlist-cycle"
    #: Two commands touch the same buffer, at least one writes, and no
    #: event-ordering path runs between them.
    DATA_RACE = "data-race"
    #: A read ordered before the write that produces its data, a read of a
    #: never-written buffer, or a read of data invalidated by a device
    #: failure (host-shadow fallback).
    STALE_READ = "stale-read"
    #: A wait-list references an event whose command will never issue
    #: (not pending on any pooled queue, not already issued).
    ORPHAN_EVENT = "orphan-event"
    #: Trace lint: two non-fault intervals overlap on one exclusive
    #: (single-server FIFO) resource.
    TRACE_OVERLAP = "trace-overlap"
    #: Trace lint: an interval ends before it starts.
    TRACE_NEGATIVE_TIME = "trace-negative-time"
    #: Trace lint: work charged to a device after its permanent failure.
    TRACE_DEAD_DEVICE_WORK = "trace-dead-device-work"


@dataclass(frozen=True)
class Finding:
    """One sanitizer diagnosis.

    ``subjects`` names the commands/intervals involved (stable labels such
    as ``"q1[0]:ndrange_kernel"`` or trace task names); ``cycle`` is the
    ordered wait path for :attr:`FindingKind.WAITLIST_CYCLE` (first label
    repeated at the end to close the loop); ``buffer`` names the contested
    :class:`~repro.ocl.memory.Buffer` where one is involved.
    """

    kind: FindingKind
    severity: Severity
    message: str
    subjects: Tuple[str, ...] = field(default=())
    buffer: Optional[str] = None
    cycle: Optional[Tuple[str, ...]] = None

    def __str__(self) -> str:
        return f"[{self.severity.name}] {self.kind.value}: {self.message}"


class SanitizerError(InvalidOperation):
    """Raised by the runtime sanitizer on :attr:`Severity.ERROR` findings.

    Carries the full findings list so callers can recover the structured
    diagnoses from the exception.
    """

    def __init__(self, message: str, findings: Tuple[Finding, ...] = ()) -> None:
        super().__init__(message)
        self.findings = tuple(findings)


class SanitizerWarning(UserWarning):
    """Issued by the runtime sanitizer for sub-error findings."""
