"""Command queues with deferred issue and implicit data migration.

A queue created with ``SCHED_OFF`` behaves like stock OpenCL: it is bound to
the device chosen at creation time and commands issue immediately.  A queue
created with ``SCHED_AUTO_*`` flags participates in automatic scheduling:
while scheduling is *active*, enqueued commands are held on the queue (the
MultiCL ready-queue pool) until a synchronization trigger lets the scheduler
profile the batch, pick a device, and issue everything.

For ``SCHED_EXPLICIT_REGION`` queues, scheduling is active only between
``clSetCommandQueueSchedProperty(SCHED_AUTO_*)`` and ``(SCHED_OFF)`` calls;
outside the region the queue runs on its current binding — which is how the
paper's NPB drivers restrict profiling to the warm-up iterations.

Issuing a kernel inserts implicit migrations for arguments not resident on
the target device (H2D from host, or D2H+H2D staged through the host when
the valid copy lives on another device), charges the kernel's modelled
execution time on the device's FIFO resource, runs the functional payload,
and updates residency.

Queues are in-order by default: every command implicitly depends on its
predecessor.  With ``out_of_order=True`` (the stock OpenCL
``CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE``), commands respect only their
explicit wait lists and :meth:`CommandQueue.enqueue_barrier` points — so a
transfer and a kernel from the same queue can overlap across the link and
device resources (classic double buffering).  Functional payloads still run
at issue time; as in real OpenCL, racing commands without events on shared
buffers are undefined.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.ocl.enums import CommandKind, SchedFlag
from repro.ocl.errors import (
    DeviceNotAvailable,
    InvalidCommandQueue,
    InvalidOperation,
    InvalidValue,
    MemAllocationFailure,
)
from repro.ocl.event import Event
from repro.ocl.kernel import Kernel, WorkGroupConfig
from repro.ocl.memory import HOST, Buffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.context import Context
    from repro.sim.engine import SimTask

__all__ = ["Command", "CommandQueue"]

_queue_ids = itertools.count(0)

#: Pre-extracted flag masks for the enqueue fast path (see auto_active).
_AUTO_MASK = (SchedFlag.SCHED_AUTO_STATIC | SchedFlag.SCHED_AUTO_DYNAMIC).value
_EXPLICIT_REGION_MASK = SchedFlag.SCHED_EXPLICIT_REGION.value

#: Flag values already warned about as contradictory (warn once per value,
#: mirroring MULTICL_MAPPER_EXACT_MAX_QUEUES's warn-once pattern — queue
#: creation sits on workload hot paths).
_warned_flag_values: set = set()


def _check_flag_hygiene(flags: SchedFlag) -> None:
    """Warn once per flag value on contradictory SCHED_* combinations.

    ``SCHED_SPLIT`` and ``SCHED_OVERLAP`` are capabilities of the automatic
    scheduler: without ``SCHED_AUTO_*`` (which also covers the literal
    ``SCHED_OFF | SCHED_SPLIT``, since ``SCHED_OFF`` is the empty set) the
    flag can never take effect, which is almost certainly a bug in the
    caller's flag arithmetic.
    """
    if flags.is_auto or flags.value in _warned_flag_values:
        return
    dead = [
        name
        for name, bit in (
            ("SCHED_SPLIT", SchedFlag.SCHED_SPLIT),
            ("SCHED_OVERLAP", SchedFlag.SCHED_OVERLAP),
        )
        if flags & bit
    ]
    if not dead:
        return
    _warned_flag_values.add(flags.value)
    warnings.warn(
        f"contradictory scheduling flags {flags!r}: {'/'.join(dead)} "
        f"requires SCHED_AUTO_STATIC or SCHED_AUTO_DYNAMIC and will never "
        f"take effect on a manually scheduled queue",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass
class Command:
    """One enqueued operation, possibly deferred."""

    kind: CommandKind
    wait_events: List[Event] = field(default_factory=list)
    # write/read/copy payloads
    buffer: Optional[Buffer] = None
    host_array: Optional[Any] = None
    nbytes: int = 0
    src_buffer: Optional[Buffer] = None
    # kernel payload
    kernel: Optional[Kernel] = None
    launch: Optional[WorkGroupConfig] = None
    args_snapshot: Dict[int, Any] = field(default_factory=dict)
    # filled in by the queue
    event: Optional[Event] = None
    issued: bool = False
    #: failed issue attempts (fault injection); replays skip the functional
    #: payload so non-idempotent kernels run exactly once
    attempts: int = 0
    #: task of the aborted incarnation awaiting adoption by the replay
    aborted_task: Optional[Any] = None
    #: multi-device work-splitting plan attached by the scheduler
    #: (:class:`repro.core.split.SplitPlan`); ``None`` = unsplit launch
    split_plan: Optional[Any] = None

    @property
    def is_kernel(self) -> bool:
        return self.kind is CommandKind.NDRANGE_KERNEL

    def deps_ready(self) -> bool:
        """All wait-list events already have simulated tasks bound."""
        return all(e.task is not None for e in self.wait_events)

    def access_sets(self) -> "Tuple[Tuple[Buffer, ...], Tuple[Buffer, ...]]":
        """``(reads, writes)`` buffer tuples for hazard analysis.

        Kernel write sets follow the ``writes=`` source annotation
        (without one, every buffer argument counts as written — the same
        conservative rule :meth:`CommandQueue._written_buffers` applies at
        issue time); kernel arguments are all counted as read, since the
        runtime cannot see whether a written argument is also consumed.
        Markers and barriers touch no buffers.
        """
        if self.kind is CommandKind.NDRANGE_KERNEL:
            assert self.kernel is not None
            bufs = {
                i: v for i, v in self.args_snapshot.items() if isinstance(v, Buffer)
            }
            writes_idx = self.kernel.info.writes
            writes = tuple(
                b for i, b in bufs.items() if not writes_idx or i in writes_idx
            )
            return tuple(bufs.values()), writes
        if self.kind in (CommandKind.WRITE_BUFFER, CommandKind.FILL_BUFFER):
            assert self.buffer is not None
            return (), (self.buffer,)
        if self.kind is CommandKind.READ_BUFFER:
            assert self.buffer is not None
            return (self.buffer,), ()
        if self.kind is CommandKind.COPY_BUFFER:
            assert self.buffer is not None and self.src_buffer is not None
            return (self.src_buffer,), (self.buffer,)
        return (), ()


class CommandQueue:
    """cl_command_queue with the proposed scheduling extensions."""

    def __init__(
        self,
        context: "Context",
        device_name: Optional[str] = None,
        sched_flags: SchedFlag = SchedFlag.SCHED_OFF,
        name: Optional[str] = None,
        out_of_order: bool = False,
    ) -> None:
        self.id = next(_queue_ids)
        self.context = context
        self.name = name or f"queue{self.id}"
        #: Tenant tag propagated into every task meta this queue issues
        #: (``None`` outside multi-tenant service mode — zero overhead).
        #: The dict is shared per queue; task factories merge it into fresh
        #: per-task meta dicts, so no mutable state is aliased.
        self._tenant_meta: Optional[Dict[str, Any]] = (
            {"tenant": context.tenant} if context.tenant is not None else None
        )
        #: CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE: commands respect only
        #: their explicit wait lists (and barriers), so transfers and
        #: kernels from one queue may overlap across resources.
        self.out_of_order = bool(out_of_order)
        if device_name is None:
            device_name = context.device_names[0]
        if device_name not in context.device_names:
            raise InvalidValue(
                f"device {device_name!r} not in context devices "
                f"{context.device_names}"
            )
        if sched_flags.is_auto and context.scheduler is None:
            raise InvalidOperation(
                f"queue {self.name!r} requests automatic scheduling but the "
                f"context has no CL_CONTEXT_SCHEDULER property"
            )
        #: Current device binding (may be rebound by the scheduler).
        self.device = device_name
        self.sched_flags = sched_flags
        _check_flag_hygiene(sched_flags)
        #: Explicit-region state: scheduling active inside start/stop marks.
        self.region_active = False
        #: Deferred commands awaiting a scheduler trigger.
        self.pending: List[Command] = []
        #: Tail of the issued in-order chain (in-order queues).
        self._tail: Optional["SimTask"] = None
        #: Every issued, not-yet-awaited task (finish() drains these).
        self._outstanding: List["SimTask"] = []
        #: Issued commands not yet known complete (fault recovery requeues
        #: from this list when a device fails).
        self._inflight: List[Command] = []
        #: Last barrier task (out-of-order queues order around barriers).
        self._barrier: Optional["SimTask"] = None
        #: Completed synchronization epochs (for trace accounting).
        self.epoch_index = 0
        #: History of device bindings chosen by the scheduler.
        self.binding_history: List[str] = [device_name]
        self.released = False
        context._register_queue(self)
        if context.scheduler is not None:
            context.scheduler.on_queue_created(self)

    # ------------------------------------------------------------------
    # Scheduling state
    # ------------------------------------------------------------------
    @property
    def auto_active(self) -> bool:
        """Whether commands enqueued *now* should be deferred."""
        # Raw int bit tests: this runs on every enqueue, and the Flag-enum
        # operator protocol (__and__ constructing enum members) is an order
        # of magnitude slower than the mask checks.
        flags = self.sched_flags.value
        if not flags & _AUTO_MASK:
            return False
        if flags & _EXPLICIT_REGION_MASK:
            return self.region_active
        return True

    def set_sched_property(self, flags: SchedFlag) -> None:
        """The proposed ``clSetCommandQueueSchedProperty`` (Section IV.B).

        Passing flags containing ``SCHED_AUTO_*`` starts a scheduling
        region (and merges any additional hint flags); passing ``SCHED_OFF``
        (an empty flag set) stops it, freezing the current device binding.
        """
        self._check_alive()
        scheduler = self.context.scheduler
        if flags.is_auto:
            if scheduler is None:
                raise InvalidOperation(
                    "cannot start a scheduling region without a context scheduler"
                )
            self.sched_flags |= flags
            _check_flag_hygiene(self.sched_flags)
            if not self.region_active:
                self.region_active = True
                scheduler.on_region_start(self)
        else:
            if self.region_active:
                self.region_active = False
                if scheduler is not None:
                    scheduler.on_region_stop(self)
                # Stopping a region is a scheduling boundary: anything still
                # deferred is scheduled now.
                if self.pending:
                    self.context._sync_pending(trigger_queue=self)

    def rebind(self, device_name: str) -> None:
        """Scheduler-driven device rebinding."""
        if device_name not in self.context.device_names:
            raise InvalidValue(f"unknown device {device_name!r}")
        if device_name != self.device:
            self.device = device_name
        self.binding_history.append(device_name)

    # ------------------------------------------------------------------
    # Enqueue API
    # ------------------------------------------------------------------
    def enqueue_write_buffer(
        self,
        buffer: Buffer,
        host_array: Optional[Any] = None,
        nbytes: Optional[int] = None,
        wait_events: Sequence[Event] = (),
    ) -> Event:
        """clEnqueueWriteBuffer (host → queue's device)."""
        self._check_alive()
        self._check_buffer(buffer)
        cmd = Command(
            kind=CommandKind.WRITE_BUFFER,
            wait_events=list(wait_events),
            buffer=buffer,
            host_array=host_array,
            nbytes=int(nbytes if nbytes is not None else buffer.nbytes),
        )
        return self._enqueue(cmd)

    def enqueue_read_buffer(
        self,
        buffer: Buffer,
        host_array: Optional[Any] = None,
        nbytes: Optional[int] = None,
        wait_events: Sequence[Event] = (),
    ) -> Event:
        """clEnqueueReadBuffer (queue's device → host)."""
        self._check_alive()
        self._check_buffer(buffer)
        cmd = Command(
            kind=CommandKind.READ_BUFFER,
            wait_events=list(wait_events),
            buffer=buffer,
            host_array=host_array,
            nbytes=int(nbytes if nbytes is not None else buffer.nbytes),
        )
        return self._enqueue(cmd)

    def enqueue_fill_buffer(
        self,
        buffer: Buffer,
        value: float = 0.0,
        nbytes: Optional[int] = None,
        wait_events: Sequence[Event] = (),
    ) -> Event:
        """clEnqueueFillBuffer: device-side constant fill (no host traffic)."""
        self._check_alive()
        self._check_buffer(buffer)
        cmd = Command(
            kind=CommandKind.FILL_BUFFER,
            wait_events=list(wait_events),
            buffer=buffer,
            host_array=value,
            nbytes=int(nbytes if nbytes is not None else buffer.nbytes),
        )
        return self._enqueue(cmd)

    def enqueue_copy_buffer(
        self,
        src: Buffer,
        dst: Buffer,
        nbytes: Optional[int] = None,
        wait_events: Sequence[Event] = (),
    ) -> Event:
        """clEnqueueCopyBuffer (device-side copy)."""
        self._check_alive()
        self._check_buffer(src)
        self._check_buffer(dst)
        cmd = Command(
            kind=CommandKind.COPY_BUFFER,
            wait_events=list(wait_events),
            src_buffer=src,
            buffer=dst,
            nbytes=int(nbytes if nbytes is not None else min(src.nbytes, dst.nbytes)),
        )
        return self._enqueue(cmd)

    def enqueue_nd_range_kernel(
        self,
        kernel: Kernel,
        global_size: Sequence[int],
        local_size: Optional[Sequence[int]] = None,
        wait_events: Sequence[Event] = (),
    ) -> Event:
        """clEnqueueNDRangeKernel.

        The launch configuration is recorded but, per the proposed
        ``clSetKernelWorkGroupInfo`` semantics, it is ignored for devices
        that carry a pre-set per-device configuration.
        """
        self._check_alive()
        kernel.check_args_set()
        launch = WorkGroupConfig.normalize(global_size, local_size)
        cmd = Command(
            kind=CommandKind.NDRANGE_KERNEL,
            wait_events=list(wait_events),
            kernel=kernel,
            launch=launch,
            args_snapshot=dict(kernel.args),
        )
        return self._enqueue(cmd)

    def enqueue_marker(self, wait_events: Sequence[Event] = ()) -> Event:
        """clEnqueueMarkerWithWaitList."""
        self._check_alive()
        cmd = Command(kind=CommandKind.MARKER, wait_events=list(wait_events))
        return self._enqueue(cmd)

    def enqueue_barrier(self, wait_events: Sequence[Event] = ()) -> Event:
        """clEnqueueBarrierWithWaitList: an intra-queue ordering point.

        On an out-of-order queue the barrier waits for everything issued so
        far and every later command waits for the barrier.  On an in-order
        queue it is equivalent to a marker.
        """
        self._check_alive()
        cmd = Command(kind=CommandKind.BARRIER, wait_events=list(wait_events))
        return self._enqueue(cmd)

    def _enqueue(self, cmd: Command) -> Event:
        event = Event(self, cmd)
        cmd.event = event
        if self.auto_active:
            self.pending.append(cmd)
            scheduler = self.context.scheduler
            assert scheduler is not None
            scheduler.on_enqueue(self, cmd)
        else:
            self._ensure_deps_issued(cmd)
            self.issue(cmd)
        return event

    def _ensure_deps_issued(self, cmd: Command) -> None:
        """An immediate command whose wait list references deferred events
        forces those queues to schedule first (a cross-queue sync point)."""
        for e in cmd.wait_events:
            if e.task is None and not e.command.issued:
                self.context._sync_pending(trigger_queue=e.queue)
        if not cmd.deps_ready():
            raise InvalidOperation(
                f"queue {self.name!r}: wait-list event still unissued after "
                f"scheduler trigger"
            )

    # ------------------------------------------------------------------
    # Issue path (runs once the queue is bound to a device)
    # ------------------------------------------------------------------
    def issue(
        self,
        cmd: Command,
        ordering_deps: Optional[List["SimTask"]] = None,
        extra_deps: Optional[List["SimTask"]] = None,
    ) -> None:
        """Issue one command to the queue's current device.

        ``ordering_deps`` (overlap-aware issue, :mod:`repro.ocl.overlap`)
        *replaces* the implicit in-order tail / out-of-order barrier
        chaining with an explicit dependency list, and leaves ``_tail``
        untouched — the overlap issuer installs a per-epoch join task
        instead.  ``extra_deps`` *adds* dependencies on top of the normal
        chaining (used to restore cross-queue conflict ordering whose
        original happens-before path ran through a relaxed queue).
        """
        if cmd.issued:
            raise InvalidCommandQueue(f"command {cmd.kind} issued twice")
        if not cmd.deps_ready():
            raise InvalidCommandQueue(
                f"queue {self.name!r}: issuing {cmd.kind} before its wait list"
            )
        if not self.context.platform.is_available(self.device):
            raise DeviceNotAvailable(
                f"queue {self.name!r}: device {self.device!r} failed; "
                f"rebind the queue or use an automatic scheduler"
            )
        node = self.context.platform.node
        engine = self.context.platform.engine
        deps: List["SimTask"] = [e.task for e in cmd.wait_events if e.task is not None]
        if extra_deps:
            deps.extend(extra_deps)
        if ordering_deps is not None:
            deps.extend(ordering_deps)
        elif self.out_of_order:
            # Only barriers impose intra-queue order.
            if self._barrier is not None:
                deps.append(self._barrier)
        elif self._tail is not None:
            deps.append(self._tail)

        if cmd.kind is CommandKind.NDRANGE_KERNEL:
            # First branch: kernels dominate every scheduled workload.
            if cmd.split_plan is not None:
                task = self._issue_split_kernel(cmd, deps)
            else:
                task = self._issue_kernel(cmd, deps)
        elif cmd.kind is CommandKind.WRITE_BUFFER:
            assert cmd.buffer is not None
            self._check_capacity(cmd.buffer, extra=(cmd.buffer,))
            task = node.submit_h2d(
                self.device, cmd.nbytes, deps=deps, category="transfer",
                name=f"write:{cmd.buffer.name}", meta=self._tenant_meta,
            )
            if cmd.host_array is not None and cmd.buffer.array is not None:
                cmd.buffer.array[...] = cmd.host_array
            cmd.buffer.mark_exclusive(HOST)
            cmd.buffer.mark_valid(self.device)
        elif cmd.kind is CommandKind.READ_BUFFER:
            assert cmd.buffer is not None
            mig = self._migrations_for([cmd.buffer], deps, category="migration")
            task = node.submit_d2h(
                self.device, cmd.nbytes, deps=deps + mig, category="transfer",
                name=f"read:{cmd.buffer.name}", meta=self._tenant_meta,
            )
            if cmd.host_array is not None and cmd.buffer.array is not None:
                cmd.host_array[...] = cmd.buffer.array
            cmd.buffer.mark_valid(HOST)
        elif cmd.kind is CommandKind.FILL_BUFFER:
            assert cmd.buffer is not None
            self._check_capacity(cmd.buffer, extra=(cmd.buffer,))
            task = node.device(self.device).submit_intradevice_copy(
                cmd.nbytes, deps=deps, category="transfer",
                name=f"fill:{cmd.buffer.name}", meta=self._tenant_meta,
            )
            if cmd.buffer.array is not None:
                cmd.buffer.array[...] = cmd.host_array
            cmd.buffer.mark_exclusive(self.device)
        elif cmd.kind is CommandKind.COPY_BUFFER:
            assert cmd.buffer is not None and cmd.src_buffer is not None
            mig = self._migrations_for([cmd.src_buffer], deps, category="migration")
            task = node.device(self.device).submit_intradevice_copy(
                cmd.nbytes, deps=deps + mig, category="transfer",
                name=f"copy:{cmd.src_buffer.name}->{cmd.buffer.name}",
                meta=self._tenant_meta,
            )
            if cmd.buffer.array is not None and cmd.src_buffer.array is not None:
                cmd.buffer.array[...] = cmd.src_buffer.array
            cmd.buffer.mark_exclusive(self.device)
        elif cmd.kind is CommandKind.MARKER:
            task = engine.task(
                name=f"marker@{self.name}", duration=0.0, deps=deps,
                category="marker",
            )
        elif cmd.kind is CommandKind.BARRIER:
            barrier_deps = deps + [t for t in self._outstanding if not t.done]
            task = engine.task(
                name=f"barrier@{self.name}", duration=0.0, deps=barrier_deps,
                category="marker",
            )
            self._barrier = task
        else:  # pragma: no cover - exhaustive
            raise InvalidValue(f"unknown command kind {cmd.kind}")

        cmd.issued = True
        assert cmd.event is not None
        cmd.event._bind_task(task)
        if cmd.aborted_task is not None:
            # Replay: waiters of the aborted incarnation follow this task.
            engine.adopt(cmd.aborted_task, task)
            cmd.aborted_task = None
        if ordering_deps is None:
            self._tail = task
        self._outstanding.append(task)
        self._inflight.append(cmd)

    def _issue_kernel(self, cmd: Command, deps: List["SimTask"]) -> "SimTask":
        kernel = cmd.kernel
        launch = cmd.launch
        assert kernel is not None and launch is not None
        device = self.context.platform.node.device(self.device)
        buffers = [
            v for v in cmd.args_snapshot.values() if isinstance(v, Buffer)
        ]
        self._check_capacity(*buffers, extra=buffers)
        migrations = self._migrations_for(buffers, deps, category="migration")
        config = kernel.effective_config(self.device, launch)
        cost = kernel.launch_cost(device.spec, launch)
        meta = {"queue": self.name, "epoch": self.epoch_index}
        if self._tenant_meta is not None:
            meta.update(self._tenant_meta)
        task = device.submit_kernel(
            name=kernel.name,
            cost=cost,
            deps=deps + migrations,
            category="kernel",
            meta=meta,
        )
        # Functional payload runs in dependency (issue) order — see module
        # doc.  Replays after a device failure only re-charge simulated time:
        # in-place kernels are not idempotent, so exactly-once matters.
        if cmd.attempts == 0:
            saved = kernel.args
            kernel.args = cmd.args_snapshot
            try:
                kernel.run_host_function()
            finally:
                kernel.args = saved
        for buf in self._written_buffers(kernel, cmd.args_snapshot):
            buf.mark_exclusive(self.device)
        del config  # config folded into cost via launch_cost
        return task

    def _issue_split_kernel(self, cmd: Command, deps: List["SimTask"]) -> "SimTask":
        """Issue one kernel split across several devices per ``cmd.split_plan``.

        Dimension 0 of the NDRange is partitioned into contiguous per-device
        sub-ranges.  Each device receives the *slices* of the argument
        buffers its sub-range touches (implied sub-buffers, modelled as
        proportional byte-ranged transfers that deliberately do **not** flip
        whole-buffer residency — only a slice moved), runs a sub-range
        launch costed with its own effective workgroup configuration, and
        streams written slices back to the host where the partial results
        merge.  A zero-duration join task stands for the merged completion;
        the command's event binds to it, so downstream consumers observe
        exactly one kernel-completion point, bit-identical to the unsplit
        execution (the functional payload runs once, on the host, over the
        full range).
        """
        kernel = cmd.kernel
        launch = cmd.launch
        plan = cmd.split_plan
        assert kernel is not None and launch is not None and plan is not None
        node = self.context.platform.node
        engine = self.context.platform.engine
        total = launch.global_size[0]
        seen: Dict[int, Buffer] = {}
        for v in cmd.args_snapshot.values():
            if isinstance(v, Buffer) and id(v) not in seen:
                seen[id(v)] = v
        buffers = list(seen.values())
        written = self._written_buffers(kernel, cmd.args_snapshot)
        written = list({id(b): b for b in written}.values())
        finals: List["SimTask"] = []
        for device, lo, hi in plan.shares:
            share = hi - lo
            if share <= 0:
                continue
            if not self.context.platform.is_available(device):
                raise DeviceNotAvailable(
                    f"queue {self.name!r}: split share [{lo}:{hi}) targets "
                    f"failed device {device!r}"
                )
            dev = node.device(device)

            def slice_bytes(buf: Buffer) -> int:
                # ceil(nbytes * share / total), capped at the full buffer
                return min(buf.nbytes, -(-buf.nbytes * share // total))

            incoming = sum(
                slice_bytes(b) for b in buffers if not b.resident_on(device)
            )
            needed = self.context.resident_bytes(device) + incoming
            if needed > dev.spec.mem_size_bytes:
                raise MemAllocationFailure(
                    f"device {device!r}: {needed} bytes needed for split "
                    f"share [{lo}:{hi}), {dev.spec.mem_size_bytes} available"
                )
            moves: List["SimTask"] = []
            for b in buffers:
                if not b.initialized or b.is_valid_on(device):
                    continue
                nb = slice_bytes(b)
                label = f"split:{b.name}[{lo}:{hi}]"
                if b.is_valid_on(HOST):
                    moves.append(
                        node.submit_h2d(
                            device, nb, deps=deps, category="migration",
                            name=label, meta=self._tenant_meta,
                        )
                    )
                else:
                    src = b.any_valid_device()
                    assert src is not None
                    moves.append(
                        node.submit_d2d(
                            src, device, nb, deps=deps, category="migration",
                            name=label, meta=self._tenant_meta,
                        )
                    )
            sub = kernel.sub_range_config(device, launch, lo, hi)
            cost = kernel.config_cost(dev.spec, sub)
            meta: Dict[str, Any] = {
                "queue": self.name,
                "epoch": self.epoch_index,
                "split": f"{lo}:{hi}",
            }
            if self._tenant_meta is not None:
                meta.update(self._tenant_meta)
            sub_task = dev.submit_kernel(
                name=f"{kernel.name}[{lo}:{hi}]",
                cost=cost,
                deps=deps + moves,
                category="kernel",
                meta=meta,
            )
            gathers = [
                node.submit_d2h(
                    device, slice_bytes(b), deps=[sub_task], category="transfer",
                    name=f"gather:{b.name}[{lo}:{hi}]", meta=self._tenant_meta,
                )
                for b in written
            ]
            finals.extend(gathers or [sub_task])
        join = engine.task(
            name=f"split-join:{kernel.name}@{self.name}",
            duration=0.0,
            deps=finals,
            category="marker",
        )
        # Functional payload: once, over the full range (see _issue_kernel).
        if cmd.attempts == 0:
            saved = kernel.args
            kernel.args = cmd.args_snapshot
            try:
                kernel.run_host_function()
            finally:
                kernel.args = saved
        # Merged results live on the host after the gather transfers.
        for buf in written:
            buf.mark_exclusive(HOST)
        return join

    @staticmethod
    def _written_buffers(kernel: Kernel, snapshot: Dict[int, Any]) -> List[Buffer]:
        writes = kernel.info.writes
        out = []
        for i, v in snapshot.items():
            if not isinstance(v, Buffer):
                continue
            if not writes or i in writes:
                out.append(v)
        return out

    def _migrations_for(
        self,
        buffers: Sequence[Buffer],
        deps: List["SimTask"],
        category: str,
    ) -> List["SimTask"]:
        """Make every buffer resident on the queue's device; return the
        transfer tasks (empty if all data already resident)."""
        node = self.context.platform.node
        tasks: List["SimTask"] = []
        for buf in buffers:
            if buf.is_valid_on(self.device):
                continue
            if not buf.initialized:
                # First touch: allocation only, no data to move.
                buf.mark_valid(self.device)
                continue
            if buf.is_valid_on(HOST):
                t = node.submit_h2d(
                    self.device, buf.nbytes, deps=deps, category=category,
                    name=f"mig:{buf.name}", meta=self._tenant_meta,
                )
            else:
                src = buf.any_valid_device()
                assert src is not None
                t = node.submit_d2d(
                    src, self.device, buf.nbytes, deps=deps, category=category,
                    name=f"mig:{buf.name}", meta=self._tenant_meta,
                )
            buf.mark_valid(self.device)
            tasks.append(t)
        return tasks

    def _check_capacity(self, *incoming: Buffer, extra: Sequence[Buffer]) -> None:
        """Device-memory capacity check before making buffers resident."""
        spec = self.context.platform.node.device(self.device).spec
        # O(1) via the context's per-device resident-byte counters plus the
        # not-yet-resident newcomers (deduplicated: a kernel may pass the
        # same buffer for several arguments).
        total = self.context.resident_bytes(self.device)
        seen = set()
        for b in extra:
            if id(b) in seen or b.resident_on(self.device):
                continue
            seen.add(id(b))
            total += b.nbytes
        if total > spec.mem_size_bytes:
            raise MemAllocationFailure(
                f"device {self.device!r}: {total} bytes needed, "
                f"{spec.mem_size_bytes} available"
            )

    # ------------------------------------------------------------------
    # Fault recovery
    # ------------------------------------------------------------------
    def requeue_unfinished(self, device: str) -> List[Command]:
        """Pull issued-but-unfinished commands stranded on failed ``device``
        back onto the deferred list for replay; returns them.

        In-order queues replay the contiguous suffix starting at the first
        unfinished command executing on the dead device (everything behind
        it depends on it through the tail chain); the healthy prefix keeps
        draining.  Out-of-order queues replay only the dead-device commands
        — cross-command dependencies are repaired by task adoption when the
        replays issue.  Transfers already on healthy links are left to
        drain (in-flight DMA completes).
        """
        engine = self.context.platform.engine
        resname = f"dev:{device}"
        self._inflight = [
            c
            for c in self._inflight
            if c.event is not None
            and c.event.task is not None
            and not c.event.task.done
        ]

        def on_dead(c: Command) -> bool:
            t = c.event.task  # type: ignore[union-attr]
            return t is not None and t.resource is not None and t.resource.name == resname

        if self.out_of_order:
            victims = [c for c in self._inflight if on_dead(c)]
        else:
            first = next(
                (i for i, c in enumerate(self._inflight) if on_dead(c)), None
            )
            victims = [] if first is None else self._inflight[first:]
        if not victims:
            return []
        victim_ids = {id(c) for c in victims}
        self._inflight = [c for c in self._inflight if id(c) not in victim_ids]
        for cmd in victims:
            task = cmd.event.task  # type: ignore[union-attr]
            engine.abort(task)
            cmd.aborted_task = task
            cmd.event.task = None  # type: ignore[union-attr]
            cmd.issued = False
            cmd.attempts += 1
        # The in-order tail must point at the surviving prefix (or nothing);
        # aborted tasks would otherwise anchor the replayed chain.
        if not self.out_of_order:
            self._tail = (
                self._inflight[-1].event.task if self._inflight else None
            )
        if self._barrier is not None and self._barrier.aborted:
            self._barrier = None
        # Replays go to the *front* of the deferred list, in original order.
        self.pending[:0] = victims
        return victims

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """clFlush: force deferred commands to be scheduled and issued."""
        self._check_alive()
        if self.pending:
            self.context._sync_pending(trigger_queue=self)

    def finish(self) -> None:
        """clFinish: schedule if needed, then block until the queue drains.

        Fault injection can requeue commands *while* the host blocks here
        (the clock advances inside ``run_until``), so the drain loops until
        no deferred or unfinished work remains.
        """
        self.flush()
        engine = self.context.platform.engine
        while True:
            if self.pending:
                self.context._sync_pending(trigger_queue=self)
                continue
            # Aborted incarnations never complete; their replays were
            # appended to _outstanding when they reissued, so waiting on
            # the live tasks covers them.
            tasks = [t for t in self._outstanding if not t.done and not t.aborted]
            if not tasks:
                break
            for task in tasks:
                if not task.done:
                    engine.run_until(task)
        self._outstanding.clear()
        self._inflight.clear()
        self.epoch_index += 1
        self.context.platform.engine.trace.mark(
            self.context.platform.engine.now, f"epoch:{self.name}:{self.epoch_index}"
        )

    def release(self) -> None:
        """clReleaseCommandQueue (idempotent)."""
        if not self.released:
            if self.pending:
                self.finish()
            self.released = True

    def _check_alive(self) -> None:
        if self.released:
            raise InvalidCommandQueue(f"queue {self.name!r} was released")

    def _check_buffer(self, buffer: Buffer) -> None:
        if buffer.context is not self.context:
            raise InvalidValue(
                f"buffer {buffer.name!r} belongs to a different context"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommandQueue({self.name!r}, device={self.device!r}, "
            f"flags={self.sched_flags!r}, pending={len(self.pending)})"
        )
