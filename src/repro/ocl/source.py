"""Toy OpenCL-C source handling.

Workload kernels in this reproduction are written as real OpenCL-C-looking
source strings.  We do not compile them (there is no device compiler here);
instead this module parses the pieces the runtime needs:

* kernel signatures — names and argument kinds (buffer vs scalar), used for
  argument validation and residency bookkeeping;
* ``// @multicl`` annotation comments — a per-kernel cost descriptor
  (flops/bytes per work item, divergence, irregularity, per-device-kind
  efficiency) from which default :class:`~repro.hardware.cost.KernelCost`
  models are built;
* body spans — so the minikernel transformation
  (:mod:`repro.core.minikernel`) can do the paper's Fig. 2 source-to-source
  rewrite on the *actual text*.

Annotation syntax, one line directly above the kernel::

    // @multicl flops_per_item=120 bytes_per_item=48 divergence=0.2 \
    //          irregularity=0.1 cpu_eff=0.9 gpu_eff=0.08 writes=1

``writes`` lists the indices of arguments the kernel writes (for residency
invalidation); all other keys are floats.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lru import BoundedLRU
from repro.ocl.errors import BuildProgramFailure

__all__ = [
    "KernelArg",
    "KernelSourceInfo",
    "parse_program_source",
    "find_body_open",
    "insert_after_body_open",
]

_KERNEL_RE = re.compile(r"__kernel\s+void\s+(?P<name>\w+)\s*\(", re.MULTILINE)
_ANNOT_RE = re.compile(r"//\s*@multicl\b(?P<body>[^\n]*)")
_KV_RE = re.compile(r"(\w+)\s*=\s*([^\s]+)")


@dataclass(frozen=True)
class KernelArg:
    """One kernel parameter."""

    name: str
    declaration: str
    is_buffer: bool

    @staticmethod
    def parse(decl: str) -> "KernelArg":
        decl = decl.strip()
        if not decl:
            raise BuildProgramFailure("empty kernel argument declaration")
        # Argument name = last identifier in the declaration.
        m = re.search(r"(\w+)\s*$", decl)
        if not m:
            raise BuildProgramFailure(f"cannot parse kernel argument {decl!r}")
        is_buffer = "*" in decl and ("__global" in decl or "__constant" in decl)
        return KernelArg(name=m.group(1), declaration=decl, is_buffer=is_buffer)


@dataclass(frozen=True)
class KernelSourceInfo:
    """Parsed facts about one ``__kernel`` function."""

    name: str
    args: Tuple[KernelArg, ...]
    annotations: Dict[str, float] = field(default_factory=dict)
    #: indices of arguments the kernel writes (from the ``writes=`` key);
    #: empty tuple means "treat every buffer argument as read-write".
    writes: Tuple[int, ...] = ()
    #: character offset in the program source where the kernel keyword starts
    start: int = 0
    #: character offset just past the kernel's opening ``{``
    body_open: int = 0

    @property
    def buffer_arg_indices(self) -> Tuple[int, ...]:
        return tuple(i for i, a in enumerate(self.args) if a.is_buffer)


def _split_args(argtext: str) -> List[str]:
    """Split an argument list on top-level commas."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in argtext:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in (part.strip() for part in parts) if p]


def _matching_paren(src: str, open_idx: int) -> int:
    """Index of the ``)`` matching the ``(`` at ``open_idx``."""
    depth = 0
    for i in range(open_idx, len(src)):
        if src[i] == "(":
            depth += 1
        elif src[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    raise BuildProgramFailure("unbalanced parentheses in kernel signature")


def find_body_open(src: str, sig_end: int) -> int:
    """Offset just past the ``{`` that opens the kernel body."""
    i = src.find("{", sig_end)
    if i < 0:
        raise BuildProgramFailure("kernel signature without body")
    return i + 1


def _annotations_before(src: str, kernel_start: int) -> Dict[str, str]:
    """Collect ``@multicl`` key=value pairs from comment lines directly
    preceding the kernel definition (blank lines allowed between)."""
    out: Dict[str, str] = {}
    lines = src[:kernel_start].splitlines()
    idx = len(lines) - 1
    # Skip trailing blank/partial line fragments.
    while idx >= 0 and not lines[idx].strip():
        idx -= 1
    while idx >= 0:
        line = lines[idx].strip()
        m = _ANNOT_RE.search(line)
        if m:
            for k, v in _KV_RE.findall(m.group("body")):
                out.setdefault(k, v)
            idx -= 1
            continue
        if line.startswith("//"):
            idx -= 1
            continue
        break
    return out


#: source string -> parsed kernel infos; program sources are interned by
#: construction (benchmark loops and multi-runtime apps rebuild the same
#: literal), so a small memo removes the regex walk from the hot path.
#: Bounded LRU: a hit refreshes recency, an insert past the bound evicts
#: only the least recently used source (the seed cleared the whole memo,
#: evicting hot program sources mid-run).
_parse_memo: BoundedLRU = BoundedLRU(64)


def parse_program_source(src: str) -> List[KernelSourceInfo]:
    """Parse every ``__kernel`` function in a program source string."""
    cached = _parse_memo.get(src)
    if cached is not None:
        return list(cached)
    infos = _parse_program_source_uncached(src)
    _parse_memo.put(src, tuple(infos))
    return infos


def _parse_program_source_uncached(src: str) -> List[KernelSourceInfo]:
    infos: List[KernelSourceInfo] = []
    for m in _KERNEL_RE.finditer(src):
        open_paren = src.index("(", m.end() - 1)
        close_paren = _matching_paren(src, open_paren)
        argtext = src[open_paren + 1 : close_paren]
        args = tuple(KernelArg.parse(a) for a in _split_args(argtext))
        raw = _annotations_before(src, m.start())
        writes: Tuple[int, ...] = ()
        annots: Dict[str, float] = {}
        for k, v in raw.items():
            if k == "writes":
                try:
                    writes = tuple(int(x) for x in v.split(",") if x != "")
                except ValueError:
                    raise BuildProgramFailure(
                        f"kernel {m.group('name')!r}: bad writes= annotation {v!r}"
                    )
            else:
                try:
                    annots[k] = float(v)
                except ValueError:
                    raise BuildProgramFailure(
                        f"kernel {m.group('name')!r}: annotation {k}={v!r} is not numeric"
                    )
        for w in writes:
            if w < 0 or w >= len(args):
                raise BuildProgramFailure(
                    f"kernel {m.group('name')!r}: writes index {w} out of range"
                )
        infos.append(
            KernelSourceInfo(
                name=m.group("name"),
                args=args,
                annotations=annots,
                writes=writes,
                start=m.start(),
                body_open=find_body_open(src, close_paren),
            )
        )
    names = [k.name for k in infos]
    if len(set(names)) != len(names):
        raise BuildProgramFailure(f"duplicate kernel names in program: {names}")
    return infos


def insert_after_body_open(src: str, info: KernelSourceInfo, text: str) -> str:
    """Return ``src`` with ``text`` inserted right after the kernel's ``{``.

    Used by the minikernel transformation to inject the workgroup-0 guard of
    the paper's Fig. 2.
    """
    return src[: info.body_open] + text + src[info.body_open :]
