"""An OpenCL-1.2-style runtime layer over the simulated node.

This package plays the role SnuCL plays in the paper: a vendor-neutral
OpenCL implementation that the MultiCL scheduler (:mod:`repro.core`) extends.
It implements the objects and semantics the paper's extensions touch:

* platforms and devices (:mod:`repro.ocl.platform`),
* contexts with the proposed ``CL_CONTEXT_SCHEDULER`` property
  (:mod:`repro.ocl.context`),
* command queues with the proposed ``SCHED_*`` local scheduling flags and
  deferred command issue (:mod:`repro.ocl.queue`),
* buffers with residency tracking and implicit cross-device migration
  (:mod:`repro.ocl.memory`),
* programs built from annotated toy OpenCL-C source
  (:mod:`repro.ocl.program`, :mod:`repro.ocl.source`),
* kernels with per-device launch configurations — the proposed
  ``clSetKernelWorkGroupInfo`` (:mod:`repro.ocl.kernel`),
* events and synchronization (:mod:`repro.ocl.event`),
* a C-style flat API (:mod:`repro.ocl.api`) so application drivers read
  like the OpenCL host code the paper modifies.

Everything executes on the discrete-event substrate; commands charge
simulated time for kernels, transfers and implicit migrations.
"""

from repro.ocl.enums import (
    CommandKind,
    ContextProperty,
    ContextScheduler,
    DeviceType,
    EventStatus,
    SchedFlag,
)
from repro.ocl.errors import (
    CLError,
    InvalidCommandQueue,
    InvalidContext,
    InvalidDevice,
    InvalidKernel,
    InvalidOperation,
    InvalidValue,
    MemAllocationFailure,
)
from repro.ocl.platform import Platform, get_platforms
from repro.ocl.context import Context
from repro.ocl.queue import CommandQueue, Command
from repro.ocl.memory import Buffer
from repro.ocl.program import Program
from repro.ocl.kernel import Kernel, WorkGroupConfig
from repro.ocl.event import Event

__all__ = [
    "CommandKind",
    "ContextProperty",
    "ContextScheduler",
    "DeviceType",
    "EventStatus",
    "SchedFlag",
    "CLError",
    "InvalidCommandQueue",
    "InvalidContext",
    "InvalidDevice",
    "InvalidKernel",
    "InvalidOperation",
    "InvalidValue",
    "MemAllocationFailure",
    "Platform",
    "get_platforms",
    "Context",
    "CommandQueue",
    "Command",
    "Buffer",
    "Program",
    "Kernel",
    "WorkGroupConfig",
    "Event",
]
