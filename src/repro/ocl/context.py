"""cl_context with the proposed ``CL_CONTEXT_SCHEDULER`` property.

A context groups devices, buffers, programs and queues; buffers can only be
shared among queues of the same context (standard OpenCL).  The extension:
``properties`` may carry ``ContextProperty.CL_CONTEXT_SCHEDULER`` mapped to
a :class:`~repro.ocl.enums.ContextScheduler` value, which instantiates a
global scheduler for the context's automatically scheduled queues.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.ocl.enums import ContextProperty, ContextScheduler, MemFlag, SchedFlag
from repro.ocl.errors import InvalidDevice, InvalidOperation, InvalidValue
from repro.ocl.memory import Buffer
from repro.ocl.program import Program
from repro.ocl.queue import CommandQueue
from repro.ocl.scheduling import SchedulerBase, create_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.platform import Platform

__all__ = ["Context", "TENANT_PROPERTY_KEY"]

#: Context property naming the tenant a context belongs to (multi-tenant
#: service mode).  The tag propagates into every kernel/transfer task the
#: context's queues issue, so per-tenant telemetry can be derived from the
#: trace without instrumenting workloads.
TENANT_PROPERTY_KEY = "multicl.tenant"

_ids = itertools.count(1)

#: Raw bit for the overlap opt-in flag (hot-path mask check, see
#: CommandQueue.auto_active for the idiom).
_OVERLAP_MASK = SchedFlag.SCHED_OVERLAP.value


class Context:
    """A device-sharing scope, optionally with an automatic scheduler."""

    def __init__(
        self,
        platform: "Platform",
        device_names: Optional[Sequence[str]] = None,
        properties: Optional[Dict[int, Any]] = None,
    ) -> None:
        self.id = next(_ids)
        self.platform = platform
        all_names = tuple(platform.device_names)
        if device_names is None:
            self.device_names: Tuple[str, ...] = all_names
        else:
            unknown = [d for d in device_names if d not in all_names]
            if unknown:
                raise InvalidDevice(
                    f"devices {unknown} not on platform (has {list(all_names)})"
                )
            if not device_names:
                raise InvalidDevice("context needs at least one device")
            self.device_names = tuple(device_names)
        self.properties: Dict[int, Any] = dict(properties or {})
        self.buffers: List[Buffer] = []
        #: device name -> bytes of buffers currently resident there, kept
        #: exact by Buffer residency transitions; lets the scheduler's
        #: memory-fit check run in O(1) instead of scanning all buffers.
        self._resident_bytes: Dict[str, int] = {}
        self.queues: List[CommandQueue] = []
        self.programs: List[Program] = []
        self.scheduler: Optional[SchedulerBase] = None
        # Re-entrancy guards for _sync_pending: fault injection can fire
        # *inside* a scheduling pass (the profiler advances virtual time)
        # and request another pass; it folds into the active one.
        self._in_sync = False
        self._resync_needed = False
        self._post_sync: List[Any] = []
        #: Tenant tag (multi-tenant service mode); stamped into every task
        #: meta this context's queues produce.
        tenant = self.properties.get(TENANT_PROPERTY_KEY)
        self.tenant: Optional[str] = str(tenant) if tenant is not None else None
        #: Cross-context arbiter (multi-tenant service mode).  When set,
        #: scheduler triggers are delegated to it instead of handing the
        #: pool straight to this context's scheduler: the arbiter decides
        #: which tenants' ready pools dispatch (and in what order) before
        #: falling back to each context's own policy for the mapping.
        self.arbiter: Optional[Any] = None
        # Opt-in runtime sanitizer: the "multicl.sanitize" context property
        # wins; otherwise MULTICL_SANITIZE in the environment decides.
        from repro.analysis.sanitizer import (
            SANITIZE_PROPERTY_KEY,
            sanitize_enabled_from_env,
        )

        sanitize_prop = self.properties.get(SANITIZE_PROPERTY_KEY)
        self.sanitize: bool = (
            bool(sanitize_prop)
            if sanitize_prop is not None
            else sanitize_enabled_from_env()
        )
        # Opt-in overlap-aware issue, resolved the same way: the
        # "multicl.overlap" context property wins; otherwise MULTICL_OVERLAP
        # in the environment decides.  Individual queues can also opt in
        # with SchedFlag.SCHED_OVERLAP.
        from repro.ocl.overlap import (
            OVERLAP_PROPERTY_KEY,
            overlap_enabled_from_env,
        )

        overlap_prop = self.properties.get(OVERLAP_PROPERTY_KEY)
        self.overlap: bool = (
            bool(overlap_prop)
            if overlap_prop is not None
            else overlap_enabled_from_env()
        )
        policy = self.properties.get(ContextProperty.CL_CONTEXT_SCHEDULER)
        if policy is not None:
            try:
                policy = ContextScheduler(policy)
            except ValueError:
                pass  # user-registered policy token (string, custom int...)
            self.scheduler = create_scheduler(policy, self)

    # ------------------------------------------------------------------
    # Object factories
    # ------------------------------------------------------------------
    def create_buffer(
        self,
        nbytes: int,
        flags: MemFlag = MemFlag.READ_WRITE,
        host_array: Optional[np.ndarray] = None,
        name: Optional[str] = None,
    ) -> Buffer:
        """clCreateBuffer."""
        return Buffer(self, nbytes, flags=flags, host_array=host_array, name=name)

    def create_program(self, source: str) -> Program:
        """clCreateProgramWithSource."""
        program = Program(self, source)
        self.programs.append(program)
        return program

    def create_queue(
        self,
        device_name: Optional[str] = None,
        sched_flags=None,
        name: Optional[str] = None,
        out_of_order: bool = False,
    ) -> CommandQueue:
        """clCreateCommandQueue (with the proposed SCHED_* properties and
        the stock CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE)."""
        from repro.ocl.enums import SchedFlag

        flags = SchedFlag.SCHED_OFF if sched_flags is None else SchedFlag(sched_flags)
        return CommandQueue(self, device_name, flags, name=name,
                            out_of_order=out_of_order)

    # ------------------------------------------------------------------
    # Internal registries
    # ------------------------------------------------------------------
    def _register_buffer(self, buffer: Buffer) -> None:
        self.buffers.append(buffer)

    def _note_residency(self, device: str, delta: int) -> None:
        """A buffer copy appeared on (+nbytes) or left (-nbytes) ``device``."""
        self._resident_bytes[device] = self._resident_bytes.get(device, 0) + delta

    def resident_bytes(self, device: str) -> int:
        """Total bytes of context buffers with a valid copy on ``device``."""
        return self._resident_bytes.get(device, 0)

    def _register_queue(self, queue: CommandQueue) -> None:
        self.queues.append(queue)

    # ------------------------------------------------------------------
    # Scheduling triggers
    # ------------------------------------------------------------------
    def pending_queues(self) -> List[CommandQueue]:
        """Auto queues holding deferred commands (the ready-queue pool)."""
        return [q for q in self.queues if q.pending]

    @property
    def active_device_names(self) -> List[str]:
        """Context devices still available (failed devices removed)."""
        return [d for d in self.device_names if self.platform.is_available(d)]

    def after_sync(self, fn) -> None:
        """Run ``fn()`` once the current (or next) scheduling pass settles.

        If no sync is in flight the callback runs at the end of the next
        :meth:`_sync_pending` call — or immediately if that call finds an
        empty pool.  Fault recovery uses this to record queue remaps after
        the degraded-pool mapping is actually in place.
        """
        self._post_sync.append(fn)

    def _sync_pending(self, trigger_queue: Optional[CommandQueue] = None) -> None:
        """Synchronization boundary: hand the ready-queue pool to the
        scheduler (which must profile, map, and issue).

        Re-entrant: if fault injection fires mid-pass (simulated time
        advances inside the profiler) and requeues commands, the request is
        folded into the active pass, which loops until the pool stays empty.
        """
        if self._in_sync:
            self._resync_needed = True
            return
        self._in_sync = True
        try:
            while True:
                self._resync_needed = False
                pool = self.pending_queues()
                if not pool:
                    break
                if self.scheduler is None:
                    raise InvalidOperation(
                        "deferred commands exist but the context has no scheduler"
                    )
                if self.arbiter is not None:
                    # Service mode: the arbiter must drain *this* pool (the
                    # host is blocked on it) and may opportunistically
                    # dispatch other tenants' ready pools in fair-share
                    # order.  It sanitizes each pool it dispatches.
                    self.arbiter.on_trigger(self, pool, trigger_queue)
                else:
                    self._sanitize_check(pool)
                    self.scheduler.on_sync(pool, trigger_queue)
                leftovers = [
                    q.name for q in pool if q.pending and not self._resync_needed
                ]
                if leftovers:
                    raise InvalidOperation(
                        f"scheduler left queues with pending commands: {leftovers}"
                    )
                if not self._resync_needed:
                    break
        finally:
            self._in_sync = False
        callbacks, self._post_sync = self._post_sync, []
        for fn in callbacks:
            fn()

    def _sanitize_check(self, pool: Sequence[CommandQueue]) -> None:
        """Runtime sanitizer hook: validate ``pool`` before it is issued.

        No-op unless sanitize mode is on (``MULTICL_SANITIZE=1``,
        ``MultiCL(sanitize=True)``, or the ``"multicl.sanitize"`` context
        property).  Error findings raise
        :class:`~repro.analysis.findings.SanitizerError`; warnings emit
        :class:`~repro.analysis.findings.SanitizerWarning`.
        """
        if not self.sanitize or not pool:
            return
        from repro.analysis.sanitizer import check_pool

        check_pool(pool)

    def issue_pool(self, pool: Sequence[CommandQueue]) -> None:
        """Issue every deferred command of ``pool`` respecting cross-queue
        event dependencies (schedulers call this after mapping).

        Queues opted into overlap-aware issue (``SCHED_OVERLAP``, the
        ``"multicl.overlap"`` context property, or ``MULTICL_OVERLAP``)
        route through :mod:`repro.ocl.overlap`, which relaxes FIFO order to
        a dependency-driven ready queue; everything else takes the FIFO
        path, whose issue sequence is bit-identical to the historical
        pass-based loop.
        """
        queues = [q for q in pool if q.pending]
        if not queues:
            return
        if self.overlap or any(
            q.sched_flags.value & _OVERLAP_MASK for q in queues
        ):
            from repro.ocl.overlap import issue_pool_overlap

            issue_pool_overlap(self, queues)
            return
        self._issue_pool_fifo(queues)

    def _issue_pool_fifo(self, queues: List[CommandQueue]) -> None:
        """FIFO issue via an order-preserving wake list.

        Semantically this reproduces the historical algorithm — repeated
        passes over the pool in order, draining each queue's head while its
        wait list is satisfied — but a queue is only revisited when a
        command it stalls on actually issues, so the work is
        O(commands + wake events) instead of O(passes × queues).  The issue
        *sequence* is identical: a queue woken at pool position > the one
        currently draining joins the current sweep (the old inner loop
        would still reach it); one woken at an earlier position waits for
        the next sweep (the old loop had already passed it).
        """
        pos = {id(q): i for i, q in enumerate(queues)}
        #: id(producer Command) -> queues whose head stalls on it
        waiters: Dict[int, List[CommandQueue]] = {}
        #: ids of queues already sitting in a sweep (wake dedup)
        scheduled: set = set()
        sweep: List[CommandQueue] = queues
        while sweep:
            heap = [(pos[id(q)], q) for q in sweep]
            heapq.heapify(heap)
            sweep = []
            while heap:
                i, q = heapq.heappop(heap)
                scheduled.discard(id(q))
                pending = q.pending
                while pending and pending[0].deps_ready():
                    cmd = pending.pop(0)
                    q.issue(cmd)
                    woken = waiters.pop(id(cmd), None)
                    if woken:
                        for w in woken:
                            wid = id(w)
                            if wid in scheduled or not w.pending:
                                continue
                            scheduled.add(wid)
                            if pos[wid] > i:
                                heapq.heappush(heap, (pos[wid], w))
                            else:
                                sweep.append(w)
                if pending:
                    # Stalled: park the queue under the first still-unissued
                    # producer; issuing it re-schedules the queue.  (Heads
                    # with several unissued producers re-park under the next
                    # one each time — at most one live registration each.)
                    producer = next(
                        (
                            e.command
                            for e in pending[0].wait_events
                            if e.task is None
                        ),
                        None,
                    )
                    if producer is not None:
                        waiters.setdefault(id(producer), []).append(q)
        remaining = [q for q in queues if q.pending]
        if remaining:
            # Name the actual dependency cycle (or orphaned event) instead
            # of opaque pending counts.
            from repro.analysis.validator import describe_deadlock

            detail = describe_deadlock(remaining)
            if detail is None:
                stuck = {q.name: len(q.pending) for q in remaining}
                detail = f"stuck pending counts: {stuck}"
            raise InvalidOperation(
                f"cross-queue dependency deadlock while issuing: {detail}"
            )

    def finish_all(self) -> None:
        """Finish every queue in the context (a full synchronization epoch)."""
        for q in self.queues:
            if not q.released:
                q.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sched = type(self.scheduler).__name__ if self.scheduler else "manual"
        return (
            f"Context(#{self.id}, devices={list(self.device_names)}, "
            f"scheduler={sched})"
        )
