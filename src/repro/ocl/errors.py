"""OpenCL-style error hierarchy.

Every error carries a negative ``code`` mirroring the CL error numbering so
C-style host code can check ``err.code == -34`` the way it would check
``CL_INVALID_CONTEXT``.
"""

from __future__ import annotations

__all__ = [
    "CLError",
    "DeviceNotAvailable",
    "InvalidValue",
    "InvalidDevice",
    "InvalidContext",
    "InvalidCommandQueue",
    "InvalidMemObject",
    "InvalidProgram",
    "InvalidKernel",
    "InvalidKernelArgs",
    "InvalidWorkGroupSize",
    "InvalidEventWaitList",
    "InvalidOperation",
    "MemAllocationFailure",
    "BuildProgramFailure",
]


class CLError(RuntimeError):
    """Base class; ``code`` mirrors the OpenCL error value."""

    code = -9999

    def __init__(self, message: str = "") -> None:
        super().__init__(f"[CL {self.code}] {message}" if message else f"[CL {self.code}]")
        self.message = message


class DeviceNotAvailable(CLError):
    """CL_DEVICE_NOT_AVAILABLE — the device failed or went offline."""

    code = -2


class InvalidValue(CLError):
    code = -30


class InvalidDevice(CLError):
    code = -33


class InvalidContext(CLError):
    code = -34


class InvalidCommandQueue(CLError):
    code = -36


class MemAllocationFailure(CLError):
    """CL_MEM_OBJECT_ALLOCATION_FAILURE — buffer does not fit on device."""

    code = -4


class InvalidMemObject(CLError):
    code = -38


class BuildProgramFailure(CLError):
    code = -11


class InvalidProgram(CLError):
    code = -44


class InvalidKernel(CLError):
    code = -48


class InvalidKernelArgs(CLError):
    code = -52


class InvalidWorkGroupSize(CLError):
    code = -54


class InvalidEventWaitList(CLError):
    code = -57


class InvalidOperation(CLError):
    code = -59
