"""cl_program objects.

Programs are created from (toy) OpenCL-C source per context and built before
kernels can be created.  Building parses kernel signatures and annotations
and charges a small amount of simulated host time.  When the owning context
has an automatic scheduler attached, the build also invokes the scheduler's
static kernel-transformation hook — this is where MultiCL creates minikernel
variants by intercepting ``clCreateProgramWithSource``/``clBuildProgram``
(paper Section V.C.2), doubling the build time as an initial setup cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.ocl.errors import BuildProgramFailure, InvalidKernel, InvalidProgram
from repro.ocl.kernel import Kernel
from repro.ocl.source import KernelSourceInfo, parse_program_source

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.context import Context

__all__ = ["Program"]

#: Simulated compiler throughput: seconds per source character, plus a fixed
#: front-end cost.  Only matters for experiments that time program setup.
_BUILD_BASE_S = 5e-3
_BUILD_PER_CHAR_S = 2e-7


class Program:
    """A program object holding source and (after build) kernel metadata."""

    def __init__(self, context: "Context", source: str) -> None:
        if not source or "__kernel" not in source:
            raise InvalidProgram("program source contains no __kernel functions")
        self.context = context
        self.source = source
        self.built = False
        self.kernel_infos: Dict[str, KernelSourceInfo] = {}
        #: Populated by the MultiCL build hook: transformed minikernel source
        #: (the paper builds the minikernels into a separate binary).
        self.minikernel_source: Optional[str] = None
        self.minikernel_infos: Dict[str, KernelSourceInfo] = {}
        self._kernels: List[Kernel] = []

    def build(self) -> "Program":
        """clBuildProgram: parse the source, run scheduler build hooks."""
        if self.built:
            return self
        infos = parse_program_source(self.source)
        if not infos:
            raise BuildProgramFailure("no kernels found in program source")
        self.kernel_infos = {k.name: k for k in infos}
        build_time = _BUILD_BASE_S + _BUILD_PER_CHAR_S * len(self.source)
        scheduler = self.context.scheduler
        if scheduler is not None:
            # Static kernel transformations (e.g. minikernel creation) happen
            # here; the extra binary doubles the build time (Section V.C.2).
            scheduler.on_program_build(self)
            if self.minikernel_source is not None:
                build_time *= 2.0
        self.context.platform.engine.elapse(
            build_time, category="build", name=f"build-program"
        )
        self.built = True
        return self

    def create_kernel(self, name: str) -> Kernel:
        """clCreateKernel."""
        if not self.built:
            raise InvalidProgram("program must be built before creating kernels")
        info = self.kernel_infos.get(name)
        if info is None:
            raise InvalidKernel(
                f"no kernel {name!r} in program; available: "
                f"{sorted(self.kernel_infos)}"
            )
        kernel = Kernel(self, info)
        self._kernels.append(kernel)
        return kernel

    def kernel_names(self) -> List[str]:
        if not self.built:
            raise InvalidProgram("program must be built first")
        return sorted(self.kernel_infos)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "built" if self.built else "unbuilt"
        return f"Program({state}, kernels={sorted(self.kernel_infos) or '?'})"
