"""cl_kernel objects and per-device launch configurations.

Besides the stock OpenCL surface (argument setting, NDRange launches), this
implements the paper's proposed ``clSetKernelWorkGroupInfo`` (Section IV.C):
a kernel can carry one launch configuration *per device*, set ahead of time,
so the scheduler can launch — and profile — the kernel with the right
configuration on whichever device it dynamically picks.  Configurations
passed to ``clEnqueueNDRangeKernel`` are ignored for devices that have a
pre-set configuration, exactly as the paper specifies.

Timing comes from a cost model.  The default model is built from the
``// @multicl`` source annotations (flops/bytes per work item, divergence,
irregularity, per-device-kind efficiency); workloads may override it with
``set_cost_model`` for costs that are not per-item linear.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.hardware.cost import KernelCost
from repro.hardware.specs import DeviceKind, DeviceSpec
from repro.ocl.errors import (
    InvalidKernelArgs,
    InvalidValue,
    InvalidWorkGroupSize,
)
from repro.ocl.memory import Buffer
from repro.ocl.source import KernelSourceInfo

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.program import Program

__all__ = ["WorkGroupConfig", "Kernel", "CostModel", "HostFunction"]

#: Signature of a kernel cost model: (device spec, launch config, args) -> cost.
CostModel = Callable[[DeviceSpec, "WorkGroupConfig", Dict[int, Any]], KernelCost]

#: Signature of a functional payload: receives {arg_name: value} where buffer
#: arguments are delivered as their numpy arrays.
HostFunction = Callable[[Dict[str, Any]], None]

_EFF_KEYS = {
    "cpu_eff": DeviceKind.CPU,
    "gpu_eff": DeviceKind.GPU,
    "accel_eff": DeviceKind.ACCELERATOR,
}


#: (global_size, local_size) -> validated WorkGroupConfig (frozen, shared).
_config_memo: Dict[Any, "WorkGroupConfig"] = {}


def _prod(xs: Sequence[int]) -> int:
    out = 1
    for x in xs:
        out *= int(x)
    return out


@dataclass(frozen=True)
class WorkGroupConfig:
    """An NDRange launch configuration."""

    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.global_size) <= 3:
            raise InvalidWorkGroupSize(
                f"global_size must have 1-3 dimensions, got {self.global_size}"
            )
        if len(self.local_size) != len(self.global_size):
            raise InvalidWorkGroupSize(
                f"local_size {self.local_size} dimensionality does not match "
                f"global_size {self.global_size}"
            )
        if any(g <= 0 for g in self.global_size) or any(
            l <= 0 for l in self.local_size
        ):
            raise InvalidWorkGroupSize("sizes must be positive")

    @property
    def work_items(self) -> int:
        return _prod(self.global_size)

    @property
    def workgroup_size(self) -> int:
        return _prod(self.local_size)

    @property
    def num_workgroups(self) -> int:
        return _prod(
            math.ceil(g / l) for g, l in zip(self.global_size, self.local_size)
        )

    @staticmethod
    def normalize(
        global_size: Sequence[int],
        local_size: Optional[Sequence[int]] = None,
    ) -> "WorkGroupConfig":
        gs = tuple(int(g) for g in global_size)
        if local_size is None:
            # OpenCL lets the implementation pick; we pick 64 linearised.
            ls: Tuple[int, ...] = (min(64, gs[0]),) + (1,) * (len(gs) - 1)
        else:
            ls = tuple(int(l) for l in local_size)
        # Memoised: enqueue loops launch the same configuration over and
        # over, and __post_init__ validation is pure in (gs, ls).
        cached = _config_memo.get((gs, ls))
        if cached is not None:
            return cached
        config = WorkGroupConfig(gs, ls)
        if len(_config_memo) > 256:
            _config_memo.clear()
        _config_memo[(gs, ls)] = config
        return config


class Kernel:
    """A kernel object bound to a built program."""

    def __init__(self, program: "Program", info: KernelSourceInfo) -> None:
        self.program = program
        self.info = info
        self.name = info.name
        self.args: Dict[int, Any] = {}
        #: device name -> WorkGroupConfig, set via clSetKernelWorkGroupInfo
        self.device_configs: Dict[str, WorkGroupConfig] = {}
        self._cost_model: Optional[CostModel] = None
        self.host_fn: Optional[HostFunction] = None
        #: WorkGroupConfig -> KernelCost for the annotation cost model
        #: (pure in config; KernelCost is frozen, so sharing is safe).
        self._annotation_cost_memo: Dict[WorkGroupConfig, KernelCost] = {}

    # ------------------------------------------------------------------
    # Standard OpenCL surface
    # ------------------------------------------------------------------
    def set_arg(self, index: int, value: Any) -> None:
        """clSetKernelArg."""
        if index < 0 or index >= len(self.info.args):
            raise InvalidKernelArgs(
                f"kernel {self.name!r} has {len(self.info.args)} args, "
                f"index {index} invalid"
            )
        expected_buffer = self.info.args[index].is_buffer
        got_buffer = isinstance(value, Buffer)
        if expected_buffer and not got_buffer:
            raise InvalidKernelArgs(
                f"kernel {self.name!r} arg {index} "
                f"({self.info.args[index].declaration!r}) expects a Buffer"
            )
        if not expected_buffer and got_buffer:
            raise InvalidKernelArgs(
                f"kernel {self.name!r} arg {index} "
                f"({self.info.args[index].declaration!r}) expects a scalar"
            )
        self.args[index] = value

    def check_args_set(self) -> None:
        # set_arg validates 0 <= index < len(info.args), so a full dict
        # means every argument is set — the common (per-enqueue) case.
        if len(self.args) == len(self.info.args):
            return
        missing = [
            i for i in range(len(self.info.args)) if i not in self.args
        ]
        if missing:
            raise InvalidKernelArgs(
                f"kernel {self.name!r}: arguments {missing} not set"
            )

    def buffer_args(self) -> Dict[int, Buffer]:
        """Index -> Buffer for all buffer-typed arguments currently set."""
        return {i: v for i, v in self.args.items() if isinstance(v, Buffer)}

    def written_buffer_args(self) -> Dict[int, Buffer]:
        """Buffer args the kernel writes (``writes=`` annotation, else all)."""
        bufs = self.buffer_args()
        if not self.info.writes:
            return bufs
        return {i: b for i, b in bufs.items() if i in self.info.writes}

    # ------------------------------------------------------------------
    # Proposed extension: clSetKernelWorkGroupInfo (paper Section IV.C)
    # ------------------------------------------------------------------
    def set_work_group_info(
        self,
        device_name: str,
        global_size: Sequence[int],
        local_size: Optional[Sequence[int]] = None,
    ) -> None:
        """Pre-set the launch configuration to use on ``device_name``.

        May be invoked at any time before the launch.  Once set, the launch
        configuration passed to ``clEnqueueNDRangeKernel`` is ignored for
        this device.
        """
        self.device_configs[device_name] = WorkGroupConfig.normalize(
            global_size, local_size
        )

    def effective_config(
        self, device_name: str, launch: WorkGroupConfig
    ) -> WorkGroupConfig:
        """Configuration actually used on ``device_name``."""
        return self.device_configs.get(device_name, launch)

    def sub_range_config(
        self,
        device_name: str,
        launch: WorkGroupConfig,
        lo: int,
        hi: int,
    ) -> WorkGroupConfig:
        """Launch configuration for the ``[lo, hi)`` slice of dimension 0.

        Used by multi-device work-splitting: the sub-range keeps the full
        extent in dimensions 1+, inherits the device's effective local size
        (per-device override included), and clips it to the slice so tiny
        shares remain valid configurations.
        """
        if not 0 <= lo < hi <= launch.global_size[0]:
            raise InvalidValue(
                f"kernel {self.name!r}: sub-range [{lo}:{hi}) outside "
                f"global dimension 0 of {launch.global_size}"
            )
        base = self.effective_config(device_name, launch)
        global_size = (hi - lo,) + tuple(launch.global_size[1:])
        local = tuple(
            base.local_size[i] if i < len(base.local_size) else 1
            for i in range(len(global_size))
        )
        local = tuple(min(l, g) for l, g in zip(local, global_size))
        return WorkGroupConfig.normalize(global_size, local)

    # ------------------------------------------------------------------
    # Cost and functional payload
    # ------------------------------------------------------------------
    def set_cost_model(self, fn: CostModel) -> None:
        """Override the annotation-derived cost model."""
        self._cost_model = fn

    def set_host_function(self, fn: HostFunction) -> None:
        """Attach a functional numpy payload executed when the kernel runs."""
        self.host_fn = fn

    def launch_cost(
        self, spec: DeviceSpec, launch: WorkGroupConfig
    ) -> KernelCost:
        """Cost of launching this kernel on ``spec`` with ``launch`` config.

        Honours the per-device configuration override before consulting the
        cost model.
        """
        config = self.effective_config(spec.name, launch)
        return self.config_cost(spec, config)

    def config_cost(self, spec: DeviceSpec, config: WorkGroupConfig) -> KernelCost:
        """Cost for an explicit configuration, bypassing the per-device
        override (work-splitting costs sub-ranges that already honoured it)."""
        if self._cost_model is not None:
            return self._cost_model(spec, config, self.args)
        return self._annotation_cost(config)

    def _annotation_cost(self, config: WorkGroupConfig) -> KernelCost:
        cached = self._annotation_cost_memo.get(config)
        if cached is not None:
            return cached
        a = self.info.annotations
        if "flops_per_item" not in a and "bytes_per_item" not in a:
            raise InvalidValue(
                f"kernel {self.name!r} has neither @multicl annotations nor a "
                f"cost model; cannot estimate launch cost"
            )
        items = config.work_items
        eff = {
            kind: a[key] for key, kind in _EFF_KEYS.items() if key in a
        }
        cost = KernelCost(
            flops=a.get("flops_per_item", 0.0) * items,
            bytes=a.get("bytes_per_item", 0.0) * items,
            work_items=items,
            workgroup_size=config.workgroup_size,
            divergence=a.get("divergence", 0.0),
            irregularity=a.get("irregularity", 0.0),
            efficiency=eff,
        )
        self._annotation_cost_memo[config] = cost
        return cost

    def run_host_function(self) -> None:
        """Execute the functional payload (if any) against current args."""
        if self.host_fn is None:
            return
        named: Dict[str, Any] = {}
        for i, arg in enumerate(self.info.args):
            value = self.args.get(i)
            if isinstance(value, Buffer):
                named[arg.name] = value.array
            else:
                named[arg.name] = value
        self.host_fn(named)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Kernel({self.name!r}, args_set={sorted(self.args)})"
