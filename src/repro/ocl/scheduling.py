"""Scheduler plug-in interface between the OpenCL layer and MultiCL.

The OpenCL layer stays scheduler-agnostic: a context created with the
proposed ``CL_CONTEXT_SCHEDULER`` property instantiates a scheduler through
this registry, and queues/programs/sync points call the hooks below.  The
concrete policies (round-robin, autofit) live in :mod:`repro.core.scheduler`
and register themselves on import — mirroring how the paper's extensions
"enable different schedulers to be composed and built into an OpenCL
runtime" (Section I).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.ocl.enums import ContextScheduler
from repro.ocl.errors import InvalidValue

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.context import Context
    from repro.ocl.program import Program
    from repro.ocl.queue import Command, CommandQueue

__all__ = [
    "SchedulerBase",
    "register_scheduler",
    "create_scheduler",
    "registered_policies",
]


class SchedulerBase(ABC):
    """Hooks a context-wide scheduler implements."""

    def __init__(self, context: "Context") -> None:
        self.context = context

    # -- lifecycle -------------------------------------------------------
    def on_queue_created(self, queue: "CommandQueue") -> None:
        """A command queue joined the context."""

    def on_program_build(self, program: "Program") -> None:
        """Static kernel-transformation hook (minikernel creation)."""

    # -- command flow ----------------------------------------------------
    def on_enqueue(self, queue: "CommandQueue", command: "Command") -> None:
        """A command was deferred on an auto-scheduled queue."""

    @abstractmethod
    def on_sync(
        self,
        pool: Sequence["CommandQueue"],
        trigger_queue: Optional["CommandQueue"] = None,
    ) -> None:
        """Synchronization trigger: map the pooled queues and issue their
        deferred commands (the implementation must leave ``pool`` queues
        with empty pending lists)."""

    # -- fault handling ----------------------------------------------------
    def on_device_failure(self, device: str) -> None:
        """``device`` permanently failed; drop any state that names it
        (sticky assignments, cached measurements) before the degraded-pool
        rescheduling pass runs."""

    # -- explicit regions --------------------------------------------------
    def on_region_start(self, queue: "CommandQueue") -> None:
        """clSetCommandQueueSchedProperty started a scheduling region."""

    def on_region_stop(self, queue: "CommandQueue") -> None:
        """clSetCommandQueueSchedProperty stopped a scheduling region."""


#: Policies are keyed by the value passed in the context properties: the
#: built-in ContextScheduler members, or any hashable token (string, int)
#: for user-registered policies — the paper's Section I: "we enable
#: different schedulers to be composed and built into an OpenCL runtime".
_REGISTRY: Dict[object, Callable[["Context"], SchedulerBase]] = {}


def register_scheduler(
    policy: object, factory: Callable[["Context"], SchedulerBase]
) -> None:
    """Register a factory for a global scheduling policy.

    ``policy`` is the token applications pass as the
    ``CL_CONTEXT_SCHEDULER`` property value.  Built-in policies use
    :class:`~repro.ocl.enums.ContextScheduler` members; downstream code may
    register its own tokens (e.g. a string) and plug in a custom
    :class:`SchedulerBase` subclass.
    """
    _REGISTRY[policy] = factory


def registered_policies() -> List[object]:
    return sorted(_REGISTRY, key=repr)


def create_scheduler(policy: object, context: "Context") -> SchedulerBase:
    """Instantiate the scheduler for ``policy``; imports the MultiCL package
    on first use so the built-in policies are registered."""
    if policy not in _REGISTRY:
        # MultiCL registers ROUND_ROBIN and AUTO_FIT at import time.
        import repro.core  # noqa: F401  (side effect: registration)
    try:
        factory = _REGISTRY[policy]
    except KeyError:
        raise InvalidValue(
            f"no scheduler registered for policy {policy!r}; "
            f"known: {registered_policies()}"
        )
    return factory(context)
