"""Buffers (cl_mem) with residency tracking.

A buffer's *functional contents* live in one shared numpy array (or nowhere,
for modelled-only workloads).  What the runtime tracks per device is
*residency*: the set of holders ("host" or a device name) that currently
have a valid copy.  Residency drives every data-movement cost in the
reproduction:

* explicit Read/Write commands move host↔device copies;
* launching a kernel on a device where an argument is not resident inserts
  an implicit migration (H2D from host, or staged D2D from another device);
* the MultiCL kernel profiler stages inputs to candidate devices and — with
  the Section V.C.3 data-caching optimisation — *keeps* those staged copies
  so post-mapping execution needs no new transfer.
"""

from __future__ import annotations

import itertools
from typing import Optional, Set, TYPE_CHECKING

import numpy as np

from repro.ocl.enums import MemFlag
from repro.ocl.errors import InvalidValue

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.context import Context

__all__ = ["Buffer", "HOST"]

#: Residency holder name for host memory.
HOST = "host"

_ids = itertools.count(1)


class _ResidencySet(set):
    """A buffer's ``valid_on`` set, observing its own mutations.

    Every holder added to / removed from the set is reported to the owning
    context, which maintains per-device resident-byte counters so the
    scheduler's memory-fit check costs O(1) per (queue, device) pair instead
    of summing over every buffer in the context.  All ``set`` mutators that
    appear in the codebase (and the obvious rest) are intercepted; wholesale
    reassignment of ``Buffer.valid_on`` goes through the property setter.
    """

    __slots__ = ("_buffer",)

    def __init__(self, buffer: "Buffer", holders=()) -> None:
        super().__init__()
        self._buffer = buffer
        for h in holders:
            self.add(h)

    def add(self, holder: str) -> None:
        if holder not in self:
            set.add(self, holder)
            self._buffer._residency_changed(holder, +1)

    def discard(self, holder: str) -> None:
        if holder in self:
            set.discard(self, holder)
            self._buffer._residency_changed(holder, -1)

    def remove(self, holder: str) -> None:
        if holder not in self:
            raise KeyError(holder)
        self.discard(holder)

    def pop(self) -> str:
        holder = set.pop(self)
        self._buffer._residency_changed(holder, -1)
        return holder

    def clear(self) -> None:
        for holder in tuple(self):
            self.discard(holder)

    def update(self, *others) -> None:
        for other in others:
            for holder in other:
                self.add(holder)

    def difference_update(self, *others) -> None:
        for other in others:
            for holder in tuple(other):
                self.discard(holder)

    def intersection_update(self, *others) -> None:
        keep = set(self)
        for other in others:
            keep &= set(other)
        for holder in tuple(self):
            if holder not in keep:
                self.discard(holder)

    def symmetric_difference_update(self, other) -> None:
        for holder in tuple(other):
            if holder in self:
                self.discard(holder)
            else:
                self.add(holder)

    def __ior__(self, other):
        self.update(other)
        return self

    def __isub__(self, other):
        self.difference_update(other)
        return self

    def __iand__(self, other):
        self.intersection_update(other)
        return self

    def __ixor__(self, other):
        self.symmetric_difference_update(other)
        return self


class Buffer:
    """A context-scoped memory object.

    Parameters
    ----------
    context:
        Owning :class:`~repro.ocl.context.Context`.
    nbytes:
        Buffer size in bytes (drives all transfer costs).
    flags:
        :class:`~repro.ocl.enums.MemFlag` bitfield.
    host_array:
        Optional numpy array holding the buffer's functional contents.  When
        provided with ``MemFlag.COPY_HOST_PTR``, the buffer starts valid on
        the host.  Modelled-only buffers pass ``None``.
    name:
        Optional label for traces and debugging.
    """

    def __init__(
        self,
        context: "Context",
        nbytes: int,
        flags: MemFlag = MemFlag.READ_WRITE,
        host_array: Optional[np.ndarray] = None,
        name: Optional[str] = None,
    ) -> None:
        if nbytes <= 0:
            raise InvalidValue(f"buffer size must be positive, got {nbytes}")
        if host_array is not None and host_array.nbytes == 0:
            raise InvalidValue("host_array must be non-empty when provided")
        self.context = context
        self.nbytes = int(nbytes)
        self.flags = flags
        self.array = host_array
        self.name = name or f"buf{next(_ids)}"
        self._valid_on: _ResidencySet = _ResidencySet(self)
        #: True after the buffer's only valid copy died with its device and
        #: residency fell back to the host shadow; cleared by the next
        #: write (:meth:`mark_exclusive`).  The sanitizer flags reads of
        #: such buffers that are not ordered behind a fresh write.
        self.host_shadow_stale = False
        #: parent buffer when this is a sub-buffer (clCreateSubBuffer)
        self.parent: Optional["Buffer"] = None
        #: byte offset into the parent's data store
        self.origin = 0
        if flags & MemFlag.COPY_HOST_PTR:
            if host_array is None:
                raise InvalidValue("COPY_HOST_PTR requires a host_array")
            self._valid_on.add(HOST)
        context._register_buffer(self)

    @property
    def valid_on(self) -> Set[str]:
        """Holders ("host" or device names) with a valid copy.

        The set observes its own mutations to keep the context's per-device
        resident-byte counters exact; assigning a plain set to this property
        re-accounts the difference.
        """
        return self._valid_on

    @valid_on.setter
    def valid_on(self, holders) -> None:
        current = self._valid_on
        target = set(holders)
        for holder in tuple(current):
            if holder not in target:
                current.discard(holder)
        for holder in target:
            current.add(holder)

    def _residency_changed(self, holder: str, sign: int) -> None:
        """Hook from :class:`_ResidencySet`: a copy appeared/vanished."""
        if holder != HOST:
            self.context._note_residency(holder, sign * self.nbytes)

    # ------------------------------------------------------------------
    # Sub-buffers (clCreateSubBuffer)
    # ------------------------------------------------------------------
    def create_sub_buffer(
        self, origin: int, nbytes: int, name: Optional[str] = None
    ) -> "Buffer":
        """OpenCL 1.1 ``clCreateSubBuffer``: a region of this buffer.

        The sub-buffer shares the parent's functional data store (a numpy
        view when the offsets align with the parent's dtype) but tracks its
        *own* residency — per the OpenCL rule that concurrent use of a
        parent and an overlapping sub-buffer is undefined, no coherency is
        maintained between the two; use one or the other for a region.
        Sub-buffers of sub-buffers are rejected, as in OpenCL.
        """
        if self.parent is not None:
            raise InvalidValue("cannot create a sub-buffer of a sub-buffer")
        if origin < 0 or nbytes <= 0 or origin + nbytes > self.nbytes:
            raise InvalidValue(
                f"sub-buffer region [{origin}, {origin + nbytes}) outside "
                f"parent of {self.nbytes} bytes"
            )
        view = None
        if self.array is not None:
            itemsize = self.array.itemsize
            if origin % itemsize == 0 and nbytes % itemsize == 0:
                flat = self.array.reshape(-1)
                view = flat[origin // itemsize : (origin + nbytes) // itemsize]
        sub = Buffer(
            self.context,
            nbytes,
            flags=self.flags & ~MemFlag.COPY_HOST_PTR,
            host_array=view,
            name=name or f"{self.name}[{origin}:{origin + nbytes}]",
        )
        sub.parent = self
        sub.origin = origin
        # The region inherits the parent's current residency.
        sub.valid_on = set(self.valid_on)
        return sub

    # ------------------------------------------------------------------
    # Residency bookkeeping
    # ------------------------------------------------------------------
    def is_valid_on(self, holder: str) -> bool:
        return holder in self.valid_on

    def mark_valid(self, holder: str) -> None:
        """Add ``holder`` to the valid set (a copy landed there)."""
        self.valid_on.add(holder)

    def mark_exclusive(self, holder: str) -> None:
        """The copy on ``holder`` is now the only valid one (it was written)."""
        self.valid_on = {holder}
        self.host_shadow_stale = False

    def invalidate(self, holder: str) -> None:
        self.valid_on.discard(holder)

    def drop_device(self, device: str) -> bool:
        """Discard the copy on ``device`` (the device failed).

        If that was the last valid copy, residency falls back to the host
        shadow: functional payloads run on the host-side numpy array at
        issue time, so the host copy is always current in this simulator.
        Returns ``True`` if the host fallback was needed.
        """
        if device not in self.valid_on:
            return False
        self.valid_on.discard(device)
        if not self.valid_on:
            self.valid_on.add(HOST)
            self.host_shadow_stale = True
            return True
        return False

    def any_valid_device(self) -> Optional[str]:
        """Some device holding a valid copy, or None."""
        for h in sorted(self.valid_on):
            if h != HOST:
                return h
        return None

    @property
    def initialized(self) -> bool:
        """Whether any holder has meaningful contents."""
        return bool(self.valid_on)

    def resident_on(self, device: str) -> bool:
        """Alias for :meth:`is_valid_on` restricted to devices."""
        return device in self.valid_on and device != HOST

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Buffer({self.name!r}, {self.nbytes}B, valid_on={sorted(self.valid_on)})"
        )
