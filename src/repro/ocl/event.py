"""cl_event objects.

An event tracks one command through the deferred-issue pipeline:

* ``QUEUED`` — command recorded on its queue, not yet issued to a device
  (automatic-scheduling queues hold commands here until the scheduler maps
  the queue, exactly like MultiCL's ready-queue pool);
* ``SUBMITTED`` — issued; simulated tasks exist on device/link resources;
* ``COMPLETE`` — the command's final simulated task finished; profiling
  timestamps are available.

``Event.wait()`` is the blocking host call: it triggers the context's
scheduler if the owning queue still has deferred work, then advances the
virtual clock to the command's completion.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, TYPE_CHECKING

from repro.ocl.enums import EventStatus
from repro.ocl.errors import InvalidEventWaitList, InvalidOperation

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.queue import Command, CommandQueue
    from repro.sim.engine import SimTask

__all__ = ["Event", "wait_for_events"]

_ids = itertools.count(1)


class Event:
    """Completion handle for one enqueued command."""

    def __init__(self, queue: "CommandQueue", command: "Command") -> None:
        self.id = next(_ids)
        self.queue = queue
        self.command = command
        self.task: Optional["SimTask"] = None
        self._callbacks = []

    @property
    def status(self) -> EventStatus:
        if self.task is None:
            return EventStatus.QUEUED
        if self.task.done:
            return EventStatus.COMPLETE
        return EventStatus.SUBMITTED

    @property
    def complete(self) -> bool:
        return self.task is not None and self.task.done

    @property
    def deferred(self) -> bool:
        """Still awaiting issue: no simulated task bound, command unissued.

        The command-graph sanitizer treats deferred events as live graph
        edges; issued events are ordered before the whole pool.
        """
        return self.task is None and not self.command.issued

    # Profiling info (CL_PROFILING_COMMAND_START/END analogues) ----------
    @property
    def profile_start(self) -> float:
        if not self.complete:
            raise InvalidOperation("profiling info unavailable before completion")
        assert self.task is not None and self.task.start_time is not None
        return self.task.start_time

    @property
    def profile_end(self) -> float:
        if not self.complete:
            raise InvalidOperation("profiling info unavailable before completion")
        assert self.task is not None and self.task.end_time is not None
        return self.task.end_time

    def _bind_task(self, task: "SimTask") -> None:
        self.task = task
        for fn in self._callbacks:
            task.on_complete(lambda _t, f=fn: f(self))
        self._callbacks = []

    def set_callback(self, fn) -> None:
        """clSetEventCallback(CL_COMPLETE): run ``fn(event)`` on completion.

        Fires immediately if already complete; otherwise defers until the
        command's simulated task finishes (even if the command is still
        deferred awaiting the scheduler).
        """
        if self.complete:
            fn(self)
        elif self.task is not None:
            self.task.on_complete(lambda _t: fn(self))
        else:
            self._callbacks.append(fn)

    def wait(self) -> None:
        """Block the simulated host until this command completes."""
        if self.complete:
            return
        context = self.queue.context
        if self.task is None:
            # Command still deferred: a blocking wait is a synchronization
            # point, which is exactly when the scheduler triggers.
            context._sync_pending(trigger_queue=self.queue)
        if self.task is None:
            raise InvalidOperation(
                f"event {self.id} still unissued after scheduler trigger "
                f"(queue {self.queue.name!r})"
            )
        context.platform.engine.run_until(self.task)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(#{self.id}, {self.command.kind.value}, {self.status.name})"


def wait_for_events(events: Sequence[Event]) -> None:
    """clWaitForEvents: block until every event in the list completes."""
    if not events:
        raise InvalidEventWaitList("empty event wait list")
    contexts = {e.queue.context for e in events}
    if len(contexts) > 1:
        raise InvalidEventWaitList("events span multiple contexts")
    for e in events:
        e.wait()
