"""C-style flat OpenCL API.

Thin wrappers over the object layer so application drivers read like the
OpenCL host code the paper modifies — including the *proposed* entry points
``clSetCommandQueueSchedProperty`` and ``clSetKernelWorkGroupInfo``
(Table I).  The paper counts "about four source lines" of changes per
application; our example drivers make exactly those calls.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.hardware.specs import NodeSpec
from repro.hardware.topology import SimDevice
from repro.ocl.context import Context
from repro.ocl.enums import DeviceType, MemFlag, SchedFlag
from repro.ocl.event import Event, wait_for_events
from repro.ocl.kernel import Kernel
from repro.ocl.memory import Buffer
from repro.ocl.platform import Platform, get_platforms
from repro.ocl.program import Program
from repro.ocl.queue import CommandQueue

__all__ = [
    "clGetPlatformIDs",
    "clGetDeviceIDs",
    "clCreateSubDevices",
    "clCreateContext",
    "clCreateCommandQueue",
    "clSetCommandQueueSchedProperty",
    "clCreateBuffer",
    "clCreateProgramWithSource",
    "clBuildProgram",
    "clCreateKernel",
    "clSetKernelArg",
    "clSetKernelWorkGroupInfo",
    "clEnqueueNDRangeKernel",
    "clEnqueueWriteBuffer",
    "clEnqueueReadBuffer",
    "clEnqueueCopyBuffer",
    "clEnqueueMarker",
    "clEnqueueBarrier",
    "clWaitForEvents",
    "clFlush",
    "clFinish",
    "clReleaseCommandQueue",
]


def clGetPlatformIDs(
    node_spec: Optional[NodeSpec] = None,
    profile: bool = True,
    profile_dir: Optional[str] = None,
) -> List[Platform]:
    """Discover platforms; triggers the MultiCL device profiler."""
    return get_platforms(node_spec, profile=profile, profile_dir=profile_dir)


def clGetDeviceIDs(
    platform: Platform, device_type: DeviceType = DeviceType.ALL
) -> List[SimDevice]:
    return platform.get_devices(device_type)


def clCreateSubDevices(
    platform: Platform, device: SimDevice, count: int
) -> List[SimDevice]:
    """OpenCL 1.2 device fission (equal partition; paper Section IV.D)."""
    return platform.create_sub_devices(device.name, count)


def clCreateContext(
    platform: Platform,
    devices: Optional[Sequence[SimDevice]] = None,
    properties: Optional[Dict[int, Any]] = None,
) -> Context:
    names = [d.name for d in devices] if devices is not None else None
    return platform.create_context(names, properties)


def clCreateCommandQueue(
    context: Context,
    device: Optional[SimDevice] = None,
    properties: SchedFlag = SchedFlag.SCHED_OFF,
    name: Optional[str] = None,
    out_of_order: bool = False,
) -> CommandQueue:
    device_name = device.name if device is not None else None
    return context.create_queue(
        device_name, properties, name=name, out_of_order=out_of_order
    )


def clSetCommandQueueSchedProperty(queue: CommandQueue, flags: SchedFlag) -> None:
    """Proposed API: start/stop a scheduling region, add hint flags."""
    queue.set_sched_property(flags)


def clCreateBuffer(
    context: Context,
    flags: MemFlag = MemFlag.READ_WRITE,
    size: int = 0,
    host_ptr: Optional[np.ndarray] = None,
    name: Optional[str] = None,
) -> Buffer:
    nbytes = size if size else (host_ptr.nbytes if host_ptr is not None else 0)
    return context.create_buffer(nbytes, flags=flags, host_array=host_ptr, name=name)


def clCreateProgramWithSource(context: Context, source: str) -> Program:
    return context.create_program(source)


def clBuildProgram(program: Program) -> Program:
    return program.build()


def clCreateKernel(program: Program, name: str) -> Kernel:
    return program.create_kernel(name)


def clSetKernelArg(kernel: Kernel, index: int, value: Any) -> None:
    kernel.set_arg(index, value)


def clSetKernelWorkGroupInfo(
    kernel: Kernel,
    device: SimDevice,
    global_size: Sequence[int],
    local_size: Optional[Sequence[int]] = None,
) -> None:
    """Proposed API: per-device kernel launch configuration (Section IV.C)."""
    kernel.set_work_group_info(device.name, global_size, local_size)


def clEnqueueNDRangeKernel(
    queue: CommandQueue,
    kernel: Kernel,
    global_size: Sequence[int],
    local_size: Optional[Sequence[int]] = None,
    wait_events: Sequence[Event] = (),
) -> Event:
    return queue.enqueue_nd_range_kernel(kernel, global_size, local_size, wait_events)


def clEnqueueWriteBuffer(
    queue: CommandQueue,
    buffer: Buffer,
    host_array: Optional[np.ndarray] = None,
    nbytes: Optional[int] = None,
    wait_events: Sequence[Event] = (),
) -> Event:
    return queue.enqueue_write_buffer(buffer, host_array, nbytes, wait_events)


def clEnqueueReadBuffer(
    queue: CommandQueue,
    buffer: Buffer,
    host_array: Optional[np.ndarray] = None,
    nbytes: Optional[int] = None,
    wait_events: Sequence[Event] = (),
) -> Event:
    return queue.enqueue_read_buffer(buffer, host_array, nbytes, wait_events)


def clEnqueueCopyBuffer(
    queue: CommandQueue,
    src: Buffer,
    dst: Buffer,
    nbytes: Optional[int] = None,
    wait_events: Sequence[Event] = (),
) -> Event:
    return queue.enqueue_copy_buffer(src, dst, nbytes, wait_events)


def clEnqueueMarker(queue: CommandQueue, wait_events: Sequence[Event] = ()) -> Event:
    return queue.enqueue_marker(wait_events)


def clEnqueueBarrier(queue: CommandQueue, wait_events: Sequence[Event] = ()) -> Event:
    return queue.enqueue_barrier(wait_events)


def clWaitForEvents(events: Sequence[Event]) -> None:
    wait_for_events(events)


def clFlush(queue: CommandQueue) -> None:
    queue.flush()


def clFinish(queue: CommandQueue) -> None:
    queue.finish()


def clReleaseCommandQueue(queue: CommandQueue) -> None:
    queue.release()
