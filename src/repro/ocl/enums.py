"""OpenCL constants, including the paper's proposed extensions (Table I).

The stock subset mirrors OpenCL 1.2 names closely enough that the host code
in :mod:`repro.workloads` and :mod:`examples` reads like real OpenCL.  The
extension surface is exactly the paper's:

* ``ContextProperty.CL_CONTEXT_SCHEDULER`` — new context property;
* ``ContextScheduler.ROUND_ROBIN`` / ``AUTO_FIT`` — global policies;
* ``SchedFlag`` — the command-queue local scheduling bitfield
  (``SCHED_OFF``, ``SCHED_AUTO_STATIC``, ``SCHED_AUTO_DYNAMIC``,
  ``SCHED_KERNEL_EPOCH``, ``SCHED_EXPLICIT_REGION``, ``SCHED_ITERATIVE``,
  ``SCHED_COMPUTE_BOUND``, ``SCHED_IO_BOUND``, ``SCHED_MEMORY_BOUND``).
"""

from __future__ import annotations

import enum

__all__ = [
    "DeviceType",
    "ContextProperty",
    "ContextScheduler",
    "SchedFlag",
    "CommandKind",
    "EventStatus",
    "MemFlag",
]


class DeviceType(enum.IntFlag):
    """CL_DEVICE_TYPE_* bitfield."""

    DEFAULT = 1 << 0
    CPU = 1 << 1
    GPU = 1 << 2
    ACCELERATOR = 1 << 3
    ALL = 0xFFFFFFFF


class ContextProperty(enum.IntEnum):
    """Keys accepted in the ``properties`` list of context creation."""

    CL_CONTEXT_PLATFORM = 0x1084
    #: Proposed extension: select the global (context-wide) scheduler.
    CL_CONTEXT_SCHEDULER = 0x5001


class ContextScheduler(enum.IntEnum):
    """Values for :attr:`ContextProperty.CL_CONTEXT_SCHEDULER`."""

    #: Cycle queues over devices at trigger time; least overhead, not
    #: necessarily the optimal mapping.
    ROUND_ROBIN = 1
    #: Decide the optimal queue->device mapping when triggered.
    AUTO_FIT = 2


class SchedFlag(enum.IntFlag):
    """Proposed command-queue local scheduling properties (bitfield).

    ``SCHED_OFF`` opts a queue out of automatic scheduling (manual binding,
    the OpenCL default).  ``SCHED_AUTO_STATIC``/``SCHED_AUTO_DYNAMIC`` opt
    in, trading scheduling speed against optimality (Section V.B/V.C).
    The remaining flags select the scheduler *trigger* (epoch or explicit
    region) and provide workload *hints*.  Two capability flags go beyond
    the paper: ``SCHED_SPLIT`` (multi-device NDRange splitting) and
    ``SCHED_OVERLAP`` (transfer/compute overlap-aware issue).
    """

    SCHED_OFF = 0
    SCHED_AUTO_STATIC = 1 << 0
    SCHED_AUTO_DYNAMIC = 1 << 1
    #: Trigger scheduling when a batch of kernels (kernel epoch) synchronises.
    SCHED_KERNEL_EPOCH = 1 << 2
    #: Trigger scheduling only inside explicit start/stop code regions
    #: (marked via clSetCommandQueueSchedProperty).
    SCHED_EXPLICIT_REGION = 1 << 3
    #: Hint: workload repeats across iterations; cache and reuse profiles.
    SCHED_ITERATIVE = 1 << 4
    #: Hint: compute bound; the runtime uses minikernel profiling.
    SCHED_COMPUTE_BOUND = 1 << 5
    #: Hint: I/O (data transfer) bound.
    SCHED_IO_BOUND = 1 << 6
    #: Hint: memory-bandwidth bound.
    SCHED_MEMORY_BOUND = 1 << 7
    #: Let the scheduler split one kernel epoch across several devices by
    #: partitioning the NDRange into per-device sub-ranges (EngineCL-style
    #: work-splitting).  Requires an automatic scheduling mode.
    SCHED_SPLIT = 1 << 8
    #: Overlap-aware issue: reorder independent commands of this queue so
    #: transfers prefetch and copies run concurrently with kernels, instead
    #: of strict FIFO issue order.
    SCHED_OVERLAP = 1 << 9

    @property
    def is_auto(self) -> bool:
        """Whether the flag set opts into automatic scheduling."""
        return bool(self & (SchedFlag.SCHED_AUTO_STATIC | SchedFlag.SCHED_AUTO_DYNAMIC))

    @property
    def is_dynamic(self) -> bool:
        return bool(self & SchedFlag.SCHED_AUTO_DYNAMIC)

    @property
    def is_static(self) -> bool:
        return bool(self & SchedFlag.SCHED_AUTO_STATIC)

    @property
    def wants_split(self) -> bool:
        return bool(self & SchedFlag.SCHED_SPLIT)

    @property
    def wants_overlap(self) -> bool:
        return bool(self & SchedFlag.SCHED_OVERLAP)


#: Aliases matching the paper's prose ("SCHED_AUTO", "SCHED_MEM_BOUND").
SCHED_AUTO = SchedFlag.SCHED_AUTO_DYNAMIC
SCHED_MEM_BOUND = SchedFlag.SCHED_MEMORY_BOUND


class CommandKind(enum.Enum):
    """Kinds of commands a queue can hold."""

    WRITE_BUFFER = "write_buffer"
    READ_BUFFER = "read_buffer"
    COPY_BUFFER = "copy_buffer"
    FILL_BUFFER = "fill_buffer"
    NDRANGE_KERNEL = "ndrange_kernel"
    MARKER = "marker"
    BARRIER = "barrier"


class EventStatus(enum.IntEnum):
    """CL_* command execution statuses (subset)."""

    QUEUED = 3
    SUBMITTED = 2
    RUNNING = 1
    COMPLETE = 0


class MemFlag(enum.IntFlag):
    """CL_MEM_* flags (subset used by the drivers)."""

    READ_WRITE = 1 << 0
    WRITE_ONLY = 1 << 1
    READ_ONLY = 1 << 2
    COPY_HOST_PTR = 1 << 5
