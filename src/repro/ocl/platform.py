"""Platforms: the entry point binding a simulated node to the runtime.

``get_platforms()`` plays the role of ``clGetPlatformIds``: it creates a
platform over a node spec (the paper's testbed by default) and — as in
MultiCL — triggers the *device profiler*, which loads static device profiles
from the on-disk cache or measures them with microbenchmarks on a cache miss
(Section V.A).  Pass ``profile=False`` to skip profiling for scheduler-less
unit tests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.hardware.presets import aji_cluster15_node
from repro.hardware.specs import DeviceKind, NodeSpec
from repro.hardware.topology import SimDevice, SimNode
from repro.ocl.context import Context
from repro.ocl.enums import DeviceType
from repro.ocl.errors import InvalidDevice
from repro.sim.engine import SimEngine

__all__ = ["Platform", "get_platforms"]

_KIND_TO_TYPE = {
    DeviceKind.CPU: DeviceType.CPU,
    DeviceKind.GPU: DeviceType.GPU,
    DeviceKind.ACCELERATOR: DeviceType.ACCELERATOR,
}


class Platform:
    """One OpenCL platform over one simulated node.

    Each platform owns a fresh :class:`~repro.sim.engine.SimEngine`, so
    experiments are isolated: creating a new platform resets virtual time.
    """

    def __init__(
        self,
        node_spec: Optional[NodeSpec] = None,
        profile: bool = True,
        profile_dir: Optional[str] = None,
        duplex_links: Optional[bool] = None,
    ) -> None:
        self.engine = SimEngine()
        if duplex_links is None:
            # Overlap-aware contexts need independent upload/download DMA
            # engines to actually overlap; resolve from the same env opt-in.
            from repro.ocl.overlap import overlap_enabled_from_env

            duplex_links = overlap_enabled_from_env()
        #: separate per-direction link resources (see SimNode.duplex_links)
        self.duplex_links = bool(duplex_links)
        # A ClusterSpec (SnuCL cluster mode) binds through SimCluster but
        # exposes the same interface; everything above is agnostic.
        self._cluster_spec = None
        if node_spec is not None and hasattr(node_spec, "flattened"):
            from repro.cluster.topology import SimCluster

            self._cluster_spec = node_spec
            self.node = SimCluster(  # type: ignore[arg-type]
                self.engine, node_spec, duplex_links=self.duplex_links
            )
            self.spec = self.node.spec
        else:
            self.spec = node_spec if node_spec is not None else aji_cluster15_node()
            self.node = SimNode(self.engine, self.spec, duplex_links=self.duplex_links)
        self.name = f"MultiCL simulated platform ({self.spec.name})"
        self.vendor = "repro"
        self._device_profile = None
        self._profile_dir = profile_dir
        self._contexts_created = 0
        #: devices taken offline by fault injection (permanent failures)
        self._failed_devices: set = set()
        if profile:
            # Device profiling is invoked once during clGetPlatformIds
            # (paper Section V.A); with a warm cache this reads a JSON file
            # and charges no simulated time.
            _ = self.device_profile

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------
    @property
    def device_names(self) -> List[str]:
        return [d.name for d in self.spec.devices]

    def get_devices(self, device_type: DeviceType = DeviceType.ALL) -> List[SimDevice]:
        """clGetDeviceIDs."""
        out = []
        for dev in self.node.device_list():
            if device_type == DeviceType.ALL or (
                _KIND_TO_TYPE[dev.spec.kind] & device_type
            ):
                out.append(dev)
        if not out:
            raise InvalidDevice(f"no devices of type {device_type!r} on platform")
        return out

    def device(self, name: str) -> SimDevice:
        return self.node.device(name)

    # ------------------------------------------------------------------
    # Device availability (fault injection)
    # ------------------------------------------------------------------
    def mark_device_failed(self, name: str) -> None:
        """Take ``name`` offline permanently (injected hardware failure)."""
        if name not in self.device_names:
            raise InvalidDevice(f"cannot fail unknown device {name!r}")
        self._failed_devices.add(name)

    def is_available(self, name: str) -> bool:
        """Whether ``name`` is still serving work."""
        return name not in self._failed_devices

    @property
    def available_device_names(self) -> List[str]:
        """Device names in spec order, minus failed devices."""
        return [n for n in self.device_names if n not in self._failed_devices]

    # ------------------------------------------------------------------
    # Device profiles (MultiCL's static device profiler)
    # ------------------------------------------------------------------
    @property
    def device_profile(self):
        """The static device profile (measured or loaded from cache).

        Lazily imports the MultiCL package so :mod:`repro.ocl` stays usable
        standalone.
        """
        if self._device_profile is None:
            from repro.core.device_profiler import get_or_measure

            self._device_profile = get_or_measure(self, cache_dir=self._profile_dir)
        return self._device_profile

    # ------------------------------------------------------------------
    # Device fission (clCreateSubDevices, paper Section IV.D)
    # ------------------------------------------------------------------
    def create_sub_devices(self, device_name: str, count: int) -> List[SimDevice]:
        """Partition ``device_name`` equally into ``count`` sub-devices.

        The parent is replaced in the platform's device list; sub-devices
        share the parent's physical host link (their transfers contend)
        and the scheduler treats them uniformly, as the paper specifies.
        Must be called before any context is created, and invalidates the
        static device profile (the node configuration changed, so the
        profiler re-runs or reloads its per-configuration cache).
        """
        if self._contexts_created:
            raise InvalidDevice(
                "clCreateSubDevices must be called before creating contexts"
            )
        from repro.hardware.fission import fission_node_spec

        if self._cluster_spec is not None:
            # Cluster platform: fission applies to the root node (splitting
            # a *remote* device would need remote-runtime cooperation the
            # real SnuCL cluster mode does not provide either).
            import dataclasses

            from repro.cluster.spec import ClusterSpec
            from repro.cluster.topology import SimCluster

            cluster = self._cluster_spec
            if cluster.device_node_index(device_name) != 0:
                raise InvalidDevice(
                    f"cannot fission remote device {device_name!r}; only "
                    f"root-node devices can be partitioned"
                )
            new_root, sub_names = fission_node_spec(
                cluster.root, device_name, count
            )
            self._cluster_spec = ClusterSpec(
                name=cluster.name,
                nodes=(new_root,) + tuple(cluster.nodes[1:]),
                nic=cluster.nic,
            )
            self.node = SimCluster(
                self.engine, self._cluster_spec, duplex_links=self.duplex_links
            )
            self.spec = self.node.spec
        else:
            new_spec, sub_names = fission_node_spec(self.spec, device_name, count)
            self.spec = new_spec
            self.node = SimNode(self.engine, new_spec, duplex_links=self.duplex_links)
        self.name = f"MultiCL simulated platform ({self.spec.name})"
        self._device_profile = None  # configuration changed: re-profile
        return [self.node.device(n) for n in sub_names]

    # ------------------------------------------------------------------
    # Contexts
    # ------------------------------------------------------------------
    def create_context(
        self,
        device_names: Optional[Sequence[str]] = None,
        properties: Optional[Dict[int, Any]] = None,
    ) -> Context:
        """clCreateContext (with the proposed CL_CONTEXT_SCHEDULER)."""
        self._contexts_created += 1
        return Context(self, device_names, properties)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Platform({self.spec.name!r}, devices={self.device_names})"


def get_platforms(
    node_spec: Optional[NodeSpec] = None,
    profile: bool = True,
    profile_dir: Optional[str] = None,
    duplex_links: Optional[bool] = None,
) -> List[Platform]:
    """clGetPlatformIds: one simulated platform per call."""
    return [
        Platform(
            node_spec,
            profile=profile,
            profile_dir=profile_dir,
            duplex_links=duplex_links,
        )
    ]
