"""Overlap-aware pool issue: transfer/compute overlap via DAG reordering.

FIFO pool issue (:meth:`~repro.ocl.context.Context.issue_pool`) walks each
queue head-of-line, so an in-order queue's H2D transfer for iteration *i+1*
cannot even be *submitted* until iteration *i*'s kernel has been issued —
the link sits idle while the device computes, and vice versa.  Real OpenCL
runtimes hide this with per-device copy engines and reordering command
processors (cf. Lázaro-Muñoz et al., PAPERS.md); this module reproduces
that behaviour for queues that opt in with ``SCHED_OVERLAP`` (or contexts
created with ``MULTICL_OVERLAP`` / ``MultiCL(overlap=True)``).

The issuer builds the pool's command DAG (:mod:`repro.analysis.graph`) and
relaxes eligible in-order queues' program order down to what the memory
model actually requires:

* explicit wait-list edges (producer before waiter) are kept;
* markers/barriers remain full fences within their queue;
* for every pair of commands touching a common buffer with at least one
  writer, the original happens-before direction is restored as an explicit
  edge — so reordering can never introduce a race the FIFO order did not
  already have (the sanitizer's own conflict rule, applied in reverse);
* everything else may reorder: commands issue from a dependency-driven
  ready heap that prefers transfers over kernels (prefetch), letting the
  simulator's copy-engine resources run concurrently with compute.

Relaxed commands issue with explicit ``ordering_deps`` instead of the
implicit in-order tail chain; a zero-duration per-queue join task restores
the queue's tail so later epochs and ``finish()`` see in-order semantics
at the epoch boundary.  Out-of-order queues and non-opted queues keep
their exact FIFO-mode dependency structure (only global submission order
— which carries no semantics for them — differs).

The relaxation is *checked*, not assumed: after building the relaxed edge
set, every conflicting pair that was ordered in the original graph is
verified to still be ordered in the same direction; a violation raises
instead of issuing.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, List, Optional, Sequence, Set, TYPE_CHECKING

from repro.analysis.graph import CommandGraph, CommandNode, build_command_graph
from repro.ocl.enums import CommandKind, SchedFlag
from repro.ocl.errors import InvalidOperation

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.context import Context
    from repro.ocl.queue import CommandQueue
    from repro.sim.engine import SimTask

__all__ = [
    "OVERLAP_ENV",
    "OVERLAP_PROPERTY_KEY",
    "overlap_enabled_from_env",
    "issue_pool_overlap",
]

#: Context property key opting the whole context into overlap-aware issue
#: (wins over the environment variable when present).
OVERLAP_PROPERTY_KEY = "multicl.overlap"

#: Context-wide overlap opt-in: every in-order queue in a scheduled pool
#: behaves as if it carried ``SCHED_OVERLAP``.
OVERLAP_ENV = "MULTICL_OVERLAP"

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})

_OVERLAP_MASK = SchedFlag.SCHED_OVERLAP.value

#: Issue priority by command kind: feed the copy engines first (prefetch),
#: then result read-backs, then compute, then pure synchronisation points.
_KIND_RANK = {
    CommandKind.WRITE_BUFFER: 0,
    CommandKind.FILL_BUFFER: 0,
    CommandKind.COPY_BUFFER: 0,
    CommandKind.READ_BUFFER: 1,
    CommandKind.NDRANGE_KERNEL: 2,
    CommandKind.MARKER: 3,
    CommandKind.BARRIER: 3,
}


def overlap_enabled_from_env() -> bool:
    raw = os.environ.get(OVERLAP_ENV)
    return raw is not None and raw.strip().lower() in _TRUE_WORDS


def _queue_eligible(context: "Context", queue: "CommandQueue") -> bool:
    """Only in-order queues are relaxed: out-of-order queues already carry
    their minimal ordering explicitly (wait lists + barriers)."""
    if queue.out_of_order:
        return False
    return context.overlap or bool(queue.sched_flags.value & _OVERLAP_MASK)


def _conflicts(a: CommandNode, b: CommandNode) -> bool:
    """Same-buffer access with at least one writer (the sanitizer's rule)."""
    if not a.writes and not b.writes:
        return False
    aw = {id(x) for x in a.writes}
    bw = {id(x) for x in b.writes}
    if aw & ({id(x) for x in b.reads} | bw):
        return True
    return bool(bw & {id(x) for x in a.reads})


def _reachable(succ: List[List[int]], n: int) -> List[int]:
    """Per-node bitmask of transitively reachable nodes over ``succ``."""
    masks = [0] * n
    # Reverse topological-ish sweep is unnecessary at pool scale; plain
    # DFS per node with memoisation on completed nodes.
    state = [0] * n  # 0 = unvisited, 1 = done

    def visit(start: int) -> int:
        stack = [start]
        order: List[int] = []
        seen = {start}
        while stack:
            cur = stack.pop()
            order.append(cur)
            for s in succ[cur]:
                if state[s] or s in seen:
                    continue
                seen.add(s)
                stack.append(s)
        # Process in reverse discovery order; cycles (which the caller
        # rejects separately via the topo stall path) degrade to a safe
        # under-approximation only for the erroring run.
        for cur in reversed(order):
            m = 0
            for s in succ[cur]:
                m |= (1 << s) | masks[s]
            masks[cur] = m
            state[cur] = 1
        return masks[start]

    for i in range(n):
        if not state[i]:
            visit(i)
    return masks


def issue_pool_overlap(
    context: "Context", queues: Sequence["CommandQueue"]
) -> None:
    """Issue every deferred command of ``queues`` in overlap-aware order."""
    graph: CommandGraph = build_command_graph(queues)
    nodes = graph.nodes
    n = len(nodes)
    if n == 0:
        return
    engine = context.platform.engine

    eligible_q = {id(q): _queue_eligible(context, q) for q in queues}
    by_cmd = {id(node.command): node for node in nodes}

    # ------------------------------------------------------------------
    # Relaxed issue-order predecessors.
    # ------------------------------------------------------------------
    preds: List[Set[int]] = [set() for _ in range(n)]
    # Conflict-restoration producers per node (subset of preds for
    # relaxed nodes; extra *execution* deps for non-relaxed nodes whose
    # ordering path may have run through a relaxed queue).
    restore: List[Set[int]] = [set() for _ in range(n)]

    for node in nodes:
        if not eligible_q[id(node.queue)]:
            # FIFO-mode structure: head-of-line + deferred wait producers.
            preds[node.index].update(node.blocks_on)
            continue
        # Relaxed: only explicit wait-list producers within the pool.
        for event in node.command.wait_events:
            if not event.deferred:
                continue
            producer = by_cmd.get(id(event.command))
            if producer is not None and producer.index != node.index:
                preds[node.index].add(producer.index)

    # Markers/barriers stay full fences within relaxed queues.
    for q in queues:
        if not eligible_q[id(q)]:
            continue
        earlier: List[int] = []
        fence: Optional[int] = None
        for cmd in q.pending:
            node = by_cmd[id(cmd)]
            if cmd.kind in (CommandKind.MARKER, CommandKind.BARRIER):
                preds[node.index].update(earlier)
                fence = node.index
            elif fence is not None:
                preds[node.index].add(fence)
            earlier.append(node.index)

    # Restore the original happens-before direction for every conflicting
    # pair: relaxation must never unorder what FIFO issue ordered.
    for i in range(n):
        a = nodes[i]
        for j in range(i + 1, n):
            b = nodes[j]
            if not _conflicts(a, b):
                continue
            if graph.happens_before(i, j):
                preds[j].add(i)
                restore[j].add(i)
            elif graph.happens_before(j, i):
                preds[i].add(j)
                restore[i].add(j)
            # Unordered conflicting pairs raced under FIFO too; that is
            # the sanitizer's finding to report, not ours to invent an
            # order for.

    # ------------------------------------------------------------------
    # Safety check: relaxed reachability preserves all original ordering
    # between conflicting commands.
    # ------------------------------------------------------------------
    succ: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for p in preds[i]:
            succ[p].append(i)
    masks = _reachable(succ, n)
    for i in range(n):
        a = nodes[i]
        for j in range(i + 1, n):
            b = nodes[j]
            if not _conflicts(a, b):
                continue
            if graph.happens_before(i, j) and not masks[i] & (1 << j):
                raise InvalidOperation(
                    f"overlap issue would unorder conflicting commands "
                    f"{a.label} -> {b.label}"
                )
            if graph.happens_before(j, i) and not masks[j] & (1 << i):
                raise InvalidOperation(
                    f"overlap issue would unorder conflicting commands "
                    f"{b.label} -> {a.label}"
                )

    # ------------------------------------------------------------------
    # Dependency-driven ready heap, transfers first.
    # ------------------------------------------------------------------
    indeg = [len(preds[i]) for i in range(n)]
    for node, _event in graph.orphans:
        # Orphaned wait: the producer is neither issued nor pooled; the
        # node can never become ready (mirrors the FIFO stall).
        indeg[node.index] += 1
    heap = [
        (_KIND_RANK.get(nodes[i].command.kind, 2), i)
        for i in range(n)
        if indeg[i] == 0
    ]
    heapq.heapify(heap)

    # Pre-epoch tails anchor relaxed commands behind prior epochs.
    tails: Dict[int, Optional["SimTask"]] = {
        id(q): q._tail for q in queues if eligible_q[id(q)]
    }
    issued_nodes: Dict[int, List[CommandNode]] = {id(q): [] for q in queues}
    issued = 0
    while heap:
        _rank, i = heapq.heappop(heap)
        node = nodes[i]
        q = node.queue
        if eligible_q[id(q)]:
            odeps: List["SimTask"] = []
            tail = tails[id(q)]
            if tail is not None:
                odeps.append(tail)
            for p in preds[i]:
                t = nodes[p].command.event.task
                if t is not None:
                    odeps.append(t)
            q.pending.remove(node.command)
            q.issue(node.command, ordering_deps=odeps)
        else:
            extra = [
                nodes[p].command.event.task
                for p in restore[i]
                if nodes[p].command.event.task is not None
            ]
            assert q.pending and q.pending[0] is node.command
            q.pending.pop(0)
            q.issue(node.command, extra_deps=extra or None)
        issued_nodes[id(q)].append(node)
        issued += 1
        for s in succ[i]:
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(
                    heap, (_KIND_RANK.get(nodes[s].command.kind, 2), s)
                )

    if issued < n:
        from repro.analysis.validator import describe_deadlock

        remaining = [q for q in queues if q.pending]
        detail = describe_deadlock(remaining)
        if detail is None:
            stuck = {q.name: len(q.pending) for q in remaining}
            detail = f"stuck pending counts: {stuck}"
        raise InvalidOperation(
            f"cross-queue dependency deadlock while issuing: {detail}"
        )

    # ------------------------------------------------------------------
    # Per-queue epoch joins: restore the in-order tail at the boundary.
    # ------------------------------------------------------------------
    for q in queues:
        if not eligible_q[id(q)]:
            continue
        epoch = issued_nodes[id(q)]
        if not epoch:
            continue
        join_deps = [
            node.command.event.task
            for node in epoch
            if node.command.event.task is not None
        ]
        join = engine.task(
            name=f"overlap-join@{q.name}",
            duration=0.0,
            deps=join_deps,
            category="marker",
        )
        q._tail = join
        q._outstanding.append(join)
