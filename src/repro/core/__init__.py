"""MultiCL — the paper's contribution.

An automatic command-queue scheduler for task-parallel OpenCL workloads,
implemented as a plug-in to the :mod:`repro.ocl` runtime layer (the way the
paper's MultiCL extends SnuCL).  Three modules, per Section V:

* :mod:`repro.core.device_profiler` — static device profiling at platform
  discovery: bandwidth and instruction-throughput microbenchmarks, cached
  on disk, interpolated for unknown sizes;
* :mod:`repro.core.kernel_profiler` — dynamic kernel profiling at
  synchronization epochs, with the three overhead-reduction strategies:
  kernel/epoch profile caching (Section V.C.1), minikernel profiling
  (Section V.C.2, :mod:`repro.core.minikernel`), and data caching
  (Section V.C.3, :mod:`repro.core.data_cache`);
* :mod:`repro.core.device_mapper` — exact queue→device mapping minimising
  the concurrent completion time of the ready-queue pool.

Importing this package registers the two global scheduling policies —
``ROUND_ROBIN`` and ``AUTO_FIT`` — with the OpenCL layer's scheduler
registry, so a context created with the ``CL_CONTEXT_SCHEDULER`` property
picks them up automatically.
"""

from repro.core.device_mapper import (
    MappingResult,
    brute_force_mapping,
    optimal_mapping,
)
from repro.core.device_profiler import DeviceProfile, get_or_measure, measure
from repro.core.flags import ScheduleOptions
from repro.core.kernel_profiler import KernelProfiler
from repro.core.minikernel import make_minikernel_source, MINIKERNEL_GUARD
from repro.core.runtime import MultiCL, RunStats

# Side effect: register ROUND_ROBIN and AUTO_FIT with the OpenCL layer,
# plus the SOCL-style kernel-granularity baseline.
from repro.core import scheduler as _scheduler  # noqa: F401
from repro.core import baselines as _baselines  # noqa: F401
from repro.core.baselines import KERNEL_GRANULARITY_POLICY, KernelGranularityScheduler
from repro.core.scheduler import AutoFitScheduler, RoundRobinScheduler

__all__ = [
    "MappingResult",
    "brute_force_mapping",
    "optimal_mapping",
    "DeviceProfile",
    "get_or_measure",
    "measure",
    "ScheduleOptions",
    "KernelProfiler",
    "make_minikernel_source",
    "MINIKERNEL_GUARD",
    "MultiCL",
    "RunStats",
    "AutoFitScheduler",
    "RoundRobinScheduler",
    "KernelGranularityScheduler",
    "KERNEL_GRANULARITY_POLICY",
]
