"""Static device profiler (paper Section V.A).

Invoked once at platform discovery.  On a cache miss it runs SHOC-style
microbenchmarks *through the simulator* — host↔device bandwidth sweeps over
data sizes from latency-bound (1 KB) to bandwidth-bound (256 MB), plus
instruction-throughput and memory-bandwidth kernels — and caches the
measured metrics on disk (:mod:`repro.core.profile_store`).  Bandwidth
numbers for unknown sizes are interpolated.

Note a deliberate fidelity point: the *scheduler* never reads the hardware
specs directly.  It sees only what these benchmarks measured, exactly like
the real MultiCL.  (In the simulator the measurements are noise-free, so
"measured" and "true" coincide; an optional ``noise`` parameter perturbs
measurements deterministically for robustness experiments.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hardware.cost import KernelCost
from repro.ocl.platform import Platform
from repro.core import profile_store

__all__ = ["BandwidthCurve", "DeviceProfile", "measure", "get_or_measure"]

#: Transfer sizes swept by the bandwidth benchmarks: 1 KB → 256 MB.
BENCH_SIZES: Tuple[int, ...] = tuple(1024 * 4**i for i in range(10))

#: Work in the instruction-throughput benchmark (FLOPs).
_THROUGHPUT_FLOPS = 4e9
#: Traffic in the memory-bandwidth benchmark (bytes).
_BANDWIDTH_BYTES = 2e9


@dataclass
class BandwidthCurve:
    """Measured (size, seconds) samples with interpolation.

    Between samples we interpolate linearly in size (samples are geometric,
    so this is accurate); beyond the largest sample we extrapolate with the
    asymptotic bandwidth of the last two samples.
    """

    sizes: List[int] = field(default_factory=list)
    seconds: List[float] = field(default_factory=list)

    def add(self, size: int, t: float) -> None:
        self.sizes.append(int(size))
        self.seconds.append(float(t))

    def seconds_for(self, nbytes: int) -> float:
        if not self.sizes:
            raise ValueError("empty bandwidth curve")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        sizes = np.asarray(self.sizes, dtype=float)
        secs = np.asarray(self.seconds, dtype=float)
        if nbytes <= sizes[0]:
            # Latency-bound region: time barely depends on size.
            return float(secs[0] * max(nbytes, 1) / sizes[0]) if nbytes else 0.0
        if nbytes >= sizes[-1]:
            if len(sizes) >= 2:
                bw = (sizes[-1] - sizes[-2]) / max(secs[-1] - secs[-2], 1e-15)
            else:
                bw = sizes[-1] / secs[-1]
            return float(secs[-1] + (nbytes - sizes[-1]) / bw)
        return float(np.interp(nbytes, sizes, secs))

    def bandwidth_gbs(self, nbytes: Optional[int] = None) -> float:
        """Effective bandwidth at ``nbytes`` (default: the largest sample)."""
        n = int(nbytes) if nbytes is not None else self.sizes[-1]
        t = self.seconds_for(n)
        return n / t / 1e9 if t > 0 else math.inf

    def to_dict(self) -> Dict:
        return {"sizes": list(self.sizes), "seconds": list(self.seconds)}

    @staticmethod
    def from_dict(d: Dict) -> "BandwidthCurve":
        return BandwidthCurve(list(d["sizes"]), list(d["seconds"]))


@dataclass
class DeviceProfile:
    """The static per-node profile consumed by the scheduler."""

    node_name: str
    gflops: Dict[str, float] = field(default_factory=dict)
    bandwidth_gbs: Dict[str, float] = field(default_factory=dict)
    h2d: Dict[str, BandwidthCurve] = field(default_factory=dict)
    d2h: Dict[str, BandwidthCurve] = field(default_factory=dict)
    #: measured per-launch fixed cost (empty-kernel benchmark); the kernel
    #: profiler subtracts it before scaling minikernel measurements.
    launch_overhead_s: Dict[str, float] = field(default_factory=dict)

    @property
    def devices(self) -> List[str]:
        return sorted(self.gflops)

    # -- transfer estimates ------------------------------------------------
    def h2d_seconds(self, device: str, nbytes: int) -> float:
        return self.h2d[device].seconds_for(nbytes)

    def d2h_seconds(self, device: str, nbytes: int) -> float:
        return self.d2h[device].seconds_for(nbytes)

    def d2d_seconds(self, src: str, dst: str, nbytes: int) -> float:
        """Staged D2H + H2D through host memory (Section V.C.3)."""
        if src == dst:
            return 0.0
        return self.d2h_seconds(src, nbytes) + self.h2d_seconds(dst, nbytes)

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "node_name": self.node_name,
            "gflops": dict(self.gflops),
            "bandwidth_gbs": dict(self.bandwidth_gbs),
            "h2d": {k: v.to_dict() for k, v in self.h2d.items()},
            "d2h": {k: v.to_dict() for k, v in self.d2h.items()},
            "launch_overhead_s": dict(self.launch_overhead_s),
        }

    @staticmethod
    def from_dict(d: Dict) -> "DeviceProfile":
        return DeviceProfile(
            node_name=d["node_name"],
            gflops={k: float(v) for k, v in d["gflops"].items()},
            bandwidth_gbs={k: float(v) for k, v in d["bandwidth_gbs"].items()},
            h2d={k: BandwidthCurve.from_dict(v) for k, v in d["h2d"].items()},
            d2h={k: BandwidthCurve.from_dict(v) for k, v in d["d2h"].items()},
            launch_overhead_s={
                k: float(v) for k, v in d.get("launch_overhead_s", {}).items()
            },
        )


def measure(platform: Platform, noise: float = 0.0) -> DeviceProfile:
    """Run the microbenchmarks on ``platform``'s simulated node.

    Charges simulated time (the benchmarks really execute on the event
    engine), which is the cost the paper ascribes to a cold profile cache.
    ``noise`` (fraction, e.g. 0.02) perturbs measurements deterministically.
    """
    node = platform.node
    engine = platform.engine
    rng = np.random.default_rng(0xC15)
    profile = DeviceProfile(node_name=platform.spec.name)

    def _noisy(t: float) -> float:
        if noise <= 0.0:
            return t
        return t * float(1.0 + rng.uniform(-noise, noise))

    for dev in node.device_list():
        name = dev.name
        h2d_curve = BandwidthCurve()
        d2h_curve = BandwidthCurve()
        for size in BENCH_SIZES:
            t0 = engine.now
            task = node.submit_h2d(name, size, category="devprofile")
            engine.run_until(task)
            h2d_curve.add(size, _noisy(engine.now - t0))
            t0 = engine.now
            task = node.submit_d2h(name, size, category="devprofile")
            engine.run_until(task)
            d2h_curve.add(size, _noisy(engine.now - t0))
        profile.h2d[name] = h2d_curve
        profile.d2h[name] = d2h_curve

        # Instruction-throughput benchmark: compute-dominated kernel.
        flops_cost = KernelCost(
            flops=_THROUGHPUT_FLOPS,
            bytes=_THROUGHPUT_FLOPS / 1e3,
            work_items=dev.spec.saturation_work_items * 4,
            workgroup_size=64,
        )
        t0 = engine.now
        task = dev.submit_kernel("devprofile-flops", flops_cost, category="devprofile")
        engine.run_until(task)
        profile.gflops[name] = _noisy(_THROUGHPUT_FLOPS / (engine.now - t0) / 1e9)

        # Memory-bandwidth benchmark: traffic-dominated kernel.
        bw_cost = KernelCost(
            flops=_BANDWIDTH_BYTES / 1e3,
            bytes=_BANDWIDTH_BYTES,
            work_items=dev.spec.saturation_work_items * 4,
            workgroup_size=64,
        )
        t0 = engine.now
        task = dev.submit_kernel("devprofile-bw", bw_cost, category="devprofile")
        engine.run_until(task)
        profile.bandwidth_gbs[name] = _noisy(
            _BANDWIDTH_BYTES / (engine.now - t0) / 1e9
        )

        # Launch-overhead benchmark: an (almost) empty kernel; the measured
        # time is the fixed per-launch cost.
        empty_cost = KernelCost(flops=1.0, bytes=0.0, work_items=64, workgroup_size=64)
        t0 = engine.now
        task = dev.submit_kernel("devprofile-launch", empty_cost, category="devprofile")
        engine.run_until(task)
        profile.launch_overhead_s[name] = _noisy(engine.now - t0)
    return profile


def get_or_measure(
    platform: Platform,
    cache_dir: Optional[str] = None,
    noise: float = 0.0,
) -> DeviceProfile:
    """Cache-aware profile retrieval (the clGetPlatformIds hook).

    In practice "the runtime just reads the device profiles from the profile
    cache once at the beginning of the program" — only a first-ever run on a
    given node configuration pays for the benchmarks.

    Retrieval is single-flight across processes: when several workers race
    on a cold cache, one measures (charging *its* simulated engine, exactly
    as a cold start costs in the paper) and the rest block on the store's
    lock, then read the freshly written profile without re-measuring.
    """
    payload, _computed = profile_store.load_or_compute(
        platform.spec,
        lambda: measure(platform, noise=noise).to_dict(),
        cache_dir,
    )
    return DeviceProfile.from_dict(payload)
