"""Dynamic kernel profiler (paper Sections V.A and V.C).

"Kernel execution times can be estimated by performance modeling or
performance projection techniques, but these approaches either are done
offline or are impractical ... We follow a more practical approach in that
we run the kernels once per device and store the corresponding execution
times as part of the kernel profile."

At a scheduler trigger the profiler receives one queue's batch of deferred
commands (a *kernel epoch*) and produces a per-device execution-time vector
by actually running the kernels on every candidate device — concurrently
across devices, serially within one device — after staging their input data
(:mod:`repro.core.data_cache`).  Every simulated second spent here is real
runtime overhead the evaluation measures.

Overhead mitigation, matching the paper:

* **Profile caching** (Section V.C.1): kernel profiles are cached in memory
  keyed by kernel identity, and whole epoch profiles are cached keyed by
  the participating kernel set, so iterative workloads pay only for their
  first iteration.  An iterative-refresh frequency can force re-profiling.
* **Minikernel profiling** (Section V.C.2): for compute-bound queues the
  profiler launches the transformed minikernel — same launch configuration,
  only workgroup 0 does work — and scales the single-workgroup measurement
  by the workgroup count to estimate the full-kernel time.  Only relative
  performance matters for device selection, and the estimate preserves it.
* **Data caching** (Section V.C.3): see :mod:`repro.core.data_cache`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.data_cache import StagingPlan, stage_inputs
from repro.core.flags import ScheduleOptions, SchedulerConfig
from repro.ocl.memory import Buffer
from repro.ocl.queue import Command

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.context import Context
    from repro.ocl.queue import CommandQueue

__all__ = ["KernelProfiler", "ProfilerStats", "EpochProfile"]

#: Trace category for profiling kernel launches (Fig. 8 measures this).
PROFILE_KERNEL = "profile-kernel"

#: Cache key of one kernel launch: (kernel name, total work items).
KernelKey = Tuple[str, int]
#: Cache key of an epoch: the ordered tuple of kernel keys.
EpochKey = Tuple[KernelKey, ...]


@dataclass
class ProfilerStats:
    """Counters for tests and the evaluation harness."""

    kernels_measured: int = 0
    kernel_cache_hits: int = 0
    epoch_cache_hits: int = 0
    profiling_runs: int = 0
    bytes_staged: int = 0
    staging_operations: int = 0
    refreshes: int = 0
    #: cached per-device measurements dropped after device failures
    invalidations: int = 0
    #: per-device entries filled by the static-feature predictor instead of
    #: a profiling launch (zero measured seconds charged)
    kernels_predicted: int = 0
    #: kernels the predictor declined (low confidence / custom cost model),
    #: falling back to measurement
    predict_declines: int = 0


@dataclass
class EpochProfile:
    """Per-device estimated execution seconds for one epoch."""

    seconds: Dict[str, float] = field(default_factory=dict)

    def best_device(self) -> str:
        return min(self.seconds, key=lambda d: self.seconds[d])


class KernelProfiler:
    """Measures and caches per-device kernel/epoch execution profiles."""

    def __init__(self, context: "Context", config: SchedulerConfig) -> None:
        self.context = context
        self.config = config
        self.kernel_cache: Dict[KernelKey, Dict[str, float]] = {}
        self.epoch_cache: Dict[EpochKey, Dict[str, float]] = {}
        self.stats = ProfilerStats()
        self._trigger_count = 0
        #: static-feature predictor (:class:`repro.predict.Predictor`),
        #: attached by the scheduler when ``config.predict`` is set.  When
        #: present, confidently predicted kernels skip measurement entirely
        #: and every real measurement is fed back as a correction.
        self.predictor = None

    # ------------------------------------------------------------------
    # Cache keys
    # ------------------------------------------------------------------
    @staticmethod
    def kernel_key(cmd: Command) -> KernelKey:
        assert cmd.kernel is not None and cmd.launch is not None
        return (cmd.kernel.name, cmd.launch.work_items)

    @classmethod
    def epoch_key(cls, kernel_cmds: Sequence[Command]) -> EpochKey:
        return tuple(cls.kernel_key(c) for c in kernel_cmds)

    # ------------------------------------------------------------------
    # Main entry
    # ------------------------------------------------------------------
    def profile_epoch(
        self,
        queue: "CommandQueue",
        commands: Sequence[Command],
        options: ScheduleOptions,
    ) -> EpochProfile:
        """Produce the per-device time vector for a queue's pending epoch.

        Cache hits are free; misses run profiling launches on the simulated
        devices and charge their time to the shared clock.
        """
        self._trigger_count += 1
        refreshed = False
        if (
            self.config.iterative_refresh
            and self._trigger_count % self.config.iterative_refresh == 0
        ):
            # Periodic re-profiling for phase-changing iterative kernels.
            self.kernel_cache.clear()
            self.epoch_cache.clear()
            self.stats.refreshes += 1
            refreshed = True

        kernel_cmds = [c for c in commands if c.is_kernel]
        devices = list(self.context.active_device_names)
        if not kernel_cmds:
            return EpochProfile({d: 0.0 for d in devices})

        ekey = self.epoch_key(kernel_cmds)
        if self.config.profile_caching and ekey in self.epoch_cache:
            self.stats.epoch_cache_hits += 1
            return EpochProfile(dict(self.epoch_cache[ekey]))

        missing: List[Command] = []
        for cmd in kernel_cmds:
            kkey = self.kernel_key(cmd)
            if self.config.profile_caching and kkey in self.kernel_cache:
                self.stats.kernel_cache_hits += 1
                continue
            if any(self.kernel_key(m) == kkey for m in missing):
                continue
            # Predict-first gate: a confidently predicted kernel never runs
            # a profiling launch.  Refresh epochs deliberately skip the
            # gate — their whole point is fresh measurements, which then
            # flow through observe() as corrections to the model.
            if self.predictor is not None and not refreshed:
                predicted = self.predictor.predict_command(cmd, devices)
                if predicted is not None:
                    self.kernel_cache[kkey] = predicted
                    self.stats.kernels_predicted += len(predicted)
                    continue
                self.stats.predict_declines += 1
            missing.append(cmd)

        if missing:
            self._measure(missing, devices, options)

        seconds = {d: 0.0 for d in devices}
        for cmd in kernel_cmds:
            per_dev = self.kernel_cache[self.kernel_key(cmd)]
            for d in devices:
                # A device can fail *inside* _measure (the profiling launches
                # advance the clock); a missing column means "never ran here".
                seconds[d] += per_dev.get(d, math.inf)
        if self.config.profile_caching:
            self.epoch_cache[ekey] = dict(seconds)
        return EpochProfile(seconds)

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def invalidate_device(self, device: str) -> int:
        """Drop every cached measurement taken on failed ``device``.

        Columns for surviving devices stay valid — a kernel's cost on gpu0
        does not change because gpu1 died — so iterative workloads keep
        their cache warm through a failure.  Returns the number of cache
        entries touched, including residual/correction records dropped from
        the attached predictor (if any).
        """
        removed = 0
        for per_dev in self.kernel_cache.values():
            if device in per_dev:
                del per_dev[device]
                removed += 1
        for per_dev in self.epoch_cache.values():
            if device in per_dev:
                del per_dev[device]
                removed += 1
        if self.predictor is not None:
            # Propagate to the attached predictor: the failed device's
            # residuals and online corrections must not poison re-fits
            # after recovery.
            removed += self.predictor.invalidate_device(device)
        self.stats.invalidations += removed
        return removed

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _measure(
        self,
        cmds: Sequence[Command],
        devices: Sequence[str],
        options: ScheduleOptions,
    ) -> None:
        """Run ``cmds`` on every device, concurrently across devices."""
        platform = self.context.platform
        node, engine = platform.node, platform.engine
        use_mini = self._use_minikernel(cmds, options)

        plan = self._stage(cmds, devices)
        all_tasks = []
        measurements: Dict[Tuple[KernelKey, str], Tuple[float, int]] = {}
        for dev_name in devices:
            device = node.device(dev_name)
            prev = plan.deps_for(dev_name)
            for cmd in cmds:
                kernel, launch = cmd.kernel, cmd.launch
                assert kernel is not None and launch is not None
                cost = kernel.launch_cost(device.spec, launch)
                config = kernel.effective_config(dev_name, launch)
                task = device.submit_kernel(
                    name=f"prof:{kernel.name}",
                    cost=cost,
                    deps=prev,
                    category=PROFILE_KERNEL,
                    minikernel=use_mini,
                    meta={"profiled_for": dev_name},
                )
                prev = [task]
                all_tasks.append(task)
                measurements[(self.kernel_key(cmd), dev_name)] = (
                    task.duration,
                    config.num_workgroups,
                )
        # The host blocks until every device finished its profiling chain.
        join = engine.task(
            "profile-join", 0.0, deps=all_tasks, category="profile-join"
        )
        engine.run_until(join)
        self.stats.profiling_runs += 1
        self.stats.kernels_measured += len(cmds) * len(devices)

        launch_overheads = platform.device_profile.launch_overhead_s
        for cmd in cmds:
            kkey = self.kernel_key(cmd)
            per_dev: Dict[str, float] = {}
            for dev_name in devices:
                t, groups = measurements[(kkey, dev_name)]
                t *= self._noise_factor(kkey, dev_name)
                if use_mini:
                    # A minikernel measurement is launch overhead plus one
                    # workgroup's share of the body.  Subtract the measured
                    # per-launch fixed cost (static device profile) before
                    # scaling by the workgroup count, else devices with
                    # expensive launches look groups× worse than they are.
                    overhead = launch_overheads.get(dev_name, 0.0)
                    body = max(t - overhead, 0.0)
                    per_dev[dev_name] = body * groups + overhead
                else:
                    per_dev[dev_name] = t
            self.kernel_cache[kkey] = per_dev
            if self.predictor is not None:
                # Corrector loop: every real measurement is compared against
                # the prediction; a residual above the tolerance re-fits the
                # model online (the dynamic profiler stays the corrector).
                for dev_name in devices:
                    self.predictor.observe(cmd, dev_name, per_dev[dev_name])

    def _noise_factor(self, kkey: KernelKey, device: str) -> float:
        """Deterministic measurement perturbation (robustness ablation)."""
        noise = self.config.measurement_noise
        if noise <= 0.0:
            return 1.0
        import hashlib

        digest = hashlib.sha256(f"{kkey}:{device}".encode()).digest()
        # Uniform in [-1, 1) from the first 8 digest bytes.
        u = int.from_bytes(digest[:8], "big") / float(1 << 64) * 2.0 - 1.0
        return max(1.0 + noise * u, 1e-3)

    def _use_minikernel(
        self, cmds: Sequence[Command], options: ScheduleOptions
    ) -> bool:
        if not (self.config.allow_minikernel and options.wants_minikernel):
            return False
        # Minikernel profiling requires the transformed source, built at
        # clBuildProgram time (Section V.C.2 — "requires access to the
        # kernel source").
        return all(
            c.kernel is not None
            and c.kernel.program.minikernel_source is not None
            for c in cmds
        )

    def _stage(self, cmds: Sequence[Command], devices: Sequence[str]) -> StagingPlan:
        buffers: List[Buffer] = []
        for cmd in cmds:
            for v in cmd.args_snapshot.values():
                if isinstance(v, Buffer):
                    buffers.append(v)
        plan = stage_inputs(
            self.context.platform.node,
            buffers,
            devices,
            caching=self.config.data_caching,
        )
        self.stats.bytes_staged += plan.bytes_moved
        self.stats.staging_operations += plan.operations
        return plan
