"""High-level MultiCL facade and run accounting.

The raw layers (:mod:`repro.ocl` + :mod:`repro.core.scheduler`) expose the
paper's API surface faithfully; this module adds the conveniences every
example, test and benchmark needs:

* :class:`MultiCL` — one object that builds a simulated platform, a context
  with the requested global policy, and command queues, and measures runs;
* :class:`RunStats` — a per-run accounting record derived from the engine
  trace: where virtual time went (application kernels vs profiling kernels
  vs data staging vs mapping), and how kernels were distributed over
  devices (the paper's Fig. 5 view).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.sanitizer import SANITIZE_PROPERTY_KEY
from repro.core.flags import CONFIG_PROPERTY_KEY, SchedulerConfig
from repro.hardware.specs import NodeSpec
from repro.ocl.context import Context
from repro.ocl.enums import ContextProperty, ContextScheduler, SchedFlag
from repro.ocl.overlap import OVERLAP_PROPERTY_KEY
from repro.ocl.platform import Platform
from repro.ocl.queue import CommandQueue
from repro.sim.faults import FaultInjector, FaultPlan, FaultPolicy
from repro.sim.trace import FAULT_CATEGORY, RECOVERY_CATEGORY, Trace

__all__ = ["RunStats", "MultiCL"]

#: Trace categories that constitute scheduling overhead.
OVERHEAD_CATEGORIES = ("profile-kernel", "profile-transfer", "profile-join", "schedule")
#: Trace categories that constitute application work.
APP_CATEGORIES = ("kernel", "transfer", "migration")


@dataclass
class RunStats:
    """Accounting for one measured region of a simulated run."""

    duration: float
    #: total busy seconds per trace category
    by_category: Dict[str, float] = field(default_factory=dict)
    #: application kernel seconds per device resource
    kernel_seconds_by_device: Dict[str, float] = field(default_factory=dict)
    #: application kernel counts per device resource
    kernel_count_by_device: Dict[str, int] = field(default_factory=dict)
    #: queues moved to a different device by fault recovery
    remap_count: int = 0
    #: commands requeued and replayed after device failures
    replayed_commands: int = 0
    #: simulated seconds lost to faults and recovery (aborted partial
    #: executions, slowdown windows, replay backoff)
    downtime_seconds: float = 0.0
    #: mapping computations priced as a full pool solve ("device-map"
    #: intervals: fresh solves plus cached reuses of an identical solve,
    #: which deliberately record the same interval)
    mapper_solves: int = 0
    #: mapping computations satisfied by incremental repair of the
    #: surviving assignment (:mod:`repro.core.constraints`)
    mapper_repairs: int = 0

    @property
    def profiling_seconds(self) -> float:
        """Busy time attributable to the scheduler (not wall time)."""
        return sum(self.by_category.get(c, 0.0) for c in OVERHEAD_CATEGORIES)

    @property
    def profile_transfer_seconds(self) -> float:
        return self.by_category.get("profile-transfer", 0.0)

    @property
    def profile_kernel_seconds(self) -> float:
        return self.by_category.get("profile-kernel", 0.0)

    def kernel_distribution(self) -> Dict[str, float]:
        """Fraction of application kernels executed per device (Fig. 5)."""
        total = sum(self.kernel_count_by_device.values())
        if total == 0:
            return {}
        return {
            dev: n / total for dev, n in sorted(self.kernel_count_by_device.items())
        }

    @staticmethod
    def from_trace(trace: Trace, t0: float, t1: float) -> "RunStats":
        by_cat: Dict[str, float] = {}
        ksec: Dict[str, float] = {}
        kcnt: Dict[str, int] = {}
        remaps = 0
        replays = 0
        downtime = 0.0
        solves = 0
        repairs = 0
        for iv in trace:
            # Clip every interval to [t0, t1) and credit only the in-window
            # seconds (mirrors utilization_report): an interval straddling
            # either edge contributes exactly its overlap, one entirely
            # outside contributes nothing.  Zero-duration instants (remap /
            # replay / failure markers) stay visible when they fall inside
            # the window.
            overlap = min(iv.end, t1) - max(iv.start, t0)
            instant = iv.start == iv.end and t0 <= iv.start < t1
            if overlap < 0.0 or (overlap == 0.0 and not instant):
                continue
            by_cat[iv.category] = by_cat.get(iv.category, 0.0) + overlap
            if iv.category == "kernel" and iv.resource.startswith("dev:"):
                dev = iv.resource[len("dev:"):]
                ksec[dev] = ksec.get(dev, 0.0) + overlap
                # Counts keep start-based ownership so a kernel straddling a
                # window boundary is counted in exactly one window.
                if t0 <= iv.start < t1:
                    kcnt[dev] = kcnt.get(dev, 0) + 1
            elif iv.category == FAULT_CATEGORY:
                downtime += overlap
            elif iv.category == RECOVERY_CATEGORY:
                downtime += overlap
                if t0 <= iv.start < t1:
                    op = iv.meta.get("op")
                    if op == "remap":
                        remaps += 1
                    elif op == "replay":
                        replays += 1
            elif iv.category == "schedule" and t0 <= iv.start < t1:
                # Mapping-path split (start-based ownership, like kernel
                # counts): a full solve and an incremental repair charge the
                # same host seconds but record distinct interval names.
                if iv.task == "device-map":
                    solves += 1
                elif iv.task == "device-repair":
                    repairs += 1
        return RunStats(
            duration=t1 - t0,
            by_category=by_cat,
            kernel_seconds_by_device=ksec,
            kernel_count_by_device=kcnt,
            remap_count=remaps,
            replayed_commands=replays,
            downtime_seconds=downtime,
            mapper_solves=solves,
            mapper_repairs=repairs,
        )


class MultiCL:
    """Convenience wrapper: platform + context + measurement.

    Parameters
    ----------
    node_spec:
        Node to simulate (default: the paper's testbed).
    policy:
        Global scheduling policy, or ``None`` for a manual (stock OpenCL)
        context.
    config:
        Runtime :class:`~repro.core.flags.SchedulerConfig` (ablation knobs).
    profile_dir:
        Device-profile cache directory (tests pass a tmp dir).
    fault_plan:
        Optional :class:`~repro.sim.faults.FaultPlan` armed on the context
        immediately (failures/slowdowns/outages at virtual timestamps).
    fault_policy:
        Recovery knobs (:class:`~repro.sim.faults.FaultPolicy`); defaults
        to three replay attempts with exponential backoff.
    sanitize:
        Opt-in runtime sanitizer (:mod:`repro.analysis`): validate the
        ready-queue pool at every scheduler trigger, raising
        :class:`~repro.analysis.findings.SanitizerError` on cycles, data
        races and orphaned events, and warning on stale reads.  ``None``
        (the default) defers to the ``MULTICL_SANITIZE`` environment
        variable; ``True``/``False`` override it.
    predict:
        Profiling-free scheduling from static kernel features
        (:mod:`repro.predict`).  ``None`` (the default) defers to the
        ``MULTICL_PREDICT`` environment variable (via
        :meth:`SchedulerConfig.from_env`); ``True``/``False`` override it
        and any passed ``config``.
    overlap:
        Overlap-aware pool issue (:mod:`repro.ocl.overlap`): every
        scheduled in-order queue behaves as if it carried
        ``SCHED_OVERLAP``, and the platform models each link as two
        directional DMA engines.  ``None`` (the default) defers to the
        ``MULTICL_OVERLAP`` environment variable; ``True``/``False``
        override it.
    split:
        Multi-device kernel splitting (``SCHED_SPLIT`` for every
        dynamically scheduled queue).  ``None`` (the default) defers to
        the ``MULTICL_SPLIT`` environment variable (via
        :meth:`SchedulerConfig.from_env`); ``True``/``False`` override it
        and any passed ``config``.
    """

    def __init__(
        self,
        node_spec: Optional[NodeSpec] = None,
        policy: Optional[ContextScheduler] = None,
        config: Optional[SchedulerConfig] = None,
        profile_dir: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        fault_policy: Optional[FaultPolicy] = None,
        sanitize: Optional[bool] = None,
        predict: Optional[bool] = None,
        overlap: Optional[bool] = None,
        split: Optional[bool] = None,
    ) -> None:
        self.platform = Platform(
            node_spec,
            profile=True,
            profile_dir=profile_dir,
            duplex_links=overlap if overlap is not None else None,
        )
        properties: Dict = {}
        if policy is not None:
            properties[ContextProperty.CL_CONTEXT_SCHEDULER] = policy
        if predict is not None:
            config = (config or SchedulerConfig.from_env()).with_(
                predict=bool(predict)
            )
        if split is not None:
            config = (config or SchedulerConfig.from_env()).with_(
                split=bool(split)
            )
        if config is not None:
            properties[CONFIG_PROPERTY_KEY] = config
        if sanitize is not None:
            properties[SANITIZE_PROPERTY_KEY] = bool(sanitize)
        if overlap is not None:
            properties[OVERLAP_PROPERTY_KEY] = bool(overlap)
        self.context: Context = self.platform.create_context(properties=properties)
        self._marks: List[float] = []
        self.fault_policy = fault_policy
        self.injector: Optional[FaultInjector] = None
        if fault_plan is not None:
            self.inject_faults(fault_plan, fault_policy)

    # ------------------------------------------------------------------
    # Object helpers
    # ------------------------------------------------------------------
    @property
    def engine(self):
        return self.platform.engine

    @property
    def now(self) -> float:
        return self.platform.engine.now

    @property
    def device_names(self) -> Sequence[str]:
        return self.context.device_names

    def queue(
        self,
        device: Optional[str] = None,
        flags: SchedFlag = SchedFlag.SCHED_OFF,
        name: Optional[str] = None,
    ) -> CommandQueue:
        return self.context.create_queue(device, flags, name=name)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_faults(
        self, plan: FaultPlan, policy: Optional[FaultPolicy] = None
    ) -> FaultInjector:
        """Arm ``plan`` on this runtime; events fire as virtual time passes.

        Reuses one injector across calls so failure/replay/remap counters
        accumulate over the whole run.  A re-arm passing a different
        ``policy`` switches the existing injector to it (the new knobs
        govern recovery from that point on) and warns, so a conflicting
        policy is never silently dropped.
        """
        if self.injector is None:
            self.injector = FaultInjector(
                self.context, policy or self.fault_policy
            )
        elif policy is not None and policy != self.injector.policy:
            import warnings

            warnings.warn(
                f"inject_faults re-armed with a different FaultPolicy; "
                f"replacing {self.injector.policy} with {policy} for all "
                f"subsequent recoveries",
                RuntimeWarning,
                stacklevel=2,
            )
            self.injector.policy = policy
        self.injector.arm(plan)
        return self.injector

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure(self, fn: Callable[[], None]) -> RunStats:
        """Run ``fn`` (which should end fully synchronised) and account the
        simulated time it spanned."""
        t0 = self.now
        fn()
        self.context.finish_all()
        t1 = self.now
        return RunStats.from_trace(self.engine.trace, t0, t1)

    def stats_between(self, t0: float, t1: float) -> RunStats:
        return RunStats.from_trace(self.engine.trace, t0, t1)

    def scheduler_mappings(self) -> List[Dict[str, str]]:
        """Device mappings chosen at each scheduler trigger."""
        sched = self.context.scheduler
        history = getattr(sched, "mapping_history", None)
        return list(history) if history else []
