"""Related-work baseline: SOCL-style kernel-granularity scheduling.

Paper Section III.B contrasts MultiCL with SOCL: "[SOCL] applies the
performance modeling at kernel granularity, and this option is not
flexible.  In contrast, we perform workload profiling at synchronization
epoch granularity.  Our approach enables a more coarse-grained and
flexible scheduling that allows making device choices for kernel groups
rather than individual kernels.  Also, our approach reduces the profile
lookup time for aggregate kernel invocations, decreasing runtime
overhead."

To make that comparison *runnable*, this module implements the contrasted
design as a third registered policy, ``"kernel-granularity"``: every
kernel command is scheduled the moment it is enqueued, to the device that
minimises (profiled kernel time + data-movement estimate + the device's
already-assigned backlog).  Consequences the paper predicts, which the
``baselines`` experiment measures:

* per-kernel mapping decisions (one host-side lookup/decision per launch
  instead of one per epoch);
* no group decisions: a queue whose kernels individually prefer different
  devices ping-pongs, paying cross-device migrations an epoch-level
  scheduler would have avoided;
* queue–device binding effectively changes continuously, so the explicit
  region / epoch batching controls have nothing to batch.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, TYPE_CHECKING

from repro.core.flags import ScheduleOptions
from repro.core.scheduler import MultiCLSchedulerBase
from repro.ocl.memory import HOST, Buffer
from repro.ocl.scheduling import register_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.queue import Command, CommandQueue

__all__ = ["KernelGranularityScheduler", "KERNEL_GRANULARITY_POLICY"]

#: Token to pass as the CL_CONTEXT_SCHEDULER property value.
KERNEL_GRANULARITY_POLICY = "kernel-granularity"


class KernelGranularityScheduler(MultiCLSchedulerBase):
    """Schedule every kernel individually at enqueue time (SOCL-style)."""

    def __init__(self, context) -> None:
        super().__init__(context)
        #: running estimate of work assigned per device (list scheduling)
        self._load: Dict[str, float] = {d: 0.0 for d in context.device_names}
        #: per-kernel host decisions made (for the overhead comparison)
        self.decisions = 0

    # Every kernel is a trigger of its own.
    def on_enqueue(self, queue: "CommandQueue", command: "Command") -> None:
        if command.is_kernel:
            self.on_sync([queue], trigger_queue=queue)

    def on_sync(
        self,
        pool: Sequence["CommandQueue"],
        trigger_queue: Optional["CommandQueue"] = None,
    ) -> None:
        profile = self.context.platform.device_profile
        for q in sorted(pool, key=lambda q: q.id):
            while q.pending:
                cmd = q.pending[0]
                if cmd.is_kernel:
                    self._place_kernel(q, cmd, profile)
                # Non-kernel commands ride along on the current binding.
                if not cmd.deps_ready():
                    break  # cross-queue wait; the other queue will trigger
                q.issue(q.pending.pop(0))
        self._record(pool)

    def _place_kernel(self, q: "CommandQueue", cmd: "Command", profile) -> None:
        options = ScheduleOptions.from_flags(q.sched_flags)
        epoch = self.profiler.profile_epoch(q, [cmd], options)
        best, best_cost = None, float("inf")
        for d in self.context.device_names:
            move = 0.0
            for v in cmd.args_snapshot.values():
                if isinstance(v, Buffer) and v.initialized and not v.is_valid_on(d):
                    if v.is_valid_on(HOST):
                        move += profile.h2d_seconds(d, v.nbytes)
                    else:
                        src = v.any_valid_device()
                        if src is not None:
                            move += profile.d2d_seconds(src, d, v.nbytes)
            cost = self._load[d] + epoch.seconds[d] + move
            if cost < best_cost:
                best, best_cost = d, cost
        assert best is not None
        self._load[best] += epoch.seconds[best]
        self.decisions += 1
        # Per-kernel host decision cost (a profile lookup + argmin).
        self.context.platform.engine.elapse(
            self.config.mapping_host_seconds, category="schedule",
            name="per-kernel-map",
        )
        q.rebind(best)


register_scheduler(KERNEL_GRANULARITY_POLICY, KernelGranularityScheduler)
