"""Minikernel source-to-source transformation (paper Section V.C.2, Fig. 2).

To estimate a kernel's *relative* performance across devices it suffices to
run a single workgroup — provided the kernel's own work-distribution logic
cannot reinflate the cost.  MultiCL therefore rewrites the kernel source,
inserting a guard that lets only workgroup (0,0,0) execute the body and
forces every other workgroup to return immediately::

    __kernel void foo(...) {
        /* MultiCL inserts the below transformation code
           to run only the first workgroup (minikernel) */
        if(get_group_id(0)+get_group_id(1)+get_group_id(2)!=0)
            return;
        /* ... actual kernel code ... */
    }

The minikernel is profiled with the *same* launch configuration as the
original kernel, so the per-workgroup share of work is faithful.  The
transformation happens at ``clCreateProgramWithSource``/``clBuildProgram``
time for every kernel in the program; building the extra binary doubles the
build time (an initial setup cost), and requires access to the kernel
source — both noted in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ocl.source import (
    KernelSourceInfo,
    insert_after_body_open,
    parse_program_source,
)

__all__ = ["MINIKERNEL_GUARD", "make_minikernel_source", "transform_program"]

#: The exact guard of the paper's Fig. 2.
MINIKERNEL_GUARD = (
    "\n  /* MultiCL inserts the below transformation code"
    "\n     to run only the first workgroup (minikernel) */"
    "\n  if(get_group_id(0)+get_group_id(1)+get_group_id(2)!=0)"
    "\n    return;\n"
)


def make_minikernel_source(source: str) -> str:
    """Return ``source`` with the minikernel guard in every kernel.

    Kernels are transformed back-to-front so earlier insertion offsets stay
    valid.  Idempotence: a source that already carries the guard directly
    after a kernel's opening brace is left untouched.
    """
    infos = parse_program_source(source)
    out = source
    for info in sorted(infos, key=lambda k: k.body_open, reverse=True):
        after = out[info.body_open : info.body_open + len(MINIKERNEL_GUARD)]
        if after == MINIKERNEL_GUARD:
            continue
        out = insert_after_body_open(out, info, MINIKERNEL_GUARD)
    return out


def transform_program(source: str) -> Tuple[str, Dict[str, KernelSourceInfo]]:
    """Transform ``source`` and re-parse the minikernel variants.

    Returns the transformed source and the parsed kernel infos of the
    transformed program (annotations and signatures are preserved by the
    transformation, only body offsets move).
    """
    mini_src = make_minikernel_source(source)
    infos = {k.name: k for k in parse_program_source(mini_src)}
    return mini_src, infos
