"""Composable mapping constraints and incremental assignment repair.

The branch-and-bound mapper (:mod:`repro.core.device_mapper`) re-solves the
whole queue pool on every trigger.  That is the right cost model for the
paper's eight-queue nodes, but a production pool re-triggered on every
device failure or tenant arrival pays a full solve for what is usually a
local perturbation: one device vanished, its queues need homes, everyone
else should stay put.

This module provides the two pieces the ROADMAP's constraint-mapper item
calls for:

* **Declarative constraints** — device capacity (resident bytes), link/NUMA
  affinity, per-tenant device quotas, and queue co-location expressed as
  :class:`Constraint` objects with a uniform
  ``violations(assignment)`` / ``candidates(queue, devices)`` interface,
  composed by :class:`ConstraintSet`.  Constraints bridge into the existing
  solvers through :meth:`ConstraintSet.mask_cost`, which marks disallowed
  (queue, device) pairs infeasible (``math.inf``) so `optimal_mapping` /
  `greedy_mapping` and the repair below all honour them.

* **Incremental repair** — :func:`repair_mapping` takes the previous
  :class:`~repro.core.device_mapper.MappingResult` plus a
  :class:`MappingDelta` (devices removed by a fault, queues arrived or
  retired) and migrates only the *affected* queues: survivors keep their
  binding, orphans are re-placed by a bounded branch-and-bound over the
  affected subset alone (seeded with an LPT insert into the surviving
  loads).  The repaired assignment is accepted only when the
  affected-subset search completed within its node budget (the placement
  is then optimal over the pinned survivors), its makespan is no worse
  than a fresh solve estimate — the LPT list-scheduling bound that seeds
  the full solver, computed in O(Q·D) — and it stays within
  ``threshold`` × the capacity-scaled previous makespan; otherwise the
  repair *falls back to the full solve* (`optimal_mapping` with the
  surviving bindings as ``preferred``), so a rejected repair is exactly a
  fresh solve and the caller never does worse than re-solving.

Determinism: every scan below iterates queues and devices in caller order
with explicit tie-breaks, and device loads are summed in a fixed queue
order (never incrementally subtracted), so repeated calls with equal inputs
return bit-identical results — the same contract the underlying mapper
keeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.device_mapper import (
    MapperError,
    MappingResult,
    _lpt_order,
    _validate,
    optimal_mapping,
)

__all__ = [
    "Constraint",
    "Violation",
    "CapacityConstraint",
    "AffinityConstraint",
    "TenantQuotaConstraint",
    "CoLocationConstraint",
    "ConstraintSet",
    "MappingDelta",
    "repair_mapping",
    "DEFAULT_REPAIR_THRESHOLD",
    "REPAIR_NODE_BUDGET",
]

#: Accept a repair only when its makespan is within this factor of the
#: capacity-scaled previous makespan (see :func:`repair_mapping`).
#: Overridable per call; ``SchedulerConfig`` reads the
#: ``MULTICL_MAPPER_REPAIR_THRESHOLD`` env var into its own knob.
DEFAULT_REPAIR_THRESHOLD = 1.25

#: Node budget for the affected-subset branch-and-bound.  The affected set
#: after a single device failure is ~Q/D queues, so a couple of thousand
#: nodes explores it essentially exhaustively while bounding the worst case
#: far below one full greedy re-solve.
REPAIR_NODE_BUDGET = 4096

#: Relative tolerance for makespan comparisons: float loads summed in
#: different orders can disagree by ULPs on genuinely equal assignments
#: (same reasoning as the exact mapper's bound tolerance).
_REL_TOL = 1e-12


@dataclass(frozen=True)
class Violation:
    """One constraint violation in a (partial) assignment."""

    constraint: str
    queue: str
    device: str
    detail: str = ""


class Constraint:
    """Base class: everything is allowed, nothing is violated.

    Subclasses narrow :meth:`candidates` (which devices may this queue use)
    and/or report :meth:`violations` over a full or partial assignment
    (mapping of queue name → device name).  Both views are needed: candidate
    filtering steers the solvers away from illegal placements up front,
    while violation reporting lets :func:`repair_mapping` find the kept
    queues a fault pushed out of feasibility (e.g. survivors whose device
    no longer has capacity headroom).
    """

    name = "constraint"

    def candidates(
        self, queue: str, devices: Sequence[str]
    ) -> Tuple[str, ...]:
        return tuple(devices)

    def violations(self, assignment: Mapping[str, str]) -> List[Violation]:
        return []


class CapacityConstraint(Constraint):
    """Per-device byte capacity against per-queue resident demand.

    ``demand`` maps queue → bytes it keeps resident; ``capacity`` maps
    device → byte budget.  A queue with no demand entry consumes nothing;
    a device with no capacity entry is unconstrained.
    """

    name = "capacity"

    def __init__(
        self,
        capacity: Mapping[str, float],
        demand: Mapping[str, float],
    ) -> None:
        self.capacity = dict(capacity)
        self.demand = dict(demand)

    def candidates(self, queue: str, devices: Sequence[str]) -> Tuple[str, ...]:
        need = self.demand.get(queue, 0.0)
        return tuple(
            d for d in devices if need <= self.capacity.get(d, math.inf)
        )

    def violations(self, assignment: Mapping[str, str]) -> List[Violation]:
        used: Dict[str, float] = {}
        by_device: Dict[str, List[str]] = {}
        for q, d in assignment.items():
            used[d] = used.get(d, 0.0) + self.demand.get(q, 0.0)
            by_device.setdefault(d, []).append(q)
        out: List[Violation] = []
        for d, total in used.items():
            cap = self.capacity.get(d, math.inf)
            if total > cap:
                # Report the last-assigned queues first: evicting the most
                # recent arrivals restores feasibility with the fewest
                # migrations of long-resident queues.
                for q in reversed(by_device[d]):
                    out.append(
                        Violation(
                            self.name,
                            q,
                            d,
                            f"device over capacity ({total} > {cap})",
                        )
                    )
                    total -= self.demand.get(q, 0.0)
                    if total <= cap:
                        break
        return out


class AffinityConstraint(Constraint):
    """Link/NUMA affinity: each queue may only use its allowed devices.

    ``allowed`` maps queue → the devices it may run on (e.g. the devices
    sharing its data's NUMA domain or host link).  Queues without an entry
    are unconstrained.
    """

    name = "affinity"

    def __init__(self, allowed: Mapping[str, Sequence[str]]) -> None:
        self.allowed = {q: tuple(ds) for q, ds in allowed.items()}

    def candidates(self, queue: str, devices: Sequence[str]) -> Tuple[str, ...]:
        allow = self.allowed.get(queue)
        if allow is None:
            return tuple(devices)
        allow_set = set(allow)
        return tuple(d for d in devices if d in allow_set)

    def violations(self, assignment: Mapping[str, str]) -> List[Violation]:
        out = []
        for q, d in assignment.items():
            allow = self.allowed.get(q)
            if allow is not None and d not in allow:
                out.append(
                    Violation(self.name, q, d, f"allowed: {sorted(allow)}")
                )
        return out


class TenantQuotaConstraint(Constraint):
    """Per-tenant cap on queues co-resident on one device.

    ``tenant_of`` maps queue → tenant; ``max_per_device`` maps tenant → the
    most queues that tenant may place on any single device (an
    anti-monopoly spread quota, the mapper-level analogue of the service
    layer's byte/queue quotas).  Tenants without an entry are uncapped.
    """

    name = "tenant-quota"

    def __init__(
        self,
        tenant_of: Mapping[str, str],
        max_per_device: Mapping[str, int],
    ) -> None:
        self.tenant_of = dict(tenant_of)
        self.max_per_device = dict(max_per_device)

    def violations(self, assignment: Mapping[str, str]) -> List[Violation]:
        counts: Dict[Tuple[str, str], List[str]] = {}
        for q, d in assignment.items():
            tenant = self.tenant_of.get(q)
            if tenant is None or tenant not in self.max_per_device:
                continue
            counts.setdefault((tenant, d), []).append(q)
        out: List[Violation] = []
        for (tenant, d), qs in counts.items():
            cap = self.max_per_device[tenant]
            if len(qs) > cap:
                for q in reversed(qs[cap:]):
                    out.append(
                        Violation(
                            self.name,
                            q,
                            d,
                            f"tenant {tenant!r} has {len(qs)} queues on one "
                            f"device (cap {cap})",
                        )
                    )
        return out


class CoLocationConstraint(Constraint):
    """Groups of queues that must share one device (e.g. a pipeline whose
    stages exchange device-resident buffers every epoch)."""

    name = "co-location"

    def __init__(self, groups: Sequence[Sequence[str]]) -> None:
        self.groups = [tuple(g) for g in groups]

    def violations(self, assignment: Mapping[str, str]) -> List[Violation]:
        out: List[Violation] = []
        for group in self.groups:
            placed = [(q, assignment[q]) for q in group if q in assignment]
            if len({d for _, d in placed}) > 1:
                anchor = placed[0][1]
                for q, d in placed[1:]:
                    if d != anchor:
                        out.append(
                            Violation(
                                self.name,
                                q,
                                d,
                                f"group {group} split across devices",
                            )
                        )
        return out


class ConstraintSet:
    """Conjunction of constraints with the same interface as one."""

    def __init__(self, constraints: Sequence[Constraint] = ()) -> None:
        self.constraints = list(constraints)

    def candidates(self, queue: str, devices: Sequence[str]) -> Tuple[str, ...]:
        out = tuple(devices)
        for c in self.constraints:
            allow = set(c.candidates(queue, out))
            out = tuple(d for d in out if d in allow)
            if not out:
                break
        return out

    def allows(self, queue: str, device: str) -> bool:
        return device in self.candidates(queue, (device,))

    def violations(self, assignment: Mapping[str, str]) -> List[Violation]:
        out: List[Violation] = []
        for c in self.constraints:
            out.extend(c.violations(assignment))
        return out

    def mask_cost(
        self,
        cost: Mapping[str, Mapping[str, float]],
        queues: Sequence[str],
        devices: Sequence[str],
    ) -> Dict[str, Dict[str, float]]:
        """Cost matrix with disallowed (queue, device) pairs set infeasible.

        This is the bridge into `optimal_mapping`/`greedy_mapping`, which
        already treat ``math.inf`` as "cannot place here".
        """
        masked: Dict[str, Dict[str, float]] = {}
        for q in queues:
            allow = set(self.candidates(q, devices))
            row = cost[q]
            masked[q] = {
                d: (row.get(d, math.inf) if d in allow else math.inf)
                for d in devices
            }
        return masked


@dataclass(frozen=True)
class MappingDelta:
    """What changed since ``prev`` was solved.

    ``removed_devices`` — devices that failed or were withdrawn;
    ``added_queues`` — queues with no previous binding (arrivals);
    ``removed_queues`` — queues retired from the pool (informational: the
    caller simply omits them from ``queues``).
    """

    removed_devices: Tuple[str, ...] = ()
    added_queues: Tuple[str, ...] = ()
    removed_queues: Tuple[str, ...] = ()


def repair_mapping(
    prev: MappingResult,
    delta: MappingDelta,
    queues: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
    constraints: Optional[ConstraintSet] = None,
    threshold: float = DEFAULT_REPAIR_THRESHOLD,
    node_budget: int = REPAIR_NODE_BUDGET,
) -> MappingResult:
    """Repair ``prev`` against the post-delta pool instead of re-solving.

    ``queues``/``devices``/``cost`` describe the *current* (post-delta)
    pool.  Queues still bound to a surviving, still-allowed device keep
    their binding; only the affected set — queues on removed devices,
    arrivals, and kept queues displaced by constraint violations — is
    re-placed, by a bounded branch-and-bound over those queues alone.

    Decision rule (documented in DESIGN.md §11): the repair is **accepted**
    iff its makespan is (a) no worse than a fresh solve estimate — the LPT
    list-scheduling assignment that seeds the full solver, computed in
    O(Q·D) — and (b) within ``threshold`` × the previous makespan scaled by
    the capacity lost (``len(prev devices) / len(devices)``).  Otherwise it
    **falls back** to `optimal_mapping` over the whole pool with the
    surviving bindings preferred, so a rejected repair costs one solve and
    returns exactly the fresh solution.

    The result's ``repaired`` flag records which path ran and
    ``migrated_queues`` lists every queue whose device changed (or that was
    newly placed), so callers can tell repair from re-solve in telemetry.
    """
    _validate(queues, devices, cost)
    if constraints is not None and constraints.constraints:
        cost = constraints.mask_cost(cost, queues, devices)
        _validate(queues, devices, cost)

    removed = set(delta.removed_devices)
    added = set(delta.added_queues)
    device_set = set(devices)

    kept: Dict[str, str] = {}
    affected: List[str] = []
    for q in queues:
        d = prev.mapping.get(q)
        if (
            q in added
            or d is None
            or d in removed
            or d not in device_set
            or not math.isfinite(cost[q].get(d, math.inf))
        ):
            affected.append(q)
        else:
            kept[q] = d

    # Displace kept queues that violate constraints on their kept device
    # (e.g. capacity headroom shrank when orphans lost their device).
    # Each round evicts the reported violators; bounded by the pool size.
    if constraints is not None and constraints.constraints:
        for _ in range(len(queues)):
            bad = constraints.violations(kept)
            if not bad:
                break
            for v in bad:
                if v.queue in kept:
                    del kept[v.queue]
                    affected.append(v.queue)

    dev_index = {d: i for i, d in enumerate(devices)}

    # Surviving load per device, summed in (current) queue order so the
    # float is deterministic for equal inputs.
    base: Dict[str, float] = {d: 0.0 for d in devices}
    for q in queues:
        d = kept.get(q)
        if d is not None:
            base[d] += cost[q][d]

    placed, repair_makespan, explored, complete = _place_affected(
        affected, devices, cost, base, dev_index, node_budget
    )

    migrated = tuple(
        sorted(q for q in affected if prev.mapping.get(q) != placed[q])
    )

    # --- decision rule: accept repair or fall back to a full solve -------
    # Accept only when (a) the affected-subset search ran to completion
    # within its node budget — the placement is then exhaustively optimal
    # over the surviving assignment, not a truncated guess ("repair cost
    # exceeds a solve estimate" otherwise: an exhausted budget means the
    # subproblem is as hard as re-solving); (b) the repaired makespan is no
    # worse than the fresh solve estimate (the LPT list-scheduling
    # assignment that seeds the full solver, O(Q·D)); and (c) it stays
    # within ``threshold`` × the previous makespan scaled for the lost
    # capacity.  Rejection falls back to the full solve below.
    accept = complete
    if accept:
        solve_estimate = _solve_estimate(queues, devices, cost, prev.mapping)

        bound = math.inf
        if math.isfinite(prev.makespan) and prev.makespan > 0.0:
            prev_devices = len(set(prev.mapping.values())) or 1
            scale = prev_devices / max(len(devices), 1)
            bound = threshold * prev.makespan * max(scale, 1.0)

        accept = (
            repair_makespan <= solve_estimate * (1.0 + _REL_TOL)
            and repair_makespan <= bound
        )
    if accept:
        mapping = dict(kept)
        mapping.update(placed)
        return MappingResult(
            mapping={q: mapping[q] for q in queues},
            makespan=repair_makespan,
            explored=explored,
            exact=False,
            repaired=True,
            migrated_queues=migrated,
        )

    full = optimal_mapping(
        queues,
        devices,
        cost,
        {q: prev.mapping[q] for q in queues if q in prev.mapping},
    )
    return replace(
        full,
        repaired=False,
        migrated_queues=tuple(
            sorted(
                q for q in queues if prev.mapping.get(q) != full.mapping[q]
            )
        ),
    )


def _solve_estimate(
    queues: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
    preferred: Mapping[str, str],
) -> float:
    """Makespan of the LPT list-scheduling assignment over the full pool.

    Bit-identical to ``max(loads)`` after `_lpt_order` + `_lpt_assign` in
    :mod:`repro.core.device_mapper` — the upper bound that seeds the full
    solver — but written as a tight scalar loop (no per-candidate tuple
    keys), since this runs on the repair hot path as the solve estimate.
    The float evolution is identical: devices are scanned in sequence
    order, the winner is decided by the same (finish time, prefer current
    device, lower index) rule, and the winning load is the same
    ``load + cost`` sum.
    """
    order = _lpt_order(queues, devices, cost)
    loads = {d: 0.0 for d in devices}
    for q in order:
        row = cost[q]
        pref = preferred.get(q)
        best_t = math.inf
        best_dev: Optional[str] = None
        best_pref = False
        for d in devices:
            c = row.get(d, math.inf)
            if not math.isfinite(c):
                continue
            t = loads[d] + c
            if t < best_t or best_dev is None:
                best_t, best_dev, best_pref = t, d, d == pref
            elif t == best_t and not best_pref and d == pref:
                best_dev, best_pref = d, True
        if best_dev is None:
            raise MapperError(f"queue {q!r} infeasible on every device")
        loads[best_dev] = best_t
    return max(loads.values())


def _place_affected(
    affected: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
    base: Mapping[str, float],
    dev_index: Mapping[str, int],
    node_budget: int,
) -> Tuple[Dict[str, str], float, int, bool]:
    """Place ``affected`` onto ``base`` loads minimising the makespan.

    Three stages, cheapest first — the local search over the surviving
    assignment the tentpole calls for, then exact search over the affected
    subset only:

    1. LPT insert: each affected queue (largest first) onto the device
       where it finishes earliest.
    2. First-improvement local search moving affected queues off the
       bottleneck device (survivors never move, so the migration set stays
       exactly the affected set).
    3. Depth-first branch-and-bound over the affected queues, seeded with
       the incumbent from (2), pruned by the same suffix-max and
       load-balance lower bounds as the exact mapper, and capped at
       ``node_budget`` explored nodes.

    Returns ``(placement, makespan, explored, complete)`` where
    ``complete`` is True iff the search exhausted the subtree within its
    budget — the placement is then optimal given the pinned survivors.
    Loads are recomputed from ``base`` by summation in a fixed order
    (save/restore, never ``-=``), so results are bit-identical across runs.
    """
    if not affected:
        makespan = max(base.values()) if base else 0.0
        return {}, makespan, 0, True

    order = _lpt_order(affected, devices, cost)
    n = len(order)

    # Stage 1 — seed: earliest-finish insert, largest queue first.
    loads = dict(base)
    assign: List[str] = []
    for q in order:
        row = cost[q]
        best_dev = None
        best_key = None
        for d in devices:
            c = row.get(d, math.inf)
            if not math.isfinite(c):
                continue
            key = (loads[d] + c, dev_index[d])
            if best_key is None or key < best_key:
                best_key, best_dev = key, d
        if best_dev is None:
            raise MapperError(f"queue {q!r} infeasible on every device")
        assign.append(best_dev)
        loads[best_dev] += row[best_dev]

    # Stage 2 — local search: move affected queues off the bottleneck while
    # the makespan strictly improves (first improvement, deterministic scan
    # order; loads recomputed from base in order-sequence, drift-free).
    def recompute(device: str) -> float:
        total = base[device]
        for q, d in zip(order, assign):
            if d == device:
                total += cost[q][device]
        return total

    for _ in range(2 * n):
        makespan = max(loads.values())
        moved = False
        for i, q in enumerate(order):
            src = assign[i]
            if loads[src] != makespan:
                continue
            row = cost[q]
            for d in devices:
                if d == src:
                    continue
                c = row.get(d, math.inf)
                if not math.isfinite(c):
                    continue
                assign[i] = d
                new_src = recompute(src)
                new_dst = recompute(d)
                if new_src < makespan and new_dst < makespan:
                    loads[src] = new_src
                    loads[d] = new_dst
                    moved = True
                    break
                assign[i] = src
            if moved:
                break
        if not moved:
            break

    best_makespan = max(loads.values())
    best_assign = list(assign)

    # Stage 3 — bounded exact search.  suffix_max: some unplaced queue
    # costs at least this wherever it lands; the load-balance bound spreads
    # the best-case remaining work over all devices (both admissible, same
    # as the exact mapper's bounds).
    min_cost = [
        min(
            c
            for c in (cost[q].get(d, math.inf) for d in devices)
            if math.isfinite(c)
        )
        for q in order
    ]
    suffix_max = [0.0] * (n + 1)
    suffix_sum = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_max[i] = max(min_cost[i], suffix_max[i + 1])
        suffix_sum[i] = suffix_sum[i + 1] + min_cost[i]
    n_devices = len(devices)
    base_total = sum(base[d] for d in devices)

    explored = 0
    loads = dict(base)
    node: List[str] = [""] * n
    tol = 1.0 + _REL_TOL

    def rec(i: int, current_max: float, placed_total: float) -> None:
        nonlocal best_makespan, best_assign, explored
        if explored >= node_budget:
            return
        if i == n:
            if current_max < best_makespan:
                best_makespan = current_max
                best_assign = list(node)
            return
        lb = suffix_max[i]
        avg = (base_total + placed_total + suffix_sum[i]) / n_devices
        if avg > lb:
            lb = avg
        if current_max > lb:
            lb = current_max
        if lb > best_makespan * tol:
            return
        q = order[i]
        row = cost[q]
        for d in devices:
            c = row.get(d, math.inf)
            if not math.isfinite(c):
                continue
            explored += 1
            old = loads[d]
            new = old + c
            if new > best_makespan * tol:
                continue
            node[i] = d
            loads[d] = new
            rec(i + 1, current_max if current_max > new else new,
                placed_total + c)
            loads[d] = old
            node[i] = ""

    rec(0, max(base.values()) if base else 0.0, 0.0)
    complete = explored < node_budget

    # Recompute the winning makespan drift-free from base in order-sequence.
    final = dict(base)
    for q, d in zip(order, best_assign):
        final[d] += cost[q][d]
    return dict(zip(order, best_assign)), max(final.values()), explored, complete
