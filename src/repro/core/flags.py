"""Interpretation of scheduling flags and runtime configuration.

Two layers of knobs, mirroring the paper:

* **Per-queue** :class:`ScheduleOptions`, derived from the queue's
  ``SCHED_*`` bitfield: static vs dynamic scheduling, trigger granularity,
  and workload hints (compute/memory/IO bound, iterative).  The
  ``SCHED_COMPUTE_BOUND`` hint is what turns on minikernel profiling
  (Section V.C.2).
* **Per-context** :class:`SchedulerConfig`, the runtime-level switches the
  evaluation ablates: data caching (Fig. 7), kernel-profile caching,
  minikernel profiling (Fig. 8), per-kernel vs per-epoch trigger frequency,
  and the iterative re-profiling frequency (the "program environment flag"
  of Section V.C.1).  Defaults are the paper's recommended settings.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.ocl.enums import SchedFlag

__all__ = [
    "ScheduleOptions",
    "SchedulerConfig",
    "CONFIG_PROPERTY_KEY",
    "PREDICT_ENV",
    "PREDICT_TOLERANCE_ENV",
    "PREDICT_CONFIDENCE_ENV",
    "MAPPER_REPAIR_ENV",
    "MAPPER_REPAIR_THRESHOLD_ENV",
    "SPLIT_ENV",
    "SPLIT_GRANULARITY_ENV",
]

#: SchedFlag value -> the (frozen) options instance it denotes.
_OPTIONS_MEMO: dict = {}

#: Key under which a :class:`SchedulerConfig` may be passed in the context
#: properties dict (alongside CL_CONTEXT_SCHEDULER).
CONFIG_PROPERTY_KEY = "multicl.config"

#: Environment variable for the iterative re-profiling frequency
#: ("the user can set a program environment flag to denote the iterative
#: scheduler frequency", Section V.C.1).  0 = never re-profile.
ITERATIVE_FREQ_ENV = "MULTICL_ITERATIVE_FREQUENCY"

#: Enable profiling-free scheduling from static kernel features
#: (:mod:`repro.predict`).  "1"/"true"/"yes"/"on" enable, anything else
#: disables.  Off by default: prediction changes mapping decisions, and
#: all paper-reproduction figures are defined against measured profiles.
PREDICT_ENV = "MULTICL_PREDICT"

#: Relative observed-vs-predicted error above which the corrector folds the
#: observation back into the model (float, default 0.25).
PREDICT_TOLERANCE_ENV = "MULTICL_PREDICT_TOLERANCE"

#: Minimum predictor confidence (leverage-gated, in [0, 1]) required to
#: skip measurement for a kernel (float, default 0.5).
PREDICT_CONFIDENCE_ENV = "MULTICL_PREDICT_CONFIDENCE"

#: Incremental mapping repair (:mod:`repro.core.constraints`) on device
#: failure, plus result reuse when the scheduler's inputs are unchanged.
#: On by default; "0"/"false"/... disables, restoring the always-re-solve
#: path.  With no fault injected the mapping decisions are bit-identical
#: either way (reuse returns the cached result of the same pure solve).
MAPPER_REPAIR_ENV = "MULTICL_MAPPER_REPAIR"

#: Repair acceptance threshold: a repaired assignment is kept only while
#: its makespan stays within this factor of the previous makespan scaled
#: for the lost capacity (float >= 1.0, default 1.25); beyond it the
#: scheduler falls back to a full re-solve.
MAPPER_REPAIR_THRESHOLD_ENV = "MULTICL_MAPPER_REPAIR_THRESHOLD"

#: Context-wide kill switch / opt-in for multi-device kernel splitting: all
#: dynamically scheduled queues behave as if they carried ``SCHED_SPLIT``.
#: Per-queue flags still opt individual queues in when this is unset.
SPLIT_ENV = "MULTICL_SPLIT"

#: Work-splitting granularity: each device's sub-range is rounded to a
#: multiple of (its effective workgroup size in dim 0) × this factor
#: (positive integer, default 1).  Coarser granularity trades balance
#: precision for fewer, larger sub-transfers.
SPLIT_GRANULARITY_ENV = "MULTICL_SPLIT_GRANULARITY"

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})


@dataclass(frozen=True)
class SchedulerConfig:
    """Context-wide runtime switches (ablation knobs)."""

    #: Section V.C.3: stage profiling inputs via one D2H + (n-1) H2D and keep
    #: the staged copies resident.  Off = brute-force per-device D2D staging
    #: whose copies are discarded.
    data_caching: bool = True
    #: Section V.C.1: cache kernel and kernel-epoch profiles in memory.
    profile_caching: bool = True
    #: Section V.C.2: honour SCHED_COMPUTE_BOUND by minikernel-profiling.
    #: Off = always run full kernels during profiling (Fig. 8 baseline).
    allow_minikernel: bool = True
    #: Trigger the scheduler per individual kernel instead of per epoch
    #: (the high-overhead alternative discussed in Section V.A).
    per_kernel_trigger: bool = False
    #: Re-measure kernel profiles every N scheduler triggers (0 = never).
    iterative_refresh: int = 0
    #: Simulated host cost of one mapping computation (dynamic programming
    #: over the queue pool); "negligible because the number of devices in
    #: present-day nodes is not high".
    mapping_host_seconds: float = 20e-6
    #: Relative noise injected into kernel-profiling measurements
    #: (deterministic per kernel/device).  0 = exact.  Used by the
    #: robustness ablation: how wrong can measurements be before the
    #: mapper starts mispicking devices?
    measurement_noise: float = 0.0
    #: Consult the static-feature predictor (:mod:`repro.predict`) before
    #: measuring: kernels whose predicted confidence clears the threshold
    #: are scheduled with zero profiling launches.  Off by default — the
    #: paper's figures are defined against measured profiles.
    predict: bool = False
    #: Corrector-loop tolerance: when a kernel *is* measured (decline or
    #: iterative refresh) and the prediction's relative error exceeds this,
    #: the observation is folded back into the model.
    predict_tolerance: float = 0.25
    #: Minimum leverage-gated confidence required to skip measurement.
    predict_confidence: float = 0.5
    #: Directory holding fitted predictor models ("" = resolve from
    #: ``MULTICL_PREDICT_DIR``, else the profile cache directory).
    predict_dir: str = ""
    #: Repair the existing queue→device assignment incrementally on device
    #: failure (and reuse it outright when nothing changed) instead of
    #: re-solving the whole pool (:mod:`repro.core.constraints`).
    mapper_repair: bool = True
    #: Accept a repair only while its makespan stays within this factor of
    #: the capacity-scaled previous makespan (>= 1.0).
    repair_threshold: float = 1.25
    #: Split every dynamically scheduled queue's kernel epochs across the
    #: active devices (context-wide ``SCHED_SPLIT``).  Off by default —
    #: splitting changes the issue plan, and individual queues opt in with
    #: the flag.
    split: bool = False
    #: Sub-range rounding granularity in units of the per-device effective
    #: workgroup size along dimension 0 (positive integer).
    split_granularity: int = 1

    def with_(self, **kw) -> "SchedulerConfig":
        """Functional update helper."""
        return replace(self, **kw)

    @staticmethod
    def from_env(base: Optional["SchedulerConfig"] = None) -> "SchedulerConfig":
        cfg = base or SchedulerConfig()
        freq = os.environ.get(ITERATIVE_FREQ_ENV)
        if freq is not None:
            try:
                value = int(freq)
            except ValueError:
                warnings.warn(
                    f"ignoring invalid {ITERATIVE_FREQ_ENV}={freq!r}: "
                    f"expected an integer trigger count",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                cfg = cfg.with_(iterative_refresh=max(0, value))
        predict = os.environ.get(PREDICT_ENV)
        if predict is not None:
            cfg = cfg.with_(predict=predict.strip().lower() in _TRUE_WORDS)
        repair = os.environ.get(MAPPER_REPAIR_ENV)
        if repair is not None:
            cfg = cfg.with_(mapper_repair=repair.strip().lower() in _TRUE_WORDS)
        split = os.environ.get(SPLIT_ENV)
        if split is not None:
            cfg = cfg.with_(split=split.strip().lower() in _TRUE_WORDS)
        raw = os.environ.get(SPLIT_GRANULARITY_ENV)
        if raw is not None:
            try:
                value = int(raw)
                if value < 1:
                    raise ValueError(raw)
            except ValueError:
                warnings.warn(
                    f"ignoring invalid {SPLIT_GRANULARITY_ENV}={raw!r}: "
                    f"expected a positive integer",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                cfg = cfg.with_(split_granularity=value)
        for env, attr in (
            (PREDICT_TOLERANCE_ENV, "predict_tolerance"),
            (PREDICT_CONFIDENCE_ENV, "predict_confidence"),
        ):
            raw = os.environ.get(env)
            if raw is None:
                continue
            try:
                value_f = float(raw)
            except ValueError:
                warnings.warn(
                    f"ignoring invalid {env}={raw!r}: expected a float",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                cfg = cfg.with_(**{attr: max(0.0, value_f)})
        raw = os.environ.get(MAPPER_REPAIR_THRESHOLD_ENV)
        if raw is not None:
            try:
                value_f = float(raw)
            except ValueError:
                warnings.warn(
                    f"ignoring invalid {MAPPER_REPAIR_THRESHOLD_ENV}={raw!r}: "
                    f"expected a float >= 1.0",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                cfg = cfg.with_(repair_threshold=max(1.0, value_f))
        return cfg


@dataclass(frozen=True)
class ScheduleOptions:
    """Per-queue scheduling behaviour derived from its SCHED_* flags."""

    auto: bool = False
    dynamic: bool = False
    epoch_trigger: bool = False
    explicit_region: bool = False
    iterative: bool = False
    compute_bound: bool = False
    memory_bound: bool = False
    io_bound: bool = False
    split: bool = False
    overlap: bool = False

    @staticmethod
    def from_flags(flags: SchedFlag) -> "ScheduleOptions":
        # Memoised per flag value: the scheduler derives options for every
        # queue on every sync pass, and ScheduleOptions is frozen so the
        # shared instance is safe.
        key = flags.value
        cached = _OPTIONS_MEMO.get(key)
        if cached is not None:
            return cached
        options = ScheduleOptions(
            auto=flags.is_auto,
            dynamic=flags.is_dynamic,
            epoch_trigger=bool(flags & SchedFlag.SCHED_KERNEL_EPOCH),
            explicit_region=bool(flags & SchedFlag.SCHED_EXPLICIT_REGION),
            iterative=bool(flags & SchedFlag.SCHED_ITERATIVE),
            compute_bound=bool(flags & SchedFlag.SCHED_COMPUTE_BOUND),
            memory_bound=bool(flags & SchedFlag.SCHED_MEMORY_BOUND),
            io_bound=bool(flags & SchedFlag.SCHED_IO_BOUND),
            split=bool(flags & SchedFlag.SCHED_SPLIT),
            overlap=bool(flags & SchedFlag.SCHED_OVERLAP),
        )
        _OPTIONS_MEMO[key] = options
        return options

    @property
    def wants_minikernel(self) -> bool:
        """Compute-bound queues opt into minikernel profiling."""
        return self.compute_bound

    @property
    def is_static_mode(self) -> bool:
        """SCHED_AUTO_STATIC without SCHED_AUTO_DYNAMIC: hint-only placement.

        If both flags are set, dynamic wins (the more capable mode).
        """
        return self.auto and not self.dynamic
