"""On-disk cache for static device profiles.

The paper (Section V.A): "the device profiler ... retrieves the static
device profile from the profile cache.  If the profile cache does not
exist, then the runtime runs data bandwidth and instruction throughput
benchmarks and caches the measured metrics as static per-device profiles
in the user's file system.  The profile cache location can be controlled
by environment variables.  The benchmarks are run again only if the
system configuration changes."

We store one JSON file per node configuration.  The file name embeds a
fingerprint of the node spec, so adding/removing/retuning devices — a
"system configuration change" — naturally misses the cache and re-runs the
microbenchmarks.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

try:  # POSIX; on platforms without fcntl the lock degrades to a no-op.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.hardware.specs import NodeSpec
from repro.lru import BoundedLRU

__all__ = [
    "PROFILE_CACHE_ENV",
    "default_cache_dir",
    "node_fingerprint",
    "cache_path",
    "load_profile_dict",
    "save_profile_dict",
    "load_or_compute",
    "load_json",
    "save_json",
    "locked",
    "load_or_compute_json",
    "clear_cache",
]

#: Environment variable overriding the profile cache directory.
PROFILE_CACHE_ENV = "MULTICL_PROFILE_CACHE"

#: (path, mtime_ns, size) -> parsed JSON payload of the last profile read.
_read_memo: Dict[Any, Dict[str, Any]] = {}

#: Equality key of a NodeSpec -> digest.  NodeSpec itself is unhashable
#: (its ``host_links`` is a dict), so the key is the hashable equivalent of
#: its equality tuple.  Shares the bounded-LRU implementation with the
#: source-parse memo (:mod:`repro.lru`): eviction drops the least recently
#: used spec, not merely the oldest.
_FP_MEMO_MAX = 64
_fp_memo: BoundedLRU = BoundedLRU(_FP_MEMO_MAX)


def _fp_memo_key(spec: NodeSpec) -> Any:
    """Hashable key with the same equality semantics as the spec itself."""
    return (spec.name, spec.devices, tuple(sorted(spec.host_links.items())))


def default_cache_dir() -> Path:
    """Resolve the cache directory (env var, else ``~/.cache/multicl``)."""
    env = os.environ.get(PROFILE_CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "multicl"


def node_fingerprint(spec: NodeSpec) -> str:
    """Stable hash of everything scheduling-relevant about the node.

    Memoised on the (frozen, hence immutable) spec object: runtimes are
    frequently constructed against the same node spec, and serialising the
    full spec through ``dataclasses.asdict`` + json on every construction
    dominated runtime startup.
    """
    cached = getattr(spec, "_fingerprint_memo", None)
    if cached is not None:
        return cached
    # Equality fallback: distinct-but-equal spec instances (each runtime
    # construction may build its own) share the digest without
    # re-serialising.  Bounded LRU — repeated distinct specs can never
    # grow the memo past _FP_MEMO_MAX entries.
    key = _fp_memo_key(spec)
    digest = _fp_memo.get(key)
    if digest is None:
        payload = json.dumps(_spec_to_jsonable(spec), sort_keys=True)
        digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
        _fp_memo.put(key, digest)
    object.__setattr__(spec, "_fingerprint_memo", digest)
    return digest


def _spec_to_jsonable(spec: NodeSpec) -> Dict[str, Any]:
    return {
        "name": spec.name,
        "devices": [
            {**dataclasses.asdict(d), "kind": d.kind.value} for d in spec.devices
        ],
        "host_links": {
            k: dataclasses.asdict(v) for k, v in sorted(spec.host_links.items())
        },
    }


def cache_path(spec: NodeSpec, cache_dir: Optional[str] = None) -> Path:
    base = Path(cache_dir) if cache_dir else default_cache_dir()
    return base / f"device-profile-{spec.name}-{node_fingerprint(spec)}.json"


def load_profile_dict(
    spec: NodeSpec, cache_dir: Optional[str] = None
) -> Optional[Dict[str, Any]]:
    """Load the cached profile for ``spec``, or None on a cache miss.

    A corrupt cache file is treated as a miss (and will be overwritten by
    the next save), matching the robustness a production runtime needs.
    """
    path = cache_path(spec, cache_dir)
    try:
        stat = path.stat()
    except OSError:
        return None
    # In-process read cache keyed by (path, mtime, size): repeated runtime
    # constructions against an unchanged profile file skip the JSON parse.
    memo_key = (str(path), stat.st_mtime_ns, stat.st_size)
    data = _read_memo.get(memo_key)
    if data is None:
        try:
            with path.open("r") as fh:
                data = json.load(fh)
        except (json.JSONDecodeError, OSError):
            return None
        _read_memo.clear()  # keep at most one file's worth of memo
        _read_memo[memo_key] = data
    if data.get("fingerprint") != node_fingerprint(spec):
        return None
    return data


def save_json(path: Path, payload: Dict[str, Any]) -> Path:
    """Atomically persist ``payload`` as JSON at ``path``.

    The write goes to a uniquely-named temporary file in the target
    directory followed by an atomic rename, so concurrent writers cannot
    corrupt each other's staging file and a concurrent reader only ever
    sees a complete file (or none).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def load_json(path: Path) -> Optional[Dict[str, Any]]:
    """Load a JSON payload from ``path``; missing or corrupt file -> None.

    A corrupt file is treated as a miss (and will be overwritten by the
    next save), matching the robustness a production runtime needs.
    """
    try:
        with Path(path).open("r") as fh:
            return json.load(fh)
    except (json.JSONDecodeError, OSError):
        return None


def save_profile_dict(
    spec: NodeSpec, payload: Dict[str, Any], cache_dir: Optional[str] = None
) -> Path:
    """Persist a measured profile; returns the file path."""
    path = cache_path(spec, cache_dir)
    payload = dict(payload)
    payload["fingerprint"] = node_fingerprint(spec)
    return save_json(path, payload)


@contextlib.contextmanager
def locked(path: Path) -> Iterator[None]:
    """Advisory cross-process lock guarding the file at ``path``.

    Implemented as ``flock`` on a sibling ``.lock`` file, which the kernel
    releases automatically if the holder dies.  Degrades to a no-op where
    ``fcntl`` is unavailable.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lock_path = path.with_suffix(path.suffix + ".lock")
    fd = os.open(str(lock_path), os.O_RDWR | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        with contextlib.suppress(OSError):
            fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


#: Backwards-compatible private alias (pre-predict-layer name).
_locked = locked


def load_or_compute_json(
    path: Path, compute: Callable[[], Dict[str, Any]]
) -> Tuple[Dict[str, Any], bool]:
    """Generic single-flight cached JSON retrieval at an explicit path.

    Returns ``(payload, computed)`` where ``computed`` is True iff this
    call ran ``compute``.  When N processes race on a cold file, exactly
    one computes: the first to take the lock computes and saves; the rest
    block on the lock and then re-read the freshly written file.  The
    device-profile store and the predict-model store
    (:mod:`repro.predict.store`) both sit on this machinery.
    """
    path = Path(path)
    cached = load_json(path)
    if cached is not None:
        return cached, False
    with locked(path):
        cached = load_json(path)
        if cached is not None:
            return cached, False
        payload = dict(compute())
        save_json(path, payload)
        return payload, True


def load_or_compute(
    spec: NodeSpec,
    compute: Callable[[], Dict[str, Any]],
    cache_dir: Optional[str] = None,
) -> Tuple[Dict[str, Any], bool]:
    """Single-flight cached profile retrieval.

    Returns ``(payload, computed)`` where ``computed`` is True iff this
    call ran ``compute``.  When N processes race on a cold cache, exactly
    one measures: the first to take the lock computes and saves; the rest
    block on the lock and then re-read the freshly written cache.
    """
    cached = load_profile_dict(spec, cache_dir)
    if cached is not None:
        return cached, False
    path = cache_path(spec, cache_dir)
    with _locked(path):
        cached = load_profile_dict(spec, cache_dir)
        if cached is not None:
            return cached, False
        payload = dict(compute())
        payload["fingerprint"] = node_fingerprint(spec)
        save_profile_dict(spec, payload, cache_dir)
        return payload, True


def clear_cache(spec: NodeSpec, cache_dir: Optional[str] = None) -> bool:
    """Delete the cached profile for ``spec``; True if one existed."""
    path = cache_path(spec, cache_dir)
    if path.exists():
        path.unlink()
        return True
    return False
