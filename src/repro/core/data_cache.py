"""Data staging for kernel profiling (paper Section V.C.3).

Before a kernel can be profiled on a candidate device, its input data sets
must be resident there.  With *n* devices:

* **Brute force** — a D2D transfer from the source device to each of the
  other *n−1* devices; since vendor drivers do not support cross-vendor
  direct D2D, each one is a D2H + H2D double operation via host memory:
  *(n−1)* D2H plus *(n−1)* H2D.  The profiled copies are scratch and are
  discarded, so if the mapper later migrates the queue, execution pays the
  migration again.
* **Data caching** — host memory is shared by every device, so one D2H from
  the source suffices, followed by *(n−1)* H2D transfers.  Additionally the
  incoming data sets are *cached* on each destination device, trading
  memory footprint for transfer time: if the device mapper migrates the
  kernel there, the data is already present.

Both strategies charge simulated time on the per-device host links; the
caching variant also updates buffer residency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hardware.topology import SimNode
from repro.ocl.memory import HOST, Buffer
from repro.sim.engine import SimTask

__all__ = ["StagingPlan", "stage_inputs"]

#: Trace category for profiling data movement (Figs. 6 and 7 measure this).
PROFILE_TRANSFER = "profile-transfer"


@dataclass
class StagingPlan:
    """Result of staging: per-device barrier tasks plus accounting."""

    #: device name -> tasks that must complete before profiling may run there
    barriers: Dict[str, List[SimTask]] = field(default_factory=dict)
    #: total bytes moved over host links
    bytes_moved: int = 0
    #: number of individual link operations (D2H + H2D count)
    operations: int = 0

    def deps_for(self, device: str) -> List[SimTask]:
        return self.barriers.get(device, [])


def stage_inputs(
    node: SimNode,
    buffers: Sequence[Buffer],
    devices: Sequence[str],
    caching: bool,
    deps: Optional[Sequence[SimTask]] = None,
) -> StagingPlan:
    """Stage every initialized buffer onto every profiling device.

    Parameters
    ----------
    node:
        The simulated node (provides transfer task factories).
    buffers:
        Input buffers of the epoch being profiled (deduplicated here).
    devices:
        Candidate devices that will run profiling launches.
    caching:
        Selects the strategy described in the module docstring.
    deps:
        Tasks all staging must wait for (e.g. the end of prior epochs).
    """
    plan = StagingPlan(barriers={d: [] for d in devices})
    base_deps = list(deps or [])
    seen = set()
    for buf in buffers:
        if id(buf) in seen:
            continue
        seen.add(id(buf))
        if not buf.initialized:
            continue  # nothing to move; first touch allocates
        targets = [d for d in devices if not buf.is_valid_on(d)]
        if not targets:
            continue
        src_dev = buf.any_valid_device()
        if caching:
            _stage_cached(node, buf, src_dev, targets, base_deps, plan)
        else:
            _stage_brute(node, buf, src_dev, targets, base_deps, plan)
    return plan


def _stage_cached(
    node: SimNode,
    buf: Buffer,
    src_dev: Optional[str],
    targets: Sequence[str],
    deps: List[SimTask],
    plan: StagingPlan,
) -> None:
    """One D2H (if needed) + one H2D per target; copies stay resident."""
    h2d_deps = deps
    if not buf.is_valid_on(HOST):
        assert src_dev is not None
        d2h = node.submit_d2h(
            src_dev, buf.nbytes, deps=deps, category=PROFILE_TRANSFER,
            name=f"prof-stage:{buf.name}",
        )
        plan.bytes_moved += buf.nbytes
        plan.operations += 1
        buf.mark_valid(HOST)
        h2d_deps = deps + [d2h]
    for dst in targets:
        h2d = node.submit_h2d(
            dst, buf.nbytes, deps=h2d_deps, category=PROFILE_TRANSFER,
            name=f"prof-stage:{buf.name}",
        )
        plan.bytes_moved += buf.nbytes
        plan.operations += 1
        # The cached copy is kept: post-mapping execution finds it resident.
        buf.mark_valid(dst)
        plan.barriers[dst].append(h2d)


def _stage_brute(
    node: SimNode,
    buf: Buffer,
    src_dev: Optional[str],
    targets: Sequence[str],
    deps: List[SimTask],
    plan: StagingPlan,
) -> None:
    """Per-target D2D (D2H+H2D) staging; scratch copies are discarded."""
    for dst in targets:
        if src_dev is not None and src_dev != dst:
            d2h = node.submit_d2h(
                src_dev, buf.nbytes, deps=deps, category=PROFILE_TRANSFER,
                name=f"prof-stage:{buf.name}",
            )
            h2d = node.submit_h2d(
                dst, buf.nbytes, deps=[d2h], category=PROFILE_TRANSFER,
                name=f"prof-stage:{buf.name}",
            )
            plan.bytes_moved += 2 * buf.nbytes
            plan.operations += 2
        else:
            # Valid on host only (or already on dst's twin): single H2D.
            h2d = node.submit_h2d(
                dst, buf.nbytes, deps=deps, category=PROFILE_TRANSFER,
                name=f"prof-stage:{buf.name}",
            )
            plan.bytes_moved += buf.nbytes
            plan.operations += 1
        # Residency deliberately NOT updated: the copy is scratch.
        plan.barriers[dst].append(h2d)
