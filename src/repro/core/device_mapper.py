"""Queue→device mapping that minimises concurrent completion time.

Paper Section V.A: "We use the per-queue aggregate kernel profiles and
apply a simple dynamic programming approach to determine the ideal
queue-device mapping that minimizes the concurrent execution time. The
dynamic programming approach guarantees ideal queue-device mapping and,
at the same time, incurs negligible overhead because the number of devices
in present-day nodes is not high."

The objective: given a cost matrix ``cost[q][d]`` (estimated seconds for
queue *q*'s epoch on device *d*, including data-movement estimates), find
the assignment of queues to devices minimising the *makespan* — the maximum
over devices of the summed costs of the queues assigned to it (queues on
the same device serialise; different devices run concurrently).

Two exact solvers are provided:

* :func:`optimal_mapping` — memoised depth-first search with
  branch-and-bound pruning (the production path; explores a tiny fraction
  of the space for realistic pool sizes);
* :func:`brute_force_mapping` — exhaustive enumeration, used as the
  reference oracle in property-based tests ("always maps command queues to
  the optimal device combination" is an assertable claim).

Infeasible pairs (e.g. the data does not fit in device memory) carry
``math.inf`` cost.  Ties are broken toward each queue's current device (to
avoid gratuitous migrations), then toward lower device index.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["MappingResult", "optimal_mapping", "brute_force_mapping", "MapperError"]


class MapperError(RuntimeError):
    """No feasible assignment exists."""


@dataclass(frozen=True)
class MappingResult:
    """An assignment plus its predicted makespan."""

    mapping: Dict[str, str]
    makespan: float
    explored: int = 0

    def device_loads(self, cost: Mapping[str, Mapping[str, float]]) -> Dict[str, float]:
        loads: Dict[str, float] = {}
        for q, d in self.mapping.items():
            loads[d] = loads.get(d, 0.0) + cost[q][d]
        return loads


def _validate(
    queues: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
) -> None:
    if not queues:
        raise MapperError("empty queue pool")
    if not devices:
        raise MapperError("no devices")
    for q in queues:
        row = cost.get(q)
        if row is None:
            raise MapperError(f"no cost row for queue {q!r}")
        if all(not math.isfinite(row.get(d, math.inf)) for d in devices):
            raise MapperError(f"queue {q!r} infeasible on every device")


def brute_force_mapping(
    queues: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
) -> MappingResult:
    """Exhaustive reference solver: enumerate all |D|^|Q| assignments."""
    _validate(queues, devices, cost)
    best: Optional[Tuple[float, Tuple[str, ...]]] = None
    explored = 0
    for combo in itertools.product(devices, repeat=len(queues)):
        explored += 1
        loads: Dict[str, float] = {}
        feasible = True
        for q, d in zip(queues, combo):
            c = cost[q].get(d, math.inf)
            if not math.isfinite(c):
                feasible = False
                break
            loads[d] = loads.get(d, 0.0) + c
        if not feasible:
            continue
        makespan = max(loads.values())
        if best is None or makespan < best[0]:
            best = (makespan, combo)
    if best is None:
        raise MapperError("no feasible assignment")
    return MappingResult(
        mapping=dict(zip(queues, best[1])), makespan=best[0], explored=explored
    )


def optimal_mapping(
    queues: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
    preferred: Optional[Mapping[str, str]] = None,
) -> MappingResult:
    """Exact makespan-minimising assignment with pruning.

    ``preferred`` maps queue → its current device; among equal-makespan
    solutions the one keeping more queues on their preferred device (and
    then using lexicographically earlier devices) wins, avoiding pointless
    migrations.
    """
    _validate(queues, devices, cost)
    preferred = dict(preferred or {})
    # Order queues by decreasing best-case cost: placing the expensive,
    # constrained queues first makes pruning effective.
    order = sorted(
        queues,
        key=lambda q: -min(cost[q].get(d, math.inf) for d in devices),
    )
    n = len(order)
    dev_index = {d: i for i, d in enumerate(devices)}

    best_makespan = math.inf
    best_assign: Optional[List[str]] = None
    best_score: Tuple[int, float, Tuple[int, ...]] = (0, 0.0, ())
    explored = 0
    loads: Dict[str, float] = {d: 0.0 for d in devices}
    assign: List[str] = [""] * n
    seen: Dict[Tuple[int, Tuple[float, ...]], float] = {}

    def tie_score(assignment: Sequence[str]) -> Tuple[int, float, Tuple[int, ...]]:
        """Among equal-makespan assignments prefer, in order: fewer
        migrations away from current bindings; better load balance (lower
        sum of squared device loads — so idle twins get used); and finally
        a deterministic device order."""
        migrations = sum(
            1 for q, d in zip(order, assignment) if preferred.get(q) not in (None, d)
        )
        balance = sum(v * v for v in loads.values())
        return (migrations, balance, tuple(dev_index[d] for d in assignment))

    def rec(i: int, current_max: float) -> None:
        nonlocal best_makespan, best_assign, best_score, explored
        if current_max > best_makespan:
            return
        if i == n:
            score = tie_score(assign)
            if current_max < best_makespan or (
                current_max == best_makespan
                and (best_assign is None or score < best_score)
            ):
                best_makespan = current_max
                best_assign = list(assign)
                best_score = score
            return
        # Memoisation on (queue index, per-device load vector): identical
        # residual subproblems cannot improve — this is the "dynamic
        # programming" over partial load states.  The vector keeps device
        # identity (costs are device-dependent, so sorting loads would
        # conflate genuinely different states).
        state = (i, tuple(loads[d] for d in devices))
        prev = seen.get(state)
        # Strict inequality: a revisit at *equal* makespan must still be
        # explored, or the migration-avoiding tie-break could be pruned
        # away (leaving, e.g., two queues piled on one GPU while its twin
        # idles, despite equal makespan).
        if prev is not None and prev < current_max:
            return
        seen[state] = current_max
        q = order[i]
        # Try the preferred device first so ties resolve without migration.
        cand = sorted(
            devices,
            key=lambda d: (d != preferred.get(q), dev_index[d]),
        )
        for d in cand:
            c = cost[q].get(d, math.inf)
            if not math.isfinite(c):
                continue
            explored += 1
            assign[i] = d
            loads[d] += c
            rec(i + 1, max(current_max, loads[d]))
            loads[d] -= c
            assign[i] = ""
        return

    rec(0, 0.0)
    if best_assign is None:
        raise MapperError("no feasible assignment")
    return MappingResult(
        mapping=dict(zip(order, best_assign)),
        makespan=best_makespan,
        explored=explored,
    )
