"""Queue→device mapping that minimises concurrent completion time.

Paper Section V.A: "We use the per-queue aggregate kernel profiles and
apply a simple dynamic programming approach to determine the ideal
queue-device mapping that minimizes the concurrent execution time. The
dynamic programming approach guarantees ideal queue-device mapping and,
at the same time, incurs negligible overhead because the number of devices
in present-day nodes is not high."

The objective: given a cost matrix ``cost[q][d]`` (estimated seconds for
queue *q*'s epoch on device *d*, including data-movement estimates), find
the assignment of queues to devices minimising the *makespan* — the maximum
over devices of the summed costs of the queues assigned to it (queues on
the same device serialise; different devices run concurrently).

Three solvers are provided:

* :func:`optimal_mapping` — memoised depth-first search with
  branch-and-bound pruning (the production path).  The search is seeded
  with an LPT-greedy upper bound and prunes on two lower bounds (the
  largest best-case cost of any unplaced queue, and the load-balance bound
  ``total work / #devices``), so it explores a tiny fraction of the space
  for realistic pool sizes.  Above a configurable pool-size threshold
  (``exact_limit``, default from ``MULTICL_MAPPER_EXACT_MAX_QUEUES``, 16
  queues) it switches to the greedy heuristic below — exact search is
  exponential in the worst case, and a 32-queue × 8-device pool must map in
  milliseconds, not minutes.
* :func:`greedy_mapping` — deterministic LPT (longest-processing-time)
  list scheduling followed by single-queue makespan refinement.  Used as
  the large-pool fallback; near-optimal in practice (typically within a few
  percent of the exact makespan on realistic instances; the test suite
  enforces a generous ≤2× factor on its random-instance distribution, and
  determinism).  Results carry ``exact=False``.
* :func:`brute_force_mapping` — exhaustive enumeration, used as the
  reference oracle in property-based tests ("always maps command queues to
  the optimal device combination" is an assertable claim).

Infeasible pairs (e.g. the data does not fit in device memory) carry
``math.inf`` cost.  Ties are broken toward each queue's current device (to
avoid gratuitous migrations), then toward lower device index.
"""

from __future__ import annotations

import itertools
import math
import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "MappingResult",
    "optimal_mapping",
    "greedy_mapping",
    "brute_force_mapping",
    "MapperError",
    "EXACT_LIMIT_ENV",
]


class MapperError(RuntimeError):
    """No feasible assignment exists."""


#: Environment variable overriding the queue-count threshold above which
#: :func:`optimal_mapping` falls back to :func:`greedy_mapping`.
EXACT_LIMIT_ENV = "MULTICL_MAPPER_EXACT_MAX_QUEUES"

#: Default exact-search threshold (queues).  Exact search with the greedy
#: seed and lower-bound pruning is comfortably sub-millisecond at paper
#: scale (≤8 queues); beyond ~16 queues the worst case turns pathological.
DEFAULT_EXACT_LIMIT = 16


#: Raw values of EXACT_LIMIT_ENV already warned about (warn once per value,
#: not once per scheduler trigger — _exact_limit runs on the hot path).
_warned_exact_limits: Set[str] = set()


def _exact_limit() -> int:
    raw = os.environ.get(EXACT_LIMIT_ENV)
    if raw is None:
        return DEFAULT_EXACT_LIMIT
    try:
        value = int(raw)
    except ValueError:
        value = -1
    if value < 0:
        if raw not in _warned_exact_limits:
            _warned_exact_limits.add(raw)
            warnings.warn(
                f"ignoring invalid {EXACT_LIMIT_ENV}={raw!r}: expected a "
                f"non-negative integer queue count; using the default "
                f"({DEFAULT_EXACT_LIMIT})",
                RuntimeWarning,
                stacklevel=2,
            )
        return DEFAULT_EXACT_LIMIT
    return value


@dataclass(frozen=True)
class MappingResult:
    """An assignment plus its predicted makespan.

    ``exact`` is False when the result came from the greedy large-pool
    fallback rather than the exact branch-and-bound search.

    ``repaired`` is True when the result came from
    :func:`repro.core.constraints.repair_mapping`'s incremental path (the
    surviving assignment patched in place) rather than a full solve;
    ``migrated_queues`` then lists every queue whose device changed.  Full
    solves reached through a rejected repair also fill ``migrated_queues``
    (with ``repaired=False``), so telemetry can always see churn.
    """

    mapping: Dict[str, str]
    makespan: float
    explored: int = 0
    exact: bool = True
    repaired: bool = False
    migrated_queues: Tuple[str, ...] = field(default=())

    def device_loads(self, cost: Mapping[str, Mapping[str, float]]) -> Dict[str, float]:
        loads: Dict[str, float] = {}
        for q, d in self.mapping.items():
            loads[d] = loads.get(d, 0.0) + cost[q][d]
        return loads


def _validate(
    queues: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
) -> None:
    if not queues:
        raise MapperError("empty queue pool")
    if not devices:
        raise MapperError("no devices")
    for q in queues:
        row = cost.get(q)
        if row is None:
            raise MapperError(f"no cost row for queue {q!r}")
        if all(not math.isfinite(row.get(d, math.inf)) for d in devices):
            raise MapperError(f"queue {q!r} infeasible on every device")


def brute_force_mapping(
    queues: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
) -> MappingResult:
    """Exhaustive reference solver: enumerate all |D|^|Q| assignments."""
    _validate(queues, devices, cost)
    best: Optional[Tuple[float, Tuple[str, ...]]] = None
    explored = 0
    for combo in itertools.product(devices, repeat=len(queues)):
        explored += 1
        loads: Dict[str, float] = {}
        feasible = True
        for q, d in zip(queues, combo):
            c = cost[q].get(d, math.inf)
            if not math.isfinite(c):
                feasible = False
                break
            loads[d] = loads.get(d, 0.0) + c
        if not feasible:
            continue
        makespan = max(loads.values())
        if best is None or makespan < best[0]:
            best = (makespan, combo)
    if best is None:
        raise MapperError("no feasible assignment")
    return MappingResult(
        mapping=dict(zip(queues, best[1])), makespan=best[0], explored=explored
    )


def _lpt_order(
    queues: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
) -> List[str]:
    """Queues by decreasing best-case cost (LPT; also the DFS order)."""
    return sorted(
        queues,
        key=lambda q: -min(cost[q].get(d, math.inf) for d in devices),
    )


def _lpt_assign(
    order: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
    preferred: Mapping[str, str],
    dev_index: Mapping[str, int],
) -> Tuple[List[str], Dict[str, float], int]:
    """Greedy list scheduling: place each queue (largest first) on the
    device where it finishes earliest.  Deterministic; ties prefer the
    queue's current device, then lower device index."""
    loads: Dict[str, float] = {d: 0.0 for d in devices}
    assign: List[str] = []
    explored = 0
    for q in order:
        row = cost[q]
        pref = preferred.get(q)
        best_key: Optional[Tuple[float, bool, int]] = None
        best_dev: Optional[str] = None
        best_cost = 0.0
        for d in devices:
            c = row.get(d, math.inf)
            if not math.isfinite(c):
                continue
            explored += 1
            key = (loads[d] + c, d != pref, dev_index[d])
            if best_key is None or key < best_key:
                best_key, best_dev, best_cost = key, d, c
        if best_dev is None:
            raise MapperError(f"queue {q!r} infeasible on every device")
        assign.append(best_dev)
        loads[best_dev] += best_cost
    return assign, loads, explored


def _seq_load(
    order: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
    assign: Sequence[str],
    device: str,
) -> float:
    """Load of ``device`` summed in DFS queue order.

    Exactly the float the branch-and-bound search computes for the same
    assignment — incremental ``+=``/``-=`` updates drift by ULPs under
    backtracking/moves, and a drifted incumbent below any true path sum
    would prune the optimum itself.
    """
    total = 0.0
    for q, d in zip(order, assign):
        if d == device:
            total += cost[q][device]
    return total


def _refine(
    order: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
    assign: List[str],
    loads: Dict[str, float],
    dev_index: Mapping[str, int],
) -> int:
    """Single-queue moves off the bottleneck device while the makespan
    strictly improves.  First-improvement, deterministic scan order,
    bounded passes — a cheap polish that closes most of LPT's gap."""
    explored = 0
    for _ in range(2 * len(order)):
        makespan = max(loads.values())
        moved = False
        for i, q in enumerate(order):
            src = assign[i]
            if loads[src] != makespan:
                continue
            row = cost[q]
            for d in sorted(devices, key=dev_index.__getitem__):
                if d == src:
                    continue
                c_dst = row.get(d, math.inf)
                if not math.isfinite(c_dst):
                    continue
                explored += 1
                # Tentatively move and recompute both affected loads
                # drift-free; the other devices are unchanged.
                assign[i] = d
                new_src = _seq_load(order, cost, assign, src)
                new_dst = _seq_load(order, cost, assign, d)
                if new_dst < makespan and new_src < makespan:
                    loads[src] = new_src
                    loads[d] = new_dst
                    moved = True
                    break
                assign[i] = src
            if moved:
                break
        if not moved:
            break
    return explored


def greedy_mapping(
    queues: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
    preferred: Optional[Mapping[str, str]] = None,
) -> MappingResult:
    """Deterministic near-optimal heuristic: LPT + makespan refinement.

    Used by :func:`optimal_mapping` for pools above the exact-search
    threshold; may return a makespan above the true optimum (``exact`` is
    False), but runs in O(Q·D) per refinement pass.
    """
    _validate(queues, devices, cost)
    preferred = dict(preferred or {})
    dev_index = {d: i for i, d in enumerate(devices)}
    order = _lpt_order(queues, devices, cost)
    assign, loads, explored = _lpt_assign(order, devices, cost, preferred, dev_index)
    explored += _refine(order, devices, cost, assign, loads, dev_index)
    return MappingResult(
        mapping=dict(zip(order, assign)),
        makespan=max(loads.values()),
        explored=explored,
        exact=False,
    )


def optimal_mapping(
    queues: Sequence[str],
    devices: Sequence[str],
    cost: Mapping[str, Mapping[str, float]],
    preferred: Optional[Mapping[str, str]] = None,
    exact_limit: Optional[int] = None,
) -> MappingResult:
    """Exact makespan-minimising assignment with pruning.

    ``preferred`` maps queue → its current device; among equal-makespan
    solutions the one keeping more queues on their preferred device (and
    then using lexicographically earlier devices) wins, avoiding pointless
    migrations.

    Pools with more than ``exact_limit`` queues (default: the
    ``MULTICL_MAPPER_EXACT_MAX_QUEUES`` env var, else 16) are solved by
    :func:`greedy_mapping` instead — the returned result then carries
    ``exact=False`` and may be slightly above the true optimum.
    """
    _validate(queues, devices, cost)
    preferred = dict(preferred or {})
    if exact_limit is None:
        exact_limit = _exact_limit()
    if len(queues) > exact_limit:
        return greedy_mapping(queues, devices, cost, preferred)
    # Order queues by decreasing best-case cost: placing the expensive,
    # constrained queues first makes pruning effective.
    order = _lpt_order(queues, devices, cost)
    n = len(order)
    dev_index = {d: i for i, d in enumerate(devices)}
    n_devices = len(devices)

    # Seed the incumbent makespan with the LPT-greedy upper bound (but not
    # its assignment: the exact search below re-derives the best assignment
    # under the full tie-break rules, so results are identical to an
    # unseeded search — just reached with far less branching).
    greedy_assign, greedy_loads, _ = _lpt_assign(
        order, devices, cost, preferred, dev_index
    )
    _refine(order, devices, cost, greedy_assign, greedy_loads, dev_index)
    best_makespan = max(greedy_loads.values())
    del greedy_assign, greedy_loads

    # Per-queue best-case cost and suffix lower bounds over the DFS order:
    # suffix_max[i] = the largest best-case cost among unplaced queues
    # (some device must take at least that); suffix_sum[i] = total
    # best-case work still to place (the load-balance bound divides the
    # grand total across all devices).
    min_cost = {
        q: min(c for c in (cost[q].get(d, math.inf) for d in devices)
               if math.isfinite(c))
        for q in order
    }
    suffix_max = [0.0] * (n + 1)
    suffix_sum = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        mc = min_cost[order[i]]
        suffix_max[i] = mc if mc > suffix_max[i + 1] else suffix_max[i + 1]
        suffix_sum[i] = suffix_sum[i + 1] + mc

    best_assign: Optional[List[str]] = None
    best_score: Tuple[int, float, Tuple[int, ...]] = (0, 0.0, ())
    explored = 0
    loads: Dict[str, float] = {d: 0.0 for d in devices}
    assigned_total = 0.0
    assign: List[str] = [""] * n
    seen: Dict[Tuple[int, Tuple[float, ...]], float] = {}

    def tie_score(assignment: Sequence[str]) -> Tuple[int, float, Tuple[int, ...]]:
        """Among equal-makespan assignments prefer, in order: fewer
        migrations away from current bindings; better load balance (lower
        sum of squared device loads — so idle twins get used); and finally
        a deterministic device order."""
        migrations = sum(
            1 for q, d in zip(order, assignment) if preferred.get(q) not in (None, d)
        )
        balance = sum(v * v for v in loads.values())
        return (migrations, balance, tuple(dev_index[d] for d in assignment))

    def rec(i: int, current_max: float) -> None:
        nonlocal best_makespan, best_assign, best_score, explored, assigned_total
        if current_max > best_makespan:
            return
        if i == n:
            score = tie_score(assign)
            if current_max < best_makespan or (
                current_max == best_makespan
                and (best_assign is None or score < best_score)
            ):
                best_makespan = current_max
                best_assign = list(assign)
                best_score = score
            return
        # Lower-bound prune (strict: equal-makespan completions must stay
        # reachable for the tie-break): some unplaced queue costs at least
        # suffix_max[i] wherever it lands, and the total work placed so far
        # plus the best-case remainder averaged over all devices bounds the
        # final max load from below.  The average is summed in a different
        # order than the incumbent's device loads, so it can land a few ULPs
        # above an exactly-tight optimum — the relative tolerance keeps such
        # paths alive (pruning less never costs exactness).
        lb = suffix_max[i]
        avg = (assigned_total + suffix_sum[i]) / n_devices
        if avg > lb:
            lb = avg
        if lb > best_makespan * (1.0 + 1e-12):
            return
        # Memoisation on (queue index, per-device load vector): identical
        # residual subproblems cannot improve — this is the "dynamic
        # programming" over partial load states.  The vector keeps device
        # identity (costs are device-dependent, so sorting loads would
        # conflate genuinely different states).
        state = (i, tuple(loads[d] for d in devices))
        prev = seen.get(state)
        # Strict inequality: a revisit at *equal* makespan must still be
        # explored, or the migration-avoiding tie-break could be pruned
        # away (leaving, e.g., two queues piled on one GPU while its twin
        # idles, despite equal makespan).
        if prev is not None and prev < current_max:
            return
        seen[state] = current_max
        q = order[i]
        # Try the preferred device first so ties resolve without migration.
        cand = sorted(
            devices,
            key=lambda d: (d != preferred.get(q), dev_index[d]),
        )
        for d in cand:
            c = cost[q].get(d, math.inf)
            if not math.isfinite(c):
                continue
            explored += 1
            assign[i] = d
            # Save/restore instead of += / -=: float addition is not exactly
            # reversible, and a few ULPs of backtracking drift would push
            # completions past the greedy-seeded incumbent and prune the
            # (tied-)optimal assignment itself.
            old_load, old_total = loads[d], assigned_total
            loads[d] = old_load + c
            assigned_total = old_total + c
            rec(i + 1, max(current_max, loads[d]))
            loads[d] = old_load
            assigned_total = old_total
            assign[i] = ""
        return

    rec(0, 0.0)
    if best_assign is None:
        raise MapperError("no feasible assignment")
    return MappingResult(
        mapping=dict(zip(order, best_assign)),
        makespan=best_makespan,
        explored=explored,
    )
