"""Global scheduling policies: ROUND_ROBIN and AUTO_FIT (paper Section IV.A).

Both policies operate on the *ready-queue pool* — the automatically
scheduled queues holding deferred commands at a synchronization trigger —
and leave every pooled queue bound to a device with its commands issued.

* :class:`RoundRobinScheduler` assigns queues to the next available device
  cyclically.  "This approach is expected to cause the least overhead but
  not always produce the optimal queue-device map."  Device enumeration
  follows SnuCL's platform order, accelerators first — which is why the
  paper's round-robin splits the two FDM-Seismology queues across the two
  GPUs.
* :class:`AutoFitScheduler` "decides the most optimal queue-device mapping
  when the scheduler is triggered": dynamic queues are profiled
  (:mod:`repro.core.kernel_profiler`), their aggregate cost combined with
  data-transfer estimates derived from the static device profiles, and the
  pool is mapped by the exact makespan minimiser
  (:mod:`repro.core.device_mapper`).  Static queues (``SCHED_AUTO_STATIC``)
  skip kernel profiling entirely and are placed from the device profiles
  and the queue's workload hints alone (Section V.B).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.constraints import MappingDelta, repair_mapping
from repro.core.device_mapper import MapperError, MappingResult, optimal_mapping
from repro.core.flags import CONFIG_PROPERTY_KEY, ScheduleOptions, SchedulerConfig
from repro.core.kernel_profiler import KernelProfiler
from repro.core.minikernel import transform_program
from repro.core.split import plan_split
from repro.hardware.specs import DeviceKind
from repro.ocl.enums import ContextScheduler
from repro.ocl.memory import HOST, Buffer
from repro.ocl.scheduling import SchedulerBase, register_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.context import Context
    from repro.ocl.program import Program
    from repro.ocl.queue import Command, CommandQueue

__all__ = ["RoundRobinScheduler", "AutoFitScheduler"]


def _snucl_device_order(context: "Context") -> List[str]:
    """Device enumeration order: accelerators/GPUs first, CPUs last.

    Failed devices are excluded — schedulers only ever map to the active
    (degraded) pool.
    """
    node = context.platform.node
    rank = {DeviceKind.ACCELERATOR: 0, DeviceKind.GPU: 0, DeviceKind.CPU: 1}
    names = list(context.active_device_names)
    # Stable sort on kind rank alone preserves platform order within each
    # rank (the seed's names.index(n) tie-break was an accidental O(n^2)).
    pos = {n: i for i, n in enumerate(names)}
    return sorted(names, key=lambda n: (rank[node.device(n).spec.kind], pos[n]))


class MultiCLSchedulerBase(SchedulerBase):
    """Shared machinery: config resolution, minikernel build hook, history."""

    def __init__(self, context: "Context") -> None:
        super().__init__(context)
        cfg = context.properties.get(CONFIG_PROPERTY_KEY)
        if cfg is None:
            cfg = SchedulerConfig.from_env()
        elif not isinstance(cfg, SchedulerConfig):
            raise TypeError(
                f"context property {CONFIG_PROPERTY_KEY!r} must be a "
                f"SchedulerConfig, got {type(cfg).__name__}"
            )
        self.config = cfg
        self.profiler = KernelProfiler(context, cfg)
        if cfg.predict:
            # Profiling-free scheduling from static kernel features: the
            # profiler consults the predictor before measuring anything.
            # Imported lazily — repro.predict sits above repro.core in the
            # layering, and the predictor is opt-in.
            from repro.predict import attach_predictor

            attach_predictor(self.profiler)
        #: One entry per trigger: {queue name: device name}.
        self.mapping_history: List[Dict[str, str]] = []
        #: Mapping-path counters (AUTO_FIT; zero under ROUND_ROBIN): full
        #: pool solves, incremental repairs, and unchanged-input reuses.
        self.mapper_solves = 0
        self.mapper_repairs = 0
        self.mapper_reuses = 0
        #: Most recent MappingResult, so fault-recovery accounting can tag
        #: remaps with whether a repair or a re-solve produced them.
        self.last_mapping: Optional[MappingResult] = None
        #: ((queue names, devices), cost, preferred, result) of the last
        #: dynamic solve — the inputs the repair/reuse paths diff against.
        self._mapper_state: Optional[
            Tuple[
                Tuple[Tuple[str, ...], Tuple[str, ...]],
                Dict[str, Dict[str, float]],
                Dict[str, str],
                MappingResult,
            ]
        ] = None
        #: SnuCL device order memoised per active-device tuple: the pool
        #: only changes on fission or device failure, while high-frequency
        #: drivers (service replay) trigger the scheduler every epoch.
        self._device_order_cache: Dict[Tuple[str, ...], List[str]] = {}

    def device_order(self) -> List[str]:
        """Cached :func:`_snucl_device_order` for the current active pool.

        The returned list is shared with the cache — callers must treat it
        as read-only.
        """
        key = tuple(self.context.active_device_names)
        order = self._device_order_cache.get(key)
        if order is None:
            order = _snucl_device_order(self.context)
            self._device_order_cache[key] = order
        return order

    # -- static kernel transformation (clBuildProgram hook) ---------------
    def on_program_build(self, program: "Program") -> None:
        if not self.config.allow_minikernel:
            return
        src, infos = transform_program(program.source)
        program.minikernel_source = src
        program.minikernel_infos = infos

    # -- per-kernel trigger mode ------------------------------------------
    def on_enqueue(self, queue: "CommandQueue", command: "Command") -> None:
        if self.config.per_kernel_trigger and command.is_kernel:
            # High-frequency mode: schedule immediately on every kernel
            # (the costly alternative discussed in Section V.A).  This
            # bypasses Context._sync_pending, so the arbitration and
            # sanitizer hooks run here to keep "every scheduler trigger"
            # covered — in service mode the per-kernel trigger is still a
            # fair-share arbitration point.
            arbiter = self.context.arbiter
            if arbiter is not None:
                arbiter.on_trigger(self.context, [queue], queue)
            else:
                self.dispatch([queue], trigger_queue=queue)

    # -- arbitration hook ---------------------------------------------------
    def dispatch(
        self,
        pool: Sequence["CommandQueue"],
        trigger_queue: Optional["CommandQueue"] = None,
    ) -> None:
        """Map and issue one ready pool on behalf of an external arbiter.

        This is the multi-tenant service entry point: the arbiter decides
        *when* a tenant's pool runs; the tenant's own policy decides *where*
        (the usual AUTO_FIT / ROUND_ROBIN mapping).  The sanitizer hook runs
        here so arbitrated dispatches stay covered.
        """
        self.context._sanitize_check(pool)
        self.on_sync(pool, trigger_queue)

    # -- fault handling ----------------------------------------------------
    def on_device_failure(self, device: str) -> None:
        """Kernel/epoch profiles measured on ``device`` are dead weight;
        drop them so degraded-pool mapping never consults the failure."""
        self.profiler.invalidate_device(device)

    def on_device_slowdown(self, device: str) -> None:
        """A transient slowdown began: measurements taken on ``device``
        from now on do not reflect its fitted performance model.  Only the
        predictor's learned runtime state is dropped — measured kernel
        profiles stay valid for mapping (the slowdown is real observed
        time), and non-predicting runs are untouched."""
        predictor = getattr(self.profiler, "predictor", None)
        if predictor is not None:
            predictor.invalidate_device(device)

    def on_device_recovery(self, device: str) -> None:
        """The slowdown cleared: drop residuals/corrections learned during
        the window and re-arm the predictor, so its corrector re-anchors on
        the first healthy measurement instead of keeping slowdown-era
        re-fits forever."""
        predictor = getattr(self.profiler, "predictor", None)
        if predictor is not None:
            predictor.invalidate_device(device)

    # -- helpers -----------------------------------------------------------
    def _active_devices(self) -> List[str]:
        devices = list(self.context.active_device_names)
        if not devices:
            raise MapperError("no feasible device remains (all failed)")
        return devices

    def _record(self, pool: Sequence["CommandQueue"]) -> None:
        self.mapping_history.append({q.name: q.device for q in pool})

    def _issue(self, pool: Sequence["CommandQueue"]) -> None:
        self.context.issue_pool(pool)


class RoundRobinScheduler(MultiCLSchedulerBase):
    """Cyclic queue→device assignment; zero profiling overhead."""

    def __init__(self, context: "Context") -> None:
        super().__init__(context)
        self._cursor = 0
        self._assigned: Dict[int, str] = {}

    def on_sync(
        self,
        pool: Sequence["CommandQueue"],
        trigger_queue: Optional["CommandQueue"] = None,
    ) -> None:
        order = self.device_order()
        if not order:
            raise MapperError("no feasible device remains (all failed)")
        for q in sorted(pool, key=lambda q: q.id):
            # Each queue gets the next available device once; later triggers
            # keep the binding (re-assigning every epoch would thrash data
            # across devices, which round-robin cannot reason about).
            # A binding to a since-failed device is reassigned cyclically.
            dev = self._assigned.get(q.id)
            if dev is None or dev not in order:
                dev = order[self._cursor % len(order)]
                self._assigned[q.id] = dev
                self._cursor += 1
            q.rebind(dev)
        self._record(pool)
        self._issue(pool)

    def on_device_failure(self, device: str) -> None:
        super().on_device_failure(device)
        self._assigned = {
            qid: d for qid, d in self._assigned.items() if d != device
        }


class AutoFitScheduler(MultiCLSchedulerBase):
    """Profile-driven optimal mapping of the ready-queue pool."""

    def on_sync(
        self,
        pool: Sequence["CommandQueue"],
        trigger_queue: Optional["CommandQueue"] = None,
    ) -> None:
        pool = sorted(pool, key=lambda q: q.id)
        static_qs = [
            q for q in pool if ScheduleOptions.from_flags(q.sched_flags).is_static_mode
        ]
        static_ids = {id(q) for q in static_qs}
        dynamic_qs = [q for q in pool if id(q) not in static_ids]
        if static_qs:
            self._map_static(static_qs)
        if dynamic_qs:
            self._map_dynamic(dynamic_qs)
        self._record(pool)
        self._issue(pool)

    # ------------------------------------------------------------------
    # Static mapping: device profiles + hints only (Section V.B)
    # ------------------------------------------------------------------
    def _map_static(self, queues: Sequence["CommandQueue"]) -> None:
        profile = self.context.platform.device_profile
        devices = self._active_devices()
        loads: Dict[str, float] = {d: 0.0 for d in devices}
        # Tie-break on position within the *active* (degraded) pool, not the
        # full context pool: indexing the full pool made tie-breaks depend
        # on where failed devices used to sit.  Hoisted out of the min key —
        # the repeated list.index() calls were O(D) each.
        pos = {d: i for i, d in enumerate(devices)}
        for q in queues:
            options = ScheduleOptions.from_flags(q.sched_flags)
            scores = self._hint_scores(options, profile, devices)
            # Greedy balance: unit work 1/score; pick the device finishing
            # this queue earliest.
            best = min(
                scores,
                key=lambda d: (loads[d] + 1.0 / scores[d], pos[d]),
            )
            loads[best] += 1.0 / scores[best]
            q.rebind(best)

    def _hint_scores(
        self, options: ScheduleOptions, profile, devices: Sequence[str]
    ) -> Dict[str, float]:
        if options.io_bound:
            return {d: 1.0 / max(profile.h2d_seconds(d, 1 << 20), 1e-12) for d in devices}
        if options.memory_bound:
            return {d: profile.bandwidth_gbs[d] for d in devices}
        # compute_bound, or no hint: instruction throughput is the criterion.
        return {d: profile.gflops[d] for d in devices}

    # ------------------------------------------------------------------
    # Dynamic mapping: kernel profiling + exact mapper (Section V.C)
    # ------------------------------------------------------------------
    def _map_dynamic(self, queues: Sequence["CommandQueue"]) -> None:
        profile = self.context.platform.device_profile
        epochs: Dict[str, "EpochProfile"] = {}
        for q in queues:
            options = ScheduleOptions.from_flags(q.sched_flags)
            epochs[q.name] = self.profiler.profile_epoch(q, q.pending, options)
        # Profiling advances the virtual clock, so a device may have failed
        # *during* this pass (fault injection): map over the devices active
        # now, treating any device without a measurement as infeasible.
        devices = self._active_devices()
        # Work-splitting (SCHED_SPLIT / config.split): a split queue's kernel
        # epoch is partitioned across devices instead of mapped to one, so it
        # leaves the cost matrix entirely.  Guarded by a cheap any() — the
        # default path never pays for the option.
        if self.config.split or any(
            ScheduleOptions.from_flags(q.sched_flags).split for q in queues
        ):
            planned = [
                q
                for q in queues
                if (
                    self.config.split
                    or ScheduleOptions.from_flags(q.sched_flags).split
                )
                and self._plan_split_epoch(q, epochs[q.name])
            ]
            if planned:
                split_ids = {id(q) for q in planned}
                queues = [q for q in queues if id(q) not in split_ids]
                if not queues:
                    # The whole pool splits: charge the mapping host cost
                    # (the partition computation) and skip the solver.
                    self.context.platform.engine.elapse(
                        self.config.mapping_host_seconds,
                        category="schedule",
                        name="device-map",
                    )
                    return
        cost: Dict[str, Dict[str, float]] = {}
        for q in queues:
            # One epoch-buffer walk per queue for the whole sync pass; the
            # seed recomputed it for every (queue, device) pair through both
            # _fits and _transfer_estimate.
            bufs = self._epoch_buffers(q)
            row: Dict[str, float] = {}
            for d in devices:
                if not self._fits(q, d, bufs):
                    row[d] = math.inf
                    continue
                seconds = epochs[q.name].seconds.get(d, math.inf)
                row[d] = seconds + self._transfer_estimate(q, d, profile, bufs)
            cost[q.name] = row
        preferred = {q.name: q.device for q in queues}
        names = [q.name for q in queues]
        result, interval_name = self._solve_mapping(names, devices, cost, preferred)
        # The mapping computation itself is host work (Section V.A: the DP
        # "incurs negligible overhead").  Repair and reuse are charged the
        # same host interval as a solve so virtual time stays bit-identical
        # whichever path produced the mapping.
        self.context.platform.engine.elapse(
            self.config.mapping_host_seconds, category="schedule", name=interval_name
        )
        for q in queues:
            q.rebind(result.mapping[q.name])

    def _solve_mapping(
        self,
        names: List[str],
        devices: Sequence[str],
        cost: Dict[str, Dict[str, float]],
        preferred: Dict[str, str],
    ) -> Tuple[MappingResult, str]:
        """Pick the cheapest correct mapping path: reuse, repair, or solve.

        With ``config.mapper_repair`` on, the previous trigger's inputs and
        result are memoised.  Identical inputs return the cached result of
        the same pure solve (bit-identical by construction).  A shrunk
        device pool over a surviving queue subset — the fault signature —
        goes through :func:`repair_mapping`, which migrates only orphaned
        queues when that stays within the quality gate and otherwise falls
        back to a full solve.  Any other change re-solves from scratch.
        """
        key = (tuple(names), tuple(devices))
        state = self._mapper_state
        if self.config.mapper_repair and state is not None:
            prev_key, prev_cost, prev_pref, prev_result = state
            if key == prev_key and cost == prev_cost and preferred == prev_pref:
                self.mapper_reuses += 1
                self.last_mapping = prev_result
                return prev_result, "device-map"
            prev_names, prev_devices = prev_key
            removed = tuple(d for d in prev_devices if d not in devices)
            if (
                removed
                and set(names) <= set(prev_names)
                and all(d in prev_devices for d in devices)
            ):
                delta = MappingDelta(removed_devices=removed)
                result = repair_mapping(
                    prev_result,
                    delta,
                    names,
                    list(devices),
                    cost,
                    threshold=self.config.repair_threshold,
                )
                if result.repaired:
                    self.mapper_repairs += 1
                else:
                    self.mapper_solves += 1
                self._mapper_state = (key, cost, dict(preferred), result)
                self.last_mapping = result
                return result, ("device-repair" if result.repaired else "device-map")
        result = optimal_mapping(names, devices, cost, preferred)
        self.mapper_solves += 1
        if self.config.mapper_repair:
            self._mapper_state = (key, cost, dict(preferred), result)
        self.last_mapping = result
        return result, "device-map"

    def _plan_split_epoch(self, q: "CommandQueue", epoch) -> bool:
        """Attach a :class:`~repro.core.split.SplitPlan` to every kernel of
        ``q``'s pending epoch; returns whether the epoch was split.

        All-or-nothing per epoch: if any kernel cannot split (global size
        too small for two granularity-aligned shares, fewer than two
        profiled devices), no command in the epoch is split and the queue
        falls back to the ordinary single-device mapping.  Split shares are
        proportional to the epoch's profiled per-device seconds; the queue
        itself rebinds to the fastest device, which hosts the epoch's
        non-kernel commands.  Per-device capacity for the streamed slices
        is enforced at issue time (_issue_split_kernel), where the actual
        slice sizes are known.
        """
        order = [
            d
            for d in self.device_order()
            if math.isfinite(epoch.seconds.get(d, math.inf))
            and epoch.seconds.get(d, 0.0) > 0
        ]
        if len(order) < 2:
            return False
        plans = []
        for cmd in q.pending:
            if not cmd.is_kernel:
                continue
            assert cmd.kernel is not None and cmd.launch is not None
            plan = plan_split(
                cmd.kernel,
                cmd.launch,
                order,
                epoch.seconds,
                granularity=self.config.split_granularity,
            )
            if plan is None:
                return False
            plans.append((cmd, plan))
        if not plans:
            return False
        for cmd, plan in plans:
            cmd.split_plan = plan
        pos = {d: i for i, d in enumerate(order)}
        q.rebind(min(order, key=lambda d: (epoch.seconds[d], pos[d])))
        return True

    def _epoch_buffers(self, q: "CommandQueue") -> List[Buffer]:
        out: List[Buffer] = []
        seen = set()
        for cmd in q.pending:
            values = list(cmd.args_snapshot.values())
            if cmd.buffer is not None:
                values.append(cmd.buffer)
            for v in values:
                if isinstance(v, Buffer) and id(v) not in seen:
                    seen.add(id(v))
                    out.append(v)
        return out

    def _fits(
        self,
        q: "CommandQueue",
        device: str,
        bufs: Optional[List[Buffer]] = None,
    ) -> bool:
        spec = self.context.platform.node.device(device).spec
        # O(1): the context maintains per-device resident-byte counters on
        # every buffer validity transition (the seed summed over *all*
        # context buffers here, for every (queue, device) pair).
        resident = self.context.resident_bytes(device)
        if bufs is None:
            bufs = self._epoch_buffers(q)
        incoming = sum(
            b.nbytes for b in bufs if not b.resident_on(device)
        )
        return resident + incoming <= spec.mem_size_bytes

    def _transfer_estimate(
        self,
        q: "CommandQueue",
        device: str,
        profile,
        bufs: Optional[List[Buffer]] = None,
    ) -> float:
        """Estimated data movement to run this epoch on ``device``, derived
        from the *measured* device profiles (not the ground-truth model)."""
        total = 0.0
        if bufs is None:
            bufs = self._epoch_buffers(q)
        for buf in bufs:
            if not buf.initialized or buf.is_valid_on(device):
                continue
            if buf.is_valid_on(HOST):
                total += profile.h2d_seconds(device, buf.nbytes)
            else:
                src = buf.any_valid_device()
                if src is not None:
                    total += profile.d2d_seconds(src, device, buf.nbytes)
        return total


# ---------------------------------------------------------------------------
# Register with the OpenCL layer
# ---------------------------------------------------------------------------
register_scheduler(ContextScheduler.ROUND_ROBIN, RoundRobinScheduler)
register_scheduler(ContextScheduler.AUTO_FIT, AutoFitScheduler)
