"""Multi-device NDRange partitioning (``SCHED_SPLIT``).

The paper's mapper assigns whole queues to whole devices; EngineCL and
PySchedCL (PAPERS.md) show the next step — splitting one kernel's NDRange
across several devices proportionally to their measured rates.  This module
computes that partition.  Dimension 0 of the global size is divided into
contiguous per-device sub-ranges:

* shares are proportional to ``1 / seconds`` from the epoch profile (a
  device that runs the epoch twice as fast receives twice the work items);
* each share is rounded down to a multiple of the device's *effective*
  workgroup size along dimension 0 (per-device ``clSetKernelWorkGroupInfo``
  overrides included) times the configured granularity, so no workgroup
  straddles a device boundary;
* rounding remainders go to the fastest device;
* devices whose share rounds to zero drop out; if fewer than two devices
  survive, the kernel is not worth splitting and ``None`` is returned
  (the caller falls back to the ordinary single-device mapping).

The plan carries only ``(device, lo, hi)`` triples; the issue-time
mechanics (slice transfers, sub-kernels, gathers, the merging join) live in
:meth:`repro.ocl.queue.CommandQueue._issue_split_kernel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.ocl.kernel import Kernel, WorkGroupConfig

__all__ = ["SplitPlan", "plan_split"]


@dataclass(frozen=True)
class SplitPlan:
    """Contiguous per-device sub-ranges covering ``[0, global_size[0])``."""

    #: (device name, lo, hi) with lo inclusive, hi exclusive
    shares: Tuple[Tuple[str, int, int], ...]

    @property
    def devices(self) -> Tuple[str, ...]:
        return tuple(d for d, _lo, _hi in self.shares)

    def share_of(self, device: str) -> int:
        return sum(hi - lo for d, lo, hi in self.shares if d == device)


def plan_split(
    kernel: "Kernel",
    launch: "WorkGroupConfig",
    devices: Sequence[str],
    seconds: Dict[str, float],
    granularity: int = 1,
) -> Optional[SplitPlan]:
    """Partition ``launch`` across ``devices`` proportionally to rate.

    ``seconds`` maps device name -> profiled (or predicted) epoch seconds;
    non-finite / non-positive entries and devices missing from the mapping
    are excluded.  Returns ``None`` when splitting is not applicable: fewer
    than two usable devices, or a global size too small for more than one
    granularity-aligned share.
    """
    total = launch.global_size[0]
    if total <= 0:
        return None
    rates = {
        d: 1.0 / seconds[d]
        for d in devices
        if d in seconds and math.isfinite(seconds[d]) and seconds[d] > 0
    }
    usable = [d for d in devices if d in rates]
    if len(usable) < 2:
        return None
    weight = sum(rates[d] for d in usable)
    shares: Dict[str, int] = {}
    for d in usable:
        base = kernel.effective_config(d, launch)
        chunk = max(1, base.local_size[0] * max(1, int(granularity)))
        raw = total * rates[d] / weight
        shares[d] = int(raw // chunk) * chunk
    # All rounding remainders go to the fastest device (first on ties).
    fastest = max(usable, key=lambda d: (rates[d], -usable.index(d)))
    shares[fastest] += total - sum(shares.values())
    out = []
    cursor = 0
    for d in usable:
        n = shares[d]
        if n <= 0:
            continue
        out.append((d, cursor, cursor + n))
        cursor += n
    if cursor != total or len(out) < 2:
        return None
    return SplitPlan(tuple(out))
