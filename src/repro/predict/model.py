"""Plain-Python ridge regression from static features to kernel cost.

No numpy, no sklearn: the normal equations are accumulated as sufficient
statistics (``X^T X``, ``X^T y``) in plain lists and solved by Gaussian
elimination with partial pivoting.  That keeps the predictor dependency-free
and — because every operation is deterministic float arithmetic over a
deterministic corpus order — bit-identical across processes, which is what
lets a ``--jobs N`` fleet share one fitted model through the single-flight
store.

Two model families live here:

* :class:`DeviceTimeModel` — per-device execution-time model.  The
  simulator's roofline is ``overhead + max(compute term, memory term)``
  with each term multiplicative in its inputs, so each device gets *two*
  log-space linear heads (compute-bound, memory-bound) combined with
  ``max(exp(.), exp(.))`` at prediction time.  Occupancy's
  ``min(1, n/saturation)`` kink and the ``-log(1 - penalty·z)`` penalty
  curves are linearised with hinge and polynomial basis features.
* :class:`CostFieldModel` — device-independent ridge heads from the shared
  feature vector to the :class:`~repro.hardware.cost.KernelCost` descriptor
  fields (log flops, log bytes, divergence, irregularity), so a fitted
  model can also materialise a full cost descriptor for consumers that
  want one rather than a time.

:class:`PredictorModel` bundles both plus the node fingerprint, with JSON
(de)serialisation that round-trips floats exactly (``repr`` round-trip
guarantee), so fit-once/load-many is bit-identical.
"""

from __future__ import annotations

from math import exp, log
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.hardware.cost import KernelCost
from repro.hardware.specs import DeviceKind
from repro.predict.features import KernelFeatures

__all__ = [
    "RidgeHead",
    "DeviceTimeModel",
    "CostFieldModel",
    "PredictorModel",
    "compute_feature_vector",
    "memory_feature_vector",
    "descriptor_feature_vector",
    "DEFAULT_LAMBDA",
]

_TINY = 1e-12

#: Ridge regularisation.  Small: the probe corpus is dense and exactly
#: realisable in the basis, so the penalty only needs to keep the normal
#: matrix invertible.
DEFAULT_LAMBDA = 1e-6

#: Degree of the polynomial basis approximating ``-log(1 - penalty·z)`` for
#: the divergence/irregularity penalty curves (<= ~2% at the workload max).
_PENALTY_DEGREE = 8

#: Knots (in log2 work-items) of the hinge basis representing occupancy's
#: ``-log min(1, n/saturation)``: exact when a device's saturation point is
#: a power of two, a tight piecewise-linear fit otherwise.
_HINGE_KNOTS = tuple(range(4, 17))


def compute_feature_vector(
    feat: KernelFeatures, kind_value: str, work_items: int
) -> List[float]:
    """Basis for the compute-bound head: log per-item body seconds.

    True compute term: ``log f - log(peak·bce·eff) - log(1 - dp·div)
    - log occupancy`` — linear in ``log f`` and ``log eff``, polynomial in
    divergence, hinged in ``log2 n``.  Body-count features ride along so
    online corrections can attach to what the annotations miss.
    """
    e = feat.eff_for(kind_value)
    u = _log2(max(work_items, 1))
    d = feat.divergence
    x = [1.0, log(feat.flops_per_item + _TINY)]
    power = 1.0
    for _ in range(_PENALTY_DEGREE):
        power *= d
        x.append(power)
    x.append(log(max(e, _TINY)))
    x.extend(
        (
            feat.branch_density,
            float(feat.loop_nest_depth),
            float(feat.barrier_count),
            log(feat.arg_bytes + 1.0),
        )
    )
    x.extend(max(0.0, k - u) for k in _HINGE_KNOTS)
    return x


def memory_feature_vector(
    feat: KernelFeatures, kind_value: str, work_items: int
) -> List[float]:
    """Basis for the memory-bound head: log per-item body seconds.

    True memory term: ``log b - log(bw·bme·eff) - log(1 - ip·irr)`` — no
    occupancy factor (the simulator applies occupancy to compute only), so
    no hinge features.
    """
    del work_items  # memory bandwidth is occupancy-independent here
    e = feat.eff_for(kind_value)
    irr = feat.irregularity
    x = [1.0, log(feat.bytes_per_item + _TINY)]
    power = 1.0
    for _ in range(_PENALTY_DEGREE):
        power *= irr
        x.append(power)
    x.append(log(max(e, _TINY)))
    x.extend(
        (
            feat.branch_density,
            float(feat.loop_nest_depth),
            float(feat.barrier_count),
            log(feat.arg_bytes + 1.0),
        )
    )
    return x


def descriptor_feature_vector(feat: KernelFeatures) -> List[float]:
    """Shared basis for the device-independent descriptor-field heads."""
    return [
        1.0,
        log(feat.flops_per_item + _TINY),
        log(feat.bytes_per_item + _TINY),
        feat.divergence,
        feat.irregularity,
        feat.branch_density,
        float(feat.loop_nest_depth),
        float(feat.barrier_count),
        log(feat.arg_bytes + 1.0),
        float(feat.global_accesses),
        float(feat.indirect_accesses),
        float(feat.transcendental_ops),
    ]


def _log2(n: int) -> float:
    return log(n) / log(2.0)


def _solve(a: List[List[float]], b: List[float]) -> List[float]:
    """Solve ``a x = b`` by Gaussian elimination with partial pivoting.

    Operates on copies; deterministic for identical inputs (no
    randomisation, stable pivot tie-breaking by first maximal row).
    """
    k = len(b)
    m = [row[:] + [b[i]] for i, row in enumerate(a)]
    for col in range(k):
        pivot = col
        best = abs(m[col][col])
        for r in range(col + 1, k):
            mag = abs(m[r][col])
            if mag > best:
                best = mag
                pivot = r
        if best == 0.0:
            raise ZeroDivisionError("singular normal matrix")
        if pivot != col:
            m[col], m[pivot] = m[pivot], m[col]
        inv_p = 1.0 / m[col][col]
        for r in range(col + 1, k):
            factor = m[r][col] * inv_p
            if factor == 0.0:
                continue
            row_r = m[r]
            row_c = m[col]
            for c in range(col, k + 1):
                row_r[c] -= factor * row_c[c]
    x = [0.0] * k
    for col in range(k - 1, -1, -1):
        total = m[col][k]
        row = m[col]
        for c in range(col + 1, k):
            total -= row[c] * x[c]
        x[col] = total / row[col]
    return x


class RidgeHead:
    """One ridge-regression output accumulated as sufficient statistics.

    ``add`` folds an (x, y) observation into ``X^T X`` / ``X^T y``;
    ``solve`` returns the weights of ``(X^T X + λI) w = X^T y``.  A second
    :class:`RidgeHead` can be layered on at solve time (``extra``) — that is
    how runtime observations correct a shared immutable base model without
    mutating it.
    """

    __slots__ = ("dim", "lam", "count", "xtx", "xty")

    def __init__(self, dim: int, lam: float = DEFAULT_LAMBDA) -> None:
        self.dim = dim
        self.lam = lam
        self.count = 0
        self.xtx: List[List[float]] = [[0.0] * dim for _ in range(dim)]
        self.xty: List[float] = [0.0] * dim

    def add(self, x: Sequence[float], y: float) -> None:
        if len(x) != self.dim:
            raise ValueError(f"expected {self.dim} features, got {len(x)}")
        xtx = self.xtx
        xty = self.xty
        for i in range(self.dim):
            xi = x[i]
            if xi == 0.0:
                continue
            row = xtx[i]
            for j in range(self.dim):
                row[j] += xi * x[j]
            xty[i] += xi * y
        self.count += 1

    def _combined(
        self, extra: Optional["RidgeHead"]
    ) -> Tuple[List[List[float]], List[float]]:
        a = [row[:] for row in self.xtx]
        b = self.xty[:]
        if extra is not None:
            if extra.dim != self.dim:
                raise ValueError("mismatched head dimensions")
            for i in range(self.dim):
                row = a[i]
                erow = extra.xtx[i]
                for j in range(self.dim):
                    row[j] += erow[j]
                b[i] += extra.xty[i]
        for i in range(self.dim):
            a[i][i] += self.lam
        return a, b

    def solve(self, extra: Optional["RidgeHead"] = None) -> List[float]:
        a, b = self._combined(extra)
        return _solve(a, b)

    def inverse(self, extra: Optional["RidgeHead"] = None) -> List[List[float]]:
        """Inverse of the regularised normal matrix (for leverage)."""
        a, _ = self._combined(extra)
        k = self.dim
        cols = []
        for j in range(k):
            e = [0.0] * k
            e[j] = 1.0
            cols.append(_solve(a, e))
        # cols[j] is the j-th column; transpose to rows (symmetric anyway,
        # up to float noise).
        return [[cols[j][i] for j in range(k)] for i in range(k)]

    def predict(self, x: Sequence[float], weights: Sequence[float]) -> float:
        total = 0.0
        for i in range(self.dim):
            total += weights[i] * x[i]
        return total

    def to_dict(self) -> Dict[str, object]:
        return {
            "dim": self.dim,
            "lam": self.lam,
            "count": self.count,
            "xtx": [list(row) for row in self.xtx],
            "xty": list(self.xty),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RidgeHead":
        head = cls(int(data["dim"]), lam=float(data["lam"]))
        head.count = int(data["count"])
        head.xtx = [[float(v) for v in row] for row in data["xtx"]]
        head.xty = [float(v) for v in data["xty"]]
        return head


class DeviceTimeModel:
    """Per-device execution-time model: two log-space heads plus overhead."""

    __slots__ = ("device", "kind", "overhead", "compute", "memory")

    def __init__(
        self,
        device: str,
        kind: str,
        overhead: float,
        compute: Optional[RidgeHead] = None,
        memory: Optional[RidgeHead] = None,
        lam: float = DEFAULT_LAMBDA,
    ) -> None:
        self.device = device
        self.kind = kind
        #: per-launch overhead measured at fit time (an empty probe kernel)
        self.overhead = overhead
        self.compute = compute or RidgeHead(
            _compute_dim(), lam=lam
        )
        self.memory = memory or RidgeHead(_memory_dim(), lam=lam)

    def predict_seconds(
        self,
        feat: KernelFeatures,
        work_items: int,
        compute_weights: Optional[Sequence[float]] = None,
        memory_weights: Optional[Sequence[float]] = None,
    ) -> float:
        """Predicted seconds of one launch of ``work_items`` items.

        Callers on a hot path should pass pre-solved weights; without them
        each call re-solves the normal equations.
        """
        wc = compute_weights if compute_weights is not None else self.compute.solve()
        wm = memory_weights if memory_weights is not None else self.memory.solve()
        xc = compute_feature_vector(feat, self.kind, work_items)
        xm = memory_feature_vector(feat, self.kind, work_items)
        body = max(exp(self.compute.predict(xc, wc)), exp(self.memory.predict(xm, wm)))
        return self.overhead + work_items * body

    def to_dict(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "kind": self.kind,
            "overhead": self.overhead,
            "compute": self.compute.to_dict(),
            "memory": self.memory.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DeviceTimeModel":
        return cls(
            device=str(data["device"]),
            kind=str(data["kind"]),
            overhead=float(data["overhead"]),
            compute=RidgeHead.from_dict(data["compute"]),
            memory=RidgeHead.from_dict(data["memory"]),
        )


#: Cost-descriptor fields predicted by :class:`CostFieldModel`, in order.
_COST_FIELDS = ("log_flops", "log_bytes", "divergence", "irregularity")


class CostFieldModel:
    """Device-independent heads predicting the KernelCost descriptor fields."""

    __slots__ = ("heads",)

    def __init__(self, heads: Optional[Dict[str, RidgeHead]] = None,
                 lam: float = DEFAULT_LAMBDA) -> None:
        dim = len(descriptor_feature_vector(KernelFeatures(name="_probe")))
        self.heads = heads or {
            name: RidgeHead(dim, lam=lam) for name in _COST_FIELDS
        }

    def add(self, feat: KernelFeatures) -> None:
        x = descriptor_feature_vector(feat)
        self.heads["log_flops"].add(x, log(feat.flops_per_item + _TINY))
        self.heads["log_bytes"].add(x, log(feat.bytes_per_item + _TINY))
        self.heads["divergence"].add(x, feat.divergence)
        self.heads["irregularity"].add(x, feat.irregularity)

    def predict_fields(self, feat: KernelFeatures) -> Dict[str, float]:
        x = descriptor_feature_vector(feat)
        out: Dict[str, float] = {}
        for name in _COST_FIELDS:
            head = self.heads[name]
            out[name] = head.predict(x, head.solve())
        return out

    def predict_cost(
        self,
        feat: KernelFeatures,
        work_items: int,
        workgroup_size: int = 64,
    ) -> KernelCost:
        """Materialise a full :class:`KernelCost` descriptor."""
        fields = self.predict_fields(feat)
        flops_per_item = max(exp(fields["log_flops"]) - _TINY, 0.0)
        bytes_per_item = max(exp(fields["log_bytes"]) - _TINY, 0.0)
        efficiency = {
            DeviceKind(kind): eff for kind, eff in feat.efficiency
        }
        return KernelCost(
            flops=flops_per_item * work_items,
            bytes=bytes_per_item * work_items,
            work_items=work_items,
            workgroup_size=workgroup_size,
            divergence=min(max(fields["divergence"], 0.0), 1.0),
            irregularity=min(max(fields["irregularity"], 0.0), 1.0),
            efficiency=efficiency,
        )

    def to_dict(self) -> Dict[str, object]:
        return {name: head.to_dict() for name, head in self.heads.items()}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CostFieldModel":
        return cls(
            heads={
                name: RidgeHead.from_dict(data[name]) for name in _COST_FIELDS
            }
        )


class PredictorModel:
    """A fitted predictor for one node: per-device time models plus the
    device-independent cost-field heads.

    Immutable by convention once fitted: runtime corrections are layered on
    by :class:`repro.predict.Predictor` without touching these statistics,
    so one instance can be shared by every runtime in a process.
    """

    SCHEMA_VERSION = 1

    __slots__ = ("fingerprint", "lam", "devices", "cost_fields")

    def __init__(
        self,
        fingerprint: str,
        devices: Dict[str, DeviceTimeModel],
        cost_fields: CostFieldModel,
        lam: float = DEFAULT_LAMBDA,
    ) -> None:
        self.fingerprint = fingerprint
        self.lam = lam
        self.devices = devices
        self.cost_fields = cost_fields

    @classmethod
    def fit(cls, spec, lam: float = DEFAULT_LAMBDA) -> "PredictorModel":
        """Fit a model for ``spec`` from the probe corpus (see
        :func:`repro.predict.corpus.fit_model`)."""
        from repro.predict.corpus import fit_model

        return fit_model(spec, lam=lam)

    def predict(
        self, feat: KernelFeatures, work_items: int
    ) -> Dict[str, float]:
        """Per-device predicted seconds for one launch (uncached solves)."""
        return {
            name: m.predict_seconds(feat, work_items)
            for name, m in self.devices.items()
        }

    def residual(
        self,
        feat: KernelFeatures,
        device: str,
        work_items: int,
        observed_seconds: float,
    ) -> float:
        """Relative error of the base model against an observation."""
        predicted = self.devices[device].predict_seconds(feat, work_items)
        return abs(predicted - observed_seconds) / max(
            abs(observed_seconds), _TINY
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "lam": self.lam,
            "devices": {
                name: m.to_dict() for name, m in sorted(self.devices.items())
            },
            "cost_fields": self.cost_fields.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PredictorModel":
        if int(data.get("schema", -1)) != cls.SCHEMA_VERSION:
            raise ValueError(
                f"unsupported predictor model schema: {data.get('schema')!r}"
            )
        return cls(
            fingerprint=str(data["fingerprint"]),
            lam=float(data["lam"]),
            devices={
                name: DeviceTimeModel.from_dict(d)
                for name, d in data["devices"].items()
            },
            cost_fields=CostFieldModel.from_dict(data["cost_fields"]),
        )


def _compute_dim() -> int:
    return len(
        compute_feature_vector(KernelFeatures(name="_probe"), "cpu", 1)
    )


def _memory_dim() -> int:
    return len(
        memory_feature_vector(KernelFeatures(name="_probe"), "cpu", 1)
    )
