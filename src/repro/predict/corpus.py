"""The offline probe corpus the predictor models are fitted on.

Fitting needs (feature, observed-seconds) pairs per device.  Rather than
profile application kernels (that is exactly what the predictor exists to
avoid), the fit measures a synthetic probe corpus on a **throwaway
simulated node**: probe kernels sweep the cost-descriptor axes (flops,
bytes, divergence, irregularity, device efficiency, launch width) over a
grid chosen to span every workload kernel in the suite, and each probe is
measured once per device on a private engine whose clock no application
ever sees.  This mirrors how a real deployment would fit against a
microbenchmark corpus once per machine, offline.

Every probe is rendered as *annotated kernel source text* and pushed
through the exact same parse + :func:`repro.predict.features.extract`
pipeline the runtime uses — the trainer cannot cheat with features the
runtime could not reproduce.  Probe signatures and bodies deliberately
cycle through argument-count and control-flow motifs so the body-derived
feature columns have corpus variance; otherwise any workload kernel that
departed from a constant column would show infinite leverage and the
confidence gate would decline everything.

Determinism: grids are static tuples, iteration order is fixed, and label
measurement is pure float arithmetic on a fresh engine — fitting the same
node spec twice (in any process) yields bit-identical models.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log
from typing import Dict, List, Tuple

from repro.core.profile_store import node_fingerprint
from repro.hardware.cost import KernelCost
from repro.hardware.specs import DeviceKind, NodeSpec
from repro.hardware.topology import SimNode
from repro.ocl.source import parse_program_source
from repro.predict.features import KernelFeatures, extract
from repro.predict.model import (
    DEFAULT_LAMBDA,
    CostFieldModel,
    DeviceTimeModel,
    PredictorModel,
    compute_feature_vector,
    memory_feature_vector,
)
from repro.sim.engine import SimEngine

__all__ = ["ProbeSpec", "probe_specs", "probe_source", "fit_model"]

_TINY = 1e-21

#: Simulation task category for probe launches on the trainer engine.
PROBE_CATEGORY = "predict-probe"

# Grid axes.  Chosen to span (with margin) every annotation in the NPB +
# seismology + replay-service kernel sets: flops_per_item up to ~620,
# bytes_per_item up to ~2716, divergence up to 0.45, irregularity up to
# 0.85, efficiencies down to 0.05.
_COMPUTE_FLOPS = (1.0, 8.0, 64.0, 512.0, 4096.0)
# The penalty curves enter the basis as degree-8 monomials, so their grids
# need more than 8 distinct values — with fewer, off-grid penalty values
# fall outside the corpus span and the leverage gate declines everything.
_DIVERGENCE = (0.0, 0.075, 0.15, 0.225, 0.3, 0.375, 0.45, 0.525, 0.6, 0.675)
_MEMORY_BYTES = (4.0, 32.0, 256.0, 2048.0, 16384.0)
_IRREGULARITY = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
_EFFICIENCY = (0.05, 0.3, 1.0)
_COMPUTE_ITEMS = (1 << 6, 1 << 10, 1 << 14, 1 << 18)
_MEMORY_ITEMS = (1 << 8, 1 << 14, 1 << 20)
#: Dense power-of-two launch-width sweep pinning down the occupancy hinge
#: (compute term only; the roofline applies no occupancy to bandwidth).
_OCCUPANCY_ITEMS = tuple(1 << p for p in range(4, 21))

#: Body motifs cycled across probes so control-flow feature columns have
#: corpus variance.  Bodies never affect probe *labels* (the cost
#: descriptor is annotation-driven), only the feature side.
_BODY_MOTIFS = (
    "/* probe body (modelled) */",
    "int i = get_global_id(0);\n  if (i < 0) { a0[0] = 0.0f; }",
    "for (int k = 0; k < 8; ++k) { barrier(CLK_LOCAL_MEM_FENCE); }",
)
_BUFFER_TYPES = ("float", "double")


@dataclass(frozen=True)
class ProbeSpec:
    """One synthetic probe kernel: cost axes plus signature/body variety."""

    name: str
    head: str  # "compute" | "memory"
    flops_per_item: float
    bytes_per_item: float
    divergence: float
    irregularity: float
    efficiency: float
    work_items: int
    buffers: int = 1
    scalars: int = 0
    motif: int = 0


def probe_specs() -> List[ProbeSpec]:
    """The full corpus, in fixed deterministic order."""
    probes: List[ProbeSpec] = []

    def _add(head: str, f: float, b: float, d: float, irr: float,
             e: float, n: int) -> None:
        idx = len(probes)
        probes.append(
            ProbeSpec(
                name=f"probe_{head[0]}{idx}",
                head=head,
                flops_per_item=f,
                bytes_per_item=b,
                divergence=d,
                irregularity=irr,
                efficiency=e,
                work_items=n,
                buffers=1 + idx % 9,
                scalars=idx % 4,
                motif=idx % len(_BODY_MOTIFS),
            )
        )

    for f in _COMPUTE_FLOPS:
        for d in _DIVERGENCE:
            for e in _EFFICIENCY:
                for n in _COMPUTE_ITEMS:
                    _add("compute", f, 0.0, d, 0.0, e, n)
    # Several sweeps, not one: each off-main-grid launch width must be
    # observed multiple times or its hinge direction carries leverage ~1
    # and the confidence gate hovers at the threshold.
    for f in (8.0, 64.0, 512.0):
        for e in (0.3, 1.0):
            for n in _OCCUPANCY_ITEMS:
                _add("compute", f, 0.0, 0.0, 0.0, e, n)
    for b in _MEMORY_BYTES:
        for irr in _IRREGULARITY:
            for e in _EFFICIENCY:
                for n in _MEMORY_ITEMS:
                    _add("memory", 0.0, b, 0.0, irr, e, n)
    return probes


def probe_source(p: ProbeSpec) -> str:
    """Render a probe as annotated kernel source (the runtime's format)."""
    args = ", ".join(
        [
            f"__global {_BUFFER_TYPES[i % len(_BUFFER_TYPES)]}* a{i}"
            for i in range(p.buffers)
        ]
        + [f"int s{i}" for i in range(p.scalars)]
    )
    annot = (
        f"flops_per_item={p.flops_per_item!r} "
        f"bytes_per_item={p.bytes_per_item!r} "
        f"divergence={p.divergence!r} irregularity={p.irregularity!r} "
        f"cpu_eff={p.efficiency!r} gpu_eff={p.efficiency!r} "
        f"accel_eff={p.efficiency!r}"
    )
    body = _BODY_MOTIFS[p.motif]
    return (
        f"// @multicl {annot}\n"
        f"__kernel void {p.name}({args}) {{\n  {body}\n}}\n"
    )


def _probe_cost(feat: KernelFeatures, work_items: int) -> KernelCost:
    """The cost descriptor a probe's annotations denote.

    Built from the *extracted features* (not the ProbeSpec) so the label
    side and the feature side agree to the last bit — the same floats that
    went through annotation text come back out of the parse.
    """
    return KernelCost(
        flops=feat.flops_per_item * work_items,
        bytes=feat.bytes_per_item * work_items,
        work_items=work_items,
        workgroup_size=64,
        divergence=feat.divergence,
        irregularity=feat.irregularity,
        efficiency={DeviceKind(kind): eff for kind, eff in feat.efficiency},
    )


_OVERHEAD_COST = KernelCost(flops=0.0, bytes=0.0, work_items=1)


def fit_model(spec: NodeSpec, lam: float = DEFAULT_LAMBDA) -> PredictorModel:
    """Fit a :class:`PredictorModel` for ``spec`` from the probe corpus.

    Probes run on a throwaway engine bound to a fresh :class:`SimNode` —
    the application clock is never charged.  Per device, an empty probe
    measures the launch overhead, then every corpus probe contributes one
    ``(features, log per-item body seconds)`` observation to the device's
    compute- or memory-bound head.
    """
    probes = probe_specs()
    feats: List[KernelFeatures] = []
    for p in probes:
        src = probe_source(p)
        info = parse_program_source(src)[0]
        feats.append(extract(info, src))

    cost_fields = CostFieldModel(lam=lam)
    for feat in feats:
        cost_fields.add(feat)

    engine = SimEngine()
    node = SimNode(engine, spec)
    devices: Dict[str, DeviceTimeModel] = {}
    last = None
    for dev in node.device_list():
        kind = dev.spec.kind.value
        probe0 = dev.submit_kernel(
            name="probe:overhead", cost=_OVERHEAD_COST, category=PROBE_CATEGORY
        )
        overhead = probe0.duration
        model = DeviceTimeModel(dev.name, kind, overhead, lam=lam)
        prev = probe0
        for p, feat in zip(probes, feats):
            task = dev.submit_kernel(
                name=f"probe:{p.name}",
                cost=_probe_cost(feat, p.work_items),
                deps=[prev],
                category=PROBE_CATEGORY,
            )
            prev = task
            y = log(max((task.duration - overhead) / p.work_items, _TINY))
            if p.head == "compute":
                model.compute.add(
                    compute_feature_vector(feat, kind, p.work_items), y
                )
            else:
                model.memory.add(
                    memory_feature_vector(feat, kind, p.work_items), y
                )
        devices[dev.name] = model
        last = prev
    if last is not None:
        # Drain the trainer engine: probe "measurements" genuinely elapse
        # on the throwaway clock (and nowhere else).
        engine.run_until(last)
    return PredictorModel(
        fingerprint=node_fingerprint(spec),
        devices=devices,
        cost_fields=cost_fields,
        lam=lam,
    )
