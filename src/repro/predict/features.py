"""Static kernel feature extraction — deterministic and purely text-based.

Features are extracted from the *parsed source* of a kernel
(:func:`repro.ocl.source.parse_program_source`) with no execution, no
profiling, and no randomness: the same source text always yields the same
:class:`KernelFeatures`, and formatting-only edits (whitespace, comment
text) never change them.

Two ingredient classes feed the vector:

* **Signature/body counts** — arithmetic operations by type, global/local
  memory accesses per work-item, branch density, loop-nest depth, barrier
  count, and argument byte traffic, all counted from the comment-stripped
  body text and the argument declarations.  These are the
  architecture-independent features of Johnston et al. (AIWC) restricted
  to what a lexical pass can see.
* **Cost annotations** — this reproduction's kernels describe their
  modelled intensity in ``// @multicl`` comments (the stand-in for the
  arithmetic a real kernel body would contain; most bodies here are
  modelled stubs).  When present they give exact per-item flop/byte
  counts; when absent, the body counts above are folded into conservative
  estimates.  Either way the result is a pure function of the source text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.ocl.source import KernelSourceInfo, parse_program_source

__all__ = [
    "KernelFeatures",
    "extract",
    "extract_program",
    "strip_comments",
    "kernel_body",
]

_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
_LINE_COMMENT_RE = re.compile(r"//[^\n]*")

#: OpenCL-C scalar element sizes in bytes (vector widths are handled by the
#: ``typeN`` suffix below); unknown types default to 4.
_ELEMENT_SIZES = {
    "double": 8,
    "long": 8,
    "ulong": 8,
    "float": 4,
    "int": 4,
    "uint": 4,
    "half": 2,
    "short": 2,
    "ushort": 2,
    "char": 1,
    "uchar": 1,
}
_FLOAT_TYPES = ("float", "double", "half")
_TYPE_RE = re.compile(
    r"\b(" + "|".join(_ELEMENT_SIZES) + r")(\d*)\b"
)

_TRANSCENDENTAL_RE = re.compile(
    r"\b(?:exp|exp2|log|log2|sqrt|rsqrt|sin|cos|tan|tanh|pow|fabs|fma|mad)"
    r"\s*\("
)
_BRANCH_RE = re.compile(r"\b(?:if|switch)\s*\(|\?")
_LOOP_RE = re.compile(r"\b(?:for|while|do)\b")
_BARRIER_RE = re.compile(r"\bbarrier\s*\(")
_FLOAT_LITERAL_RE = re.compile(r"\d\.\d|\.\d|\b\d+(?:\.\d*)?f\b")
# Arithmetic operators; excludes comparison/pointer digraphs via lookaround.
_ARITH_RE = re.compile(r"[+\-*/](?!=)|[+\-*/]=")

#: efficiency annotation key -> DeviceKind value
_EFF_KEYS = {"cpu_eff": "cpu", "gpu_eff": "gpu", "accel_eff": "accelerator"}

#: weight of a transcendental call when estimating flops from body text
_TRANSCENDENTAL_FLOPS = 4.0


@dataclass(frozen=True)
class KernelFeatures:
    """Deterministic static features of one kernel.

    Count fields are per single work-item execution of the body text (loop
    trip counts are not statically knowable, so ``loop_nest_depth`` is
    exposed as its own feature rather than multiplied in).
    """

    name: str
    # -- body instruction mix -------------------------------------------
    float_ops: int = 0
    int_ops: int = 0
    transcendental_ops: int = 0
    # -- memory behaviour -----------------------------------------------
    global_accesses: int = 0
    global_writes: int = 0
    indirect_accesses: int = 0
    local_accesses: int = 0
    # -- control flow ----------------------------------------------------
    statements: int = 0
    branch_count: int = 0
    loop_nest_depth: int = 0
    barrier_count: int = 0
    # -- signature -------------------------------------------------------
    buffer_args: int = 0
    scalar_args: int = 0
    #: per-work-item byte traffic implied by the argument list: one element
    #: of each buffer argument per counted access (or per buffer when the
    #: body is a stub), plus the scalar arguments themselves.
    arg_bytes: float = 0.0
    # -- resolved cost descriptor (annotation-first, body-count fallback) -
    flops_per_item: float = 0.0
    bytes_per_item: float = 0.0
    divergence: float = 0.0
    irregularity: float = 0.0
    #: DeviceKind value -> relative efficiency, sorted by kind
    efficiency: Tuple[Tuple[str, float], ...] = ()

    @property
    def branch_density(self) -> float:
        """Branches per statement — the divergence proxy."""
        return self.branch_count / max(self.statements, 1)

    def eff_for(self, kind_value: str) -> float:
        for kind, eff in self.efficiency:
            if kind == kind_value:
                return eff
        return 1.0

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            f: getattr(self, f) for f in self.__dataclass_fields__
        }
        out["efficiency"] = [list(pair) for pair in self.efficiency]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "KernelFeatures":
        kwargs = dict(data)
        kwargs["efficiency"] = tuple(
            (str(kind), float(eff)) for kind, eff in kwargs.get("efficiency", [])
        )
        return cls(**kwargs)  # type: ignore[arg-type]


def strip_comments(text: str) -> str:
    """Remove block and line comments (the toy language has no strings)."""
    return _LINE_COMMENT_RE.sub(" ", _BLOCK_COMMENT_RE.sub(" ", text))


def kernel_body(source: str, info: KernelSourceInfo) -> str:
    """The text between a kernel's opening ``{`` and its matching ``}``."""
    depth = 1
    i = info.body_open
    while i < len(source):
        ch = source[i]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return source[info.body_open : i]
        i += 1
    return source[info.body_open :]


def _max_brace_depth(body: str) -> int:
    depth = 0
    deepest = 0
    for ch in body:
        if ch == "{":
            depth += 1
            deepest = max(deepest, depth)
        elif ch == "}":
            depth = max(depth - 1, 0)
    return deepest


def _element_size(declaration: str) -> int:
    """Bytes per element implied by a declaration like ``__global float4*``."""
    m = _TYPE_RE.search(declaration)
    if not m:
        return 4
    width = int(m.group(2)) if m.group(2) else 1
    return _ELEMENT_SIZES[m.group(1)] * max(width, 1)


def _is_float_declaration(declaration: str) -> bool:
    m = _TYPE_RE.search(declaration)
    return bool(m and m.group(1) in _FLOAT_TYPES)


def extract(info: KernelSourceInfo, source: str) -> KernelFeatures:
    """Extract :class:`KernelFeatures` for one parsed kernel."""
    body = strip_comments(kernel_body(source, info))
    statements = max(body.count(";"), 0)

    buffer_args = [a for a in info.args if a.is_buffer]
    scalar_args = [a for a in info.args if not a.is_buffer]

    # Global memory accesses: each `name[` of a buffer argument is one
    # per-work-item access; an index expression that itself subscripts a
    # buffer (`a[colidx[j]]`) is an indirect (gather) access.
    global_accesses = 0
    global_writes = 0
    indirect_accesses = 0
    float_buffer_accesses = 0
    access_bytes = 0.0
    buffer_names = {a.name for a in buffer_args}
    for arg in buffer_args:
        access_re = re.compile(r"\b%s\s*\[" % re.escape(arg.name))
        write_re = re.compile(
            r"\b%s\s*\[[^][]*\]\s*(?:[+\-*/]?=)(?!=)" % re.escape(arg.name)
        )
        indirect_re = re.compile(
            r"\b%s\s*\[[^][]*\b(?:%s)\s*\["
            % (re.escape(arg.name), "|".join(map(re.escape, buffer_names)))
        )
        count = len(access_re.findall(body))
        global_accesses += count
        global_writes += len(write_re.findall(body))
        indirect_accesses += len(indirect_re.findall(body))
        access_bytes += count * _element_size(arg.declaration)
        if _is_float_declaration(arg.declaration):
            float_buffer_accesses += count

    # Arithmetic mix: classify each statement's operators as float or int
    # by whether the statement touches a float buffer/literal.
    float_ops = 0
    int_ops = 0
    for stmt in body.split(";"):
        ops = len(_ARITH_RE.findall(stmt))
        if ops == 0:
            continue
        is_float = bool(_FLOAT_LITERAL_RE.search(stmt)) or any(
            re.search(r"\b%s\b" % re.escape(a.name), stmt)
            for a in buffer_args
            if _is_float_declaration(a.declaration)
        )
        if is_float:
            float_ops += ops
        else:
            int_ops += ops
    transcendental_ops = len(_TRANSCENDENTAL_RE.findall(body))

    branch_count = len(_BRANCH_RE.findall(body))
    loop_nest_depth = min(len(_LOOP_RE.findall(body)), _max_brace_depth(body))
    barrier_count = len(_BARRIER_RE.findall(body))
    local_accesses = body.count("__local")

    # Argument byte traffic: counted accesses when the body has any, else
    # one element per buffer (the body is a modelled stub); scalars ride
    # along by value either way.
    scalar_bytes = float(sum(_element_size(a.declaration) for a in scalar_args))
    if access_bytes == 0.0:
        access_bytes = float(
            sum(_element_size(a.declaration) for a in buffer_args)
        )
    arg_bytes = access_bytes + scalar_bytes

    annots = info.annotations
    flops_per_item = annots.get("flops_per_item")
    if flops_per_item is None:
        flops_per_item = (
            float_ops + int_ops + _TRANSCENDENTAL_FLOPS * transcendental_ops
        )
    bytes_per_item = annots.get("bytes_per_item")
    if bytes_per_item is None:
        bytes_per_item = access_bytes
    divergence = annots.get("divergence")
    if divergence is None:
        divergence = min(1.0, 0.5 * branch_count / max(statements, 1))
    irregularity = annots.get("irregularity")
    if irregularity is None:
        irregularity = (
            indirect_accesses / global_accesses if global_accesses else 0.0
        )
    efficiency = tuple(
        sorted(
            (kind, float(annots[key]))
            for key, kind in _EFF_KEYS.items()
            if key in annots
        )
    )

    return KernelFeatures(
        name=info.name,
        float_ops=float_ops,
        int_ops=int_ops,
        transcendental_ops=transcendental_ops,
        global_accesses=global_accesses,
        global_writes=global_writes,
        indirect_accesses=indirect_accesses,
        local_accesses=local_accesses,
        statements=statements,
        branch_count=branch_count,
        loop_nest_depth=loop_nest_depth,
        barrier_count=barrier_count,
        buffer_args=len(buffer_args),
        scalar_args=len(scalar_args),
        arg_bytes=arg_bytes,
        flops_per_item=float(flops_per_item),
        bytes_per_item=float(bytes_per_item),
        divergence=float(divergence),
        irregularity=float(irregularity),
        efficiency=efficiency,
    )


def extract_program(source: str) -> Dict[str, KernelFeatures]:
    """Extract features for every kernel in a program source string."""
    return {
        info.name: extract(info, source)
        for info in parse_program_source(source)
    }
