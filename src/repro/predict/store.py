"""On-disk persistence of fitted predictor models.

Fitting a :class:`~repro.predict.model.PredictorModel` measures ~500
probes per device on a throwaway engine — cheap, but not free, and a
``--jobs N`` benchmark fleet would otherwise fit N identical models.
This module stores fitted models as JSON through the same single-flight
flock machinery as the device-profile cache
(:func:`repro.core.profile_store.load_or_compute_json`): when N processes
race on a cold model file, exactly one fits and saves, the rest block and
load.  JSON float serialisation round-trips exactly, so a loaded model is
bit-identical to the fitted one.

Layout: one file per (node fingerprint, schema version) under the predict
directory, which resolves from ``MULTICL_PREDICT_DIR``, else
``<profile dir>/predict``, else ``<default profile cache>/predict``.
Embedding the schema version in the *name* means a runtime upgrade never
trips over stale incompatible files — it just fits fresh alongside them.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Tuple

from repro.core import profile_store
from repro.hardware.specs import NodeSpec
from repro.lru import BoundedLRU
from repro.predict.model import DEFAULT_LAMBDA, PredictorModel

__all__ = [
    "PREDICT_DIR_ENV",
    "default_predict_dir",
    "model_path",
    "load_model",
    "save_model",
    "load_or_fit",
    "clear_models",
]

#: Environment variable overriding the predictor model directory.
PREDICT_DIR_ENV = "MULTICL_PREDICT_DIR"

#: (resolved path, mtime_ns, size) -> deserialised model.  Distinct
#: runtimes in one process (a bench loop) share the loaded model object;
#: the base model is immutable so sharing is safe.
_model_memo: BoundedLRU = BoundedLRU(8)


def default_predict_dir(
    explicit: Optional[str] = None, profile_dir: Optional[str] = None
) -> Path:
    """Resolve the model directory.

    Priority: explicit argument (``SchedulerConfig.predict_dir``), then
    ``MULTICL_PREDICT_DIR``, then a ``predict/`` subdirectory of the
    profile cache directory in use (explicit ``profile_dir`` or the
    device-profile default) — so profile and predictor caches travel
    together unless told otherwise.
    """
    if explicit:
        return Path(explicit)
    env = os.environ.get(PREDICT_DIR_ENV)
    if env:
        return Path(env)
    if profile_dir:
        return Path(profile_dir) / "predict"
    return profile_store.default_cache_dir() / "predict"


def model_path(spec: NodeSpec, predict_dir: Optional[Path] = None) -> Path:
    base = Path(predict_dir) if predict_dir else default_predict_dir()
    fingerprint = profile_store.node_fingerprint(spec)
    return base / (
        f"predict-model-v{PredictorModel.SCHEMA_VERSION}"
        f"-{spec.name}-{fingerprint}.json"
    )


def save_model(
    model: PredictorModel, spec: NodeSpec, predict_dir: Optional[Path] = None
) -> Path:
    """Atomically persist a fitted model; returns the file path."""
    return profile_store.save_json(
        model_path(spec, predict_dir), model.to_dict()
    )


def load_model(
    spec: NodeSpec, predict_dir: Optional[Path] = None
) -> Optional[PredictorModel]:
    """Load the stored model for ``spec``, or None on a miss.

    Missing, corrupt, schema-mismatched, or wrong-fingerprint files are
    all misses (the caller re-fits); a hit is memoised in-process keyed by
    file identity so repeated runtime constructions skip the JSON parse.
    """
    path = model_path(spec, predict_dir)
    try:
        stat = path.stat()
    except OSError:
        return None
    memo_key = (str(path), stat.st_mtime_ns, stat.st_size)
    model = _model_memo.get(memo_key)
    if model is not None:
        return model
    payload = profile_store.load_json(path)
    if payload is None:
        return None
    try:
        model = PredictorModel.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None
    if model.fingerprint != profile_store.node_fingerprint(spec):
        return None
    _model_memo.put(memo_key, model)
    return model


def load_or_fit(
    spec: NodeSpec,
    predict_dir: Optional[Path] = None,
    lam: float = DEFAULT_LAMBDA,
) -> Tuple[PredictorModel, bool]:
    """Single-flight model retrieval: ``(model, fitted)``.

    ``fitted`` is True iff this call ran the fit.  N racing processes fit
    exactly once; the rest block on the lock and load the saved file.
    """
    model = load_model(spec, predict_dir)
    if model is not None:
        return model, False
    path = model_path(spec, predict_dir)

    def _compute():
        from repro.predict.corpus import fit_model

        return fit_model(spec, lam=lam).to_dict()

    payload, computed = profile_store.load_or_compute_json(path, _compute)
    model = PredictorModel.from_dict(payload)
    return model, computed


def clear_models(
    spec: NodeSpec, predict_dir: Optional[Path] = None
) -> bool:
    """Delete the stored model for ``spec``; True if one existed."""
    path = model_path(spec, predict_dir)
    if path.exists():
        path.unlink()
        return True
    return False
