"""repro.predict — profiling-free scheduling from static kernel features.

The paper's dynamic profiler must run every kernel once per device before
the mapper can place anything well, which makes cold-start epochs the
dominant cost for unseen kernels (minikernels shrink each run, not the
count).  Following Johnston et al. ("OpenCL Performance Prediction using
Architecture-Independent Features") and PySchedCL, this package predicts
per-device kernel cost from *static* source features with zero profiling
epochs, leaving the dynamic profiler as a corrector:

* :mod:`repro.predict.features` — deterministic, purely text-based feature
  extraction over parsed kernel sources;
* :mod:`repro.predict.model` — plain-Python ridge regression (normal
  equations) from feature vectors to cost-descriptor fields and per-device
  execution time;
* :mod:`repro.predict.corpus` — the offline probe corpus the models are
  fitted on (measured through a throwaway simulated platform, so fitting
  charges nothing to any application clock);
* :mod:`repro.predict.store` — single-flight on-disk persistence of fitted
  models (``MULTICL_PREDICT_DIR``), so a ``--jobs N`` fleet fits once;
* :class:`Predictor` — the runtime object the kernel profiler consults:
  confidence-gated prediction, observed-vs-predicted residual tracking,
  online re-fit when relative error exceeds ``MULTICL_PREDICT_TOLERANCE``,
  and per-device invalidation on fault-driven device loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp, log
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.lru import BoundedLRU
from repro.predict.features import KernelFeatures, extract, extract_program
from repro.predict.model import (
    CostFieldModel,
    DeviceTimeModel,
    PredictorModel,
    RidgeHead,
    compute_feature_vector,
    memory_feature_vector,
)
from repro.predict.store import (
    PREDICT_DIR_ENV,
    default_predict_dir,
    load_or_fit,
    model_path,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel_profiler import KernelProfiler
    from repro.ocl.queue import Command

__all__ = [
    "KernelFeatures",
    "extract",
    "extract_program",
    "RidgeHead",
    "DeviceTimeModel",
    "CostFieldModel",
    "PredictorModel",
    "Predictor",
    "PredictorStats",
    "attach_predictor",
    "PREDICT_DIR_ENV",
    "default_predict_dir",
    "model_path",
    "load_or_fit",
]

_TINY = 1e-21

#: Residual records retained per device (oldest dropped beyond this).
_MAX_RESIDUALS = 256


@dataclass
class PredictorStats:
    """Counters for tests and the evaluation harness."""

    predictions: int = 0
    declines: int = 0
    observations: int = 0
    refits: int = 0
    #: residual/extra records dropped by fault-driven device invalidation
    invalidations: int = 0


class Predictor:
    """Runtime prediction state consulted by the kernel profiler.

    Wraps an (immutable, possibly process-shared) fitted
    :class:`~repro.predict.model.PredictorModel` with per-runtime state:
    online-observation sufficient statistics, solved-weight caches, and
    residual records.  The base model is never mutated, so one fitted model
    loaded from the store can safely back many runtimes in one process.
    """

    def __init__(
        self,
        model: PredictorModel,
        kinds: Dict[str, str],
        overheads: Dict[str, float],
        tolerance: float = 0.25,
        min_confidence: float = 0.5,
    ) -> None:
        self.model = model
        #: device name -> DeviceKind value ("cpu"/"gpu"/"accelerator")
        self.kinds = dict(kinds)
        #: device name -> measured per-launch overhead (static profile)
        self.overheads = dict(overheads)
        self.tolerance = float(tolerance)
        self.min_confidence = float(min_confidence)
        self.stats = PredictorStats()
        #: device -> list of (kernel name, relative error), bounded
        self.residuals: Dict[str, List[Tuple[str, float]]] = {}
        #: (device, head) -> runtime observation stats layered on the base
        self._extras: Dict[Tuple[str, str], RidgeHead] = {}
        #: device -> (compute weights, memory weights), invalidated on refit
        self._weights: Dict[str, Tuple[List[float], List[float]]] = {}
        #: (device, head) -> inverse normal matrix for leverage
        self._inverses: Dict[Tuple[str, str], List[List[float]]] = {}
        #: (program id, kernel name) -> extracted features
        self._features: BoundedLRU = BoundedLRU(256)
        #: devices invalidated by a fault whose next observation must force
        #: a re-fit (re-arm), regardless of how small its residual is
        self._invalidated: set = set()

    # ------------------------------------------------------------------
    # Feature access
    # ------------------------------------------------------------------
    def features_for(self, kernel) -> KernelFeatures:
        key = (id(kernel.program), kernel.name)
        feat = self._features.get(key)
        if feat is None:
            feat = extract(kernel.info, kernel.program.source)
            self._features.put(key, feat)
        return feat

    # ------------------------------------------------------------------
    # Solved-weight / leverage caches
    # ------------------------------------------------------------------
    def _device_weights(self, device: str) -> Tuple[List[float], List[float]]:
        cached = self._weights.get(device)
        if cached is None:
            m = self.model.devices[device]
            cached = (
                m.compute.solve(self._extras.get((device, "compute"))),
                m.memory.solve(self._extras.get((device, "memory"))),
            )
            self._weights[device] = cached
        return cached

    def _inverse(self, device: str, head: str) -> List[List[float]]:
        key = (device, head)
        inv = self._inverses.get(key)
        if inv is None:
            m = self.model.devices[device]
            base = m.compute if head == "compute" else m.memory
            inv = base.inverse(self._extras.get(key))
            self._inverses[key] = inv
        return inv

    def _drop_caches(self, device: str) -> None:
        self._weights.pop(device, None)
        self._inverses.pop((device, "compute"), None)
        self._inverses.pop((device, "memory"), None)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def confidence(self, feat: KernelFeatures, device: str, n: int) -> float:
        """Confidence in [0, 1] that (kernel, device, n) is in-model.

        ``1 / (1 + leverage)`` with leverage measured against the fitted
        corpus: far outside the probe hull the normal-equations leverage
        blows up and the predictor declines in favour of a measurement.
        """
        kind = self.kinds[device]
        conf = 1.0
        for head, x in (
            ("compute", compute_feature_vector(feat, kind, n)),
            ("memory", memory_feature_vector(feat, kind, n)),
        ):
            inv = self._inverse(device, head)
            conf = min(conf, 1.0 / (1.0 + _quadratic_form(inv, x)))
        return conf

    def predict_seconds(self, feat: KernelFeatures, device: str, n: int) -> float:
        """Predicted full execution seconds of one launch on ``device``."""
        wc, wm = self._device_weights(device)
        kind = self.kinds[device]
        yc = _dot(wc, compute_feature_vector(feat, kind, n))
        ym = _dot(wm, memory_feature_vector(feat, kind, n))
        body = max(exp(yc), exp(ym))
        m = self.model.devices[device]
        overhead = self.overheads.get(device, m.overhead)
        return overhead + n * body

    def predict_command(
        self, cmd: "Command", devices: List[str]
    ) -> Optional[Dict[str, float]]:
        """Per-device predicted seconds for a kernel command, or ``None``.

        Declines (returns ``None``) when the kernel carries a custom cost
        model (its cost is not a function of the static source), when a
        device is unknown to the fitted model, or when any device's
        confidence falls below the threshold.  A decline means "measure".
        """
        kernel = cmd.kernel
        if kernel is None or cmd.launch is None:
            return None
        if kernel._cost_model is not None:
            self.stats.declines += 1
            return None
        feat = self.features_for(kernel)
        out: Dict[str, float] = {}
        for d in devices:
            if d not in self.model.devices or d not in self.kinds:
                self.stats.declines += 1
                return None
            n = kernel.effective_config(d, cmd.launch).work_items
            if self.confidence(feat, d, n) < self.min_confidence:
                self.stats.declines += 1
                return None
            out[d] = self.predict_seconds(feat, d, n)
        self.stats.predictions += 1
        return out

    # ------------------------------------------------------------------
    # Corrector loop
    # ------------------------------------------------------------------
    def observe(self, cmd: "Command", device: str, seconds: float) -> float:
        """Record an observed measurement; re-fit if the residual is large.

        Returns the relative error of the current prediction.  When it
        exceeds the tolerance the observation is folded into the runtime
        sufficient statistics of the binding head (compute- or memory-bound,
        whichever the model currently believes) and that device's weights
        are re-solved — the dynamic profiler acting as corrector.
        """
        kernel = cmd.kernel
        assert kernel is not None and cmd.launch is not None
        if device not in self.model.devices:
            return 0.0
        feat = self.features_for(kernel)
        n = kernel.effective_config(device, cmd.launch).work_items
        predicted = self.predict_seconds(feat, device, n)
        rel = abs(predicted - seconds) / max(abs(seconds), _TINY)
        records = self.residuals.setdefault(device, [])
        records.append((kernel.name, rel))
        if len(records) > _MAX_RESIDUALS:
            del records[: len(records) - _MAX_RESIDUALS]
        self.stats.observations += 1
        # A device invalidated by a fault (slowdown cleared, device
        # recovered) re-anchors on its first healthy measurement even when
        # the residual is within tolerance — the stale weights may be
        # coincidentally close at this one operating point.
        rearmed = device in self._invalidated
        self._invalidated.discard(device)
        if (rel > self.tolerance or rearmed) and kernel._cost_model is None:
            kind = self.kinds.get(device)
            if kind is not None:
                wc, wm = self._device_weights(device)
                xc = compute_feature_vector(feat, kind, n)
                xm = memory_feature_vector(feat, kind, n)
                head, x = (
                    ("compute", xc)
                    if _dot(wc, xc) >= _dot(wm, xm)
                    else ("memory", xm)
                )
                m = self.model.devices[device]
                overhead = self.overheads.get(device, m.overhead)
                y = log(max((seconds - overhead) / n, _TINY))
                base = m.compute if head == "compute" else m.memory
                extra = self._extras.get((device, head))
                if extra is None:
                    extra = RidgeHead(base.dim, lam=0.0)
                    self._extras[(device, head)] = extra
                extra.add(x, y)
                self._drop_caches(device)
                self.stats.refits += 1
        return rel

    def invalidate_device(self, device: str) -> int:
        """Drop ``device``'s residual state after a fault and re-arm it.

        Called on fail-stop (a dead device's residuals must not poison
        re-fits on the degraded pool) and on slowdown edges (observations
        taken under a transient slowdown — or predictions fitted before
        one cleared — are wrong for the device's current speed).  The
        device gets a fresh residual ring, its slowdown-era online
        observations are discarded, and it is marked re-armed so the next
        :meth:`observe` forces a re-fit even if the residual happens to be
        within tolerance.  Returns the number of records dropped.
        """
        removed = 0
        records = self.residuals.pop(device, None)
        if records:
            removed += len(records)
        for head in ("compute", "memory"):
            extra = self._extras.pop((device, head), None)
            if extra is not None:
                removed += extra.count
        self._drop_caches(device)
        self._invalidated.add(device)
        self.stats.invalidations += removed
        return removed


def _dot(a: List[float], b: List[float]) -> float:
    total = 0.0
    for i in range(len(a)):
        total += a[i] * b[i]
    return total


def _quadratic_form(inv: List[List[float]], x: List[float]) -> float:
    """x^T inv x (leverage against the fitted normal matrix)."""
    total = 0.0
    for i, row in enumerate(inv):
        total += x[i] * _dot(row, x)
    return max(total, 0.0)


def attach_predictor(profiler: "KernelProfiler") -> Predictor:
    """Build (or load) the predictor for ``profiler``'s platform and attach.

    Resolution order for the model directory: ``SchedulerConfig.predict_dir``
    (which :meth:`~repro.core.flags.SchedulerConfig.from_env` fills from
    ``MULTICL_PREDICT_DIR``), else ``<platform profile_dir>/predict``, else
    ``<default profile cache>/predict``.  Loading is single-flight across
    processes; fitting charges a throwaway simulated platform, never the
    application's clock.
    """
    context = profiler.context
    platform = context.platform
    cfg = profiler.config
    predict_dir = default_predict_dir(
        cfg.predict_dir or None, profile_dir=platform._profile_dir
    )
    model, _computed = load_or_fit(platform.spec, predict_dir)
    profile = platform.device_profile
    kinds = {
        d.name: d.spec.kind.value for d in platform.node.device_list()
    }
    predictor = Predictor(
        model,
        kinds=kinds,
        overheads=dict(profile.launch_overhead_s),
        tolerance=cfg.predict_tolerance,
        min_confidence=cfg.predict_confidence,
    )
    profiler.predictor = predictor
    return predictor
