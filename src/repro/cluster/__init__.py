"""Simulated SnuCL *cluster mode*: remote accelerators in one platform.

Background (paper Section II.B): "SnuCL features an optional cluster mode
providing seamless access to remote accelerators using MPI for internode
communications. ... Although our optimizations can be applied directly to
the cluster mode as well, these fall out of the scope of this paper."

This package builds that substrate so the claim is exercisable: a
:class:`~repro.cluster.spec.ClusterSpec` describes several nodes joined by
a network; :class:`~repro.cluster.topology.SimCluster` presents every
device — local and remote — through the exact :class:`~repro.hardware.topology.SimNode`
interface the rest of the stack consumes.  Host↔remote-device transfers
chain a network hop (contending on the remote node's NIC) with the remote
PCIe hop, so the *measured* device profiles automatically encode how far
away each device is, and the unmodified MultiCL scheduler makes
distance-aware decisions across the whole cluster.
"""

from repro.cluster.spec import ClusterSpec, two_node_cluster
from repro.cluster.topology import SimCluster

__all__ = ["ClusterSpec", "SimCluster", "two_node_cluster"]
