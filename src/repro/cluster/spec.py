"""Cluster descriptions: nodes + interconnect."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.hardware.presets import aji_cluster15_node
from repro.hardware.specs import DeviceSpec, HardwareError, LinkSpec, NodeSpec

__all__ = ["ClusterSpec", "two_node_cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Several nodes joined by a network; the host process runs on node 0.

    ``nic`` describes one node's network interface (the per-node shared
    path all remote traffic to/from that node's devices traverses).  The
    root node's devices are host-local and keep their plain names; devices
    of node *i* (i ≥ 1) are exposed as ``node<i>.<name>``.
    """

    name: str
    nodes: Tuple[NodeSpec, ...]
    nic: LinkSpec = field(
        default_factory=lambda: LinkSpec("ib-qdr", latency_s=3e-6, bandwidth_gbs=3.2)
    )

    def __post_init__(self) -> None:
        if not self.nodes:
            raise HardwareError("cluster needs at least one node")

    @property
    def root(self) -> NodeSpec:
        return self.nodes[0]

    def device_node_index(self, device_name: str) -> int:
        """Which node a flattened device name lives on."""
        if device_name.startswith("node"):
            prefix = device_name.split(".", 1)[0]
            try:
                idx = int(prefix[len("node"):])
            except ValueError:
                raise HardwareError(f"bad cluster device name {device_name!r}")
            if not 1 <= idx < len(self.nodes):
                raise HardwareError(f"no node {idx} in cluster {self.name!r}")
            return idx
        return 0

    def flattened(self) -> NodeSpec:
        """One NodeSpec exposing every device in the cluster.

        Remote devices keep their *local* PCIe link specs here; the network
        hop is added by :class:`~repro.cluster.topology.SimCluster` on top.
        Link names are prefixed per node so same-named links on different
        nodes stay physically distinct.
        """
        devices: List[DeviceSpec] = []
        links: Dict[str, LinkSpec] = {}
        for i, node in enumerate(self.nodes):
            for dev in node.devices:
                name = dev.name if i == 0 else f"node{i}.{dev.name}"
                devices.append(dataclasses.replace(dev, name=name))
                link = node.host_links[dev.name]
                link_name = link.name if i == 0 else f"node{i}.{link.name}"
                links[name] = dataclasses.replace(link, name=link_name)
        return NodeSpec(
            name=f"cluster:{self.name}",
            devices=tuple(devices),
            host_links=links,
        )


def two_node_cluster(remote_gpus_only: bool = True) -> ClusterSpec:
    """The paper's node plus one remote node reachable over InfiniBand.

    With ``remote_gpus_only`` the remote node contributes its two GPUs
    (a typical "borrow the neighbour's accelerators" setup).
    """
    root = aji_cluster15_node()
    remote = aji_cluster15_node()
    if remote_gpus_only:
        remote = NodeSpec(
            name="remote",
            devices=tuple(d for d in remote.devices if d.name != "cpu"),
            host_links={
                k: v for k, v in remote.host_links.items() if k != "cpu"
            },
        )
    return ClusterSpec(name="two-node", nodes=(root, remote))
