"""SimCluster: the SimNode interface over several physical nodes.

Transfers to a *local* device behave exactly like :class:`SimNode`.
Transfers to a *remote* device chain two hops:

* a network hop over the remote node's NIC (one FIFO resource per node, so
  all traffic to that node's devices contends — the MPI progress path in
  SnuCL's cluster mode);
* the remote PCIe hop on the device's own link.

Device-to-device moves stage through the root host, as in the single-node
case — which means a remote↔remote move crosses the network twice, exactly
the penalty a distance-aware scheduler must learn.  It learns it without
any cluster-specific code: the device profiler *measures* these composite
paths, and measured bandwidth is all the mapper ever sees.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.hardware.cost import transfer_time
from repro.hardware.topology import SimNode
from repro.sim.engine import SimEngine, SimTask
from repro.sim.resources import FifoResource

__all__ = ["SimCluster"]


class SimCluster(SimNode):
    """A cluster bound to one engine, indistinguishable from a SimNode."""

    def __init__(
        self,
        engine: SimEngine,
        cluster: ClusterSpec,
        duplex_links: bool = False,
    ) -> None:
        super().__init__(engine, cluster.flattened(), duplex_links=duplex_links)
        self.cluster = cluster
        #: one NIC resource per non-root node
        self.nics: Dict[int, FifoResource] = {
            i: FifoResource(engine, f"link:nic-node{i}")
            for i in range(1, len(cluster.nodes))
        }

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _node_of(self, device: str) -> int:
        return self.cluster.device_node_index(device)

    def is_remote(self, device: str) -> bool:
        return self._node_of(device) != 0

    def _net_seconds(self, nbytes: int) -> float:
        return transfer_time(self.cluster.nic, nbytes)

    # ------------------------------------------------------------------
    # Analytic estimates
    # ------------------------------------------------------------------
    def h2d_seconds(self, device: str, nbytes: int) -> float:
        base = super().h2d_seconds(device, nbytes)
        if self.is_remote(device):
            base += self._net_seconds(nbytes)
        return base

    def d2h_seconds(self, device: str, nbytes: int) -> float:
        base = super().d2h_seconds(device, nbytes)
        if self.is_remote(device):
            base += self._net_seconds(nbytes)
        return base

    # (d2d_seconds inherits: d2h + h2d of the composite paths.)

    # ------------------------------------------------------------------
    # Transfer tasks
    # ------------------------------------------------------------------
    def submit_h2d(
        self,
        device: str,
        nbytes: int,
        deps: Optional[Sequence[SimTask]] = None,
        category: str = "transfer",
        name: str = "h2d",
        meta: Optional[dict] = None,
    ) -> SimTask:
        node_idx = self._node_of(device)
        if node_idx == 0:
            return super().submit_h2d(device, nbytes, deps, category, name, meta)
        info = {"device": device, "bytes": nbytes, "direction": "net-out"}
        if meta:
            info.update(meta)
        net = self.engine.task(
            name=f"{name}:net->node{node_idx}",
            duration=self._net_seconds(nbytes),
            resource=self.nics[node_idx],
            deps=list(deps or []),
            category=category,
            meta=info,
        )
        return super().submit_h2d(device, nbytes, [net], category, name, meta)

    def submit_d2h(
        self,
        device: str,
        nbytes: int,
        deps: Optional[Sequence[SimTask]] = None,
        category: str = "transfer",
        name: str = "d2h",
        meta: Optional[dict] = None,
    ) -> SimTask:
        node_idx = self._node_of(device)
        if node_idx == 0:
            return super().submit_d2h(device, nbytes, deps, category, name, meta)
        pcie = super().submit_d2h(device, nbytes, deps, category, name, meta)
        info = {"device": device, "bytes": nbytes, "direction": "net-in"}
        if meta:
            info.update(meta)
        return self.engine.task(
            name=f"{name}:net<-node{node_idx}",
            duration=self._net_seconds(nbytes),
            resource=self.nics[node_idx],
            deps=[pcie],
            category=category,
            meta=info,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimCluster({self.cluster.name!r}, nodes={len(self.cluster.nodes)}, "
            f"devices={list(self.devices)})"
        )
