"""repro — reproduction of *Automatic Command Queue Scheduling for
Task-Parallel Workloads in OpenCL* (Aji, Peña, Balaji, Feng; IEEE CLUSTER
2015): the **MultiCL** runtime.

Layers (bottom-up):

* :mod:`repro.sim` — discrete-event simulation substrate (virtual clock,
  FIFO resources, tracing);
* :mod:`repro.hardware` — parametric heterogeneous-node models, including
  the paper's CPU + 2×GPU testbed;
* :mod:`repro.ocl` — an OpenCL-1.2-style runtime layer (the "SnuCL" role)
  with the paper's proposed API extensions;
* :mod:`repro.core` — MultiCL itself: device profiler, kernel profiler
  (minikernel + data caching + profile caching), exact device mapper, and
  the ROUND_ROBIN / AUTO_FIT global policies;
* :mod:`repro.service` — a multi-tenant scheduling service over one shared
  fleet: admission control, weighted fair-share arbitration across tenant
  sessions, and per-tenant utilization telemetry;
* :mod:`repro.workloads` — SNU-NPB-MD-style benchmarks and the
  FDM-Seismology application used in the paper's evaluation;
* :mod:`repro.bench` — the experiment harness regenerating every table and
  figure of Section VI.

Quickstart::

    from repro import MultiCL, ContextScheduler, SchedFlag

    mcl = MultiCL(policy=ContextScheduler.AUTO_FIT)
    q = mcl.queue(flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH)
    ...  # build a program, enqueue kernels, q.finish()
"""

from repro.analysis import (
    Finding,
    FindingKind,
    SanitizerError,
    SanitizerWarning,
    Severity,
    lint_trace,
    validate_pool,
)
from repro.core import (
    AutoFitScheduler,
    DeviceProfile,
    MultiCL,
    RoundRobinScheduler,
    RunStats,
)
from repro.core.flags import SchedulerConfig
from repro.cluster import ClusterSpec, two_node_cluster
from repro.hardware import (
    DeviceKind,
    DeviceSpec,
    KernelCost,
    LinkSpec,
    NodeSpec,
    aji_cluster15_node,
)
from repro.sim.export import to_chrome_trace, utilization_report, write_chrome_trace
from repro.sim.faults import FaultInjector, FaultPlan, FaultPolicy
from repro.ocl import (
    Buffer,
    CommandQueue,
    Context,
    ContextProperty,
    ContextScheduler,
    DeviceType,
    Event,
    Kernel,
    Platform,
    Program,
    SchedFlag,
    get_platforms,
)
from repro.service import (
    AdmissionError,
    QuotaExceeded,
    SchedulingService,
    TenantQuota,
    TenantSession,
    TenantTelemetry,
)

__version__ = "1.0.0"

__all__ = [
    "MultiCL",
    "RunStats",
    "SchedulerConfig",
    "AutoFitScheduler",
    "RoundRobinScheduler",
    "DeviceProfile",
    "DeviceKind",
    "DeviceSpec",
    "LinkSpec",
    "NodeSpec",
    "KernelCost",
    "aji_cluster15_node",
    "ClusterSpec",
    "two_node_cluster",
    "to_chrome_trace",
    "write_chrome_trace",
    "utilization_report",
    "FaultPlan",
    "FaultPolicy",
    "FaultInjector",
    "Finding",
    "FindingKind",
    "Severity",
    "SanitizerError",
    "SanitizerWarning",
    "validate_pool",
    "lint_trace",
    "Platform",
    "get_platforms",
    "Context",
    "CommandQueue",
    "Buffer",
    "Program",
    "Kernel",
    "Event",
    "SchedFlag",
    "ContextProperty",
    "ContextScheduler",
    "DeviceType",
    "SchedulingService",
    "TenantSession",
    "TenantQuota",
    "TenantTelemetry",
    "AdmissionError",
    "QuotaExceeded",
    "__version__",
]
