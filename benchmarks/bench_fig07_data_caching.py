"""Fig. 7 — effect of data caching on FT's profiling transfer overhead."""

from repro.bench.figures import fig7


def test_fig7_data_caching(run_once):
    result = run_once(fig7, fast=True)
    assert result.column("queues") == [1, 2, 4, 8]
    for row in result.rows:
        # Caching always reduces the scheduler's data movement...
        assert row["with_caching_s"] < row["without_caching_s"], row
        # ...by a consistent margin at every queue count (paper: ≈50%;
        # our 3-device op-count arithmetic bounds it near ≈30%).
        assert 15.0 <= row["reduction_pct"] <= 60.0, row
