"""Ablations beyond the paper's figures: the design choices DESIGN.md
calls out — trigger frequency, profile caching, static-vs-dynamic, and
measurement-noise robustness."""

from repro.bench.figures import ablations, robustness


def test_ablations(run_once):
    result = run_once(ablations, fast=True)

    def get(experiment, variant):
        return result.row_for(experiment=experiment, variant=variant)["seconds"]

    # Per-kernel triggering costs at least as much as per-epoch batching
    # (Section V.A: per-kernel invocation "can cause significant runtime
    # overhead").
    assert get("trigger frequency", "per-kernel") >= get(
        "trigger frequency", "per-epoch (default)"
    )
    # Profile caching pays off for iterative workloads (Section V.C.1).
    assert get("profile caching", "profile caching on") < get(
        "profile caching", "profile caching off"
    )
    # Static hint-only placement is the speed-vs-optimality tradeoff: for
    # BT a compute-bound hint picks the (wrong) GPU, so dynamic profiling
    # wins despite its overhead (Section V.B).
    assert get("static vs dynamic", "dynamic (profiled)") < get(
        "static vs dynamic", "static (hint only)"
    )


def test_robustness_to_measurement_noise(run_once):
    result = run_once(robustness, fast=True)
    # Up to 20% measurement error, the 2.3-2.7x device gaps keep the
    # mapping optimal for both layouts.
    for row in result.rows:
        if row["noise_pct"] <= 20.0:
            assert row["optimal"], row
    # The sweep covers both layouts at five noise levels.
    assert len(result.rows) == 10
