"""Incremental repair vs full re-solve — the fault-path mapping speedup.

On the pinned 64-queue / 8-device acceptance instance (two device classes,
seed 217, device ``d2`` failed), the constraint-based repair in
:mod:`repro.core.constraints` must be at least **5x** faster than a fresh
:func:`~repro.core.device_mapper.optimal_mapping` over the degraded pool,
while migrating only the dead device's queues and matching or beating the
fresh greedy makespan.  Both halves run as a test (CI smoke via the
``repair-smoke`` job) and as a standalone table.

Run standalone:  PYTHONPATH=src python benchmarks/bench_mapper_repair.py
"""

import random
import statistics
import time

from repro.core.constraints import MappingDelta, repair_mapping
from repro.core.device_mapper import optimal_mapping

QUEUES = 64
DEVICES = 8
SEED = 217
DEAD = "d2"
REPEATS = 30
MIN_SPEEDUP = 5.0


def pinned_instance():
    """The acceptance instance: two device classes with per-pair noise."""
    rng = random.Random(SEED)
    queues = [f"q{i}" for i in range(QUEUES)]
    devices = [f"d{j}" for j in range(DEVICES)]
    speed = {d: (1.0 if j < 4 else 2.5) for j, d in enumerate(devices)}
    cost = {
        q: {d: rng.uniform(1.0, 10.0) * speed[d] for d in devices}
        for q in queues
    }
    return queues, devices, cost


def _median_time(fn, repeats=REPEATS):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), result


def run() -> dict:
    queues, devices, cost = pinned_instance()
    prev = optimal_mapping(queues, devices, cost)
    degraded = [d for d in devices if d != DEAD]
    cost2 = {q: {d: cost[q][d] for d in degraded} for q in queues}
    delta = MappingDelta(removed_devices=(DEAD,))

    solve_s, fresh = _median_time(lambda: optimal_mapping(queues, degraded, cost2))
    repair_s, repaired = _median_time(
        lambda: repair_mapping(prev, delta, queues, degraded, cost2)
    )
    orphans = {q for q, d in prev.mapping.items() if d == DEAD}
    return {
        "solve_ms": solve_s * 1e3,
        "repair_ms": repair_s * 1e3,
        "speedup": solve_s / repair_s,
        "repaired": repaired.repaired,
        "migrated": len(repaired.migrated_queues),
        "orphans": len(orphans),
        "repair_makespan": repaired.makespan,
        "solve_makespan": fresh.makespan,
    }


def test_repair_beats_full_resolve():
    row = run()
    assert row["repaired"], "pinned instance must take the repair path"
    assert row["migrated"] == row["orphans"], (
        "repair must migrate exactly the dead device's queues"
    )
    assert row["repair_makespan"] <= row["solve_makespan"] * (1 + 1e-9), (
        "repair must not be worse than a fresh solve on the degraded pool"
    )
    assert row["speedup"] >= MIN_SPEEDUP, (
        f"repair speedup {row['speedup']:.1f}x below the {MIN_SPEEDUP}x floor "
        f"(repair {row['repair_ms']:.3f} ms vs solve {row['solve_ms']:.3f} ms)"
    )


if __name__ == "__main__":
    row = run()
    print(f"{'pool':>12s}  {QUEUES} queues x {DEVICES} devices, {DEAD} failed")
    print(f"{'full solve':>12s}  {row['solve_ms']:8.3f} ms  "
          f"makespan {row['solve_makespan']:.4f}")
    print(f"{'repair':>12s}  {row['repair_ms']:8.3f} ms  "
          f"makespan {row['repair_makespan']:.4f}  "
          f"({row['migrated']}/{row['orphans']} orphans migrated)")
    print(f"{'speedup':>12s}  {row['speedup']:8.1f}x  (floor {MIN_SPEEDUP}x)")
