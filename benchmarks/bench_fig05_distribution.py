"""Fig. 5 — distribution of kernels across devices under AUTO_FIT."""

from repro.bench.figures import fig5


def test_fig5_kernel_distribution(run_once):
    result = run_once(fig5, fast=True)
    by_bench = {r["benchmark"].split(".")[0]: r for r in result.rows}
    assert set(by_bench) == {"BT", "CG", "EP", "FT", "MG", "SP"}
    # EP's kernels go to the GPUs (paper: "our scheduler has assigned all
    # the kernels to the GPU").
    ep = by_bench["EP"]
    assert ep["cpu_pct"] <= 5.0
    assert ep["gpu0_pct"] + ep["gpu1_pct"] >= 95.0
    # Every other benchmark gives the CPU at least half the kernels
    # ("the CPU still gets a majority of the kernels").
    for name, row in by_bench.items():
        if name == "EP":
            continue
        assert row["cpu_pct"] >= 50.0, (name, row)
    # The strongly CPU-leaning benchmarks (BT, MG per Fig. 3) give the CPU
    # more share than the milder FT.
    assert by_bench["BT"]["cpu_pct"] >= by_bench["FT"]["cpu_pct"]
