"""Fig. 9 — FDM-Seismology across queue-device mappings and schedulers."""

from repro.bench.figures import fig9


def test_fig9_seismology_mappings(run_once):
    result = run_once(fig9, fast=True)
    col = {r["mapping"]: r["column_major_ms"] for r in result.rows}
    row = {r["mapping"]: r["row_major_ms"] for r in result.rows}

    # Column-major: best when both queues share the CPU; worst when both
    # share a single GPU; spread ≈ 2.7x (paper).
    manual_col = {k: v for k, v in col.items() if k.startswith("(")}
    assert min(manual_col, key=manual_col.get) == "(cpu,cpu)"
    spread_col = max(manual_col.values()) / min(manual_col.values())
    assert 2.0 <= spread_col <= 3.5, spread_col

    # Row-major: best split across the two GPUs; ≈2.3x better than the
    # worst mapping (paper).
    manual_row = {k: v for k, v in row.items() if k.startswith("(")}
    best_row = min(manual_row, key=manual_row.get)
    assert best_row in ("(gpu0,gpu1)", "(gpu1,gpu0)")
    spread_row = max(manual_row.values()) / min(manual_row.values())
    assert 1.8 <= spread_row <= 3.0, spread_row

    # AUTO_FIT lands near the best mapping for BOTH layouts (its first
    # iteration carries the profiling cost; steady state is optimal).
    assert col["MultiCL Auto Fit"] <= min(manual_col.values()) * 1.5
    assert row["MultiCL Auto Fit"] <= min(manual_row.values()) * 1.5
    # Round-robin splits across the GPUs regardless of layout: fine for
    # row-major, suboptimal for column-major.
    assert abs(row["Round Robin"] - row["(gpu0,gpu1)"]) / row["(gpu0,gpu1)"] < 0.05
    assert col["Round Robin"] > col["(cpu,cpu)"] * 1.2
