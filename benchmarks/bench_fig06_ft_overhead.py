"""Fig. 6 — FT profiling (data-transfer) overhead vs command-queue count."""

from repro.bench.figures import fig6


def test_fig6_ft_profiling_overhead(run_once):
    result = run_once(fig6, fast=True)
    queues = result.column("queues")
    assert queues == [1, 2, 4, 8]
    data = result.column("data_per_queue_mb")
    overhead = result.column("overhead_pct")
    transfer = result.column("profile_transfer_s")
    # Data per queue halves as the queue count doubles.
    for a, b in zip(data, data[1:]):
        assert abs(a / b - 2.0) < 0.01, (a, b)
    # Profiling overhead falls with more queues (the amortisation claim).
    assert overhead[0] > overhead[-1]
    assert all(o >= 0 for o in overhead)
    # And the staged profiling traffic shrinks in step with the data.
    for a, b in zip(transfer, transfer[1:]):
        assert a > b, (a, b)
