"""Fig. 10 — per-iteration profiling amortisation for FDM-Seismology."""

from repro.bench.figures import fig10


def test_fig10_amortization(run_once):
    result = run_once(fig10, fast=True)
    times = result.column("total_ms")
    assert len(times) >= 10
    first, rest = times[0], times[1:]
    steady = sum(rest) / len(rest)
    # The first (profiled) iteration is visibly more expensive...
    assert first > steady * 1.5, (first, steady)
    # ...and the remaining iterations are flat (profile-cache hits).
    assert max(rest) <= steady * 1.1
    assert min(rest) >= steady * 0.9
    # Amortisation: total overhead stays a single-iteration affair.
    overhead_fraction = (first - steady) / (sum(times))
    assert overhead_fraction < 0.5
    # The paper's stacked split: stress (25 kernels) dominates velocity (7).
    for row in result.rows:
        assert row["stress_ms"] > row["velocity_ms"] > 0
    # Profiling work appears only in the first iteration.
    assert result.rows[0]["profiling_ms"] > 0
    assert all(r["profiling_ms"] == 0 for r in result.rows[1:])
