#!/usr/bin/env python
"""Tracked performance baseline for the library's hot paths.

Runs the same workloads as ``bench_library_perf.py`` without pytest and
writes ``BENCH_library_perf.json`` at the repo root: per-bench median/min
wall time plus a *simulation-correctness checksum* (a deterministic value
computed from virtual-clock results, identical on every machine).  The
committed JSON serves two purposes:

* a perf reference — CI re-runs the benches (``--quick``) and fails when
  any bench regresses more than ``--factor`` (default 3x) against the
  committed medians, a deliberately loose bound that survives noisy shared
  runners while still catching accidental big-O regressions;
* a correctness pin — checksums must match exactly-ish (relative 1e-9), so
  a "speedup" that changes simulation results fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/run_perf_baseline.py            # write baseline
    PYTHONPATH=src python benchmarks/run_perf_baseline.py --quick \
        --check BENCH_library_perf.json                              # CI smoke
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.device_mapper import optimal_mapping  # noqa: E402
from repro.sim.engine import SimEngine  # noqa: E402
from repro.sim.resources import FifoResource  # noqa: E402
from repro.sim.trace import Trace  # noqa: E402
from repro.workloads.npb import numerics  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_library_perf.json"


# ---------------------------------------------------------------------------
# Bench cases: zero-arg callables returning a deterministic checksum.
# ---------------------------------------------------------------------------

def bench_engine_event_throughput() -> float:
    engine = SimEngine()
    resources = [FifoResource(engine, f"r{i}") for i in range(4)]
    for i in range(10_000):
        engine.task(f"t{i}", 1e-6, resource=resources[i % 4])
    engine.run_until_idle()
    return engine.now


def bench_mapper_solve_8x4() -> float:
    queues = [f"q{i}" for i in range(8)]
    devices = ["cpu", "gpu0", "gpu1", "gpu2"]
    cost = {
        q: {d: 1.0 + ((i * 7 + j * 3) % 5) * 0.37 for j, d in enumerate(devices)}
        for i, q in enumerate(queues)
    }
    result = optimal_mapping(queues, devices, cost)
    return result.makespan


def bench_mapper_solve_32x8() -> float:
    queues = [f"q{i}" for i in range(32)]
    devices = [f"d{j}" for j in range(8)]
    cost = {
        q: {d: 1.0 + ((i * 13 + j * 5) % 7) * 0.29 for j, d in enumerate(devices)}
        for i, q in enumerate(queues)
    }
    result = optimal_mapping(queues, devices, cost)
    return result.makespan


def bench_trace_query() -> float:
    resources = [f"dev:{i}" for i in range(8)]
    categories = ("kernel", "transfer", "migration")
    trace = Trace()
    t = 0.0
    for i in range(24_000):
        trace.record(resources[i % 8], f"t{i}", categories[i % 3], t, t + 1e-6)
        t += 5e-7
    total = 0.0
    for c in categories:
        total += trace.total_time(category=c)
        total += len(trace.filter(category=c)) + trace.count(category=c)
    for r in resources:
        total += trace.total_time(resource=r)
    total += sum(trace.by_resource(category="kernel").values())
    total += sum(trace.counts_by_resource().values())
    return total


_EPOCH_PROFILE_DIR = None


def bench_full_scheduled_epoch() -> float:
    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler, SchedFlag

    global _EPOCH_PROFILE_DIR
    if _EPOCH_PROFILE_DIR is None:
        # One shared on-disk profile cache across repeats, as in real use:
        # the first run pays static profiling, the rest are pure epoch cost.
        _EPOCH_PROFILE_DIR = tempfile.mkdtemp(prefix="perf-baseline-profile-")
    src = (
        "// @multicl flops_per_item=100 bytes_per_item=16 writes=1\n"
        "__kernel void k(__global float* a, __global float* b, int n) { }"
    )
    mcl = MultiCL(policy=ContextScheduler.AUTO_FIT, profile_dir=_EPOCH_PROFILE_DIR)
    prog = mcl.context.create_program(src).build()
    n = 1 << 16
    queues = []
    for _ in range(4):
        kern = prog.create_kernel("k")
        a = mcl.context.create_buffer(4 * n)
        b = mcl.context.create_buffer(4 * n)
        kern.set_arg(0, a)
        kern.set_arg(1, b)
        kern.set_arg(2, n)
        q = mcl.queue(flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH)
        for _ in range(8):
            q.enqueue_nd_range_kernel(kern, (n,), (64,))
        queues.append(q)
    for q in queues:
        q.finish()
    return mcl.now


_WIDE_PROFILE_DIR = None


def bench_issue_pool_wide() -> float:
    """Wide-pool issue throughput: 24 auto queues x 12 kernels with
    cross-queue wait events — the indegree ready-list hot path of
    ``Context.issue_pool`` (formerly an O(n^2) rescan)."""
    global _WIDE_PROFILE_DIR
    if _WIDE_PROFILE_DIR is None:
        _WIDE_PROFILE_DIR = tempfile.mkdtemp(prefix="perf-baseline-wide-")
    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler, SchedFlag

    src = (
        "// @multicl flops_per_item=50 bytes_per_item=8 writes=1\n"
        "__kernel void k(__global float* a, int n) { }"
    )
    n = 1 << 12
    mcl = MultiCL(policy=ContextScheduler.AUTO_FIT, profile_dir=_WIDE_PROFILE_DIR)
    prog = mcl.context.create_program(src).build()
    queues, events = [], []
    for i in range(24):
        kern = prog.create_kernel("k")
        buf = mcl.context.create_buffer(4 * n)
        kern.set_arg(0, buf)
        kern.set_arg(1, n)
        q = mcl.queue(flags=SchedFlag.SCHED_AUTO_DYNAMIC)
        for j in range(12):
            waits = [events[-1]] if events and (i + j) % 3 == 0 else []
            events.append(
                q.enqueue_nd_range_kernel(kern, (n,), (64,), wait_events=waits)
            )
        queues.append(q)
    for q in queues:
        q.finish()
    return mcl.now


_OVERLAP_PROFILE_DIR = None


def bench_overlap_issue() -> float:
    """Overlap-aware issue of a double-buffered streaming pool: 8 rounds of
    upload + kernel + read-back on one in-order queue under
    ``SCHED_OVERLAP`` (ready-queue construction, happens-before validation,
    duplex-link scheduling).  The checksum is the virtual makespan, so a
    change to the relaxed issue order fails the gate."""
    global _OVERLAP_PROFILE_DIR
    if _OVERLAP_PROFILE_DIR is None:
        _OVERLAP_PROFILE_DIR = tempfile.mkdtemp(prefix="perf-baseline-overlap-")
    import numpy as np

    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler, SchedFlag

    src = (
        "// @multicl flops_per_item=200 bytes_per_item=8 writes=1\n"
        "__kernel void s(__global float* a, __global float* b, int n) { }"
    )
    n = 1 << 18
    mcl = MultiCL(
        policy=ContextScheduler.AUTO_FIT,
        profile_dir=_OVERLAP_PROFILE_DIR,
        overlap=True,
    )
    ctx = mcl.context
    kern = ctx.create_program(src).build().create_kernel("s")
    q = ctx.create_queue(
        sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
    )
    chunks = [
        ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
        for _ in range(2)
    ]
    outs = [
        ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
        for _ in range(2)
    ]
    data = np.ones(n, np.float32)
    res = np.empty(n, np.float32)
    for i in range(8):
        a, b = chunks[i % 2], outs[i % 2]
        q.enqueue_write_buffer(a, data)
        kern.set_arg(0, a)
        kern.set_arg(1, b)
        kern.set_arg(2, n)
        q.enqueue_nd_range_kernel(kern, (n,), (64,))
        q.enqueue_read_buffer(b, res)
    q.finish()
    return mcl.now


_SPLIT_PROFILE_DIR = None


def bench_split_epoch() -> float:
    """SCHED_SPLIT epoch cost: plan + issue of 4 kernel epochs partitioned
    across all three stock devices (slice transfers, sub-kernels, gathers,
    merging joins).  The checksum is the virtual makespan, so a change to
    share computation or sub-task emission fails the gate."""
    global _SPLIT_PROFILE_DIR
    if _SPLIT_PROFILE_DIR is None:
        _SPLIT_PROFILE_DIR = tempfile.mkdtemp(prefix="perf-baseline-split-")
    import numpy as np

    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler, SchedFlag

    src = (
        "// @multicl flops_per_item=400 bytes_per_item=8 writes=1\n"
        "__kernel void w(__global float* a, __global float* b, int n) { }"
    )
    n = 1 << 18
    mcl = MultiCL(
        policy=ContextScheduler.AUTO_FIT,
        profile_dir=_SPLIT_PROFILE_DIR,
        split=True,
    )
    ctx = mcl.context
    kern = ctx.create_program(src).build().create_kernel("w")
    q = ctx.create_queue(
        sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
    )
    a = ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
    b = ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
    q.enqueue_write_buffer(a, np.ones(n, np.float32))
    kern.set_arg(0, a)
    kern.set_arg(1, b)
    kern.set_arg(2, n)
    for _ in range(4):
        q.enqueue_nd_range_kernel(kern, (n,), (64,))
    q.finish()
    return mcl.now


def bench_vectorised_lcg() -> float:
    uniforms, seed = numerics.vranlc_fast(1 << 18, 271828183.0)
    return float(uniforms[:64].sum()) + seed / 2.0**46


def bench_numerics_setup() -> float:
    """Workload-setup numerics: CSR assembly, LCG stream, FT evolution.

    These run inside every NPB functional setup, so they are the per-worker
    hot path of a parallel experiment fleet.
    """
    import numpy as np

    data, idx, ptr, size = numerics.make_poisson_csr(64)
    uniforms, seed = numerics.vranlc(1 << 16, 271828183.0)
    shape = (32, 32, 32)
    u0 = uniforms[: 32 * 32 * 32].reshape(shape)
    _, csum = numerics.ft_evolve(
        np.fft.fftn(u0), numerics.ft_indexmap(shape), 1e-4, 2
    )
    return (
        float(data.sum())
        + float(idx[:128].sum())
        + float(ptr[-1]) / size
        + float(uniforms.sum())
        + seed / 2.0**46
        + csum.real * 1e3
    )


_SWEEP_PROFILE_DIR = None


def bench_parallel_sweep() -> float:
    """Process-pool fleet over two sweep experiments (12 + 6 units, 2 jobs).

    The checksum folds every numeric table cell of the merged results, so
    any scheduling/merging divergence from the serial reference changes it.
    """
    global _SWEEP_PROFILE_DIR
    if _SWEEP_PROFILE_DIR is None:
        # Shared warm profile cache across repeats, as in real fleet use.
        _SWEEP_PROFILE_DIR = tempfile.mkdtemp(prefix="perf-baseline-sweep-")
    from repro.bench.parallel import run_parallel

    results = run_parallel(
        ["fig3", "fig9"], fast=True, jobs=2, profile_dir=_SWEEP_PROFILE_DIR
    )
    total = 0.0
    for res in results.values():
        for row in res.rows:
            for value in row.values():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    total += float(value)
    return total


_TENANT_PROFILE_DIR = None


def bench_tenant_service() -> float:
    """Multi-tenant arbitration throughput: 6 tenants × 2 queues, 40 rounds.

    Exercises the service hot path — pool cost estimation, weighted DRR
    rounds, telemetry folding — under sustained backlog.  The checksum
    folds final virtual time with every tenant's device-seconds, so any
    arbitration-order or accounting change shows up.
    """
    global _TENANT_PROFILE_DIR
    if _TENANT_PROFILE_DIR is None:
        _TENANT_PROFILE_DIR = tempfile.mkdtemp(prefix="perf-baseline-tenant-")
    from repro.ocl.enums import ContextScheduler, SchedFlag
    from repro.service import SchedulingService

    src = (
        "// @multicl flops_per_item=150 bytes_per_item=8 writes=0\n"
        "__kernel void k(__global float* a, int n) { }"
    )
    n = 1 << 14
    svc = SchedulingService(profile_dir=_TENANT_PROFILE_DIR)
    clients = []
    for i in range(6):
        s = svc.create_session(
            f"tenant{i}", weight=float(1 + i % 3),
            policy=ContextScheduler.ROUND_ROBIN,
        )
        prog = s.create_program(src).build()
        pairs = []
        for j in range(2):
            kern = prog.create_kernel("k")
            buf = s.create_buffer(4 * n)
            kern.set_arg(0, buf)
            kern.set_arg(1, n)
            q = s.create_queue(sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC)
            pairs.append((kern, q))
        clients.append((s, pairs))
    for _ in range(40):
        for s, pairs in clients:
            if not s.pending_queues():
                for kern, q in pairs:
                    q.enqueue_nd_range_kernel(kern, (n,), (64,))
        svc.trigger()
        svc.run_until_idle()
    svc.drain()
    total = svc.now
    for i in range(6):
        total += svc.telemetry.device_seconds(f"tenant{i}")
    return total


_REPLAY_PROFILE_DIR = None


def bench_replay_throughput() -> float:
    """Open-loop replay rate: 20k Poisson arrivals through the batched
    event loop with a streaming (discard) trace sink.

    The wall time is the engine-scalability figure — commands replayed per
    second of host time — and the checksum is the replay's deterministic
    fold (completions + horizon + latency sum + device seconds), so any
    change to arrival generation, dispatch, or trace accounting fails the
    perf gate loudly.
    """
    global _REPLAY_PROFILE_DIR
    if _REPLAY_PROFILE_DIR is None:
        _REPLAY_PROFILE_DIR = tempfile.mkdtemp(prefix="perf-baseline-replay-")
    from repro.replay import ReplayConfig, run_tenant
    from repro.replay.shard import ensure_profile_cache

    config = ReplayConfig(
        commands=20_000,
        tenants=1,
        rate=300.0,
        seed=17,
        spill_every=4096,
        profile_dir=ensure_profile_cache(_REPLAY_PROFILE_DIR),
    )
    return run_tenant(config, 0).checksum


_PREDICT_DIR = None


def _predict_model():
    """Fit-once/load-many predictor model shared across repeats."""
    global _PREDICT_DIR
    from repro.hardware.presets import aji_cluster15_node
    from repro.predict import load_or_fit

    if _PREDICT_DIR is None:
        _PREDICT_DIR = tempfile.mkdtemp(prefix="perf-baseline-predict-")
    model, _ = load_or_fit(aji_cluster15_node(), _PREDICT_DIR)
    return model


def bench_predict_fit() -> float:
    """Offline ridge fit over the full probe corpus (plain-Python normal
    equations; ~1.2k probes across three devices on a throwaway engine).

    The checksum folds one prediction per device from the freshly fitted
    model, so any change to the corpus, the feature basis, or the solver
    changes it.
    """
    from repro.hardware.presets import aji_cluster15_node
    from repro.predict import PredictorModel
    from repro.predict.features import extract_program

    model = PredictorModel.fit(aji_cluster15_node())
    src = (
        "// @multicl flops_per_item=220 bytes_per_item=8 divergence=0.1 "
        "irregularity=0.2 cpu_eff=0.9 gpu_eff=0.6 writes=1\n"
        "__kernel void scale(__global float* a, int n) { }\n"
    )
    feat = extract_program(src)["scale"]
    total = 0.0
    for _, seconds in sorted(model.predict(feat, 1 << 16).items()):
        total += seconds * 1e6
    return total


def bench_predict_infer() -> float:
    """Inference hot path: feature extraction + confidence + prediction for
    a batch of kernels against a warm fitted model (the per-epoch cost the
    scheduler pays when prediction replaces profiling)."""
    from repro.predict import Predictor
    from repro.predict.features import extract_program

    model = _predict_model()
    kinds = {"cpu": "cpu", "gpu0": "gpu", "gpu1": "gpu"}
    predictor = Predictor(model, kinds=kinds, overheads={})
    total = 0.0
    for i in range(64):
        flops = 10.0 + 13.0 * (i % 17)
        nbytes = 4.0 + 8.0 * (i % 5)
        src = (
            f"// @multicl flops_per_item={flops!r} bytes_per_item={nbytes!r} "
            f"divergence=0.1 irregularity=0.1 writes=1\n"
            f"__kernel void k{i}(__global float* a, int n) {{ }}\n"
        )
        feat = extract_program(src)[f"k{i}"]
        n = 1 << (10 + i % 8)
        for device in sorted(kinds):
            total += predictor.confidence(feat, device, n)
            total += predictor.predict_seconds(feat, device, n) * 1e6
    return total


_REPAIR_INSTANCE = None


def _repair_instance():
    """Healthy 64x8 solve shared across repeats (the failure's *prior*)."""
    global _REPAIR_INSTANCE
    if _REPAIR_INSTANCE is None:
        import random

        rng = random.Random(217)
        queues = [f"q{i}" for i in range(64)]
        devices = [f"d{j}" for j in range(8)]
        speed = {d: (1.0 if j < 4 else 2.5) for j, d in enumerate(devices)}
        cost = {
            q: {d: rng.uniform(1.0, 10.0) * speed[d] for d in devices}
            for q in queues
        }
        prev = optimal_mapping(queues, devices, cost)
        _REPAIR_INSTANCE = (queues, devices, cost, prev)
    return _REPAIR_INSTANCE


def bench_mapper_repair() -> float:
    """Incremental repair of a 64-queue / 8-device mapping after one device
    failure — the fault-recovery hot path (:mod:`repro.core.constraints`).

    Times only the repair against a precomputed healthy solve; the checksum
    folds the repaired makespan with the migration count so any change to
    the placement search or its acceptance gate shows up.
    """
    from repro.core.constraints import MappingDelta, repair_mapping

    queues, devices, cost, prev = _repair_instance()
    dead = "d2"
    degraded = [d for d in devices if d != dead]
    cost2 = {q: {d: cost[q][d] for d in degraded} for q in queues}
    result = repair_mapping(
        prev, MappingDelta(removed_devices=(dead,)), queues, degraded, cost2
    )
    if not result.repaired:
        raise RuntimeError("mapper_repair bench instance fell back to full solve")
    return result.makespan + float(len(result.migrated_queues))


BENCHES = {
    "engine_event_throughput": bench_engine_event_throughput,
    "mapper_solve_8x4": bench_mapper_solve_8x4,
    "mapper_solve_32x8": bench_mapper_solve_32x8,
    "mapper_repair": bench_mapper_repair,
    "trace_query": bench_trace_query,
    "full_scheduled_epoch": bench_full_scheduled_epoch,
    "issue_pool_wide": bench_issue_pool_wide,
    "overlap_issue": bench_overlap_issue,
    "split_epoch": bench_split_epoch,
    "vectorised_lcg": bench_vectorised_lcg,
    "numerics_setup": bench_numerics_setup,
    "parallel_sweep": bench_parallel_sweep,
    "tenant_service": bench_tenant_service,
    "replay_throughput": bench_replay_throughput,
    "predict_fit": bench_predict_fit,
    "predict_infer": bench_predict_infer,
}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def measure(fn, repeats: int, warmup: int):
    for _ in range(warmup):
        checksum = fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        checksum = fn()
        times.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(times),
        "min_s": min(times),
        "repeats": repeats,
        "checksum": checksum,
    }


def run_all(repeats: int, warmup: int) -> dict:
    benches = {}
    for name, fn in BENCHES.items():
        benches[name] = measure(fn, repeats, warmup)
        print(
            f"{name:28s} median {benches[name]['median_s'] * 1e3:9.3f} ms  "
            f"min {benches[name]['min_s'] * 1e3:9.3f} ms",
            flush=True,
        )
    return {
        "schema": 1,
        "note": (
            "Library hot-path perf baseline; regenerate with "
            "`PYTHONPATH=src python benchmarks/run_perf_baseline.py`. "
            "Checksums are deterministic simulation results; times are "
            "machine-dependent medians."
        ),
        "python": platform.python_version(),
        "benches": benches,
    }


def check_against(results: dict, baseline_path: Path, factor: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, ref in baseline.get("benches", {}).items():
        got = results["benches"].get(name)
        if got is None:
            failures.append(f"{name}: missing from this run")
            continue
        if not math.isclose(got["checksum"], ref["checksum"], rel_tol=1e-9):
            failures.append(
                f"{name}: checksum {got['checksum']!r} != baseline "
                f"{ref['checksum']!r} (simulation behaviour changed)"
            )
        if got["median_s"] > factor * ref["median_s"]:
            failures.append(
                f"{name}: median {got['median_s'] * 1e3:.2f} ms exceeds "
                f"{factor}x baseline {ref['median_s'] * 1e3:.2f} ms"
            )
    if failures:
        print("PERF CHECK FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"perf check OK against {baseline_path} (factor {factor}x)")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer repeats (CI smoke; noisier medians)")
    ap.add_argument("--output", type=Path, default=None,
                    help=f"write results JSON here (default {DEFAULT_OUTPUT})")
    ap.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                    help="compare against a committed baseline instead of "
                         "overwriting it; exit 1 on regression")
    ap.add_argument("--factor", type=float, default=3.0,
                    help="allowed slowdown factor for --check (default 3.0)")
    args = ap.parse_args(argv)

    repeats, warmup = (5, 1) if args.quick else (15, 3)
    results = run_all(repeats, warmup)

    if args.check is not None:
        out = args.output
        if out is not None:
            out.write_text(json.dumps(results, indent=1, sort_keys=True) + "\n")
        return check_against(results, args.check, args.factor)

    out = args.output if args.output is not None else DEFAULT_OUTPUT
    out.write_text(json.dumps(results, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
