"""Fig. 4 — manual schedules vs AUTO_FIT with four command queues."""

from repro.bench.figures import fig4


def test_fig4_manual_vs_autofit(run_once):
    result = run_once(fig4, fast=True)
    benchmarks = sorted({r["benchmark"] for r in result.rows})
    assert len(benchmarks) == 6
    for bench in benchmarks:
        rows = [r for r in result.rows if r["benchmark"] == bench]
        auto = next(r for r in rows if r["schedule"] == "Auto Fit")
        manual = [r for r in rows if r["schedule"] != "Auto Fit"]
        best = min(r["seconds"] for r in manual)
        worst = max(r["seconds"] for r in manual)
        # AUTO_FIT tracks the best manual schedule (the paper's headline):
        # always far from the worst, within modest overhead of the best.
        assert auto["seconds"] < worst, bench
        assert auto["seconds"] <= best * 1.6, (
            bench,
            auto["seconds"],
            best,
        )
        # Overhead is non-negative against the ideal-mapping baseline.
        assert auto["overhead_pct"] >= -1e-9, bench
