"""Performance benchmarks of the library itself (real wall time).

Unlike the figure benches (which regenerate simulated results once), these
measure the *Python* cost of the hot paths — the numbers a user of this
library actually waits on: discrete-event throughput, mapper solve time,
a full scheduled epoch, and the vectorised NPB generator.
"""

import math

import pytest

from repro.core.device_mapper import optimal_mapping
from repro.sim.engine import SimEngine
from repro.sim.resources import FifoResource
from repro.workloads.npb import numerics


def test_engine_event_throughput(benchmark):
    """Throughput of the event engine: 10k chained FIFO tasks."""

    def run():
        engine = SimEngine()
        resources = [FifoResource(engine, f"r{i}") for i in range(4)]
        for i in range(10_000):
            engine.task(f"t{i}", 1e-6, resource=resources[i % 4])
        engine.run_until_idle()
        return engine.now

    result = benchmark(run)
    assert result == pytest.approx(2.5e-3)


def test_mapper_solve_8_queues_4_devices(benchmark):
    """Exact mapping for a paper-scale pool (8 queues, 4 devices)."""
    queues = [f"q{i}" for i in range(8)]
    devices = ["cpu", "gpu0", "gpu1", "gpu2"]
    cost = {
        q: {d: 1.0 + ((i * 7 + j * 3) % 5) * 0.37 for j, d in enumerate(devices)}
        for i, q in enumerate(queues)
    }

    result = benchmark(optimal_mapping, queues, devices, cost)
    assert math.isfinite(result.makespan)
    loads = result.device_loads(cost)
    assert max(loads.values()) == pytest.approx(result.makespan)


def test_full_scheduled_epoch(benchmark, tmp_path_factory):
    """End-to-end cost of one AUTO_FIT epoch: build, profile, map, issue."""
    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler, SchedFlag

    profile_dir = str(tmp_path_factory.mktemp("perf-profile"))
    src = (
        "// @multicl flops_per_item=100 bytes_per_item=16 writes=1\n"
        "__kernel void k(__global float* a, __global float* b, int n) { }"
    )

    def run():
        mcl = MultiCL(policy=ContextScheduler.AUTO_FIT, profile_dir=profile_dir)
        prog = mcl.context.create_program(src).build()
        n = 1 << 16
        queues = []
        for i in range(4):
            kern = prog.create_kernel("k")
            a = mcl.context.create_buffer(4 * n)
            b = mcl.context.create_buffer(4 * n)
            kern.set_arg(0, a)
            kern.set_arg(1, b)
            kern.set_arg(2, n)
            q = mcl.queue(
                flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
            )
            for _ in range(8):
                q.enqueue_nd_range_kernel(kern, (n,), (64,))
            queues.append(q)
        for q in queues:
            q.finish()
        return mcl.now

    result = benchmark(run)
    assert result > 0


def test_vectorised_lcg_throughput(benchmark):
    """The O(n log n) NPB generator on a 256k stream."""
    uniforms, _ = benchmark(numerics.vranlc_fast, 1 << 18, 271828183.0)
    assert len(uniforms) == 1 << 18
