"""Performance benchmarks of the library itself (real wall time).

Unlike the figure benches (which regenerate simulated results once), these
measure the *Python* cost of the hot paths — the numbers a user of this
library actually waits on: discrete-event throughput, mapper solve time,
a full scheduled epoch, and the vectorised NPB generator.
"""

import math
import time

import pytest

from repro.core.device_mapper import optimal_mapping
from repro.sim.engine import SimEngine
from repro.sim.resources import FifoResource
from repro.sim.trace import Trace
from repro.workloads.npb import numerics


def test_engine_event_throughput(benchmark):
    """Throughput of the event engine: 10k chained FIFO tasks."""

    def run():
        engine = SimEngine()
        resources = [FifoResource(engine, f"r{i}") for i in range(4)]
        for i in range(10_000):
            engine.task(f"t{i}", 1e-6, resource=resources[i % 4])
        engine.run_until_idle()
        return engine.now

    result = benchmark(run)
    assert result == pytest.approx(2.5e-3)


def test_mapper_solve_8_queues_4_devices(benchmark):
    """Exact mapping for a paper-scale pool (8 queues, 4 devices)."""
    queues = [f"q{i}" for i in range(8)]
    devices = ["cpu", "gpu0", "gpu1", "gpu2"]
    cost = {
        q: {d: 1.0 + ((i * 7 + j * 3) % 5) * 0.37 for j, d in enumerate(devices)}
        for i, q in enumerate(queues)
    }

    result = benchmark(optimal_mapping, queues, devices, cost)
    assert math.isfinite(result.makespan)
    loads = result.device_loads(cost)
    assert max(loads.values()) == pytest.approx(result.makespan)


def test_mapper_solve_32_queues_8_devices(benchmark):
    """Large-pool mapping (32 queues, 8 devices): the greedy fallback path.

    Exact search is exponential at this scale; the documented fallback must
    keep the solve in the low milliseconds.
    """
    queues = [f"q{i}" for i in range(32)]
    devices = [f"d{j}" for j in range(8)]
    cost = {
        q: {d: 1.0 + ((i * 13 + j * 5) % 7) * 0.29 for j, d in enumerate(devices)}
        for i, q in enumerate(queues)
    }

    t0 = time.perf_counter()
    result = benchmark(optimal_mapping, queues, devices, cost)
    elapsed = time.perf_counter() - t0
    assert not result.exact  # above the exact-search threshold
    assert math.isfinite(result.makespan)
    loads = result.device_loads(cost)
    assert max(loads.values()) == pytest.approx(result.makespan)
    # Generous ceiling (covers warmup + all benchmark rounds): a single
    # solve is sub-millisecond, and the acceptance bar is < 100 ms.
    assert elapsed < 5.0


def test_trace_query_throughput(benchmark):
    """Indexed trace queries over a 24k-interval trace.

    Measures the record -> first-query index build plus the per-query cost
    of the category/resource filters and aggregates.
    """
    resources = [f"dev:{i}" for i in range(8)]
    categories = ("kernel", "transfer", "migration")

    def run():
        trace = Trace()
        t = 0.0
        for i in range(24_000):
            r = resources[i % 8]
            c = categories[i % 3]
            trace.record(r, f"t{i}", c, t, t + 1e-6)
            t += 5e-7
        total = 0.0
        for c in categories:
            total += trace.total_time(category=c)
            total += len(trace.filter(category=c)) + trace.count(category=c)
        for r in resources:
            total += trace.total_time(resource=r)
        total += sum(trace.by_resource(category="kernel").values())
        total += sum(trace.counts_by_resource().values())
        return total

    total = benchmark(run)
    assert total > 0


def test_full_scheduled_epoch(benchmark, tmp_path_factory):
    """End-to-end cost of one AUTO_FIT epoch: build, profile, map, issue."""
    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler, SchedFlag

    profile_dir = str(tmp_path_factory.mktemp("perf-profile"))
    src = (
        "// @multicl flops_per_item=100 bytes_per_item=16 writes=1\n"
        "__kernel void k(__global float* a, __global float* b, int n) { }"
    )

    def run():
        mcl = MultiCL(policy=ContextScheduler.AUTO_FIT, profile_dir=profile_dir)
        prog = mcl.context.create_program(src).build()
        n = 1 << 16
        queues = []
        for i in range(4):
            kern = prog.create_kernel("k")
            a = mcl.context.create_buffer(4 * n)
            b = mcl.context.create_buffer(4 * n)
            kern.set_arg(0, a)
            kern.set_arg(1, b)
            kern.set_arg(2, n)
            q = mcl.queue(
                flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
            )
            for _ in range(8):
                q.enqueue_nd_range_kernel(kern, (n,), (64,))
            queues.append(q)
        for q in queues:
            q.finish()
        return mcl.now

    result = benchmark(run)
    assert result > 0


def test_issue_pool_wide(benchmark, tmp_path_factory):
    """Wide-pool issue: 24 auto queues with cross-queue wait events
    (the indegree ready-list in ``Context.issue_pool``)."""
    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler, SchedFlag

    profile_dir = str(tmp_path_factory.mktemp("perf-wide"))
    src = (
        "// @multicl flops_per_item=50 bytes_per_item=8 writes=1\n"
        "__kernel void k(__global float* a, int n) { }"
    )

    def run():
        n = 1 << 12
        mcl = MultiCL(policy=ContextScheduler.AUTO_FIT, profile_dir=profile_dir)
        prog = mcl.context.create_program(src).build()
        queues, events = [], []
        for i in range(24):
            kern = prog.create_kernel("k")
            buf = mcl.context.create_buffer(4 * n)
            kern.set_arg(0, buf)
            kern.set_arg(1, n)
            q = mcl.queue(flags=SchedFlag.SCHED_AUTO_DYNAMIC)
            for j in range(12):
                waits = [events[-1]] if events and (i + j) % 3 == 0 else []
                events.append(
                    q.enqueue_nd_range_kernel(kern, (n,), (64,), wait_events=waits)
                )
            queues.append(q)
        for q in queues:
            q.finish()
        return mcl.now

    result = benchmark(run)
    assert result > 0


def test_overlap_issue(benchmark, tmp_path_factory):
    """Overlap-aware issue of a double-buffered streaming pool under
    ``SCHED_OVERLAP`` (graph build + happens-before validation + ready
    queue), and its makespan win over FIFO issue."""
    import numpy as np

    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler, SchedFlag

    profile_dir = str(tmp_path_factory.mktemp("perf-overlap"))
    src = (
        "// @multicl flops_per_item=200 bytes_per_item=8 writes=1\n"
        "__kernel void s(__global float* a, __global float* b, int n) { }"
    )

    def run(overlap=True):
        n = 1 << 18
        mcl = MultiCL(
            policy=ContextScheduler.AUTO_FIT,
            profile_dir=profile_dir,
            overlap=overlap,
        )
        ctx = mcl.context
        kern = ctx.create_program(src).build().create_kernel("s")
        q = ctx.create_queue(
            sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
        )
        chunks = [
            ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
            for _ in range(2)
        ]
        outs = [
            ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
            for _ in range(2)
        ]
        data = np.ones(n, np.float32)
        res = np.empty(n, np.float32)
        for i in range(8):
            a, b = chunks[i % 2], outs[i % 2]
            q.enqueue_write_buffer(a, data)
            kern.set_arg(0, a)
            kern.set_arg(1, b)
            kern.set_arg(2, n)
            q.enqueue_nd_range_kernel(kern, (n,), (64,))
            q.enqueue_read_buffer(b, res)
        q.finish()
        return mcl.now

    run()  # warm the on-disk profile cache so both variants skip profiling
    overlapped = benchmark(run)
    assert 0 < overlapped < run(overlap=False)


def test_split_epoch(benchmark, tmp_path_factory):
    """SCHED_SPLIT epoch: plan + issue of kernel epochs partitioned across
    all three stock devices, merging join included."""
    import numpy as np

    from repro.core.runtime import MultiCL
    from repro.ocl.enums import ContextScheduler, SchedFlag

    profile_dir = str(tmp_path_factory.mktemp("perf-split"))
    src = (
        "// @multicl flops_per_item=400 bytes_per_item=8 writes=1\n"
        "__kernel void w(__global float* a, __global float* b, int n) { }"
    )

    def run():
        n = 1 << 18
        mcl = MultiCL(
            policy=ContextScheduler.AUTO_FIT,
            profile_dir=profile_dir,
            split=True,
        )
        ctx = mcl.context
        kern = ctx.create_program(src).build().create_kernel("w")
        q = ctx.create_queue(
            sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
        )
        a = ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
        b = ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
        q.enqueue_write_buffer(a, np.ones(n, np.float32))
        kern.set_arg(0, a)
        kern.set_arg(1, b)
        kern.set_arg(2, n)
        for _ in range(4):
            q.enqueue_nd_range_kernel(kern, (n,), (64,))
        q.finish()
        split_joins = sum(
            1 for iv in mcl.engine.trace if iv.task.startswith("split-join:")
        )
        return mcl.now if split_joins else -1.0

    result = benchmark(run)
    assert result > 0  # split engaged and the epochs completed


def test_vectorised_lcg_throughput(benchmark):
    """The O(n log n) NPB generator on a 256k stream."""
    uniforms, _ = benchmark(numerics.vranlc_fast, 1 << 18, 271828183.0)
    assert len(uniforms) == 1 << 18
