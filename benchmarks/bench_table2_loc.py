"""Table II and Section VI.C — configurations and lines-of-code claims."""

from repro.bench.figures import loc, table2


def test_table2_configurations(run_once):
    result = run_once(table2, fast=True)
    rows = {r["benchmark"]: r for r in result.rows}
    assert set(rows) == {"BT", "CG", "EP", "FT", "MG", "SP"}
    # Queue-count restrictions from the paper's Table II.
    assert rows["BT"]["queues"].startswith("Square")
    assert rows["SP"]["queues"].startswith("Square")
    assert rows["CG"]["queues"].startswith("Power of 2")
    assert rows["EP"]["queues"].startswith("Any")
    # Scheduler options: EP is the epoch/compute-bound outlier.
    assert "SCHED_COMPUTE_BOUND" in rows["EP"]["scheduler_options"]
    assert "SCHED_KERNEL_EPOCH" in rows["EP"]["scheduler_options"]
    for name in ("BT", "CG", "FT", "MG", "SP"):
        assert "SCHED_EXPLICIT_REGION" in rows[name]["scheduler_options"]
    # BT and FT additionally use clSetKernelWorkGroupInfo.
    assert "clSetKernelWorkGroupInfo" in rows["BT"]["scheduler_options"]
    assert "clSetKernelWorkGroupInfo" in rows["FT"]["scheduler_options"]


def test_loc_changed_lines(run_once):
    result = run_once(loc, fast=True)
    lines = result.column("lines")
    # "on average, users have to apply our proposed scheduler extensions to
    # only four source lines of code"
    avg = sum(lines) / len(lines)
    assert 2.0 <= avg <= 5.0, avg
    assert max(lines) <= 6


def test_table1_api_surface(run_once):
    from repro.bench.figures import table1

    result = run_once(table1, fast=True)
    fns = result.column("cl_function")
    assert "clCreateContext" in fns
    assert "clSetCommandQueueSchedProperty" in fns
    assert "clSetKernelWorkGroupInfo" in fns
    ctx_row = result.row_for(cl_function="clCreateContext")
    assert "ROUND_ROBIN" in ctx_row["options"] and "AUTO_FIT" in ctx_row["options"]
    queue_row = result.row_for(cl_function="clCreateCommandQueue")
    for flag in ("SCHED_AUTO_STATIC", "SCHED_AUTO_DYNAMIC", "SCHED_KERNEL_EPOCH",
                 "SCHED_EXPLICIT_REGION", "SCHED_ITERATIVE",
                 "SCHED_COMPUTE_BOUND", "SCHED_IO_BOUND", "SCHED_MEMORY_BOUND"):
        assert flag in queue_row["options"], flag
