"""Shared fixtures for the benchmark harness.

Each bench regenerates one of the paper's tables/figures in fast mode and
asserts its headline shape claim, so ``pytest benchmarks/ --benchmark-only``
doubles as a reproduction smoke test.  Experiments share one on-disk device
profile cache (via :mod:`repro.bench.figures`), so only the first bench
pays for the static device profiling.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — repeated rounds would
    measure the same virtual work — so a single round keeps the suite fast
    while still recording wall-time per figure.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )

    return _run
