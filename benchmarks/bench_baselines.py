"""Related-work baseline: epoch vs kernel scheduling granularity."""

from repro.bench.figures import baselines


def test_scheduling_granularity_contrast(run_once):
    result = run_once(baselines, fast=True)

    def row(workload, policy):
        return result.row_for(workload=workload, policy=policy)

    epoch = row("coherent queues", "MultiCL AUTO_FIT (epochs)")
    kernel = row("coherent queues", "SOCL-style (per kernel)")
    rr = row("coherent queues", "Round robin")
    # The paper's regime: epoch batching matches per-kernel quality...
    assert epoch["seconds"] <= kernel["seconds"] * 1.05
    # ...with an order of magnitude fewer scheduling decisions...
    assert epoch["decisions"] * 8 <= kernel["decisions"]
    # ...and fewer migrations; both beat affinity-blind round-robin.
    assert epoch["migrations"] <= kernel["migrations"]
    assert epoch["seconds"] < rr["seconds"]
    # Mixed queues: per-kernel placement ping-pongs (many migrations).
    mixed_kernel = row("mixed queues", "SOCL-style (per kernel)")
    assert mixed_kernel["migrations"] > kernel["migrations"]
