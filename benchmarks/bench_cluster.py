"""Extension bench: MultiCL over SnuCL cluster mode."""

from repro.bench.figures import cluster


def test_cluster_scheduling(run_once):
    result = run_once(cluster, fast=True)

    def row(workload, platform):
        return result.row_for(workload=workload, platform=platform)

    # Compute-heavy pools get faster by borrowing remote GPUs...
    single = row("compute-heavy", "single node")
    clustered = row("compute-heavy", "two-node cluster")
    assert clustered["remote_queues"] >= 1
    assert clustered["seconds"] < single["seconds"]
    # ...while bandwidth-bound pools never cross the network.
    assert row("bandwidth-bound", "two-node cluster")["remote_queues"] == 0
