"""Fault recovery — makespan degradation vs failed-device fraction.

A four-GPU node runs the same iterative doubling workload while a
:class:`~repro.sim.faults.FaultPlan` permanently kills 0 %, 25 %, 50 % or
75 % of the devices mid-run.  Recovery (requeue + profile invalidation +
degraded-pool rescheduling) must keep the run correct at every point, and
the makespan must grow monotonically as survivors shrink — the work is
fixed, the pool is not.

Run standalone for the full table:  python benchmarks/bench_fault_recovery.py
"""

import tempfile

import numpy as np
from dataclasses import replace

from repro.core.runtime import MultiCL
from repro.hardware.presets import TESLA_C2050
from repro.hardware.specs import LinkSpec, NodeSpec
from repro.ocl.enums import ContextScheduler, SchedFlag
from repro.sim.faults import FaultPlan

PROGRAM = """
// @multicl flops_per_item=220 bytes_per_item=8 writes=1
__kernel void scale(__global float* a, int n) {
  int i = get_global_id(0);
  a[i] = a[i] * 2.0f;
}
"""

N = 1 << 20
GPUS = 4
EPOCHS = 6
WARMUP_EPOCHS = 2
FRACTIONS = (0.0, 0.25, 0.5, 0.75)

#: One shared on-disk device-profile cache: only the first sweep point pays
#: for the (simulated) device microbenchmarks.
_CACHE = tempfile.mkdtemp(prefix="multicl-fault-bench-")


def quad_gpu_node() -> NodeSpec:
    names = [f"gpu{i}" for i in range(GPUS)]
    return NodeSpec(
        name="quad-gpu",
        devices=tuple(replace(TESLA_C2050, name=n, socket=0) for n in names),
        host_links={
            n: LinkSpec(name=f"pcie-{n}", latency_s=15e-6, bandwidth_gbs=6.0)
            for n in names
        },
    )


def _run_point(fraction: float) -> dict:
    mcl = MultiCL(
        node_spec=quad_gpu_node(),
        policy=ContextScheduler.AUTO_FIT,
        profile_dir=_CACHE,
    )
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()
    flags = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
    queues, kernels, bufs = [], [], []
    for i in range(GPUS):
        buf = ctx.create_buffer(4 * N, host_array=np.ones(N, np.float32), name=f"a{i}")
        k = program.create_kernel("scale")
        k.set_arg(0, buf)
        k.set_arg(1, N)
        k.set_host_function(lambda args: args["a"].__imul__(2.0))
        queues.append(mcl.queue(flags=flags, name=f"q{i}"))
        kernels.append(k)
        bufs.append(buf)

    def epoch() -> None:
        for q, k in zip(queues, kernels):
            q.enqueue_nd_range_kernel(k, (N,), (128,))
        for q in queues:
            q.finish()

    t0 = mcl.now
    for _ in range(WARMUP_EPOCHS):
        epoch()

    failed = round(fraction * GPUS)
    if failed:
        plan = FaultPlan()
        for i in range(failed):
            # Stagger the deaths so each lands mid-kernel of the next epoch.
            plan.fail_device(f"gpu{GPUS - 1 - i}", at=mcl.now + (i + 1) * 2e-4)
        injector = mcl.inject_faults(plan)
    else:
        injector = None
    for _ in range(EPOCHS - WARMUP_EPOCHS):
        epoch()

    makespan = mcl.now - t0
    stats = mcl.stats_between(t0, mcl.now)
    correct = all(bool(np.all(b.array == float(2**EPOCHS))) for b in bufs)
    return {
        "fraction": fraction,
        "failed_devices": failed,
        "makespan_s": makespan,
        "replayed": injector.replayed_commands if injector else 0,
        "remapped": injector.remapped_queues if injector else 0,
        "downtime_s": stats.downtime_seconds,
        "correct": correct,
    }


def run_fault_sweep(fractions=FRACTIONS):
    return [_run_point(f) for f in fractions]


def test_fault_recovery_sweep(run_once):
    rows = run_once(run_fault_sweep)
    assert [r["fraction"] for r in rows] == list(FRACTIONS)
    # Recovery keeps every point correct (exactly-once numerics).
    assert all(r["correct"] for r in rows)
    # Makespan grows monotonically as the survivor pool shrinks.
    spans = [r["makespan_s"] for r in rows]
    for a, b in zip(spans, spans[1:]):
        assert b > a, (a, b)
    # Every degraded point actually exercised the recovery path.
    for r in rows[1:]:
        assert r["replayed"] >= 1 and r["downtime_s"] > 0.0, r
    assert rows[0]["replayed"] == 0 and rows[0]["downtime_s"] == 0.0


if __name__ == "__main__":
    print(f"{'failed':>8} {'makespan':>12} {'replayed':>9} "
          f"{'remapped':>9} {'downtime':>11} {'correct':>8}")
    for r in run_fault_sweep():
        print(
            f"{r['fraction']:>7.0%} {r['makespan_s'] * 1e3:>9.2f} ms "
            f"{r['replayed']:>9d} {r['remapped']:>9d} "
            f"{r['downtime_s'] * 1e3:>8.2f} ms {str(r['correct']):>8}"
        )
