"""Fig. 3 — single-device CPU vs GPU relative execution times."""

from repro.bench.figures import FIG3_PAPER_RATIOS, fig3


def test_fig3_relative_execution(run_once):
    result = run_once(fig3, fast=True)
    ratios = {r["benchmark"]: r["gpu_over_cpu"] for r in result.rows}
    # Headline shape: CPU wins everything except EP; EP wins on the GPU.
    for name, ratio in ratios.items():
        if name == "EP":
            assert ratio < 1.0, f"EP should be GPU-favoured, got {ratio:.2f}"
        else:
            assert ratio > 1.0, f"{name} should be CPU-favoured, got {ratio:.2f}"
    # Ordering of CPU advantage roughly matches the paper: BT/MG worst on
    # GPU, FT mildest.
    assert ratios["FT"] < ratios["BT"]
    assert ratios["FT"] < ratios["MG"]
    # Each ratio within a factor ~1.6 of the paper's bar (fast classes).
    for name, ratio in ratios.items():
        paper = FIG3_PAPER_RATIOS[name]
        assert 0.5 < ratio / paper < 2.0, (name, ratio, paper)
