"""Fig. 8 — impact of minikernel profiling for the EP benchmark."""

from repro.bench.figures import fig8


def test_fig8_minikernel_profiling(run_once):
    result = run_once(fig8, fast=True)
    classes = sorted({r["class"] for r in result.rows})
    for pc in classes:
        mini = result.row_for(**{"class": pc, "mode": "minikernel"})
        full = result.row_for(**{"class": pc, "mode": "full kernel"})
        # Minikernel profiling is dramatically cheaper than full-kernel
        # profiling at every class.
        assert mini["profiling_overhead_pct"] < full["profiling_overhead_pct"]
        # And stays a small overhead in absolute terms (paper: ~3%).
        assert mini["profiling_overhead_pct"] < 10.0, (pc, mini)
    # Full-kernel overhead grows with the problem class (paper: up to ~20x,
    # because the whole kernel runs on the 20x-slower CPU during profiling).
    fulls = [
        result.row_for(**{"class": pc, "mode": "full kernel"})[
            "profiling_overhead_pct"
        ]
        for pc in ("S", "W", "A")
    ]
    assert fulls[0] < fulls[-1]
