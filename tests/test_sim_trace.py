"""Trace accounting used by the evaluation harness."""

import pytest

from repro.sim.trace import Trace, TraceInterval


@pytest.fixture
def trace():
    t = Trace()
    t.record("dev:cpu", "k1", "kernel", 0.0, 1.0)
    t.record("dev:gpu0", "k2", "kernel", 0.0, 2.0)
    t.record("dev:cpu", "k3", "kernel", 1.0, 1.5)
    t.record("link:pcie", "x1", "transfer", 0.5, 0.9, {"bytes": 100})
    t.record("dev:gpu0", "p1", "profile-kernel", 2.0, 2.7)
    return t


def test_len(trace):
    assert len(trace) == 5


def test_filter_by_resource(trace):
    assert len(trace.filter(resource="dev:cpu")) == 2


def test_filter_by_category(trace):
    assert len(trace.filter(category="kernel")) == 3


def test_filter_combined(trace):
    ivs = trace.filter(resource="dev:gpu0", category="kernel")
    assert len(ivs) == 1 and ivs[0].task == "k2"


def test_filter_predicate(trace):
    ivs = trace.filter(predicate=lambda iv: iv.duration > 0.9)
    assert {iv.task for iv in ivs} == {"k1", "k2"}


def test_total_time(trace):
    assert trace.total_time(category="kernel") == pytest.approx(3.5)
    assert trace.total_time("dev:cpu") == pytest.approx(1.5)


def test_count(trace):
    assert trace.count(category="transfer") == 1


def test_resources_and_categories_sorted(trace):
    assert trace.resources() == ["dev:cpu", "dev:gpu0", "link:pcie"]
    assert trace.categories() == ["kernel", "profile-kernel", "transfer"]


def test_by_resource(trace):
    by = trace.by_resource(category="kernel")
    assert by == {"dev:cpu": pytest.approx(1.5), "dev:gpu0": pytest.approx(2.0)}


def test_counts_by_resource(trace):
    assert trace.counts_by_resource(category="kernel") == {
        "dev:cpu": 2,
        "dev:gpu0": 1,
    }


def test_between_uses_start_time(trace):
    ivs = trace.between(0.5, 1.5)
    assert {iv.task for iv in ivs} == {"x1", "k3"}


def test_meta_preserved(trace):
    iv = trace.filter(category="transfer")[0]
    assert iv.meta["bytes"] == 100


def test_marks():
    t = Trace()
    t.mark(1.0, "epoch:1")
    t.mark(2.0, "epoch:2")
    assert t.marks == [(1.0, "epoch:1"), (2.0, "epoch:2")]


def test_interval_duration():
    iv = TraceInterval("r", "t", "c", 1.0, 3.5)
    assert iv.duration == pytest.approx(2.5)


def test_extend():
    t = Trace()
    t.extend([TraceInterval("r", "t", "c", 0.0, 1.0)])
    assert len(t) == 1


# ---------------------------------------------------------------------------
# Index consistency: the lazily-maintained indexes must answer every query
# identically to a straight linear scan, at every point of an interleaved
# record/query/extend sequence.
# ---------------------------------------------------------------------------


class _LinearScanTrace:
    """Reference implementation: every query is a full O(n) scan."""

    def __init__(self):
        self.intervals = []

    def record(self, resource, task, category, start, end, meta=None):
        self.intervals.append(
            TraceInterval(resource, task, category, start, end, meta or {})
        )

    def extend(self, intervals):
        self.intervals.extend(intervals)

    def filter(self, resource=None, category=None):
        return [
            iv
            for iv in self.intervals
            if (resource is None or iv.resource == resource)
            and (category is None or iv.category == category)
        ]

    def total_time(self, resource=None, category=None):
        return sum(iv.duration for iv in self.filter(resource, category))

    def count(self, resource=None, category=None):
        return len(self.filter(resource, category))

    def resources(self):
        return sorted({iv.resource for iv in self.intervals})

    def categories(self):
        return sorted({iv.category for iv in self.intervals})

    def by_resource(self, category=None):
        out = {}
        for iv in self.filter(category=category):
            out[iv.resource] = out.get(iv.resource, 0.0) + iv.duration
        return out

    def counts_by_resource(self, category=None):
        out = {}
        for iv in self.filter(category=category):
            out[iv.resource] = out.get(iv.resource, 0) + 1
        return out


def _assert_matches_reference(trace, ref):
    resources = ref.resources()
    categories = ref.categories()
    assert trace.resources() == resources
    assert trace.categories() == categories
    assert len(trace) == len(ref.intervals)
    for r in resources + [None, "never-seen"]:
        for c in categories + [None, "never-seen"]:
            assert trace.filter(resource=r, category=c) == ref.filter(r, c), (
                f"filter mismatch for resource={r!r} category={c!r}"
            )
            assert trace.total_time(resource=r, category=c) == pytest.approx(
                ref.total_time(r, c)
            )
            assert trace.count(resource=r, category=c) == ref.count(r, c)
    for c in categories + [None]:
        assert trace.by_resource(category=c) == pytest.approx(
            ref.by_resource(category=c)
        )
        assert trace.counts_by_resource(category=c) == ref.counts_by_resource(
            category=c
        )


def test_indexes_match_linear_scan_under_interleaving():
    """Record bursts interleaved with queries and bulk extends: the indexed
    trace must agree with the reference scan after every burst (queries must
    not miss intervals appended since the previous catch-up)."""
    trace = Trace()
    ref = _LinearScanTrace()
    resources = ["dev:cpu", "dev:gpu0", "dev:gpu1", "link:pcie"]
    categories = ["kernel", "transfer", "profile-kernel", "migration"]
    t = 0.0
    n = 0
    for burst, size in enumerate((7, 1, 13, 4, 29, 2)):
        for _ in range(size):
            r = resources[n % len(resources)]
            c = categories[(n * 5 + burst) % len(categories)]
            dur = 0.25 + (n % 6) * 0.125
            for tr in (trace, ref):
                tr.record(r, f"t{n}", c, t, t + dur, {"i": n})
            t += dur * 0.5
            n += 1
        # A bulk extend in the middle exercises the non-record append path.
        if burst == 2:
            batch = [
                TraceInterval("dev:ext", f"b{i}", "kernel", t + i, t + i + 0.5)
                for i in range(3)
            ]
            trace.extend(batch)
            ref.extend(batch)
        _assert_matches_reference(trace, ref)
    # Queries on a fully-caught-up trace, then one more append: the next
    # query must pick up the straggler.
    trace.record("dev:cpu", "last", "kernel", t, t + 1.0)
    ref.record("dev:cpu", "last", "kernel", t, t + 1.0)
    _assert_matches_reference(trace, ref)
