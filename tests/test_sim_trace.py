"""Trace accounting used by the evaluation harness."""

import pytest

from repro.sim.trace import Trace, TraceInterval


@pytest.fixture
def trace():
    t = Trace()
    t.record("dev:cpu", "k1", "kernel", 0.0, 1.0)
    t.record("dev:gpu0", "k2", "kernel", 0.0, 2.0)
    t.record("dev:cpu", "k3", "kernel", 1.0, 1.5)
    t.record("link:pcie", "x1", "transfer", 0.5, 0.9, {"bytes": 100})
    t.record("dev:gpu0", "p1", "profile-kernel", 2.0, 2.7)
    return t


def test_len(trace):
    assert len(trace) == 5


def test_filter_by_resource(trace):
    assert len(trace.filter(resource="dev:cpu")) == 2


def test_filter_by_category(trace):
    assert len(trace.filter(category="kernel")) == 3


def test_filter_combined(trace):
    ivs = trace.filter(resource="dev:gpu0", category="kernel")
    assert len(ivs) == 1 and ivs[0].task == "k2"


def test_filter_predicate(trace):
    ivs = trace.filter(predicate=lambda iv: iv.duration > 0.9)
    assert {iv.task for iv in ivs} == {"k1", "k2"}


def test_total_time(trace):
    assert trace.total_time(category="kernel") == pytest.approx(3.5)
    assert trace.total_time("dev:cpu") == pytest.approx(1.5)


def test_count(trace):
    assert trace.count(category="transfer") == 1


def test_resources_and_categories_sorted(trace):
    assert trace.resources() == ["dev:cpu", "dev:gpu0", "link:pcie"]
    assert trace.categories() == ["kernel", "profile-kernel", "transfer"]


def test_by_resource(trace):
    by = trace.by_resource(category="kernel")
    assert by == {"dev:cpu": pytest.approx(1.5), "dev:gpu0": pytest.approx(2.0)}


def test_counts_by_resource(trace):
    assert trace.counts_by_resource(category="kernel") == {
        "dev:cpu": 2,
        "dev:gpu0": 1,
    }


def test_between_uses_start_time(trace):
    ivs = trace.between(0.5, 1.5)
    assert {iv.task for iv in ivs} == {"x1", "k3"}


def test_meta_preserved(trace):
    iv = trace.filter(category="transfer")[0]
    assert iv.meta["bytes"] == 100


def test_marks():
    t = Trace()
    t.mark(1.0, "epoch:1")
    t.mark(2.0, "epoch:2")
    assert t.marks == [(1.0, "epoch:1"), (2.0, "epoch:2")]


def test_interval_duration():
    iv = TraceInterval("r", "t", "c", 1.0, 3.5)
    assert iv.duration == pytest.approx(2.5)


def test_extend():
    t = Trace()
    t.extend([TraceInterval("r", "t", "c", 0.0, 1.0)])
    assert len(t) == 1
