"""Trace accounting used by the evaluation harness."""

import pytest

from repro.sim.trace import Trace, TraceInterval, TraceSink


@pytest.fixture
def trace():
    t = Trace()
    t.record("dev:cpu", "k1", "kernel", 0.0, 1.0)
    t.record("dev:gpu0", "k2", "kernel", 0.0, 2.0)
    t.record("dev:cpu", "k3", "kernel", 1.0, 1.5)
    t.record("link:pcie", "x1", "transfer", 0.5, 0.9, {"bytes": 100})
    t.record("dev:gpu0", "p1", "profile-kernel", 2.0, 2.7)
    return t


def test_len(trace):
    assert len(trace) == 5


def test_filter_by_resource(trace):
    assert len(trace.filter(resource="dev:cpu")) == 2


def test_filter_by_category(trace):
    assert len(trace.filter(category="kernel")) == 3


def test_filter_combined(trace):
    ivs = trace.filter(resource="dev:gpu0", category="kernel")
    assert len(ivs) == 1 and ivs[0].task == "k2"


def test_filter_predicate(trace):
    ivs = trace.filter(predicate=lambda iv: iv.duration > 0.9)
    assert {iv.task for iv in ivs} == {"k1", "k2"}


def test_total_time(trace):
    assert trace.total_time(category="kernel") == pytest.approx(3.5)
    assert trace.total_time("dev:cpu") == pytest.approx(1.5)


def test_count(trace):
    assert trace.count(category="transfer") == 1


def test_resources_and_categories_sorted(trace):
    assert trace.resources() == ["dev:cpu", "dev:gpu0", "link:pcie"]
    assert trace.categories() == ["kernel", "profile-kernel", "transfer"]


def test_by_resource(trace):
    by = trace.by_resource(category="kernel")
    assert by == {"dev:cpu": pytest.approx(1.5), "dev:gpu0": pytest.approx(2.0)}


def test_counts_by_resource(trace):
    assert trace.counts_by_resource(category="kernel") == {
        "dev:cpu": 2,
        "dev:gpu0": 1,
    }


def test_between_uses_start_time(trace):
    ivs = trace.between(0.5, 1.5)
    assert {iv.task for iv in ivs} == {"x1", "k3"}


def test_meta_preserved(trace):
    iv = trace.filter(category="transfer")[0]
    assert iv.meta["bytes"] == 100


def test_marks():
    t = Trace()
    t.mark(1.0, "epoch:1")
    t.mark(2.0, "epoch:2")
    assert t.marks == [(1.0, "epoch:1"), (2.0, "epoch:2")]


def test_interval_duration():
    iv = TraceInterval("r", "t", "c", 1.0, 3.5)
    assert iv.duration == pytest.approx(2.5)


def test_extend():
    t = Trace()
    t.extend([TraceInterval("r", "t", "c", 0.0, 1.0)])
    assert len(t) == 1


# ---------------------------------------------------------------------------
# Index consistency: the lazily-maintained indexes must answer every query
# identically to a straight linear scan, at every point of an interleaved
# record/query/extend sequence.
# ---------------------------------------------------------------------------


class _LinearScanTrace:
    """Reference implementation: every query is a full O(n) scan."""

    def __init__(self):
        self.intervals = []

    def record(self, resource, task, category, start, end, meta=None):
        self.intervals.append(
            TraceInterval(resource, task, category, start, end, meta or {})
        )

    def extend(self, intervals):
        self.intervals.extend(intervals)

    def filter(self, resource=None, category=None):
        return [
            iv
            for iv in self.intervals
            if (resource is None or iv.resource == resource)
            and (category is None or iv.category == category)
        ]

    def total_time(self, resource=None, category=None):
        return sum(iv.duration for iv in self.filter(resource, category))

    def count(self, resource=None, category=None):
        return len(self.filter(resource, category))

    def resources(self):
        return sorted({iv.resource for iv in self.intervals})

    def categories(self):
        return sorted({iv.category for iv in self.intervals})

    def by_resource(self, category=None):
        out = {}
        for iv in self.filter(category=category):
            out[iv.resource] = out.get(iv.resource, 0.0) + iv.duration
        return out

    def counts_by_resource(self, category=None):
        out = {}
        for iv in self.filter(category=category):
            out[iv.resource] = out.get(iv.resource, 0) + 1
        return out


def _assert_matches_reference(trace, ref):
    resources = ref.resources()
    categories = ref.categories()
    assert trace.resources() == resources
    assert trace.categories() == categories
    assert len(trace) == len(ref.intervals)
    for r in resources + [None, "never-seen"]:
        for c in categories + [None, "never-seen"]:
            assert trace.filter(resource=r, category=c) == ref.filter(r, c), (
                f"filter mismatch for resource={r!r} category={c!r}"
            )
            assert trace.total_time(resource=r, category=c) == pytest.approx(
                ref.total_time(r, c)
            )
            assert trace.count(resource=r, category=c) == ref.count(r, c)
    for c in categories + [None]:
        assert trace.by_resource(category=c) == pytest.approx(
            ref.by_resource(category=c)
        )
        assert trace.counts_by_resource(category=c) == ref.counts_by_resource(
            category=c
        )


def test_indexes_match_linear_scan_under_interleaving():
    """Record bursts interleaved with queries and bulk extends: the indexed
    trace must agree with the reference scan after every burst (queries must
    not miss intervals appended since the previous catch-up)."""
    trace = Trace()
    ref = _LinearScanTrace()
    resources = ["dev:cpu", "dev:gpu0", "dev:gpu1", "link:pcie"]
    categories = ["kernel", "transfer", "profile-kernel", "migration"]
    t = 0.0
    n = 0
    for burst, size in enumerate((7, 1, 13, 4, 29, 2)):
        for _ in range(size):
            r = resources[n % len(resources)]
            c = categories[(n * 5 + burst) % len(categories)]
            dur = 0.25 + (n % 6) * 0.125
            for tr in (trace, ref):
                tr.record(r, f"t{n}", c, t, t + dur, {"i": n})
            t += dur * 0.5
            n += 1
        # A bulk extend in the middle exercises the non-record append path.
        if burst == 2:
            batch = [
                TraceInterval("dev:ext", f"b{i}", "kernel", t + i, t + i + 0.5)
                for i in range(3)
            ]
            trace.extend(batch)
            ref.extend(batch)
        _assert_matches_reference(trace, ref)
    # Queries on a fully-caught-up trace, then one more append: the next
    # query must pick up the straggler.
    trace.record("dev:cpu", "last", "kernel", t, t + 1.0)
    ref.record("dev:cpu", "last", "kernel", t, t + 1.0)
    _assert_matches_reference(trace, ref)


# ---------------------------------------------------------------------------
# between(): the bisect fast path (n >= 64) must answer identically to the
# linear-scan reference, including with starts out of recording order.
# ---------------------------------------------------------------------------


def _between_reference(intervals, t0, t1):
    return [iv for iv in intervals if t0 <= iv.start < t1]


def _build_unsorted_start_trace(n):
    """Record order != start order: long tasks started early finish late."""
    trace = Trace()
    recorded = []
    for i in range(n):
        # Starts bounce around: 0.0, 9.7, 0.2, 9.5, ... (not monotone).
        start = (9.7 - 0.2 * i) if i % 2 else 0.1 * i
        iv = TraceInterval(f"dev:{i % 3}", f"t{i}", "kernel", start, start + 0.3)
        trace.record(iv.resource, iv.task, iv.category, iv.start, iv.end)
        recorded.append(iv)
    return trace, recorded


def test_between_bisect_matches_linear_scan_golden():
    trace, recorded = _build_unsorted_start_trace(120)
    assert len(trace) >= 64  # large enough to take the bisect path
    windows = [
        (0.0, 12.0),   # everything
        (2.0, 5.0),
        (4.999, 5.0),  # half-open: start == t1 excluded
        (5.0, 5.0),    # empty window
        (-3.0, 0.05),
        (11.0, 50.0),
        (0.3, 9.31),
    ]
    for t0, t1 in windows:
        assert trace.between(t0, t1) == _between_reference(recorded, t0, t1)


def test_between_index_rebuilds_after_appends():
    trace, recorded = _build_unsorted_start_trace(80)
    before = trace.between(0.0, 100.0)  # builds the index at n=80
    assert before == _between_reference(recorded, 0.0, 100.0)
    # Append more with starts far earlier than everything resident: a stale
    # index would miss them.
    for i in range(10):
        iv = TraceInterval("dev:new", f"n{i}", "kernel", -50.0 - i, -49.5 - i)
        trace.record(iv.resource, iv.task, iv.category, iv.start, iv.end)
        recorded.append(iv)
    assert trace.between(-100.0, -40.0) == _between_reference(
        recorded, -100.0, -40.0
    )
    assert trace.between(0.0, 100.0) == before


def test_between_small_trace_uses_same_semantics(trace):
    # Below the bisect threshold: plain scan, same half-open contract.
    assert trace.between(0.0, 1.0) == _between_reference(list(trace), 0.0, 1.0)
    assert trace.between(1.0, 1.0) == []


# ---------------------------------------------------------------------------
# Streaming sink: flat resident memory, exact whole-run aggregates.
# ---------------------------------------------------------------------------


class _CollectingSink(TraceSink):
    def __init__(self):
        self.batches = []
        self.closed = False

    def consume(self, intervals):
        self.batches.append(intervals)

    def close(self):
        self.closed = True


def _record_n(trace, n, offset=0):
    for i in range(offset, offset + n):
        trace.record(f"dev:{i % 2}", f"t{i}", "kernel", float(i), i + 0.5)


def test_attach_sink_validation():
    trace = Trace()
    with pytest.raises(ValueError, match="spill_every"):
        trace.attach_sink(_CollectingSink(), spill_every=0)
    trace.attach_sink(_CollectingSink(), spill_every=4)
    with pytest.raises(ValueError, match="already has a sink"):
        trace.attach_sink(_CollectingSink())


def test_streaming_spills_keep_resident_bounded():
    trace = Trace()
    sink = _CollectingSink()
    trace.attach_sink(sink, spill_every=8)
    _record_n(trace, 30)
    assert len(trace) < 8  # resident tail never reaches the threshold
    assert trace.spilled_count == 24
    assert trace.total_recorded == 30
    assert [len(b) for b in sink.batches] == [8, 8, 8]
    # Nothing lost and nothing duplicated, in recording order.
    spilled_tasks = [iv.task for b in sink.batches for iv in b]
    resident_tasks = [iv.task for iv in trace]
    assert spilled_tasks + resident_tasks == [f"t{i}" for i in range(30)]


def test_streaming_aggregates_stay_exact_across_spills():
    streaming, resident = Trace(), Trace()
    streaming.attach_sink(_CollectingSink(), spill_every=5)
    for t in (streaming, resident):
        _record_n(t, 43)
    # Whole-run accounting answers identically even though the streaming
    # trace only holds the tail resident.
    assert streaming.total_time() == pytest.approx(resident.total_time())
    assert streaming.count() == resident.count() == 43
    assert streaming.by_resource() == pytest.approx(resident.by_resource())
    assert streaming.counts_by_resource() == resident.counts_by_resource()
    assert streaming.total_time("dev:0", "kernel") == pytest.approx(
        resident.total_time("dev:0", "kernel")
    )
    # Per-interval queries cover the resident tail only, by contract.
    assert len(streaming) < 5 < len(resident)


def test_streaming_spill_after_queries_preserves_aggregates():
    # A query between spills indexes the resident prefix; the next spill
    # must not double-count those already-aggregated intervals.
    trace = Trace()
    trace.attach_sink(_CollectingSink(), spill_every=10)
    _record_n(trace, 7)
    assert trace.count() == 7  # forces indexing of the resident 7
    _record_n(trace, 7, offset=7)  # crosses the threshold -> spill
    assert trace.spilled_count >= 10
    assert trace.count() == 14
    assert trace.total_time() == pytest.approx(0.5 * 14)


def test_flush_spills_tail_and_close_is_callers_job():
    trace = Trace()
    sink = _CollectingSink()
    trace.attach_sink(sink, spill_every=100)
    _record_n(trace, 9)
    assert trace.spilled_count == 0
    trace.flush()
    assert trace.spilled_count == 9
    assert len(trace) == 0
    assert trace.total_recorded == 9
    trace.flush()  # idempotent on an empty tail
    assert trace.spilled_count == 9
    assert not sink.closed
    sink.close()
    assert sink.closed


def test_flush_noop_without_sink(trace):
    trace.flush()
    assert len(trace) == 5
    assert trace.spilled_count == 0
    assert trace.total_recorded == 5


def test_extend_triggers_spill():
    trace = Trace()
    sink = _CollectingSink()
    trace.attach_sink(sink, spill_every=4)
    trace.extend(
        TraceInterval("r", f"t{i}", "c", float(i), i + 1.0) for i in range(6)
    )
    assert trace.spilled_count == 6
    assert len(trace) == 0
    assert trace.count() == 6
