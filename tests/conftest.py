"""Shared fixtures.

``profile_dir`` gives every test session one on-disk device-profile cache,
so only the first platform creation pays for the (simulated) device
microbenchmarks; tests asserting cold-cache behaviour make their own tmp
dirs.
"""

import pytest

from repro.core.runtime import MultiCL
from repro.hardware.presets import aji_cluster15_node
from repro.hardware.topology import SimNode
from repro.ocl.enums import ContextScheduler
from repro.ocl.platform import Platform
from repro.sim.engine import SimEngine


@pytest.fixture(scope="session")
def profile_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("multicl-profile-cache"))


@pytest.fixture
def engine():
    return SimEngine()


@pytest.fixture
def node(engine):
    return SimNode(engine, aji_cluster15_node())


@pytest.fixture
def platform(profile_dir):
    return Platform(profile=True, profile_dir=profile_dir)


@pytest.fixture
def bare_platform():
    """Platform without device profiling (pure OpenCL-layer tests)."""
    return Platform(profile=False)


@pytest.fixture
def manual_context(bare_platform):
    return bare_platform.create_context()


@pytest.fixture
def autofit(profile_dir):
    return MultiCL(policy=ContextScheduler.AUTO_FIT, profile_dir=profile_dir)


@pytest.fixture
def roundrobin(profile_dir):
    return MultiCL(policy=ContextScheduler.ROUND_ROBIN, profile_dir=profile_dir)
