"""Toy OpenCL-C source parsing and manipulation."""

import pytest
from hypothesis import given, strategies as st

from repro.ocl.errors import BuildProgramFailure
from repro.ocl.source import (
    KernelArg,
    insert_after_body_open,
    parse_program_source,
)

SRC = """
// a stray comment
// @multicl flops_per_item=12.5 bytes_per_item=48 divergence=0.3 writes=1
__kernel void alpha(__global float* in, __global float* out, int n) {
  out[get_global_id(0)] = in[get_global_id(0)];
}

/* block comment */
// @multicl flops_per_item=7 gpu_eff=0.2
__kernel void beta(__global double* a, __local float* scratch, float s) {
  a[0] = s;
}

__kernel void gamma(__global int* flags) { flags[0] = 1; }
"""


def test_finds_all_kernels():
    infos = parse_program_source(SRC)
    assert [k.name for k in infos] == ["alpha", "beta", "gamma"]


def test_arg_parsing_kinds():
    infos = {k.name: k for k in parse_program_source(SRC)}
    alpha = infos["alpha"]
    assert [a.name for a in alpha.args] == ["in", "out", "n"]
    assert [a.is_buffer for a in alpha.args] == [True, True, False]
    beta = infos["beta"]
    # __local pointers are not context buffers.
    assert [a.is_buffer for a in beta.args] == [True, False, False]


def test_annotations_parsed_as_floats():
    infos = {k.name: k for k in parse_program_source(SRC)}
    assert infos["alpha"].annotations["flops_per_item"] == pytest.approx(12.5)
    assert infos["beta"].annotations["gpu_eff"] == pytest.approx(0.2)
    assert infos["gamma"].annotations == {}


def test_writes_annotation():
    infos = {k.name: k for k in parse_program_source(SRC)}
    assert infos["alpha"].writes == (1,)
    assert infos["beta"].writes == ()


def test_buffer_arg_indices():
    infos = {k.name: k for k in parse_program_source(SRC)}
    assert infos["alpha"].buffer_arg_indices == (0, 1)


def test_body_open_points_past_brace():
    infos = parse_program_source(SRC)
    for info in infos:
        assert SRC[info.body_open - 1] == "{"


def test_insert_after_body_open():
    infos = parse_program_source(SRC)
    gamma = next(k for k in infos if k.name == "gamma")
    out = insert_after_body_open(SRC, gamma, "/*X*/")
    assert "__kernel void gamma(__global int* flags) {/*X*/" in out


def test_duplicate_kernel_names_rejected():
    dup = "__kernel void k(int a) {}\n__kernel void k(int b) {}"
    with pytest.raises(BuildProgramFailure):
        parse_program_source(dup)


def test_writes_out_of_range_rejected():
    bad = "// @multicl writes=5\n__kernel void k(__global float* a) { }"
    with pytest.raises(BuildProgramFailure):
        parse_program_source(bad)


def test_bad_annotation_value_rejected():
    bad = "// @multicl flops_per_item=lots\n__kernel void k(int a) { }"
    with pytest.raises(BuildProgramFailure):
        parse_program_source(bad)


def test_unbalanced_signature_rejected():
    with pytest.raises(BuildProgramFailure):
        parse_program_source("__kernel void k(int a { }")


def test_missing_body_rejected():
    with pytest.raises(BuildProgramFailure):
        parse_program_source("__kernel void k(int a);")


def test_multiline_annotations_accumulate():
    src = (
        "// @multicl flops_per_item=1\n"
        "// @multicl bytes_per_item=2\n"
        "__kernel void k(int a) { }"
    )
    info = parse_program_source(src)[0]
    assert info.annotations == {"flops_per_item": 1.0, "bytes_per_item": 2.0}


def test_kernel_arg_parse_rejects_empty():
    with pytest.raises(BuildProgramFailure):
        KernelArg.parse("   ")


def test_args_with_nested_parens():
    src = "__kernel void k(__global float* a, int b) { foo(a, (b, 1)); }"
    info = parse_program_source(src)[0]
    assert len(info.args) == 2


@given(
    names=st.lists(
        st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True),
        min_size=1,
        max_size=6,
        unique=True,
    )
)
def test_roundtrip_many_kernels(names):
    src = "".join(
        f"// @multicl flops_per_item={i + 1}\n"
        f"__kernel void {n}(__global float* buf, int n{i}) {{ body(); }}\n"
        for i, n in enumerate(names)
    )
    infos = parse_program_source(src)
    assert [k.name for k in infos] == names
    for i, info in enumerate(infos):
        assert info.annotations["flops_per_item"] == pytest.approx(i + 1)
        assert info.args[0].is_buffer and not info.args[1].is_buffer
