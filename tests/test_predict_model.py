"""Ridge model machinery: exact solves, serialization, single-flight store.

The fit-once/load-many contract is bit-exact: floats survive the JSON
round trip via ``repr``, so a model fitted in one process and loaded in
another predicts *identical* values — the property the shared
``MULTICL_PREDICT_DIR`` cache (and every checksum downstream) relies on.
"""

import multiprocessing
import os

import pytest

from repro.hardware.presets import aji_cluster15_node
from repro.predict import (
    PredictorModel,
    RidgeHead,
    load_or_fit,
    model_path,
)
from repro.predict.features import KernelFeatures, extract_program
from repro.predict.store import load_model, save_model

SPEC = aji_cluster15_node()

WORKLOAD_SRC = (
    "// @multicl flops_per_item=220 bytes_per_item=8 divergence=0.1 "
    "irregularity=0.2 cpu_eff=0.9 gpu_eff=0.6 writes=1\n"
    "__kernel void scale(__global float* a, int n) {\n"
    "  int i = get_global_id(0);\n"
    "  a[i] = a[i] * 2.0f;\n"
    "}\n"
)
FEAT = extract_program(WORKLOAD_SRC)["scale"]


@pytest.fixture(scope="session")
def fitted_dir(tmp_path_factory):
    """One fitted-model directory for the whole session (fit is ~1s)."""
    path = tmp_path_factory.mktemp("predict-models")
    load_or_fit(SPEC, str(path))
    return str(path)


# ---------------------------------------------------------------------------
# RidgeHead numerics
# ---------------------------------------------------------------------------
def test_ridge_recovers_exact_linear_relation():
    head = RidgeHead(dim=2, lam=0.0)
    for x in (0.0, 1.0, 2.0, 5.0, -3.0):
        head.add([1.0, x], 2.0 + 3.0 * x)
    w = head.solve()
    assert w[0] == pytest.approx(2.0, abs=1e-9)
    assert w[1] == pytest.approx(3.0, abs=1e-9)
    assert head.predict([1.0, 10.0], w) == pytest.approx(32.0, abs=1e-8)


def test_ridge_solve_is_deterministic_and_extra_layering_matches():
    base = RidgeHead(dim=2, lam=1e-6)
    combined = RidgeHead(dim=2, lam=1e-6)
    extra = RidgeHead(dim=2, lam=0.0)
    points = [([1.0, x], 1.0 - 0.5 * x) for x in (0.0, 1.0, 4.0)]
    late = [([1.0, x], 1.0 - 0.5 * x) for x in (7.0, 9.0)]
    for x, y in points:
        base.add(x, y)
        combined.add(x, y)
    for x, y in late:
        extra.add(x, y)
        combined.add(x, y)
    assert base.solve() == base.solve()  # bit-identical re-solve
    assert base.solve(extra) == combined.solve()
    assert base.inverse(extra) == combined.inverse()


def test_ridge_round_trips_through_dict():
    head = RidgeHead(dim=3, lam=1e-6)
    head.add([1.0, 2.0, 3.0], 0.5)
    head.add([1.0, -1.0, 0.25], -2.0)
    clone = RidgeHead.from_dict(head.to_dict())
    assert clone.solve() == head.solve()
    assert clone.count == head.count and clone.lam == head.lam


# ---------------------------------------------------------------------------
# Fitted model: accuracy and serialization
# ---------------------------------------------------------------------------
def test_fitted_model_round_trips_bit_identical(fitted_dir):
    model, computed = load_or_fit(SPEC, fitted_dir)
    assert not computed  # session fixture already fitted it
    clone = PredictorModel.from_dict(model.to_dict())
    n = 1 << 14
    assert clone.predict(FEAT, n) == model.predict(FEAT, n)


def test_save_then_load_predicts_bit_identical(fitted_dir, tmp_path):
    model, _ = load_or_fit(SPEC, fitted_dir)
    save_model(model, SPEC, str(tmp_path))
    loaded = load_model(SPEC, str(tmp_path))
    assert loaded is not None
    assert loaded.fingerprint == model.fingerprint
    for n in (1 << 8, 1 << 14, 1 << 20):
        assert loaded.predict(FEAT, n) == model.predict(FEAT, n)


def test_load_rejects_corrupt_and_mismatched_files(fitted_dir, tmp_path):
    path = model_path(SPEC, str(tmp_path))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{ not json")
    assert load_model(SPEC, str(tmp_path)) is None
    path.write_text('{"schema": 999}')
    assert load_model(SPEC, str(tmp_path)) is None


def test_fitted_model_is_accurate_on_workload_kernel(fitted_dir):
    """The model must track the roofline closely for in-hull kernels."""
    from repro.hardware.topology import SimNode
    from repro.ocl.source import parse_program_source
    from repro.sim.engine import SimEngine
    from repro.hardware.cost import KernelCost

    model, _ = load_or_fit(SPEC, fitted_dir)
    engine = SimEngine()
    node = SimNode(engine, SPEC)
    n = 1 << 16
    info = parse_program_source(WORKLOAD_SRC)[0]
    cost = KernelCost(
        flops=FEAT.flops_per_item * n,
        bytes=FEAT.bytes_per_item * n,
        work_items=n,
        divergence=FEAT.divergence,
        irregularity=FEAT.irregularity,
        efficiency={},
    )
    del info
    predicted = model.predict(FEAT, n)
    for device in node.device_list():
        eff = FEAT.eff_for(device.spec.kind.value)
        true_cost = KernelCost(
            flops=cost.flops,
            bytes=cost.bytes,
            work_items=n,
            divergence=cost.divergence,
            irregularity=cost.irregularity,
            efficiency={device.spec.kind: eff},
        )
        task = device.submit_kernel("probe", true_cost)
        engine.run_until(task)
        truth = task.duration
        rel = abs(predicted[device.name] - truth) / truth
        assert rel < 0.05, f"{device.name}: rel error {rel:.4f}"


# ---------------------------------------------------------------------------
# Single-flight across processes
# ---------------------------------------------------------------------------
def _fit_race_worker(predict_dir, barrier, queue):
    from repro.predict import load_or_fit as lof

    barrier.wait()
    model, computed = lof(SPEC, predict_dir)
    value = model.predict(FEAT, 1 << 14)
    queue.put((os.getpid(), computed, sorted(value.items())))


def test_racing_processes_fit_exactly_once_and_agree(tmp_path):
    n = 3
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(n)
    queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_fit_race_worker, args=(str(tmp_path), barrier, queue)
        )
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    results = [queue.get(timeout=120) for _ in range(n)]
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    computed_flags = [computed for _, computed, _ in results]
    assert computed_flags.count(True) == 1, "fit must run in one process"
    predictions = {tuple(value) for _, _, value in results}
    assert len(predictions) == 1, "losers must load bit-identical weights"
