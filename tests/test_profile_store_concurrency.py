"""Concurrent access to the on-disk profile cache: single-flight,
atomic writes, corruption recovery."""

import json
import multiprocessing
import os

import pytest

from repro.core import profile_store
from repro.core.device_profiler import get_or_measure
from repro.hardware.presets import aji_cluster15_node
from repro.ocl.platform import Platform

SPEC = aji_cluster15_node()


def _payload(tag):
    return {"node_name": SPEC.name, "tag": tag}


# ---------------------------------------------------------------------------
# load_or_compute: single flight
# ---------------------------------------------------------------------------
def test_load_or_compute_cold_computes_once_then_hits(tmp_path):
    calls = []

    def compute():
        calls.append(1)
        return _payload("first")

    payload, computed = profile_store.load_or_compute(
        SPEC, compute, str(tmp_path)
    )
    assert computed and payload["tag"] == "first" and len(calls) == 1

    payload2, computed2 = profile_store.load_or_compute(
        SPEC, lambda: _payload("second"), str(tmp_path)
    )
    assert not computed2 and payload2["tag"] == "first"


def test_load_or_compute_stamps_fingerprint(tmp_path):
    payload, _ = profile_store.load_or_compute(
        SPEC, lambda: _payload("x"), str(tmp_path)
    )
    assert payload["fingerprint"] == profile_store.node_fingerprint(SPEC)


def _race_worker(cache_dir, barrier, queue):
    from repro.core import profile_store as ps

    def compute():
        # Marker file per *execution* of compute — the single-flight
        # assertion counts these across all racing processes.
        marker = os.path.join(cache_dir, f"computed-{os.getpid()}")
        with open(marker, "w") as fh:
            fh.write("1")
        return {"node_name": SPEC.name, "winner": os.getpid()}

    barrier.wait()
    payload, computed = ps.load_or_compute(SPEC, compute, cache_dir)
    queue.put((os.getpid(), computed, payload["winner"]))


def test_n_processes_racing_cold_cache_measure_exactly_once(tmp_path):
    n = 4
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(n)
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_race_worker, args=(str(tmp_path), barrier, queue))
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    results = [queue.get(timeout=60) for _ in range(n)]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    markers = [f for f in os.listdir(tmp_path) if f.startswith("computed-")]
    assert len(markers) == 1, f"compute ran {len(markers)} times, want 1"
    winners = {winner for _, _, winner in results}
    assert len(winners) == 1, "losers must re-read the winner's payload"
    computed_flags = [computed for _, computed, _ in results]
    assert computed_flags.count(True) == 1


def _profile_race_worker(cache_dir, barrier, queue):
    barrier.wait()
    platform = Platform(profile=False)
    profile = get_or_measure(platform, cache_dir=cache_dir)
    # engine.now > 0 iff *this* process paid for the microbenchmarks.
    queue.put((platform.engine.now > 0.0, sorted(profile.gflops)))


def test_racing_device_profilers_single_measurement(tmp_path):
    n = 3
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(n)
    queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_profile_race_worker, args=(str(tmp_path), barrier, queue)
        )
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    results = [queue.get(timeout=120) for _ in range(n)]
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    paid = [charged for charged, _ in results]
    assert paid.count(True) == 1, f"{paid.count(True)} processes measured"
    devices = {tuple(devs) for _, devs in results}
    assert len(devices) == 1


# ---------------------------------------------------------------------------
# Atomic tmp+rename
# ---------------------------------------------------------------------------
def _rewrite_worker(cache_dir, stop_path):
    from repro.core import profile_store as ps

    i = 0
    while not os.path.exists(stop_path):
        ps.save_profile_dict(SPEC, {"node_name": SPEC.name, "i": i}, cache_dir)
        i += 1


def test_reader_never_sees_partial_write(tmp_path):
    profile_store.save_profile_dict(SPEC, _payload("seed"), str(tmp_path))
    stop = tmp_path / "stop"
    ctx = multiprocessing.get_context("fork")
    writer = ctx.Process(target=_rewrite_worker, args=(str(tmp_path), str(stop)))
    writer.start()
    try:
        for _ in range(300):
            data = profile_store.load_profile_dict(SPEC, str(tmp_path))
            # Every read (the writer is mid-rewrite for most of them) is
            # either the complete old or the complete new payload.
            assert data is not None
            assert data["node_name"] == SPEC.name
            assert "fingerprint" in data
    finally:
        stop.write_text("stop")
        writer.join(timeout=60)
    assert writer.exitcode == 0


def test_save_leaves_no_tmp_litter(tmp_path):
    profile_store.save_profile_dict(SPEC, _payload("x"), str(tmp_path))
    leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
    assert leftovers == []


# ---------------------------------------------------------------------------
# Corruption recovery
# ---------------------------------------------------------------------------
def test_corrupted_cache_file_is_remeasured_not_crashed(tmp_path):
    path = profile_store.cache_path(SPEC, str(tmp_path))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{ this is not json")
    assert profile_store.load_profile_dict(SPEC, str(tmp_path)) is None
    payload, computed = profile_store.load_or_compute(
        SPEC, lambda: _payload("fresh"), str(tmp_path)
    )
    assert computed and payload["tag"] == "fresh"
    # ... and the repaired cache now round-trips.
    with path.open() as fh:
        assert json.load(fh)["tag"] == "fresh"


def test_corrupted_cache_platform_still_boots(tmp_path):
    path = profile_store.cache_path(SPEC, str(tmp_path))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text('{"truncated": ')
    platform = Platform(profile=False)
    profile = get_or_measure(platform, cache_dir=str(tmp_path))
    assert platform.engine.now > 0.0  # had to re-measure
    assert profile.gflops
