"""SimNode: device/link binding, transfer staging, contention."""

import pytest

from repro.hardware.cost import KernelCost
from repro.hardware.specs import HardwareError


def test_device_list_order_stable(node):
    assert [d.name for d in node.device_list()] == ["cpu", "gpu0", "gpu1"]


def test_unknown_device_rejected(node):
    with pytest.raises(HardwareError):
        node.device("tpu")


def test_h2d_seconds_latency_bound_vs_bandwidth_bound(node):
    small = node.h2d_seconds("gpu0", 1)
    large = node.h2d_seconds("gpu0", 1 << 28)
    assert small < large
    assert small >= node.spec.host_links["gpu0"].latency_s


def test_d2d_same_device_uses_local_copy(node):
    t = node.d2d_seconds("gpu0", "gpu0", 1 << 20)
    assert t < node.d2d_seconds("gpu0", "gpu1", 1 << 20)


def test_d2d_cross_device_is_staged_sum(node):
    nbytes = 1 << 24
    assert node.d2d_seconds("gpu0", "gpu1", nbytes) == pytest.approx(
        node.d2h_seconds("gpu0", nbytes) + node.h2d_seconds("gpu1", nbytes)
    )


def test_submit_h2d_charges_link_time(engine, node):
    task = node.submit_h2d("gpu0", 1 << 24)
    engine.run_until(task)
    assert engine.now == pytest.approx(node.h2d_seconds("gpu0", 1 << 24))


def test_submit_d2d_cross_device_produces_two_stages(engine, node):
    task = node.submit_d2d("gpu0", "gpu1", 1 << 24)
    engine.run_until(task)
    ivs = engine.trace.filter(category="transfer")
    assert len(ivs) == 2
    directions = {iv.meta["direction"] for iv in ivs}
    assert directions == {"d2h", "h2d"}


def test_submit_d2d_same_device_runs_on_device_resource(engine, node):
    task = node.submit_d2d("gpu0", "gpu0", 1 << 24)
    engine.run_until(task)
    ivs = engine.trace.filter(resource="dev:gpu0")
    assert len(ivs) == 1
    assert ivs[0].meta["direction"] == "local"


def test_link_contention_serialises_transfers(engine, node):
    a = node.submit_h2d("gpu0", 1 << 24)
    b = node.submit_h2d("gpu0", 1 << 24)
    engine.run_until_idle()
    single = node.h2d_seconds("gpu0", 1 << 24)
    assert b.end_time == pytest.approx(2 * single)
    assert a.end_time == pytest.approx(single)


def test_separate_links_transfer_in_parallel(engine, node):
    a = node.submit_h2d("gpu0", 1 << 24)
    b = node.submit_h2d("gpu1", 1 << 24)
    engine.run_until_idle()
    assert a.end_time == pytest.approx(b.end_time)


def test_kernel_execution_on_device_resource(engine, node):
    cost = KernelCost(flops=1e9, bytes=1e8, work_items=1 << 20)
    dev = node.device("gpu0")
    t = dev.submit_kernel("k", cost)
    engine.run_until(t)
    assert engine.trace.count("dev:gpu0", "kernel") == 1
    assert t.meta["kernel"] == "k"
    assert t.meta["minikernel"] is False


def test_minikernel_flag_uses_workgroup_time(engine, node):
    cost = KernelCost(flops=1e10, bytes=1e8, work_items=1 << 20)
    dev = node.device("gpu0")
    full = dev.submit_kernel("k", cost)
    mini = dev.submit_kernel("k", cost, minikernel=True)
    engine.run_until_idle()
    assert mini.duration < full.duration / 50


def test_kernel_deps_respected_across_resources(engine, node):
    up = node.submit_h2d("gpu0", 1 << 26)
    cost = KernelCost(flops=1e8, bytes=1e6, work_items=1 << 16)
    k = node.device("gpu0").submit_kernel("k", cost, deps=[up])
    engine.run_until(k)
    assert k.start_time == pytest.approx(up.end_time)


def test_intradevice_copy_charged_at_device_bandwidth(engine, node):
    dev = node.device("gpu0")
    nbytes = 1 << 27
    t = dev.submit_intradevice_copy(nbytes)
    engine.run_until(t)
    expected = nbytes / (dev.spec.mem_bandwidth_gbs * 1e9)
    assert t.duration == pytest.approx(expected)
