"""Program build lifecycle and the minikernel build hook."""

import pytest

from repro.core.minikernel import MINIKERNEL_GUARD
from repro.ocl.errors import InvalidKernel, InvalidProgram
from repro.ocl.enums import ContextProperty, ContextScheduler

SRC = """
// @multicl flops_per_item=10 bytes_per_item=8
__kernel void one(__global float* a, int n) { }
// @multicl flops_per_item=20 bytes_per_item=8
__kernel void two(__global float* a, int n) { }
"""


def test_build_parses_kernels(manual_context):
    p = manual_context.create_program(SRC).build()
    assert p.kernel_names() == ["one", "two"]


def test_build_idempotent(manual_context):
    p = manual_context.create_program(SRC)
    assert p.build() is p.build()


def test_create_kernel_before_build_rejected(manual_context):
    p = manual_context.create_program(SRC)
    with pytest.raises(InvalidProgram):
        p.create_kernel("one")
    with pytest.raises(InvalidProgram):
        p.kernel_names()


def test_unknown_kernel_rejected(manual_context):
    p = manual_context.create_program(SRC).build()
    with pytest.raises(InvalidKernel):
        p.create_kernel("three")


def test_source_without_kernels_rejected(manual_context):
    with pytest.raises(InvalidProgram):
        manual_context.create_program("int main() { return 0; }")
    with pytest.raises(InvalidProgram):
        manual_context.create_program("")


def test_build_charges_simulated_time(manual_context):
    engine = manual_context.platform.engine
    t0 = engine.now
    manual_context.create_program(SRC).build()
    assert engine.now > t0


def test_manual_context_builds_no_minikernels(manual_context):
    p = manual_context.create_program(SRC).build()
    assert p.minikernel_source is None


def test_scheduler_context_builds_minikernels(profile_dir):
    from repro.ocl.platform import Platform

    platform = Platform(profile=True, profile_dir=profile_dir)
    ctx = platform.create_context(
        properties={ContextProperty.CL_CONTEXT_SCHEDULER: ContextScheduler.AUTO_FIT}
    )
    p = ctx.create_program(SRC).build()
    assert p.minikernel_source is not None
    assert p.minikernel_source.count(MINIKERNEL_GUARD) == 2
    assert set(p.minikernel_infos) == {"one", "two"}


def test_minikernel_build_doubles_build_time(profile_dir):
    from repro.ocl.platform import Platform

    plain = Platform(profile=False)
    t0 = plain.engine.now
    plain.create_context().create_program(SRC).build()
    plain_build = plain.engine.now - t0

    sched = Platform(profile=True, profile_dir=profile_dir)
    ctx = sched.create_context(
        properties={ContextProperty.CL_CONTEXT_SCHEDULER: ContextScheduler.AUTO_FIT}
    )
    t0 = sched.engine.now
    ctx.create_program(SRC).build()
    sched_build = sched.engine.now - t0
    assert sched_build == pytest.approx(2 * plain_build, rel=0.01)
