"""SCHED_OVERLAP / SCHED_SPLIT: overlap-aware issue, multi-device splitting,
flag hygiene, and the WorkGroupConfig edge cases the splitter relies on."""

import warnings

import numpy as np
import pytest

import repro.ocl.queue as queue_mod
from repro.core.flags import SchedulerConfig
from repro.core.runtime import MultiCL
from repro.core.split import SplitPlan, plan_split
from repro.hardware.specs import DeviceKind, DeviceSpec, LinkSpec, NodeSpec
from repro.ocl.enums import ContextScheduler, SchedFlag
from repro.ocl.errors import InvalidValue, InvalidWorkGroupSize
from repro.ocl.kernel import WorkGroupConfig
from repro.ocl.overlap import OVERLAP_PROPERTY_KEY, overlap_enabled_from_env

STREAM_SRC = """
// @multicl flops_per_item=200 bytes_per_item=8 writes=1
__kernel void stream(__global float* in, __global float* out, int n) { }
"""

WORK_SRC = """
// @multicl flops_per_item=400 bytes_per_item=8 writes=1
__kernel void work(__global float* in, __global float* out, int n) { }
"""


def asym_node() -> NodeSpec:
    """Two asymmetric devices: a fast GPU and a ~3x slower CPU."""
    gpu = DeviceSpec(
        name="gpu0", kind=DeviceKind.GPU, compute_units=16, clock_ghz=1.0,
        peak_gflops=1000.0, mem_bandwidth_gbs=200.0, mem_size_bytes=4 << 30,
    )
    cpu = DeviceSpec(
        name="cpu", kind=DeviceKind.CPU, compute_units=8, clock_ghz=2.5,
        peak_gflops=300.0, mem_bandwidth_gbs=50.0, mem_size_bytes=16 << 30,
    )
    return NodeSpec(
        name="asym2",
        devices=(gpu, cpu),
        host_links={
            "gpu0": LinkSpec(name="pcie-gpu0", latency_s=1.8e-5, bandwidth_gbs=8.0),
            "cpu": LinkSpec(name="dram-cpu", latency_s=2e-6, bandwidth_gbs=20.0),
        },
    )


# ---------------------------------------------------------------------------
# Overlap-aware issue
# ---------------------------------------------------------------------------
def _stream_pipeline(overlap, profile_dir, iters=8, n=1 << 20):
    mcl = MultiCL(
        policy=ContextScheduler.AUTO_FIT, profile_dir=profile_dir,
        sanitize=True, overlap=overlap,
    )
    ctx = mcl.context
    k = ctx.create_program(STREAM_SRC).build().create_kernel("stream")
    k.set_host_function(lambda a: a["out"].__setitem__(..., a["in"] * 2.0))
    q = ctx.create_queue(
        sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
    )
    chunks = [ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
              for _ in range(2)]
    outs = [ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
            for _ in range(2)]
    data = [np.full(n, float(i), np.float32) for i in range(iters)]
    res = [np.empty(n, np.float32) for _ in range(iters)]
    t0 = mcl.now
    for i in range(iters):
        c, o = chunks[i % 2], outs[i % 2]
        q.enqueue_write_buffer(c, data[i])
        k.set_arg(0, c)
        k.set_arg(1, o)
        k.set_arg(2, n)
        q.enqueue_nd_range_kernel(k, (n,), (64,))
        q.enqueue_read_buffer(o, res[i])
    q.finish()
    ok = all(np.array_equal(r, d * 2.0) for r, d in zip(res, data))
    return mcl.now - t0, ok


def test_overlap_reduces_streaming_makespan(profile_dir):
    """Acceptance: >= 25% makespan reduction on the streaming workload,
    with bit-identical functional results and the sanitizer on."""
    t_fifo, ok_fifo = _stream_pipeline(False, profile_dir)
    t_over, ok_over = _stream_pipeline(True, profile_dir)
    assert ok_fifo and ok_over
    assert t_over <= 0.75 * t_fifo


def test_overlap_env_opt_in(monkeypatch):
    monkeypatch.delenv("MULTICL_OVERLAP", raising=False)
    assert not overlap_enabled_from_env()
    monkeypatch.setenv("MULTICL_OVERLAP", "1")
    assert overlap_enabled_from_env()
    monkeypatch.setenv("MULTICL_OVERLAP", "off")
    assert not overlap_enabled_from_env()


def test_overlap_property_wins_over_env(monkeypatch, profile_dir):
    monkeypatch.setenv("MULTICL_OVERLAP", "1")
    mcl = MultiCL(
        policy=ContextScheduler.AUTO_FIT, profile_dir=profile_dir, overlap=False
    )
    assert mcl.context.overlap is False
    assert mcl.context.properties[OVERLAP_PROPERTY_KEY] is False


def test_duplex_links_split_directions(profile_dir):
    mcl = MultiCL(profile_dir=profile_dir, overlap=True)
    node = mcl.platform.node
    assert node.links["gpu0"] is not node.d2h_links["gpu0"]
    assert node.links["gpu0"].name.endswith(":h2d")
    assert node.d2h_links["gpu0"].name.endswith(":d2h")
    simplex = MultiCL(profile_dir=profile_dir, overlap=False).platform.node
    assert simplex.links["gpu0"] is simplex.d2h_links["gpu0"]


def test_overlap_preserves_cross_queue_conflict_order(profile_dir):
    """A producer kernel on one queue and a consumer read on another stay
    ordered through the relaxed issue (conflict-restoration edges)."""
    mcl = MultiCL(
        policy=ContextScheduler.AUTO_FIT, profile_dir=profile_dir,
        sanitize=True, overlap=True,
    )
    ctx = mcl.context
    n = 1 << 12
    k = ctx.create_program(STREAM_SRC).build().create_kernel("stream")
    k.set_host_function(lambda a: a["out"].__setitem__(..., a["in"] + 1.0))
    flags = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
    q1 = ctx.create_queue(sched_flags=flags, name="producer")
    q2 = ctx.create_queue(sched_flags=flags, name="consumer")
    a = ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
    b = ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
    q1.enqueue_write_buffer(a, np.full(n, 5.0, np.float32))
    k.set_arg(0, a)
    k.set_arg(1, b)
    k.set_arg(2, n)
    ev = q1.enqueue_nd_range_kernel(k, (n,), (64,))
    res = np.empty(n, np.float32)
    q2.enqueue_read_buffer(b, res, wait_events=[ev])
    ctx.finish_all()
    assert np.array_equal(res, np.full(n, 6.0, np.float32))


# ---------------------------------------------------------------------------
# Multi-device splitting
# ---------------------------------------------------------------------------
def _split_run(split, profile_dir, n=1 << 20):
    mcl = MultiCL(
        node_spec=asym_node(), policy=ContextScheduler.AUTO_FIT,
        profile_dir=profile_dir, sanitize=True, split=split,
    )
    ctx = mcl.context
    k = ctx.create_program(WORK_SRC).build().create_kernel("work")
    k.set_host_function(
        lambda a: a["out"].__setitem__(..., np.sqrt(np.abs(a["in"])) + 1.5)
    )
    q = ctx.create_queue(
        sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH
    )
    rng = np.random.default_rng(7)
    data = rng.standard_normal(n).astype(np.float32)
    a = ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
    b = ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
    q.enqueue_write_buffer(a, data)
    q.finish()
    k.set_arg(0, a)
    k.set_arg(1, b)
    k.set_arg(2, n)
    t0 = mcl.now
    q.enqueue_nd_range_kernel(k, (n,), (64,))
    if not split:
        # The split epoch delivers results to host (gathers); make the
        # single-device epoch do the same for a fair makespan.
        res = np.empty(n, np.float32)
        q.enqueue_read_buffer(b, res)
    q.finish()
    elapsed = mcl.now - t0
    split_tasks = [
        iv for iv in mcl.engine.trace if iv.task.startswith("split-join:")
    ]
    return elapsed, b.array.copy(), split_tasks


def test_split_beats_best_single_device_bit_identically(tmp_path):
    """Acceptance: a SCHED_SPLIT epoch on a 2-device asymmetric spec beats
    the best single device with bit-identical output buffers."""
    pd = str(tmp_path)
    t_single, out_single, joins_single = _split_run(False, pd)
    t_split, out_split, joins_split = _split_run(True, pd)
    assert not joins_single and joins_split  # split actually engaged
    assert np.array_equal(out_single, out_split)
    assert t_split < t_single


def test_split_flag_on_queue_opts_in(tmp_path):
    mcl = MultiCL(
        node_spec=asym_node(), policy=ContextScheduler.AUTO_FIT,
        profile_dir=str(tmp_path), sanitize=True,
    )
    ctx = mcl.context
    n = 1 << 18
    k = ctx.create_program(WORK_SRC).build().create_kernel("work")
    k.set_host_function(lambda a: a["out"].__setitem__(..., a["in"] * 3.0))
    q = ctx.create_queue(
        sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC
        | SchedFlag.SCHED_KERNEL_EPOCH
        | SchedFlag.SCHED_SPLIT
    )
    a = ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
    b = ctx.create_buffer(4 * n, host_array=np.zeros(n, np.float32))
    q.enqueue_write_buffer(a, np.arange(n, dtype=np.float32))
    k.set_arg(0, a)
    k.set_arg(1, b)
    k.set_arg(2, n)
    q.enqueue_nd_range_kernel(k, (n,), (64,))
    q.finish()
    assert any(iv.task.startswith("split-join:") for iv in mcl.engine.trace)
    assert np.array_equal(b.array, np.arange(n, dtype=np.float32) * 3.0)


def test_npb_split_bit_identical(profile_dir):
    """Property: split execution is bit-identical to unsplit across the
    NPB kernels (functional checks compare equal)."""
    from repro.workloads.base import ProblemClass
    from repro.workloads.npb import BENCHMARKS
    from repro.workloads.npb.common import run_npb

    for name, cls in sorted(BENCHMARKS.items()):
        app_plain = cls(cls.VALID_CLASSES[0], cls.QUEUE_RULE.allowed[0])
        app_split = cls(cls.VALID_CLASSES[0], cls.QUEUE_RULE.allowed[0])
        plain = run_npb(app_plain, mode="auto", profile_dir=profile_dir)
        split = run_npb(
            app_split, mode="auto", profile_dir=profile_dir,
            config=SchedulerConfig(split=True),
        )
        assert set(plain.checks) == set(split.checks), name
        for key in plain.checks:
            a, b = plain.checks[key], split.checks[key]
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b), f"{name}:{key}"
            else:
                assert a == b, f"{name}:{key}"


# ---------------------------------------------------------------------------
# Split planner
# ---------------------------------------------------------------------------
class _FakeKernel:
    name = "fake"

    def __init__(self, configs=None):
        self.device_configs = configs or {}

    def effective_config(self, device, launch):
        return self.device_configs.get(device, launch)


def test_plan_split_proportional_and_aligned():
    launch = WorkGroupConfig.normalize((1024,), (32,))
    plan = plan_split(
        _FakeKernel(), launch, ["fast", "slow"], {"fast": 1.0, "slow": 3.0}
    )
    assert isinstance(plan, SplitPlan)
    (d0, lo0, hi0), (d1, lo1, hi1) = plan.shares
    assert (d0, d1) == ("fast", "slow")
    assert lo0 == 0 and hi0 == lo1 and hi1 == 1024  # contiguous cover
    assert plan.share_of("slow") % 32 == 0  # workgroup aligned
    # fast device is 3x the rate: it takes ~3/4 of the range (plus remainder)
    assert plan.share_of("fast") > 2 * plan.share_of("slow")


def test_plan_split_granularity_coarsens_chunks():
    launch = WorkGroupConfig.normalize((4096,), (32,))
    plan = plan_split(
        _FakeKernel(), launch, ["a", "b"], {"a": 1.0, "b": 1.0}, granularity=8
    )
    assert plan is not None
    assert plan.share_of("b") % (32 * 8) == 0


def test_plan_split_odd_global_size_remainder_to_fastest():
    launch = WorkGroupConfig.normalize((1001,), (64,))
    plan = plan_split(
        _FakeKernel(), launch, ["fast", "slow"], {"fast": 1.0, "slow": 2.0}
    )
    assert plan is not None
    assert sum(hi - lo for _d, lo, hi in plan.shares) == 1001
    # the non-multiple remainder lands on the fastest device
    assert plan.share_of("slow") % 64 == 0
    assert plan.share_of("fast") % 64 != 0


def test_plan_split_degenerate_cases():
    launch = WorkGroupConfig.normalize((96,), (64,))
    fake = _FakeKernel()
    # too small for two aligned shares -> no split
    assert plan_split(fake, launch, ["a", "b"], {"a": 1.0, "b": 1.0}) is None
    # fewer than two usable devices -> no split
    big = WorkGroupConfig.normalize((4096,), (64,))
    assert plan_split(fake, big, ["a"], {"a": 1.0}) is None
    assert plan_split(fake, big, ["a", "b"], {"a": 1.0}) is None
    assert (
        plan_split(fake, big, ["a", "b"], {"a": 1.0, "b": float("inf")}) is None
    )


def test_plan_split_honours_per_device_configs():
    launch = WorkGroupConfig.normalize((4096,), (32,))
    fake = _FakeKernel({"wide": WorkGroupConfig.normalize((4096,), (256,))})
    plan = plan_split(fake, launch, ["wide", "b"], {"wide": 1.0, "b": 1.0})
    assert plan is not None
    assert plan.shares[0][0] == "wide"
    # non-remainder share on "b" is 32-aligned; "wide"'s chunking was 256
    assert plan.share_of("b") % 32 == 0


# ---------------------------------------------------------------------------
# WorkGroupConfig / clSetKernelWorkGroupInfo edge cases
# ---------------------------------------------------------------------------
def test_workgroup_config_invalid_dims():
    with pytest.raises(InvalidWorkGroupSize):
        WorkGroupConfig.normalize((4, 4, 4, 4))  # 4 dims
    with pytest.raises(InvalidWorkGroupSize):
        WorkGroupConfig.normalize((16, 16), (4,))  # mismatched dims
    with pytest.raises(InvalidWorkGroupSize):
        WorkGroupConfig.normalize((0,), (1,))  # zero global size
    with pytest.raises(InvalidWorkGroupSize):
        WorkGroupConfig.normalize((16,), (0,))  # zero local size


def test_sub_range_config_clips_local_to_share(manual_context):
    prog = manual_context.create_program(STREAM_SRC).build()
    k = prog.create_kernel("stream")
    launch = WorkGroupConfig.normalize((1024,), (64,))
    sub = k.sub_range_config("gpu0", launch, 0, 32)
    assert sub.global_size == (32,)
    assert sub.local_size == (32,)  # clipped from 64


def test_sub_range_config_honours_device_override(manual_context):
    prog = manual_context.create_program(STREAM_SRC).build()
    k = prog.create_kernel("stream")
    k.set_work_group_info("gpu0", (1024,), (128,))
    launch = WorkGroupConfig.normalize((1024,), (64,))
    sub = k.sub_range_config("gpu0", launch, 0, 512)
    assert sub.local_size == (128,)  # per-device config, not the launch's
    other = k.sub_range_config("cpu", launch, 0, 512)
    assert other.local_size == (64,)


def test_sub_range_config_rejects_out_of_bounds(manual_context):
    prog = manual_context.create_program(STREAM_SRC).build()
    k = prog.create_kernel("stream")
    launch = WorkGroupConfig.normalize((1024,), (64,))
    with pytest.raises(InvalidValue):
        k.sub_range_config("gpu0", launch, 512, 512)  # empty
    with pytest.raises(InvalidValue):
        k.sub_range_config("gpu0", launch, 0, 2048)  # past the end


def test_split_granularity_env(monkeypatch):
    monkeypatch.setenv("MULTICL_SPLIT_GRANULARITY", "4")
    assert SchedulerConfig.from_env().split_granularity == 4
    monkeypatch.setenv("MULTICL_SPLIT_GRANULARITY", "0")
    with pytest.warns(RuntimeWarning, match="positive integer"):
        assert SchedulerConfig.from_env().split_granularity == 1
    monkeypatch.setenv("MULTICL_SPLIT", "1")
    monkeypatch.delenv("MULTICL_SPLIT_GRANULARITY")
    assert SchedulerConfig.from_env().split is True


# ---------------------------------------------------------------------------
# SchedFlag hygiene
# ---------------------------------------------------------------------------
@pytest.fixture
def _reset_flag_warnings():
    saved = set(queue_mod._warned_flag_values)
    queue_mod._warned_flag_values.clear()
    yield
    queue_mod._warned_flag_values.clear()
    queue_mod._warned_flag_values.update(saved)


def test_split_without_auto_warns_once(manual_context, _reset_flag_warnings):
    flags = SchedFlag.SCHED_OFF | SchedFlag.SCHED_SPLIT
    with pytest.warns(RuntimeWarning, match="SCHED_SPLIT"):
        manual_context.create_queue(sched_flags=flags)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second identical set: no warning
        manual_context.create_queue(sched_flags=flags)


def test_overlap_without_auto_warns(manual_context, _reset_flag_warnings):
    with pytest.warns(RuntimeWarning, match="SCHED_OVERLAP"):
        manual_context.create_queue(sched_flags=SchedFlag.SCHED_OVERLAP)


def test_split_with_auto_does_not_warn(autofit, _reset_flag_warnings):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        autofit.context.create_queue(
            sched_flags=SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_SPLIT
        )
