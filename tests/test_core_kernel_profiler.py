"""Dynamic kernel profiler: measurement, caches, minikernel estimation."""

import numpy as np
import pytest

from repro.core.flags import ScheduleOptions, SchedulerConfig
from repro.core.kernel_profiler import KernelProfiler
from repro.ocl.enums import ContextProperty, ContextScheduler, SchedFlag
from repro.ocl.memory import HOST
from repro.ocl.platform import Platform
from repro.ocl.queue import Command, CommandKind
from repro.ocl.kernel import WorkGroupConfig

SRC = """
// @multicl flops_per_item=100 bytes_per_item=16 gpu_eff=0.3 writes=1
__kernel void work(__global float* in, __global float* out, int n) { }
// @multicl flops_per_item=500 bytes_per_item=4 writes=1
__kernel void crunch(__global float* in, __global float* out, int n) { }
"""


@pytest.fixture
def ctx(profile_dir):
    platform = Platform(profile=True, profile_dir=profile_dir)
    return platform.create_context(
        properties={ContextProperty.CL_CONTEXT_SCHEDULER: ContextScheduler.AUTO_FIT}
    )


def _kernel_command(ctx, prog, name="work", n=1 << 14, init=True):
    k = prog.create_kernel(name)
    a = ctx.create_buffer(4 * n)
    b = ctx.create_buffer(4 * n)
    if init:
        a.mark_valid(HOST)
    k.set_arg(0, a)
    k.set_arg(1, b)
    k.set_arg(2, n)
    return Command(
        kind=CommandKind.NDRANGE_KERNEL,
        kernel=k,
        launch=WorkGroupConfig.normalize((n,), (64,)),
        args_snapshot=dict(k.args),
    )


def _options(flags=SchedFlag.SCHED_AUTO_DYNAMIC):
    return ScheduleOptions.from_flags(flags)


def test_profile_epoch_returns_all_devices(ctx):
    prog = ctx.create_program(SRC).build()
    prof = KernelProfiler(ctx, SchedulerConfig())
    q = ctx.create_queue()
    cmd = _kernel_command(ctx, prog)
    epoch = prof.profile_epoch(q, [cmd], _options())
    assert set(epoch.seconds) == {"cpu", "gpu0", "gpu1"}
    assert all(v > 0 for v in epoch.seconds.values())


def test_profiling_charges_simulated_time(ctx):
    prog = ctx.create_program(SRC).build()
    prof = KernelProfiler(ctx, SchedulerConfig())
    q = ctx.create_queue()
    t0 = ctx.platform.engine.now
    prof.profile_epoch(q, [_kernel_command(ctx, prog)], _options())
    assert ctx.platform.engine.now > t0


def test_cache_hit_is_free(ctx):
    prog = ctx.create_program(SRC).build()
    prof = KernelProfiler(ctx, SchedulerConfig())
    q = ctx.create_queue()
    cmd = _kernel_command(ctx, prog)
    first = prof.profile_epoch(q, [cmd], _options())
    t0 = ctx.platform.engine.now
    again = prof.profile_epoch(q, [cmd], _options())
    assert ctx.platform.engine.now == t0  # epoch cache: no new work
    assert again.seconds == first.seconds
    assert prof.stats.epoch_cache_hits == 1


def test_kernel_cache_shared_across_epochs(ctx):
    prog = ctx.create_program(SRC).build()
    prof = KernelProfiler(ctx, SchedulerConfig())
    q = ctx.create_queue()
    c1 = _kernel_command(ctx, prog, "work")
    prof.profile_epoch(q, [c1], _options())
    # A different epoch containing the same kernel plus a new one only
    # measures the new one.
    c2 = _kernel_command(ctx, prog, "work")
    c3 = _kernel_command(ctx, prog, "crunch")
    measured_before = prof.stats.kernels_measured
    prof.profile_epoch(q, [c2, c3], _options())
    assert prof.stats.kernel_cache_hits >= 1
    assert prof.stats.kernels_measured == measured_before + 3  # crunch x3 devs


def test_caching_disabled_remeasures(ctx):
    prog = ctx.create_program(SRC).build()
    prof = KernelProfiler(ctx, SchedulerConfig(profile_caching=False))
    q = ctx.create_queue()
    cmd = _kernel_command(ctx, prog)
    prof.profile_epoch(q, [cmd], _options())
    t0 = ctx.platform.engine.now
    prof.profile_epoch(q, [cmd], _options())
    assert ctx.platform.engine.now > t0


def test_different_sizes_are_different_cache_keys(ctx):
    prog = ctx.create_program(SRC).build()
    prof = KernelProfiler(ctx, SchedulerConfig())
    q = ctx.create_queue()
    prof.profile_epoch(q, [_kernel_command(ctx, prog, n=1 << 12)], _options())
    runs = prof.stats.profiling_runs
    prof.profile_epoch(q, [_kernel_command(ctx, prog, n=1 << 16)], _options())
    assert prof.stats.profiling_runs == runs + 1


def test_iterative_refresh_clears_caches(ctx):
    prog = ctx.create_program(SRC).build()
    prof = KernelProfiler(ctx, SchedulerConfig(iterative_refresh=2))
    q = ctx.create_queue()
    cmd = _kernel_command(ctx, prog)
    prof.profile_epoch(q, [cmd], _options())  # trigger 1: measure
    prof.profile_epoch(q, [cmd], _options())  # trigger 2: refresh + measure
    assert prof.stats.refreshes == 1


def test_empty_epoch_returns_zeros(ctx):
    prof = KernelProfiler(ctx, SchedulerConfig())
    q = ctx.create_queue()
    epoch = prof.profile_epoch(q, [], _options())
    assert all(v == 0.0 for v in epoch.seconds.values())


def test_profiling_preserves_epoch_relative_order(ctx):
    """The profiled vector must rank devices like the true model does:
    'work' has gpu_eff=0.3 and still beats the CPU on raw throughput."""
    prog = ctx.create_program(SRC).build()
    prof = KernelProfiler(ctx, SchedulerConfig())
    q = ctx.create_queue()
    epoch = prof.profile_epoch(q, [_kernel_command(ctx, prog, n=1 << 20)], _options())
    assert epoch.best_device() in ("gpu0", "gpu1")


def test_minikernel_used_for_compute_bound_queues(ctx):
    prog = ctx.create_program(SRC).build()
    # Full profiling first (fresh profiler), then minikernel: compare cost.
    q = ctx.create_queue()
    cmd = _kernel_command(ctx, prog, "crunch", n=1 << 22)
    full_prof = KernelProfiler(ctx, SchedulerConfig())
    t0 = ctx.platform.engine.now
    full_prof.profile_epoch(q, [cmd], _options())
    full_cost = ctx.platform.engine.now - t0

    mini_prof = KernelProfiler(ctx, SchedulerConfig())
    flags = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_COMPUTE_BOUND
    t0 = ctx.platform.engine.now
    cmd2 = _kernel_command(ctx, prog, "crunch", n=1 << 22)
    mini_prof.profile_epoch(q, [cmd2], _options(flags))
    mini_cost = ctx.platform.engine.now - t0
    # Both modes pay the same input staging; the kernel-execution part of
    # the minikernel run is near-free, so a 5x margin is conservative.
    assert mini_cost < full_cost / 5


def test_minikernel_estimate_preserves_device_ranking(ctx):
    prog = ctx.create_program(SRC).build()
    q = ctx.create_queue()
    flags = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_COMPUTE_BOUND
    cmd = _kernel_command(ctx, prog, "crunch", n=1 << 22)
    mini = KernelProfiler(ctx, SchedulerConfig()).profile_epoch(
        q, [cmd], _options(flags)
    )
    cmd2 = _kernel_command(ctx, prog, "crunch", n=1 << 22)
    full = KernelProfiler(ctx, SchedulerConfig()).profile_epoch(
        q, [cmd2], _options()
    )
    mini_rank = sorted(mini.seconds, key=mini.seconds.get)
    full_rank = sorted(full.seconds, key=full.seconds.get)
    assert mini_rank[0] == full_rank[0]


def test_minikernel_requires_transformed_program(ctx):
    """Without minikernel source (config disabled at build), profiling
    falls back to full kernels even for compute-bound queues."""
    cfg = SchedulerConfig(allow_minikernel=False)
    ctx2 = ctx.platform.create_context(
        properties={
            ContextProperty.CL_CONTEXT_SCHEDULER: ContextScheduler.AUTO_FIT,
            "multicl.config": cfg,
        }
    )
    prog = ctx2.create_program(SRC).build()
    assert prog.minikernel_source is None
    prof = KernelProfiler(ctx2, cfg)
    q = ctx2.create_queue()
    flags = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_COMPUTE_BOUND
    cmd = _kernel_command(ctx2, prog, "crunch", n=1 << 20)
    assert prof._use_minikernel([cmd], _options(flags)) is False


def test_staging_happens_for_initialized_inputs(ctx):
    prog = ctx.create_program(SRC).build()
    prof = KernelProfiler(ctx, SchedulerConfig())
    q = ctx.create_queue()
    cmd = _kernel_command(ctx, prog, init=True)
    prof.profile_epoch(q, [cmd], _options())
    assert prof.stats.bytes_staged > 0
    assert ctx.platform.engine.trace.count(category="profile-transfer") > 0


def test_full_profile_estimates_match_actual_execution(ctx):
    """Internal consistency: in the noise-free simulator, a full-kernel
    profile measurement equals the kernel's actual execution time on the
    same device (what makes 'always optimal' possible)."""
    prog = ctx.create_program(SRC).build()
    prof = KernelProfiler(ctx, SchedulerConfig())
    q = ctx.create_queue("gpu0")
    cmd = _kernel_command(ctx, prog, "work", n=1 << 18)
    epoch = prof.profile_epoch(q, [cmd], _options())
    # Execute the same launch for real on each device and compare.
    engine = ctx.platform.engine
    for dev_name in ctx.device_names:
        device = ctx.platform.node.device(dev_name)
        kernel, launch = cmd.kernel, cmd.launch
        cost = kernel.launch_cost(device.spec, launch)
        task = device.submit_kernel("actual", cost)
        engine.run_until(task)
        assert epoch.seconds[dev_name] == pytest.approx(task.duration, rel=1e-9)
