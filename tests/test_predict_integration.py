"""End-to-end predictor integration: zero-measurement scheduling, the
corrector loop, fault-driven invalidation, and replay cold start.

The headline acceptance criterion lives here: with prediction enabled,
unseen kernels are scheduled with *zero* profiling measurements, and the
resulting makespan stays within 15% of the fully-profiled run.
"""

import pytest

from repro.core.flags import SchedulerConfig
from repro.core.runtime import MultiCL
from repro.hardware.presets import symmetric_dual_gpu_node
from repro.ocl.enums import ContextScheduler, SchedFlag
from repro.replay.runner import ReplayConfig, run_tenant
from repro.sim.faults import FaultPlan
from repro.workloads.base import ProblemClass
from repro.workloads.npb import get_benchmark
from repro.workloads.npb.common import run_npb

AUTO = SchedFlag.SCHED_AUTO_DYNAMIC | SchedFlag.SCHED_KERNEL_EPOCH

PROGRAM = """
// @multicl flops_per_item=220 bytes_per_item=8 writes=1
__kernel void scale_a(__global float* a, int n) {
  int i = get_global_id(0);
  a[i] = a[i] * 2.0f;
}

// @multicl flops_per_item=20 bytes_per_item=64 divergence=0.6 writes=1
__kernel void drift_b(__global float* b, int n) {
  int i = get_global_id(0);
  b[i] = b[i] * 0.5f;
}
"""

N = 1 << 18


def _cg(pc="S", queues=4):
    return get_benchmark("CG")(ProblemClass(pc), queues)


# ---------------------------------------------------------------------------
# Acceptance: zero measurements, bounded makespan
# ---------------------------------------------------------------------------
def test_predicted_run_schedules_with_zero_measurements(profile_dir):
    profiled = run_npb(_cg(), mode="auto", profile_dir=profile_dir)
    predicted = run_npb(
        _cg(),
        mode="auto",
        config=SchedulerConfig(predict=True),
        profile_dir=profile_dir,
    )
    stats = predicted.profiler_stats
    assert stats["kernels_measured"] == 0
    assert stats["profiling_runs"] == 0
    assert stats["kernels_predicted"] > 0
    assert stats["predict_declines"] == 0
    # Baseline measured normally.
    assert profiled.profiler_stats["kernels_measured"] > 0
    # Makespan within 15% of the fully-profiled run (it is usually
    # *faster*: the profiling epoch is gone).
    delta = abs(predicted.seconds - profiled.seconds) / profiled.seconds
    assert delta < 0.15


def test_predictor_off_by_default(profile_dir):
    run = run_npb(_cg(), mode="auto", profile_dir=profile_dir)
    mcl = MultiCL(policy=ContextScheduler.AUTO_FIT, profile_dir=profile_dir)
    assert mcl.context.scheduler.profiler.predictor is None
    assert run.profiler_stats["kernels_predicted"] == 0


def test_env_var_and_constructor_toggle(profile_dir, monkeypatch):
    monkeypatch.setenv("MULTICL_PREDICT", "1")
    assert SchedulerConfig.from_env().predict is True
    mcl = MultiCL(policy=ContextScheduler.AUTO_FIT, profile_dir=profile_dir)
    assert mcl.context.scheduler.profiler.predictor is not None
    # Constructor override beats the environment.
    off = MultiCL(
        policy=ContextScheduler.AUTO_FIT,
        profile_dir=profile_dir,
        predict=False,
    )
    assert off.context.scheduler.profiler.predictor is None
    monkeypatch.setenv("MULTICL_PREDICT", "0")
    on = MultiCL(
        policy=ContextScheduler.AUTO_FIT,
        profile_dir=profile_dir,
        predict=True,
    )
    assert on.context.scheduler.profiler.predictor is not None


def test_env_tolerance_and_confidence_parse(monkeypatch):
    monkeypatch.setenv("MULTICL_PREDICT_TOLERANCE", "0.4")
    monkeypatch.setenv("MULTICL_PREDICT_CONFIDENCE", "0.7")
    cfg = SchedulerConfig.from_env()
    assert cfg.predict_tolerance == 0.4
    assert cfg.predict_confidence == 0.7
    monkeypatch.setenv("MULTICL_PREDICT_TOLERANCE", "bogus")
    with pytest.warns(RuntimeWarning):
        cfg = SchedulerConfig.from_env()
    assert cfg.predict_tolerance == SchedulerConfig().predict_tolerance


# ---------------------------------------------------------------------------
# Corrector loop: measurements feed residuals and online re-fits
# ---------------------------------------------------------------------------
def test_declined_predictions_flow_into_corrector(profile_dir):
    # An impossible confidence bar forces the predictor to decline every
    # kernel; measurements then flow through observe(), and a zero
    # tolerance turns every observation into an online re-fit.
    cfg = SchedulerConfig(
        predict=True, predict_confidence=1.1, predict_tolerance=0.0
    )
    run = run_npb(_cg(), mode="auto", config=cfg, profile_dir=profile_dir)
    assert run.profiler_stats["kernels_predicted"] == 0
    assert run.profiler_stats["predict_declines"] > 0
    assert run.profiler_stats["kernels_measured"] > 0

    mcl = MultiCL(
        policy=ContextScheduler.AUTO_FIT, config=cfg, profile_dir=profile_dir
    )
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()
    k = program.create_kernel("scale_a")
    buf = ctx.create_buffer(4 * N)
    buf.mark_valid("host")
    k.set_arg(0, buf)
    k.set_arg(1, N)
    q = mcl.queue(flags=AUTO, name="q0")
    q.enqueue_nd_range_kernel(k, (N,), (128,))
    q.finish()
    predictor = mcl.context.scheduler.profiler.predictor
    assert predictor.stats.observations > 0
    assert predictor.stats.refits > 0
    assert any(predictor.residuals.values())


def test_corrector_refit_moves_the_prediction(profile_dir):
    mcl = MultiCL(
        policy=ContextScheduler.AUTO_FIT,
        config=SchedulerConfig(predict=True),
        profile_dir=profile_dir,
    )
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()
    k = program.create_kernel("scale_a")
    buf = ctx.create_buffer(4 * N)
    buf.mark_valid("host")
    k.set_arg(0, buf)
    k.set_arg(1, N)
    q = mcl.queue(flags=AUTO, name="q0")
    q.enqueue_nd_range_kernel(k, (N,), (128,))
    q.finish()
    predictor = mcl.context.scheduler.profiler.predictor
    feat = predictor.features_for(k)
    device = next(iter(predictor.model.devices))
    n = N
    before = predictor.predict_seconds(feat, device, n)

    from repro.ocl.kernel import WorkGroupConfig

    class _FakeCmd:
        kernel = k
        launch = WorkGroupConfig.normalize((n,), (128,))

    # Fabricate a gross mis-prediction; observe() must re-fit and pull the
    # prediction toward the observation.
    observed = before * 4.0
    rel = predictor.observe(_FakeCmd(), device, observed)
    assert rel > predictor.tolerance
    after = predictor.predict_seconds(feat, device, n)
    assert abs(after - observed) < abs(before - observed)
    assert predictor.stats.refits >= 1


# ---------------------------------------------------------------------------
# Fault-driven invalidation
# ---------------------------------------------------------------------------
def test_device_failure_drops_predictor_state(profile_dir):
    cfg = SchedulerConfig(
        predict=True, predict_confidence=1.1, predict_tolerance=0.0
    )
    mcl = MultiCL(
        node_spec=symmetric_dual_gpu_node(),
        policy=ContextScheduler.AUTO_FIT,
        config=cfg,
        profile_dir=profile_dir,
    )
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()
    ka = program.create_kernel("scale_a")
    kb = program.create_kernel("drift_b")
    for k in (ka, kb):
        buf = ctx.create_buffer(4 * N)
        buf.mark_valid("host")
        k.set_arg(0, buf)
        k.set_arg(1, N)
    q1 = mcl.queue(flags=AUTO, name="q1")
    q2 = mcl.queue(flags=AUTO, name="q2")
    q1.enqueue_nd_range_kernel(ka, (N,), (128,))
    q2.enqueue_nd_range_kernel(kb, (N,), (128,))
    for q in (q1, q2):
        q.finish()
    predictor = mcl.context.scheduler.profiler.predictor
    # Declined predictions were measured on both devices -> residuals exist.
    assert "gpu1" in predictor.residuals

    mcl.inject_faults(FaultPlan().fail_device("gpu1", at=mcl.now + 1e-4))
    for _ in range(3):
        q1.enqueue_nd_range_kernel(ka, (N,), (128,))
        q2.enqueue_nd_range_kernel(kb, (N,), (128,))
        for q in (q1, q2):
            q.finish()
    assert "gpu1" not in predictor.residuals
    assert predictor.stats.invalidations > 0
    # Surviving device state is untouched by the dead device's cleanup.
    assert predictor.stats.observations > 0


def test_invalidate_device_rearms_next_observe(profile_dir):
    """Regression: after a fault-driven invalidation the device's next
    observation must force a re-fit even when its residual happens to be
    within tolerance — otherwise a recovered device keeps stale weights
    forever."""
    mcl = MultiCL(
        policy=ContextScheduler.AUTO_FIT,
        config=SchedulerConfig(predict=True),
        profile_dir=profile_dir,
    )
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()
    k = program.create_kernel("scale_a")
    buf = ctx.create_buffer(4 * N)
    buf.mark_valid("host")
    k.set_arg(0, buf)
    k.set_arg(1, N)
    q = mcl.queue(flags=AUTO, name="q0")
    q.enqueue_nd_range_kernel(k, (N,), (128,))
    q.finish()
    predictor = mcl.context.scheduler.profiler.predictor
    feat = predictor.features_for(k)
    device = next(iter(predictor.model.devices))
    predictor.tolerance = 1e9  # residuals alone can never trip a re-fit

    from repro.ocl.kernel import WorkGroupConfig

    class _FakeCmd:
        kernel = k
        launch = WorkGroupConfig.normalize((N,), (128,))

    spot_on = predictor.predict_seconds(feat, device, N)
    before = predictor.stats.refits
    predictor.observe(_FakeCmd(), device, spot_on)  # rel ≈ 0: no re-fit
    assert predictor.stats.refits == before

    predictor.invalidate_device(device)  # slowdown cleared / device lost
    predictor.observe(_FakeCmd(), device, spot_on)
    assert predictor.stats.refits == before + 1  # re-armed: forced re-fit
    predictor.observe(_FakeCmd(), device, spot_on)
    assert predictor.stats.refits == before + 1  # armed exactly once


def test_slowdown_then_clear_rearms_predictor(profile_dir):
    """A transient slowdown window must invalidate the device's predictor
    state at both edges (slowdown-era residuals are wrong once cleared) and
    re-fit on the first healthy measurement after recovery."""
    cfg = SchedulerConfig(
        predict=True,
        predict_confidence=1.1,  # decline everything → always measure
        predict_tolerance=1e9,  # re-fits can only come from the re-arm
        iterative_refresh=1,  # re-measure every trigger → observe() flows
    )
    mcl = MultiCL(
        node_spec=symmetric_dual_gpu_node(),
        policy=ContextScheduler.AUTO_FIT,
        config=cfg,
        profile_dir=profile_dir,
    )
    ctx = mcl.context
    program = ctx.create_program(PROGRAM).build()
    k = program.create_kernel("scale_a")
    buf = ctx.create_buffer(4 * N)
    buf.mark_valid("host")
    k.set_arg(0, buf)
    k.set_arg(1, N)
    q = mcl.queue(flags=AUTO, name="q1")
    for _ in range(2):
        q.enqueue_nd_range_kernel(k, (N,), (128,))
        q.finish()
    predictor = mcl.context.scheduler.profiler.predictor
    assert predictor.stats.observations > 0
    assert predictor.stats.refits == 0
    assert predictor.residuals  # warm residual rings on the measured pool

    mcl.inject_faults(
        FaultPlan().slow_device("gpu0", at=mcl.now + 1e-6, duration=1e-3, factor=3.0)
    )
    mcl.engine.elapse(2e-3)  # window opens and closes, no measurements in it
    # Both edges invalidated gpu0: fresh residual ring, device re-armed.
    assert "gpu0" not in predictor.residuals
    assert "gpu0" in predictor._invalidated

    q.enqueue_nd_range_kernel(k, (N,), (128,))
    q.finish()
    # First healthy measurement after recovery re-anchored the model.
    assert predictor.stats.refits >= 1
    assert "gpu0" not in predictor._invalidated


def test_invalidate_device_unit(profile_dir):
    from repro.hardware.presets import aji_cluster15_node
    from repro.predict import Predictor, load_or_fit

    # run_npb fixtures above already fitted the model under
    # <profile_dir>/predict; this hits that cache.
    model, _ = load_or_fit(aji_cluster15_node(), f"{profile_dir}/predict")
    predictor = Predictor(
        model,
        kinds={"cpu": "cpu"},
        overheads={"cpu": 1e-5},
    )
    predictor.residuals["cpu"] = [("k", 0.5), ("k", 0.1)]
    removed = predictor.invalidate_device("cpu")
    assert removed == 2
    assert predictor.invalidate_device("cpu") == 0  # idempotent
    assert predictor.stats.invalidations == 2


# ---------------------------------------------------------------------------
# Replay cold start
# ---------------------------------------------------------------------------
def _replay(profile_dir, **kw):
    cfg = ReplayConfig(
        commands=2500,
        tenants=1,
        profile_dir=profile_dir,
        **kw,
    ).validate()
    return run_tenant(cfg, 0)


def test_cold_start_defaults_keep_checksums_bit_identical(profile_dir):
    base = _replay(profile_dir)
    predicted = _replay(profile_dir, cold_start=True, predict=True)
    # The predicted path never touches a device, so the replay outcome is
    # bit-identical to a run with no cold-start modelling at all.
    assert predicted.checksum == base.checksum
    assert base.profiling_epochs == 0 and base.predicted_epochs == 0
    assert predicted.predicted_epochs > 0 and predicted.profiling_epochs == 0


def test_cold_start_profiling_hurts_tail_latency(profile_dir):
    churn = 400
    cold = _replay(profile_dir, cold_start=True, family_churn=churn)
    predicted = _replay(
        profile_dir, cold_start=True, predict=True, family_churn=churn
    )
    assert cold.profiling_epochs > 0
    assert predicted.predicted_epochs == cold.profiling_epochs
    p99_cold = cold.hist.quantile(0.99)
    p99_pred = predicted.hist.quantile(0.99)
    assert p99_pred < p99_cold, (
        f"predicted p99 {p99_pred} should beat profiled cold start {p99_cold}"
    )
    assert cold.checksum != predicted.checksum


def test_predict_without_cold_start_rejected():
    with pytest.raises(ValueError, match="cold_start"):
        ReplayConfig(predict=True).validate()
    with pytest.raises(ValueError, match="family_churn"):
        ReplayConfig(cold_start=True, family_churn=-1).validate()
