"""Open-loop replay: arrivals, histograms, engine/service replay, sharding."""

import math
import random

import pytest

from repro.replay import (
    DEFAULT_FAMILIES,
    DiscardSink,
    LatencyHistogram,
    ReplayConfig,
    derive_seed,
    jain_index,
    make_process,
    merge_results,
    run_serial,
    run_service_replay,
    run_sharded,
    run_tenant,
    verify_against_serial,
)
from repro.replay.arrivals import DiurnalProcess, OnOffProcess, PoissonProcess


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
def test_same_seed_same_schedule(kind):
    p = make_process(kind, rate=100.0)
    a = list(p.stream(DEFAULT_FAMILIES, seed=42, limit=500))
    b = list(p.stream(DEFAULT_FAMILIES, seed=42, limit=500))
    assert a == b  # bit-identical, not approximately equal


@pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
def test_different_seeds_differ(kind):
    p = make_process(kind, rate=100.0)
    a = list(p.stream(DEFAULT_FAMILIES, seed=1, limit=100))
    b = list(p.stream(DEFAULT_FAMILIES, seed=2, limit=100))
    assert a != b


@pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
def test_arrivals_nondecreasing_and_families_in_range(kind):
    p = make_process(kind, rate=200.0)
    prev = 0.0
    for t, fam in p.stream(DEFAULT_FAMILIES, seed=7, limit=1000):
        assert t >= prev
        assert 0 <= fam < len(DEFAULT_FAMILIES)
        prev = t


def test_family_mix_follows_weights():
    p = PoissonProcess(rate=100.0)
    counts = [0] * len(DEFAULT_FAMILIES)
    n = 20000
    for _, fam in p.stream(DEFAULT_FAMILIES, seed=3, limit=n):
        counts[fam] += 1
    total_w = sum(f.weight for f in DEFAULT_FAMILIES)
    for fam, count in zip(DEFAULT_FAMILIES, counts):
        expected = fam.weight / total_w
        assert abs(count / n - expected) < 0.02


def test_poisson_rate_matches_long_run():
    p = PoissonProcess(rate=50.0)
    times = [t for t, _ in p.stream(DEFAULT_FAMILIES, seed=9, limit=5000)]
    achieved = len(times) / times[-1]
    assert abs(achieved - 50.0) / 50.0 < 0.05


def test_onoff_arrivals_only_in_on_windows():
    p = OnOffProcess(rate=100.0, on_s=1.0, off_s=3.0)
    cycle = 4.0
    for t, _ in p.stream(DEFAULT_FAMILIES, seed=5, limit=2000):
        offset = t % cycle
        assert offset <= 1.0 + 1e-9  # never inside the OFF window


def test_onoff_preserves_long_run_rate():
    p = OnOffProcess(rate=100.0, on_s=2.0, off_s=6.0)
    times = [t for t, _ in p.stream(DEFAULT_FAMILIES, seed=11, limit=8000)]
    # Measure over complete on/off cycles: the stream always ends inside an
    # ON window, so a naive len/t_last estimate overcounts the rate.
    cycle = 8.0
    horizon = math.floor(times[-1] / cycle) * cycle
    inside = sum(1 for t in times if t < horizon)
    achieved = inside / horizon
    assert abs(achieved - 100.0) / 100.0 < 0.08


def test_diurnal_amplitude_validated():
    with pytest.raises(ValueError):
        DiurnalProcess(rate=10.0, amplitude=1.0)
    with pytest.raises(ValueError):
        DiurnalProcess(rate=10.0, amplitude=-0.1)


def test_diurnal_modulates_rate_over_period():
    p = DiurnalProcess(rate=200.0, amplitude=0.8, period_s=10.0)
    counts = {}
    for t, _ in p.stream(DEFAULT_FAMILIES, seed=13, limit=20000):
        counts[int(t % 10.0)] = counts.get(int(t % 10.0), 0) + 1
    # First half of the sine period (rising) must see more traffic than
    # the trough half.
    peak = sum(counts.get(s, 0) for s in (1, 2, 3))
    trough = sum(counts.get(s, 0) for s in (6, 7, 8))
    assert peak > 1.5 * trough


def test_make_process_unknown_kind():
    with pytest.raises(ValueError, match="unknown arrival process"):
        make_process("fractal", rate=1.0)


def test_derive_seed_distinct_substreams():
    seeds = {derive_seed(0, i) for i in range(1000)}
    assert len(seeds) == 1000
    assert derive_seed(1, 0) != derive_seed(0, 0)


# ---------------------------------------------------------------------------
# Latency histogram
# ---------------------------------------------------------------------------
def test_histogram_quantile_bounded_relative_error():
    rng = random.Random(17)
    samples = [rng.lognormvariate(-6.0, 1.0) for _ in range(20000)]
    hist = LatencyHistogram()
    for s in samples:
        hist.add(s)
    samples.sort()
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = samples[min(int(q * len(samples)), len(samples) - 1)]
        approx = hist.quantile(q)
        assert abs(approx - exact) / exact < 0.08  # growth=1.05 + rank slop


def test_histogram_merge_equals_combined():
    a, b, both = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    rng = random.Random(23)
    for i in range(5000):
        x = rng.expovariate(100.0)
        (a if i % 2 else b).add(x)
        both.add(x)
    a.merge(b)
    merged, combined = a.to_dict(), both.to_dict()
    # Bucket counts and extrema merge exactly; `total` is a float sum whose
    # order differs between the two paths, so it only matches to an ulp.
    assert merged["total"] == pytest.approx(combined.pop("total"))
    merged.pop("total")
    assert merged == combined
    assert a.quantiles([0.5, 0.99]) == both.quantiles([0.5, 0.99])


def test_histogram_roundtrip_and_stats():
    hist = LatencyHistogram()
    for x in (0.001, 0.002, 0.004, 0.1):
        hist.add(x)
    clone = LatencyHistogram.from_dict(hist.to_dict())
    assert clone.count == 4
    assert clone.total == hist.total
    assert clone.min == 0.001 and clone.max == 0.1
    assert clone.quantile(0.5) == hist.quantile(0.5)
    assert hist.mean == pytest.approx(hist.total / 4)


def test_histogram_edge_cases():
    empty = LatencyHistogram()
    assert empty.quantiles([0.5, 0.99]) == [0.0, 0.0]
    assert empty.mean == 0.0
    hist = LatencyHistogram()
    hist.add(0.0)  # at/below floor -> bucket 0
    hist.add(1e-9)
    assert hist.quantile(0.5) == 1e-9  # edge clamped into observed [min, max]
    with pytest.raises(ValueError):
        LatencyHistogram(floor=0.0)
    with pytest.raises(ValueError):
        hist.merge(LatencyHistogram(growth=1.1))


def test_jain_index():
    assert jain_index([1.0, 1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    assert jain_index([]) == 1.0


# ---------------------------------------------------------------------------
# Engine-mode replay
# ---------------------------------------------------------------------------
@pytest.fixture
def small_config(profile_dir):
    return ReplayConfig(
        commands=2000,
        tenants=2,
        rate=300.0,
        seed=5,
        chunk=256,
        spill_every=512,
        profile_dir=profile_dir,
    )


def test_run_tenant_completes_all_requests(small_config):
    result = run_tenant(small_config, 0)
    assert result.completed == result.requests == 2000
    assert result.end_time > 0.0
    assert result.latency_sum > 0.0
    hist = result.hist
    assert hist.count == 2000
    assert hist.min > 0.0
    assert 0.0 < hist.quantile(0.5) <= hist.quantile(0.999)
    assert sum(result.device_seconds.values()) > 0.0


def test_streaming_keeps_resident_tail_bounded(small_config):
    result = run_tenant(small_config, 0)
    # Memory flatness: the resident tail never exceeded the spill
    # threshold; the final flush pushed everything through the sink.
    assert result.resident < 512
    assert result.spilled == 2000


def test_streaming_matches_resident_aggregates(small_config):
    from dataclasses import replace

    streaming = run_tenant(small_config, 0)
    resident = run_tenant(replace(small_config, streaming=False), 0)
    assert resident.spilled == 0
    assert resident.resident == 2000
    # Identical simulation either way: streaming only changes bookkeeping.
    assert streaming.checksum == resident.checksum
    assert streaming.device_seconds == resident.device_seconds
    assert streaming.histogram == resident.histogram


def test_jsonl_trace_sink_records_all_intervals(small_config, tmp_path):
    from dataclasses import replace

    from repro.sim.export import read_jsonl_trace

    path = tmp_path / "replay-trace"
    result = run_tenant(replace(small_config, trace_path=str(path)), 0)
    spilled = list(read_jsonl_trace(f"{path}.tenant0.jsonl"))
    assert len(spilled) == 2000  # final flush included the tail
    assert result.spilled == 2000
    total = sum(iv.duration for iv in spilled)
    assert total == pytest.approx(sum(result.device_seconds.values()))


def test_replay_deterministic_across_runs(small_config):
    a = run_tenant(small_config, 0)
    b = run_tenant(small_config, 0)
    assert a.checksum == b.checksum
    assert a.histogram == b.histogram


def test_replay_seed_changes_outcome(small_config):
    from dataclasses import replace

    a = run_tenant(small_config, 0)
    b = run_tenant(replace(small_config, seed=6), 0)
    assert a.checksum != b.checksum


def test_rr_policy_differs_from_jsq(small_config):
    from dataclasses import replace

    jsq = run_tenant(small_config, 0)
    rr = run_tenant(replace(small_config, policy="rr"), 0)
    assert jsq.checksum != rr.checksum
    # Same arrivals either way; only dispatch (and thus latency) changes.
    assert rr.completed == jsq.completed


def test_config_validation():
    with pytest.raises(ValueError):
        ReplayConfig(commands=0).validate()
    with pytest.raises(ValueError):
        ReplayConfig(tenants=0).validate()
    with pytest.raises(ValueError):
        ReplayConfig(rate=-1.0).validate()
    with pytest.raises(ValueError):
        ReplayConfig(policy="lifo").validate()
    with pytest.raises(ValueError):
        ReplayConfig(weights=()).validate()
    with pytest.raises(ValueError):
        ReplayConfig(process="unknown").validate()


def test_env_knobs(small_config, monkeypatch):
    from repro.replay.runner import CHUNK_ENV, SPILL_ENV

    cfg = ReplayConfig()
    monkeypatch.setenv(CHUNK_ENV, "123")
    monkeypatch.setenv(SPILL_ENV, "456")
    assert cfg.resolved_chunk() == 123
    assert cfg.resolved_spill() == 456
    monkeypatch.setenv(CHUNK_ENV, "0")
    with pytest.raises(ValueError):
        cfg.resolved_chunk()
    monkeypatch.setenv(CHUNK_ENV, "soon")
    with pytest.raises(ValueError):
        cfg.resolved_chunk()
    # Explicit config values beat the environment.
    assert small_config.resolved_chunk() == 256


# ---------------------------------------------------------------------------
# Sharding: serial == sharded, bit for bit
# ---------------------------------------------------------------------------
def test_sharded_bit_identical_to_serial(small_config):
    serial = run_serial(small_config)
    sharded = run_sharded(small_config, shards=2)
    assert sharded.checksum == serial.checksum  # float equality, no tol
    assert sharded.total_commands == serial.total_commands == 4000
    assert sharded.merged.to_dict() == serial.merged.to_dict()
    assert sharded.fairness == serial.fairness
    assert [t.checksum for t in sharded.tenants] == [
        t.checksum for t in serial.tenants
    ]
    assert verify_against_serial(sharded, small_config)


def test_sharded_more_shards_than_tenants(small_config):
    sharded = run_sharded(small_config, shards=8)
    serial = run_serial(small_config)
    assert sharded.checksum == serial.checksum


def test_merge_is_order_independent(small_config):
    results = [run_tenant(small_config, i) for i in range(2)]
    forward = merge_results(results)
    backward = merge_results(list(reversed(results)))
    assert forward.checksum == backward.checksum
    assert forward.merged.to_dict() == backward.merged.to_dict()
    assert [t.tenant for t in backward.tenants] == ["tenant-0", "tenant-1"]


def test_report_metrics_and_render(small_config):
    report = run_serial(small_config)
    pct = report.percentiles()
    assert 0.0 < pct["p50"] <= pct["p99"] <= pct["p999"]
    assert report.simulated_throughput > 0.0
    assert report.replay_rate > 0.0
    assert 0.0 < report.fairness <= 1.0
    text = report.render()
    assert "p99" in text and "tenant-1" in text and "fairness" in text


# ---------------------------------------------------------------------------
# Service-mode replay (shared fleet, fair-share contention)
# ---------------------------------------------------------------------------
def test_service_replay_contends_and_reports_shares(profile_dir):
    config = ReplayConfig(
        commands=150,
        tenants=3,
        rate=400.0,  # 3 x 400/s >> fleet capacity: clear shared overload
        seed=2,
        weights=(4.0, 2.0, 1.0),
        chunk=64,
        profile_dir=profile_dir,
    )
    report = run_service_replay(config)
    assert report.total_commands == 450
    assert all(t.completed == 150 for t in report.tenants)
    assert set(report.shares) == {"tenant-0", "tenant-1", "tenant-2"}
    assert sum(report.shares.values()) == pytest.approx(1.0)
    # Under shared-fleet overload the heavier tenant must finish its
    # (identical) workload no slower than the lightest one.
    by_name = {t.tenant: t for t in report.tenants}
    assert by_name["tenant-0"].end_time <= by_name["tenant-2"].end_time
    assert report.merged.count == 450
    assert math.isfinite(report.checksum)


def test_service_replay_deterministic(profile_dir):
    config = ReplayConfig(
        commands=60, tenants=2, rate=100.0, seed=3, chunk=32,
        profile_dir=profile_dir,
    )
    a = run_service_replay(config)
    b = run_service_replay(config)
    assert a.checksum == b.checksum


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_engine_mode(profile_dir, monkeypatch, capsys):
    from repro.bench import figures
    from repro.replay.cli import main

    monkeypatch.setenv(figures.PROFILE_DIR_ENV, profile_dir)
    figures.set_profile_dir(profile_dir)
    rc = main(
        ["--commands", "500", "--tenants", "2", "--rate", "200",
         "--shards", "2", "--verify-serial", "--json"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "verified: sharded replay bit-identical" in out
    assert '"total_commands": 1000' in out


def test_cli_rejects_bad_arguments(capsys):
    from repro.replay.cli import main

    assert main(["--commands", "0"]) == 2
    assert main(["--mode", "service", "--shards", "4"]) == 2


def test_bench_cli_delegates_replay(profile_dir, monkeypatch, capsys):
    from repro.bench import figures
    from repro.bench.__main__ import main as bench_main

    monkeypatch.setenv(figures.PROFILE_DIR_ENV, profile_dir)
    figures.set_profile_dir(profile_dir)
    rc = bench_main(["replay", "--commands", "300", "--tenants", "1",
                     "--rate", "200"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "open-loop replay: 300 commands" in out


def test_discard_sink_counts():
    sink = DiscardSink()
    sink.consume([1, 2, 3])
    sink.consume([4])
    assert sink.consumed == 4
    sink.close()  # base-class no-op
